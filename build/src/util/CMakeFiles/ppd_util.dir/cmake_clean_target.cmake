file(REMOVE_RECURSE
  "libppd_util.a"
)
