file(REMOVE_RECURSE
  "CMakeFiles/ppd_util.dir/src/cli.cpp.o"
  "CMakeFiles/ppd_util.dir/src/cli.cpp.o.d"
  "CMakeFiles/ppd_util.dir/src/error.cpp.o"
  "CMakeFiles/ppd_util.dir/src/error.cpp.o.d"
  "CMakeFiles/ppd_util.dir/src/strings.cpp.o"
  "CMakeFiles/ppd_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/ppd_util.dir/src/table.cpp.o"
  "CMakeFiles/ppd_util.dir/src/table.cpp.o.d"
  "libppd_util.a"
  "libppd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
