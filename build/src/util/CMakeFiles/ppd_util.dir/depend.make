# Empty dependencies file for ppd_util.
# This may be replaced when dependencies are built.
