file(REMOVE_RECURSE
  "CMakeFiles/ppd_logic.dir/src/attenuation.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/attenuation.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/bench.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/bench.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/diagnosis.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/diagnosis.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/faultsim.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/faultsim.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/netlist.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/netlist.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/paths.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/paths.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/sensitize.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/sensitize.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/sim.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/sim.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/sta.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/sta.cpp.o.d"
  "CMakeFiles/ppd_logic.dir/src/vcd.cpp.o"
  "CMakeFiles/ppd_logic.dir/src/vcd.cpp.o.d"
  "libppd_logic.a"
  "libppd_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
