# Empty compiler generated dependencies file for ppd_logic.
# This may be replaced when dependencies are built.
