
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/src/attenuation.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/attenuation.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/attenuation.cpp.o.d"
  "/root/repo/src/logic/src/bench.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/bench.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/bench.cpp.o.d"
  "/root/repo/src/logic/src/diagnosis.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/diagnosis.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/diagnosis.cpp.o.d"
  "/root/repo/src/logic/src/faultsim.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/faultsim.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/faultsim.cpp.o.d"
  "/root/repo/src/logic/src/netlist.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/netlist.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/netlist.cpp.o.d"
  "/root/repo/src/logic/src/paths.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/paths.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/paths.cpp.o.d"
  "/root/repo/src/logic/src/sensitize.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/sensitize.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/sensitize.cpp.o.d"
  "/root/repo/src/logic/src/sim.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/sim.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/sim.cpp.o.d"
  "/root/repo/src/logic/src/sta.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/sta.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/sta.cpp.o.d"
  "/root/repo/src/logic/src/vcd.cpp" "src/logic/CMakeFiles/ppd_logic.dir/src/vcd.cpp.o" "gcc" "src/logic/CMakeFiles/ppd_logic.dir/src/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ppd_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/ppd_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ppd_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ppd_wave.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
