file(REMOVE_RECURSE
  "libppd_logic.a"
)
