# Empty dependencies file for ppd_cells.
# This may be replaced when dependencies are built.
