
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/src/bus.cpp" "src/cells/CMakeFiles/ppd_cells.dir/src/bus.cpp.o" "gcc" "src/cells/CMakeFiles/ppd_cells.dir/src/bus.cpp.o.d"
  "/root/repo/src/cells/src/dff.cpp" "src/cells/CMakeFiles/ppd_cells.dir/src/dff.cpp.o" "gcc" "src/cells/CMakeFiles/ppd_cells.dir/src/dff.cpp.o.d"
  "/root/repo/src/cells/src/netlist.cpp" "src/cells/CMakeFiles/ppd_cells.dir/src/netlist.cpp.o" "gcc" "src/cells/CMakeFiles/ppd_cells.dir/src/netlist.cpp.o.d"
  "/root/repo/src/cells/src/path.cpp" "src/cells/CMakeFiles/ppd_cells.dir/src/path.cpp.o" "gcc" "src/cells/CMakeFiles/ppd_cells.dir/src/path.cpp.o.d"
  "/root/repo/src/cells/src/sensor.cpp" "src/cells/CMakeFiles/ppd_cells.dir/src/sensor.cpp.o" "gcc" "src/cells/CMakeFiles/ppd_cells.dir/src/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ppd_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ppd_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
