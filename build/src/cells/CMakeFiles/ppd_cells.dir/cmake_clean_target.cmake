file(REMOVE_RECURSE
  "libppd_cells.a"
)
