file(REMOVE_RECURSE
  "CMakeFiles/ppd_cells.dir/src/bus.cpp.o"
  "CMakeFiles/ppd_cells.dir/src/bus.cpp.o.d"
  "CMakeFiles/ppd_cells.dir/src/dff.cpp.o"
  "CMakeFiles/ppd_cells.dir/src/dff.cpp.o.d"
  "CMakeFiles/ppd_cells.dir/src/netlist.cpp.o"
  "CMakeFiles/ppd_cells.dir/src/netlist.cpp.o.d"
  "CMakeFiles/ppd_cells.dir/src/path.cpp.o"
  "CMakeFiles/ppd_cells.dir/src/path.cpp.o.d"
  "CMakeFiles/ppd_cells.dir/src/sensor.cpp.o"
  "CMakeFiles/ppd_cells.dir/src/sensor.cpp.o.d"
  "libppd_cells.a"
  "libppd_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
