file(REMOVE_RECURSE
  "CMakeFiles/ppd_wave.dir/src/waveform.cpp.o"
  "CMakeFiles/ppd_wave.dir/src/waveform.cpp.o.d"
  "libppd_wave.a"
  "libppd_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
