file(REMOVE_RECURSE
  "libppd_wave.a"
)
