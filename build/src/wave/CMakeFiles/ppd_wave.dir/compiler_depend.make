# Empty compiler generated dependencies file for ppd_wave.
# This may be replaced when dependencies are built.
