# CMake generated Testfile for 
# Source directory: /root/repo/src/wave
# Build directory: /root/repo/build/src/wave
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
