file(REMOVE_RECURSE
  "CMakeFiles/ppd_mc.dir/src/rng.cpp.o"
  "CMakeFiles/ppd_mc.dir/src/rng.cpp.o.d"
  "CMakeFiles/ppd_mc.dir/src/variation.cpp.o"
  "CMakeFiles/ppd_mc.dir/src/variation.cpp.o.d"
  "libppd_mc.a"
  "libppd_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
