# Empty dependencies file for ppd_mc.
# This may be replaced when dependencies are built.
