file(REMOVE_RECURSE
  "libppd_mc.a"
)
