file(REMOVE_RECURSE
  "CMakeFiles/ppd_core.dir/src/coverage.cpp.o"
  "CMakeFiles/ppd_core.dir/src/coverage.cpp.o.d"
  "CMakeFiles/ppd_core.dir/src/delay_test.cpp.o"
  "CMakeFiles/ppd_core.dir/src/delay_test.cpp.o.d"
  "CMakeFiles/ppd_core.dir/src/logic_bridge.cpp.o"
  "CMakeFiles/ppd_core.dir/src/logic_bridge.cpp.o.d"
  "CMakeFiles/ppd_core.dir/src/measure.cpp.o"
  "CMakeFiles/ppd_core.dir/src/measure.cpp.o.d"
  "CMakeFiles/ppd_core.dir/src/pulse_test.cpp.o"
  "CMakeFiles/ppd_core.dir/src/pulse_test.cpp.o.d"
  "CMakeFiles/ppd_core.dir/src/rmin.cpp.o"
  "CMakeFiles/ppd_core.dir/src/rmin.cpp.o.d"
  "libppd_core.a"
  "libppd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
