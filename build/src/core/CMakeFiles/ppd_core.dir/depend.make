# Empty dependencies file for ppd_core.
# This may be replaced when dependencies are built.
