
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/src/dense.cpp" "src/linalg/CMakeFiles/ppd_linalg.dir/src/dense.cpp.o" "gcc" "src/linalg/CMakeFiles/ppd_linalg.dir/src/dense.cpp.o.d"
  "/root/repo/src/linalg/src/sparse.cpp" "src/linalg/CMakeFiles/ppd_linalg.dir/src/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/ppd_linalg.dir/src/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
