file(REMOVE_RECURSE
  "libppd_linalg.a"
)
