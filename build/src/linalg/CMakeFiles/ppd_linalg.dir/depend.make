# Empty dependencies file for ppd_linalg.
# This may be replaced when dependencies are built.
