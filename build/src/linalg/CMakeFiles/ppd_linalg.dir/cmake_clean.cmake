file(REMOVE_RECURSE
  "CMakeFiles/ppd_linalg.dir/src/dense.cpp.o"
  "CMakeFiles/ppd_linalg.dir/src/dense.cpp.o.d"
  "CMakeFiles/ppd_linalg.dir/src/sparse.cpp.o"
  "CMakeFiles/ppd_linalg.dir/src/sparse.cpp.o.d"
  "libppd_linalg.a"
  "libppd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
