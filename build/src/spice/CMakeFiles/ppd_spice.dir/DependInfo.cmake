
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/src/analysis.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/analysis.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/analysis.cpp.o.d"
  "/root/repo/src/spice/src/circuit.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/circuit.cpp.o.d"
  "/root/repo/src/spice/src/device.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/device.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/device.cpp.o.d"
  "/root/repo/src/spice/src/export.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/export.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/export.cpp.o.d"
  "/root/repo/src/spice/src/mna.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/mna.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/mna.cpp.o.d"
  "/root/repo/src/spice/src/source.cpp" "src/spice/CMakeFiles/ppd_spice.dir/src/source.cpp.o" "gcc" "src/spice/CMakeFiles/ppd_spice.dir/src/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ppd_wave.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
