# Empty compiler generated dependencies file for ppd_spice.
# This may be replaced when dependencies are built.
