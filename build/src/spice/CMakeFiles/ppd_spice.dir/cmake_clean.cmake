file(REMOVE_RECURSE
  "CMakeFiles/ppd_spice.dir/src/analysis.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/analysis.cpp.o.d"
  "CMakeFiles/ppd_spice.dir/src/circuit.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/circuit.cpp.o.d"
  "CMakeFiles/ppd_spice.dir/src/device.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/device.cpp.o.d"
  "CMakeFiles/ppd_spice.dir/src/export.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/export.cpp.o.d"
  "CMakeFiles/ppd_spice.dir/src/mna.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/mna.cpp.o.d"
  "CMakeFiles/ppd_spice.dir/src/source.cpp.o"
  "CMakeFiles/ppd_spice.dir/src/source.cpp.o.d"
  "libppd_spice.a"
  "libppd_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
