file(REMOVE_RECURSE
  "libppd_spice.a"
)
