file(REMOVE_RECURSE
  "CMakeFiles/ppd_faults.dir/src/fault.cpp.o"
  "CMakeFiles/ppd_faults.dir/src/fault.cpp.o.d"
  "libppd_faults.a"
  "libppd_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppd_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
