file(REMOVE_RECURSE
  "libppd_faults.a"
)
