# Empty dependencies file for ppd_faults.
# This may be replaced when dependencies are built.
