# Empty dependencies file for ppdtool.
# This may be replaced when dependencies are built.
