file(REMOVE_RECURSE
  "CMakeFiles/ppdtool.dir/ppdtool.cpp.o"
  "CMakeFiles/ppdtool.dir/ppdtool.cpp.o.d"
  "ppdtool"
  "ppdtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
