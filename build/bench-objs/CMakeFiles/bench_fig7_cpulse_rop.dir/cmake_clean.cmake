file(REMOVE_RECURSE
  "../bench/bench_fig7_cpulse_rop"
  "../bench/bench_fig7_cpulse_rop.pdb"
  "CMakeFiles/bench_fig7_cpulse_rop.dir/fig7_cpulse_rop.cpp.o"
  "CMakeFiles/bench_fig7_cpulse_rop.dir/fig7_cpulse_rop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cpulse_rop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
