# Empty dependencies file for bench_fig7_cpulse_rop.
# This may be replaced when dependencies are built.
