# Empty compiler generated dependencies file for bench_fig2_internal_rop_waves.
# This may be replaced when dependencies are built.
