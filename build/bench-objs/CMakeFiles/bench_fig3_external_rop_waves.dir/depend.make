# Empty dependencies file for bench_fig3_external_rop_waves.
# This may be replaced when dependencies are built.
