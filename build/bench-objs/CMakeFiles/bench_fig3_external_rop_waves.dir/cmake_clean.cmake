file(REMOVE_RECURSE
  "../bench/bench_fig3_external_rop_waves"
  "../bench/bench_fig3_external_rop_waves.pdb"
  "CMakeFiles/bench_fig3_external_rop_waves.dir/fig3_external_rop_waves.cpp.o"
  "CMakeFiles/bench_fig3_external_rop_waves.dir/fig3_external_rop_waves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_external_rop_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
