file(REMOVE_RECURSE
  "../bench/bench_faultsim_circuit"
  "../bench/bench_faultsim_circuit.pdb"
  "CMakeFiles/bench_faultsim_circuit.dir/faultsim_circuit.cpp.o"
  "CMakeFiles/bench_faultsim_circuit.dir/faultsim_circuit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faultsim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
