# Empty dependencies file for bench_faultsim_circuit.
# This may be replaced when dependencies are built.
