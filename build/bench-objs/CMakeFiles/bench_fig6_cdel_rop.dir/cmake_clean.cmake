file(REMOVE_RECURSE
  "../bench/bench_fig6_cdel_rop"
  "../bench/bench_fig6_cdel_rop.pdb"
  "CMakeFiles/bench_fig6_cdel_rop.dir/fig6_cdel_rop.cpp.o"
  "CMakeFiles/bench_fig6_cdel_rop.dir/fig6_cdel_rop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cdel_rop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
