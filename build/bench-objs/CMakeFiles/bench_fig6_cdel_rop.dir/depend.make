# Empty dependencies file for bench_fig6_cdel_rop.
# This may be replaced when dependencies are built.
