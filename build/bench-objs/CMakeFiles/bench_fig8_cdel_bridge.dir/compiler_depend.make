# Empty compiler generated dependencies file for bench_fig8_cdel_bridge.
# This may be replaced when dependencies are built.
