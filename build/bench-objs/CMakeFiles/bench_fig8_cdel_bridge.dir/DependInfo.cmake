
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_cdel_bridge.cpp" "bench-objs/CMakeFiles/bench_fig8_cdel_bridge.dir/fig8_cdel_bridge.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_fig8_cdel_bridge.dir/fig8_cdel_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-objs/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ppd_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/ppd_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ppd_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/ppd_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ppd_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ppd_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
