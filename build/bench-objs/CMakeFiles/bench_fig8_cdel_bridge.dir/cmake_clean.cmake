file(REMOVE_RECURSE
  "../bench/bench_fig8_cdel_bridge"
  "../bench/bench_fig8_cdel_bridge.pdb"
  "CMakeFiles/bench_fig8_cdel_bridge.dir/fig8_cdel_bridge.cpp.o"
  "CMakeFiles/bench_fig8_cdel_bridge.dir/fig8_cdel_bridge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cdel_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
