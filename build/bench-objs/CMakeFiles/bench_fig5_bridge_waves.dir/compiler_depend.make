# Empty compiler generated dependencies file for bench_fig5_bridge_waves.
# This may be replaced when dependencies are built.
