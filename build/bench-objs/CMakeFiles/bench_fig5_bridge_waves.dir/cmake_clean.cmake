file(REMOVE_RECURSE
  "../bench/bench_fig5_bridge_waves"
  "../bench/bench_fig5_bridge_waves.pdb"
  "CMakeFiles/bench_fig5_bridge_waves.dir/fig5_bridge_waves.cpp.o"
  "CMakeFiles/bench_fig5_bridge_waves.dir/fig5_bridge_waves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bridge_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
