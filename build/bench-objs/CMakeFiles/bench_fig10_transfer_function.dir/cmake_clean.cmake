file(REMOVE_RECURSE
  "../bench/bench_fig10_transfer_function"
  "../bench/bench_fig10_transfer_function.pdb"
  "CMakeFiles/bench_fig10_transfer_function.dir/fig10_transfer_function.cpp.o"
  "CMakeFiles/bench_fig10_transfer_function.dir/fig10_transfer_function.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_transfer_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
