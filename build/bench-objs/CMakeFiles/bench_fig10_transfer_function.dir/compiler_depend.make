# Empty compiler generated dependencies file for bench_fig10_transfer_function.
# This may be replaced when dependencies are built.
