# Empty dependencies file for bench_fig9_cpulse_bridge.
# This may be replaced when dependencies are built.
