file(REMOVE_RECURSE
  "../bench/bench_fig9_cpulse_bridge"
  "../bench/bench_fig9_cpulse_bridge.pdb"
  "CMakeFiles/bench_fig9_cpulse_bridge.dir/fig9_cpulse_bridge.cpp.o"
  "CMakeFiles/bench_fig9_cpulse_bridge.dir/fig9_cpulse_bridge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cpulse_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
