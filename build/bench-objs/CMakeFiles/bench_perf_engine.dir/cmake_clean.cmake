file(REMOVE_RECURSE
  "../bench/bench_perf_engine"
  "../bench/bench_perf_engine.pdb"
  "CMakeFiles/bench_perf_engine.dir/perf_engine.cpp.o"
  "CMakeFiles/bench_perf_engine.dir/perf_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
