# Empty dependencies file for bench_fig11_c432_rmin.
# This may be replaced when dependencies are built.
