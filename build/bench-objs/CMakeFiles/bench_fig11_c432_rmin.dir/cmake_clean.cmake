file(REMOVE_RECURSE
  "../bench/bench_fig11_c432_rmin"
  "../bench/bench_fig11_c432_rmin.pdb"
  "CMakeFiles/bench_fig11_c432_rmin.dir/fig11_c432_rmin.cpp.o"
  "CMakeFiles/bench_fig11_c432_rmin.dir/fig11_c432_rmin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_c432_rmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
