# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_delay_vs_pulse_runs "/root/repo/build/examples/example_delay_vs_pulse" "--samples=5")
set_tests_properties(example_delay_vs_pulse_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_c17_pulse_atpg_runs "/root/repo/build/examples/example_c17_pulse_atpg")
set_tests_properties(example_c17_pulse_atpg_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ring_oscillator_runs "/root/repo/build/examples/example_ring_oscillator")
set_tests_properties(example_ring_oscillator_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bus_handshake_runs "/root/repo/build/examples/example_bus_handshake")
set_tests_properties(example_bus_handshake_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
