# Empty dependencies file for example_bus_handshake.
# This may be replaced when dependencies are built.
