file(REMOVE_RECURSE
  "CMakeFiles/example_bus_handshake.dir/bus_handshake.cpp.o"
  "CMakeFiles/example_bus_handshake.dir/bus_handshake.cpp.o.d"
  "example_bus_handshake"
  "example_bus_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bus_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
