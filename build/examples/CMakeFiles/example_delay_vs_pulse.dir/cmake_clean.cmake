file(REMOVE_RECURSE
  "CMakeFiles/example_delay_vs_pulse.dir/delay_vs_pulse_test.cpp.o"
  "CMakeFiles/example_delay_vs_pulse.dir/delay_vs_pulse_test.cpp.o.d"
  "example_delay_vs_pulse"
  "example_delay_vs_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_delay_vs_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
