# Empty compiler generated dependencies file for example_delay_vs_pulse.
# This may be replaced when dependencies are built.
