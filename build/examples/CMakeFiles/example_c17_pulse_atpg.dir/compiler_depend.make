# Empty compiler generated dependencies file for example_c17_pulse_atpg.
# This may be replaced when dependencies are built.
