# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_c17_pulse_atpg.
