file(REMOVE_RECURSE
  "CMakeFiles/example_c17_pulse_atpg.dir/c17_pulse_atpg.cpp.o"
  "CMakeFiles/example_c17_pulse_atpg.dir/c17_pulse_atpg.cpp.o.d"
  "example_c17_pulse_atpg"
  "example_c17_pulse_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_c17_pulse_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
