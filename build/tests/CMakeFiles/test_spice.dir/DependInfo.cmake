
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/export_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/export_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/export_test.cpp.o.d"
  "/root/repo/tests/spice/gate_transient_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/gate_transient_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/gate_transient_test.cpp.o.d"
  "/root/repo/tests/spice/linear_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/linear_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/linear_test.cpp.o.d"
  "/root/repo/tests/spice/mosfet_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/mosfet_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/mosfet_test.cpp.o.d"
  "/root/repo/tests/spice/robustness_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/robustness_test.cpp.o.d"
  "/root/repo/tests/spice/source_test.cpp" "tests/CMakeFiles/test_spice.dir/spice/source_test.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/source_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/wave/CMakeFiles/ppd_wave.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ppd_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/ppd_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ppd_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ppd_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/ppd_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
