# Empty compiler generated dependencies file for test_logic_bridge.
# This may be replaced when dependencies are built.
