file(REMOVE_RECURSE
  "CMakeFiles/test_logic_bridge.dir/core/logic_bridge_test.cpp.o"
  "CMakeFiles/test_logic_bridge.dir/core/logic_bridge_test.cpp.o.d"
  "test_logic_bridge"
  "test_logic_bridge.pdb"
  "test_logic_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
