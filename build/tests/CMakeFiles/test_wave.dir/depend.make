# Empty dependencies file for test_wave.
# This may be replaced when dependencies are built.
