file(REMOVE_RECURSE
  "CMakeFiles/test_wave.dir/wave/waveform_test.cpp.o"
  "CMakeFiles/test_wave.dir/wave/waveform_test.cpp.o.d"
  "test_wave"
  "test_wave.pdb"
  "test_wave[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
