file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/coverage_test.cpp.o"
  "CMakeFiles/test_core.dir/core/coverage_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/delay_test_test.cpp.o"
  "CMakeFiles/test_core.dir/core/delay_test_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/generator_jitter_test.cpp.o"
  "CMakeFiles/test_core.dir/core/generator_jitter_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/measure_test.cpp.o"
  "CMakeFiles/test_core.dir/core/measure_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pulse_test_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pulse_test_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/rmin_test.cpp.o"
  "CMakeFiles/test_core.dir/core/rmin_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
