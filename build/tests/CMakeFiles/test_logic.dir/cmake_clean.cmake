file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/logic/attenuation_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/attenuation_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/bench_file_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/bench_file_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/bench_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/bench_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/faultsim_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/faultsim_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/netlist_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/netlist_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/paths_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/paths_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/properties_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/properties_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/sensitize_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/sensitize_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/sim_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/sim_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/sta_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/sta_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/ternary_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/ternary_test.cpp.o.d"
  "CMakeFiles/test_logic.dir/logic/vcd_diagnosis_test.cpp.o"
  "CMakeFiles/test_logic.dir/logic/vcd_diagnosis_test.cpp.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
