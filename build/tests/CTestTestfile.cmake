# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_wave[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_logic_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
