// Integration tests: the paper's evaluation claims, reproduced end-to-end
// in miniature (small MC populations so the suite stays fast). Each test
// exercises the full stack: cell library -> fault injection -> electrical
// simulation -> calibration -> detection.
#include <gtest/gtest.h>

#include "ppd/core/coverage.hpp"
#include "ppd/core/logic_bridge.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"

namespace ppd::core {
namespace {

PathFactory paper_factory(faults::FaultKind kind) {
  PathFactory f;
  f.options = cells::seven_gate_path();
  faults::PathFaultSpec spec;
  spec.kind = kind;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

constexpr int kSamples = 6;
constexpr std::uint64_t kSeed = 4242;

CoverageOptions coverage_options(std::vector<double> resistances) {
  CoverageOptions o;
  o.samples = kSamples;
  o.seed = kSeed;
  o.resistances = std::move(resistances);
  return o;
}

/// 50%-coverage crossover resistance of a curve (first R with c >= 0.5).
double crossover(const CoverageResult& res, std::size_t multiplier_index) {
  for (std::size_t r = 0; r < res.resistances.size(); ++r)
    if (res.coverage[multiplier_index][r] >= 0.5) return res.resistances[r];
  return res.resistances.back() * 10.0;  // never crossed
}

TEST(PaperClaims, Fig6And7_SimilarNominalPerformanceForRops) {
  // Sect. 4: "Under nominal conditions, the two methods exhibit similar
  // performance" for resistive opens.
  const PathFactory f = paper_factory(faults::FaultKind::kExternalRopOutput);
  DelayCalibrationOptions dopt;
  dopt.samples = kSamples;
  dopt.seed = kSeed;
  const auto dcal = calibrate_delay_test(f, dopt);
  PulseCalibrationOptions popt;
  popt.samples = kSamples;
  popt.seed = kSeed;
  const auto pcal = calibrate_pulse_test(f, popt);

  const auto sweep = logspace(1e3, 64e3, 7);
  const auto cdel = run_delay_coverage(f, dcal, coverage_options(sweep));
  const auto cpulse = run_pulse_coverage(f, pcal, coverage_options(sweep));

  const double x_del = crossover(cdel, 1);     // nominal multiplier
  const double x_pulse = crossover(cpulse, 1);
  EXPECT_LT(x_del, 32e3);
  EXPECT_LT(x_pulse, 32e3);
  // Similar: within a factor of ~3 of each other.
  EXPECT_LT(std::max(x_del, x_pulse) / std::min(x_del, x_pulse), 3.0);
}

TEST(PaperClaims, Fig6And7_ClockUncertaintyHurtsMoreThanSensorUncertainty) {
  // The DF curves shift strongly with +/-10% clock; the pulse curves shift
  // much less with +/-10% w_th — the paper's robustness argument.
  const PathFactory f = paper_factory(faults::FaultKind::kExternalRopOutput);
  DelayCalibrationOptions dopt;
  dopt.samples = kSamples;
  dopt.seed = kSeed;
  const auto dcal = calibrate_delay_test(f, dopt);
  PulseCalibrationOptions popt;
  popt.samples = kSamples;
  popt.seed = kSeed;
  const auto pcal = calibrate_pulse_test(f, popt);

  const auto sweep = logspace(1e3, 64e3, 9);
  const auto cdel = run_delay_coverage(f, dcal, coverage_options(sweep));
  const auto cpulse = run_pulse_coverage(f, pcal, coverage_options(sweep));

  // Spread between the +/-10% parameter curves, at the crossover scale.
  const double del_spread = crossover(cdel, 2) / crossover(cdel, 0);
  const double pulse_spread = crossover(cpulse, 0) / crossover(cpulse, 2);
  EXPECT_GT(del_spread, 1.5) << "clock uncertainty should matter";
  EXPECT_LT(pulse_spread, del_spread)
      << "pulse method should be more robust than DF testing";
}

TEST(PaperClaims, Fig8And9_PulseBeatsDelayTestOnBridges) {
  // The headline: for bridges, C_del collapses just above the critical
  // resistance while C_pulse keeps detecting far beyond it.
  const PathFactory f = paper_factory(faults::FaultKind::kBridge);
  DelayCalibrationOptions dopt;
  dopt.samples = kSamples;
  dopt.seed = kSeed;
  const auto dcal = calibrate_delay_test(f, dopt);
  PulseCalibrationOptions popt;
  popt.samples = kSamples;
  popt.seed = kSeed;
  const auto pcal = calibrate_pulse_test(f, popt);

  const std::vector<double> sweep{1.5e3, 3e3, 6e3};
  const auto cdel = run_delay_coverage(f, dcal, coverage_options(sweep));
  const auto cpulse = run_pulse_coverage(f, pcal, coverage_options(sweep));

  // At nominal parameters: DF coverage is gone by 3 kOhm, pulse coverage
  // still full there and substantial at 6 kOhm.
  EXPECT_LE(cdel.coverage[1][1], 0.35) << "DF testing should miss 3k bridges";
  EXPECT_EQ(cpulse.coverage[1][1], 1.0) << "pulse test should catch 3k bridges";
  EXPECT_GE(cpulse.coverage[1][2], 0.5) << "pulse test should mostly catch 6k";
}

TEST(PaperClaims, Fig10_AttenuationRegionSpreadExceedsAsymptotic) {
  const PathFactory f = paper_factory(faults::FaultKind::kExternalRopOutput);
  const SimSettings sim;
  const auto model = mc::VariationModel::uniform_sigma(0.05);
  auto spread_at = [&](double w_in) {
    double lo = 1e9, hi = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      mc::Rng rng = sample_rng(kSeed, static_cast<std::size_t>(s));
      mc::GaussianVariationSource var(model, rng);
      PathInstance inst = make_instance(f, 0.0, &var);
      const auto w = output_pulse_width(inst.path, PulseKind::kH, w_in, sim);
      const double v = w.value_or(0.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_GT(spread_at(0.17e-9), 2.0 * spread_at(0.40e-9));
}

TEST(PaperClaims, Fig11_EndToEndLogicToElectricalFlow) {
  // One site of the C432-class benchmark, through the full pipeline:
  // enumerate -> sensitize -> extract -> calibrate -> R_min.
  const logic::Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  // Scan a few fault sites for a short sensitizable path, as the real flow
  // does (most structural paths are statically false).
  std::vector<logic::Path> paths;
  for (int gi = 35; gi <= 150 && paths.empty(); gi += 7) {
    for (const auto& p : logic::enumerate_paths_through(
             nl, nl.find("G" + std::to_string(gi)), 48)) {
      if (p.length() < 4 || p.length() > 7) continue;
      if (logic::sensitize_path(nl, p).ok) {
        paths.push_back(p);
        break;
      }
    }
  }
  ASSERT_FALSE(paths.empty());

  bool characterized = false;
  for (const auto& path : paths) {
    PathFactory f;
    f.options.kinds = to_cell_kinds(nl, path);
    faults::PathFaultSpec spec;
    spec.kind = faults::FaultKind::kExternalRopOutput;
    spec.stage = 0;
    f.fault = spec;
    PulseCalibrationOptions popt;
    popt.samples = 3;
    popt.seed = kSeed;
    const auto cal = calibrate_pulse_test(f, popt);
    RminOptions ropt;
    ropt.samples = 3;
    ropt.seed = kSeed;
    const auto rmin = find_r_min(f, cal, ropt);
    ASSERT_TRUE(rmin.detectable);
    EXPECT_GT(rmin.r_min, 500.0);
    EXPECT_LT(rmin.r_min, 100e3);
    characterized = true;
    break;
  }
  EXPECT_TRUE(characterized) << "no path made it through the pipeline";
}

TEST(PaperClaims, UndetectedDefectsBecomeAgingHazards) {
  // The paper's reliability motivation (Sect. 1): a defect too small for
  // production testing plus in-field degradation (NBTI-style VT drift)
  // produces a timing failure at the operating clock. Model aging as a
  // uniform VT magnitude increase.
  const PathFactory f = paper_factory(faults::FaultKind::kExternalRopOutput);
  DelayCalibrationOptions dopt;
  dopt.samples = kSamples;
  dopt.seed = kSeed;
  const auto dcal = calibrate_delay_test(f, dopt);
  // Operating clock: margin above the (already reduced) test clock.
  const double t_operating = 1.15 * dcal.t_nominal;
  const double r_small = 4e3;  // escapes DF testing at the test clock

  const SimSettings sim;
  PathInstance young = make_instance(f, r_small, nullptr);
  const auto d_young = path_delay(young.path, true, sim);
  ASSERT_TRUE(d_young.has_value());
  EXPECT_FALSE(delay_detects(d_young, t_operating, dcal.flip_flops))
      << "young device should meet the operating clock";

  // Aged: |VT| up 20% and transconductance down 15% (end-of-life
  // NBTI/mobility-degradation corner).
  class Aged : public cells::VariationSource {
   public:
    cells::TransistorVariation transistor() override {
      return {1.20, 0.85, 1.0};
    }
  };
  Aged aged_corner;
  PathInstance aged = make_instance(f, r_small, &aged_corner);
  const auto d_aged = path_delay(aged.path, true, sim);
  const bool fails_aged = delay_detects(d_aged, t_operating, dcal.flip_flops);
  // The same defect-free margin check on an aged but defect-free device:
  PathFactory clean = f;
  clean.fault.reset();
  Aged aged_corner2;
  PathInstance aged_clean = make_instance(clean, 0.0, &aged_corner2);
  const auto d_aged_clean = path_delay(aged_clean.path, true, sim);
  const bool fails_clean =
      delay_detects(d_aged_clean, t_operating, dcal.flip_flops);
  // The defective aged device must be strictly worse than the clean aged
  // one; with this margin the clean device survives while the defective
  // one fails (the reliability escape the paper motivates).
  ASSERT_TRUE(d_aged.has_value());
  ASSERT_TRUE(d_aged_clean.has_value());
  EXPECT_GT(*d_aged, *d_aged_clean);
  EXPECT_FALSE(fails_clean) << "aged fault-free device should still work";
  EXPECT_TRUE(fails_aged) << "aged defective device should fail in the field";
}

}  // namespace
}  // namespace ppd::core
