// Fault-injection behaviour at the electrical level: the paper's Sect. 2
// claims, stated as tests.
#include "ppd/faults/fault.hpp"

#include <gtest/gtest.h>

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::faults {
namespace {

using cells::GateKind;
using cells::Path;
using cells::PathOptions;
using cells::Process;

PathOptions chain(std::size_t n) {
  PathOptions po;
  po.kinds.assign(n, GateKind::kInv);
  return po;
}

/// 50%-50% delay of a rising input transition through a fresh path with
/// `spec` injected at resistance `ohms` (0 = fault-free).
double path_delay(const PathFaultSpec* spec, double ohms, bool rising = true) {
  Process proc;
  Path path = cells::build_path(proc, chain(5));
  if (spec != nullptr) (void)inject_on_path(path, *spec, ohms);
  path.drive_transition(rising, 0.3e-9);
  spice::TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 2e-12;
  const auto res = run_transient(path.netlist().circuit(), opt);
  const bool out_rises = path.same_polarity() == rising;
  const auto d = wave::propagation_delay(
      res.wave(path.input()), res.wave(path.output()), proc.vdd / 2,
      rising ? wave::Edge::kRise : wave::Edge::kFall,
      out_rises ? wave::Edge::kRise : wave::Edge::kFall);
  EXPECT_TRUE(d.has_value());
  return d.value_or(1e9);
}

TEST(InternalRop, SlowsOnlyOneTransition) {
  // Pull-down break at stage 1 (an inverter): input rising at stage-1 input?
  // Stage 1 sees the inverted input; a pull-down ROP slows the stage's
  // falling output. Check: one input polarity slows much more than the other.
  PathFaultSpec spec;
  spec.kind = FaultKind::kInternalRopPullDown;
  spec.stage = 1;
  const double d_free_r = path_delay(nullptr, 0.0, true);
  const double d_free_f = path_delay(nullptr, 0.0, false);
  const double d_rise = path_delay(&spec, 8e3, true);
  const double d_fall = path_delay(&spec, 8e3, false);
  const double slow_rise = d_rise - d_free_r;
  const double slow_fall = d_fall - d_free_f;
  // Stage 1's input falls when the path input rises (one inverter before
  // it), so its output rises -> pull-up unaffected; the pull-down ROP hits
  // the *falling* path-input polarity instead.
  EXPECT_GT(slow_fall, 5.0 * std::max(slow_rise, 1e-12));
}

TEST(InternalRop, DelayGrowsMonotonicallyWithR) {
  PathFaultSpec spec;
  spec.kind = FaultKind::kInternalRopPullDown;
  spec.stage = 1;
  double prev = path_delay(&spec, 1e3, false);
  for (double r : {4e3, 8e3, 16e3}) {
    const double d = path_delay(&spec, r, false);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ExternalRopOutput, SlowsBothTransitions) {
  PathFaultSpec spec;
  spec.kind = FaultKind::kExternalRopOutput;
  spec.stage = 1;
  const double slow_rise = path_delay(&spec, 8e3, true) - path_delay(nullptr, 0, true);
  const double slow_fall =
      path_delay(&spec, 8e3, false) - path_delay(nullptr, 0, false);
  EXPECT_GT(slow_rise, 20e-12);
  EXPECT_GT(slow_fall, 20e-12);
  // Roughly symmetric: neither edge more than ~4x the other.
  EXPECT_LT(slow_rise / slow_fall, 4.0);
  EXPECT_LT(slow_fall / slow_rise, 4.0);
}

TEST(ExternalRopBranch, OnlyAffectsTheFaultyBranch) {
  // The dummy-fanout loads on the same net must still switch sharply while
  // the on-path branch is slowed.
  Process proc;
  Path path = cells::build_path(proc, chain(4));
  PathFaultSpec spec;
  spec.kind = FaultKind::kExternalRopBranch;
  spec.stage = 1;
  const InjectedFault f = inject_on_path(path, spec, 20e3);
  path.drive_transition(true, 0.3e-9);
  spice::TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 2e-12;
  const auto res = run_transient(path.netlist().circuit(), opt);
  // Driver output (stage 1) keeps a fast edge, the spliced branch node is
  // much slower.
  const auto& drv = res.wave(path.stage_outputs()[1]);
  const auto& spliced = res.wave(f.spliced_node);
  const auto s_drv = wave::slew_time(drv, wave::Edge::kRise, 0.0, proc.vdd);
  const auto s_br = wave::slew_time(spliced, wave::Edge::kRise, 0.0, proc.vdd);
  ASSERT_TRUE(s_drv.has_value());
  ASSERT_TRUE(s_br.has_value());
  EXPECT_GT(*s_br, 3.0 * *s_drv);
}

TEST(Bridge, HasCriticalResistanceBehaviour) {
  // Far above the critical resistance the bridge only delays; far below it
  // the victim cannot reach a clean logic level.
  auto victim_low_level = [&](double r) {
    Process proc;
    Path path = cells::build_path(proc, chain(3));
    PathFaultSpec spec;
    spec.kind = FaultKind::kBridge;
    spec.stage = 1;
    spec.aggressor_high = true;  // aggressor fights the victim's low level
    (void)inject_on_path(path, spec, r);
    // Path input low -> stage-1 output (one inversion after input inv) low.
    path.drive_transition(false, 0.3e-9);
    spice::TransientOptions opt;
    opt.t_stop = 3e-9;
    opt.dt = 2e-12;
    const auto res = run_transient(path.netlist().circuit(), opt);
    return res.wave(path.stage_outputs()[1]).at(3e-9);
  };
  const double v_strong = victim_low_level(100.0);    // hard bridge
  const double v_weak = victim_low_level(50e3);       // weak bridge
  EXPECT_GT(v_strong, 0.5);  // level badly degraded
  EXPECT_LT(v_weak, 0.2);    // barely disturbed
}

TEST(Injection, SetFaultResistanceUpdatesInPlace) {
  Process proc;
  Path path = cells::build_path(proc, chain(3));
  PathFaultSpec spec;
  spec.kind = FaultKind::kExternalRopOutput;
  spec.stage = 1;
  const InjectedFault f = inject_on_path(path, spec, 1e3);
  set_fault_resistance(path.netlist(), f, 5e3);
  EXPECT_DOUBLE_EQ(path.netlist().circuit().resistor(f.resistor).resistance(),
                   5e3);
}

TEST(Injection, BranchRopNeedsDownstreamGate) {
  Process proc;
  Path path = cells::build_path(proc, chain(2));
  PathFaultSpec spec;
  spec.kind = FaultKind::kExternalRopBranch;
  spec.stage = 1;  // last stage: no downstream branch
  EXPECT_THROW(static_cast<void>(inject_on_path(path, spec, 1e3)),
               PreconditionError);
}

TEST(Injection, StageOutOfRangeThrows) {
  Process proc;
  Path path = cells::build_path(proc, chain(2));
  PathFaultSpec spec;
  spec.stage = 7;
  EXPECT_THROW(static_cast<void>(inject_on_path(path, spec, 1e3)),
               PreconditionError);
}

TEST(FaultKindNames, AreDistinct) {
  EXPECT_STRNE(fault_kind_name(FaultKind::kInternalRopPullUp),
               fault_kind_name(FaultKind::kInternalRopPullDown));
  EXPECT_STRNE(fault_kind_name(FaultKind::kExternalRopOutput),
               fault_kind_name(FaultKind::kBridge));
}

}  // namespace
}  // namespace ppd::faults
