// Section 2's low-resistance bridge taxonomy: a bridge closing an
// *inverting* feedback loop oscillates at low R; above the critical
// resistance the loop is broken resistively and the circuit settles. A
// non-inverting loop must latch or settle, never ring.
#include <gtest/gtest.h>

#include "ppd/cells/path.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::faults {
namespace {

using cells::GateKind;

/// Build a 6-inverter chain with a bridge from stage `from` back to stage
/// `to` and report whether the bridged node keeps ringing.
bool rings(std::size_t from, std::size_t to, double r) {
  cells::Process proc;
  cells::PathOptions po;
  po.kinds.assign(6, GateKind::kInv);
  cells::Path path = cells::build_path(proc, po);
  (void)inject_bridge(path.netlist(), path.stages()[from], path.stages()[to], r);
  path.drive_transition(true, 0.3e-9);
  spice::TransientOptions t;
  t.t_stop = 8e-9;
  t.dt = 2e-12;
  t.adaptive = true;
  const auto res = spice::run_transient(path.netlist().circuit(), t);
  return wave::is_oscillating(res.wave(path.stage_outputs()[from]),
                              proc.vdd / 2, /*t_from=*/2e-9);
}

TEST(FeedbackBridge, HardInvertingLoopOscillates) {
  // Stage 4 output bridged to stage 1 output: three inversions in the loop.
  EXPECT_TRUE(rings(4, 1, 100.0));
}

TEST(FeedbackBridge, ResistiveLoopSettles) {
  for (double r : {1e3, 5e3, 20e3})
    EXPECT_FALSE(rings(4, 1, r)) << "R=" << r;
}

TEST(FeedbackBridge, NonInvertingLoopDoesNotOscillate) {
  // Stage 3 output bridged to stage 1 output: two inversions — a latch-like
  // loop, not a ring.
  EXPECT_FALSE(rings(3, 1, 100.0));
}

TEST(FeedbackBridge, OscillationDetectorThresholds) {
  // Sanity of the waveform helper itself on synthetic data.
  wave::Waveform w;
  for (int i = 0; i <= 40; ++i)
    w.append(static_cast<double>(i) * 0.1e-9, (i % 2 == 0) ? 0.0 : 1.8);
  EXPECT_TRUE(wave::is_oscillating(w, 0.9, 0.0));
  EXPECT_TRUE(wave::is_oscillating(w, 0.9, 2e-9));
  // A single step never qualifies.
  wave::Waveform s;
  s.append(0.0, 0.0);
  s.append(1e-9, 0.0);
  s.append(1.1e-9, 1.8);
  s.append(4e-9, 1.8);
  EXPECT_FALSE(wave::is_oscillating(s, 0.9, 0.0));
}

}  // namespace
}  // namespace ppd::faults
