// Socket chaos: drive the ppdd service through the fault-injecting
// ChaosProxy across many seeds and assert the hardening invariants — the
// server never deadlocks, never leaks sessions, and every complete frame
// it delivers stays parseable no matter where the proxy dribbles, stalls,
// delays or resets the byte stream.
#include "ppd/net/chaos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/server.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {
namespace {

constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> words;
  std::string cur;
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) words.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

/// One client lifetime through the proxy, raw wire: handshake, upload,
/// a couple of queries, reading data-channel frames. Every complete line
/// received on either channel must parse; a mid-frame reset may truncate
/// only the final line. Socket failures are expected (the proxy resets on
/// purpose) — protocol violations are not.
struct ChaosClientOutcome {
  int frames = 0;
  int results = 0;
  bool protocol_violation = false;
  std::string violation;
};

ChaosClientOutcome run_chaos_client(std::uint16_t proxy_port) {
  ChaosClientOutcome out;
  const auto check_frame = [&out](const std::string& line, bool is_event) {
    ++out.frames;
    try {
      if (is_event) {
        (void)parse_json(line);
      } else if (line.rfind("OK", 0) != 0 && line.rfind("ERR", 0) != 0 &&
                 line.rfind("BUSY", 0) != 0) {
        throw ParseError("control reply without OK/ERR/BUSY prefix");
      }
    } catch (const std::exception& e) {
      out.protocol_violation = true;
      out.violation = e.what() + std::string(" in: ") + line;
    }
  };
  try {
    TcpStream control = TcpStream::connect_loopback(proxy_port);
    control.write_all("CONTROL\n");
    const auto hello = control.read_line();
    if (!hello) return out;
    check_frame(*hello, false);
    if (!is_ok(*hello)) return out;
    const auto words = split_words(*hello);
    const std::string token = words.size() > 4 ? words[4] : "";
    if (token.empty()) return out;

    TcpStream data = TcpStream::connect_loopback(proxy_port);
    data.write_all("DATA " + token + "\n");
    const auto stream_ok = data.read_line();
    if (!stream_ok) return out;
    check_frame(*stream_ok, false);
    const auto hello_event = data.read_line();
    if (!hello_event) return out;
    check_frame(*hello_event, true);

    control.write_all("SET points 3\n");
    const auto set_ok = control.read_line();
    if (!set_ok) return out;
    check_frame(*set_ok, false);

    control.write_all("UPLOAD c.bench " +
                      std::to_string(std::string(kBenchText).size()) + "\n");
    control.write_all(kBenchText);
    const auto up_ok = control.read_line();
    if (!up_ok) return out;
    check_frame(*up_ok, false);

    int expected = 0;
    for (const char* query : {"QUERY transfer", "QUERY lint c.bench"}) {
      control.write_all(std::string(query) + "\n");
      const auto reply = control.read_line();
      if (!reply) break;
      check_frame(*reply, false);
      if (is_ok(*reply)) ++expected;
    }
    // Read result frames until we have them all or the proxy kills us.
    while (out.results < expected) {
      const auto line = data.read_line();
      if (!line) break;
      // A reset can truncate the final line: only '}'-terminated frames
      // are complete and must parse.
      if (line->empty() || line->back() != '}') break;
      check_frame(*line, true);
      if (line->rfind("{\"event\":\"result\"", 0) == 0) ++out.results;
    }
    control.write_all("QUIT\n");
    (void)control.read_line();
  } catch (const NetError&) {
    // Injected resets land here — expected under chaos.
  }
  return out;
}

TEST(Chaos, ServiceSurvivesTenSeedsWithoutLeaksOrMalformedFrames) {
  cache::SolveCache::global().clear();
  ServerOptions options;
  Server server(options);
  server.start();

  std::uint64_t total_injected = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    proxy_options.plan = resil::FaultPlan::parse(
        "seed=" + std::to_string(seed) +
        ",sock-partial=0.4,sock-reset=0.04,sock-stall=0.08:0.01,"
        "sock-delay=0.3:0.002");
    ChaosProxy proxy(proxy_options);
    proxy.start();

    std::vector<std::thread> clients;
    std::vector<ChaosClientOutcome> outcomes(3);
    for (std::size_t c = 0; c < outcomes.size(); ++c)
      clients.emplace_back([&outcomes, c, &proxy] {
        outcomes[c] = run_chaos_client(proxy.port());
      });
    for (auto& t : clients) t.join();
    for (const auto& out : outcomes)
      EXPECT_FALSE(out.protocol_violation)
          << "seed " << seed << ": " << out.violation;

    proxy.stop();
    const ChaosProxyStats stats = proxy.stats();
    total_injected += stats.partial_writes + stats.resets + stats.stalls +
                      stats.delays;
  }
  // The plan must actually have fired — a chaos suite that injects nothing
  // proves nothing.
  EXPECT_GT(total_injected, 0u);

  // No deadlock / no leak: every proxied session unwinds (the checker's
  // own session is the only one left), and in-flight work drains.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool clean = false;
  while (std::chrono::steady_clock::now() < deadline && !clean) {
    const Server::Stats stats = server.stats();
    clean = stats.sessions_active == 0 && stats.jobs_in_flight == 0;
    if (!clean) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(clean) << "sessions_active=" << server.stats().sessions_active
                     << " jobs_in_flight=" << server.stats().jobs_in_flight;

  // The server itself must still answer normally after all ten storms.
  Client checker = Client::connect(server.port());
  checker.set("points", "3");
  const Client::Result res = checker.run("transfer");
  EXPECT_EQ(res.status, "ok");
  const JsonValue stats_doc = parse_json(checker.stats());
  EXPECT_EQ(stats_doc.at("server").at("draining").as_bool(), false);
  checker.quit();
  server.stop();
}

TEST(Chaos, InjectionIsDeterministicPerSeed) {
  // The same (seed, conn, direction, chunk) key must draw identically —
  // the replayability contract for failing chaos seeds.
  for (std::uint64_t site = 5; site <= 8; ++site) {
    EXPECT_DOUBLE_EQ(resil::fault_uniform(7, 3, site, 11),
                     resil::fault_uniform(7, 3, site, 11));
    EXPECT_NE(resil::fault_uniform(7, 3, site, 11),
              resil::fault_uniform(8, 3, site, 11));
  }
}

TEST(Chaos, ProxyForwardsCleanlyWithFaultsOff) {
  // Plan disabled: the proxy must be a transparent pipe (the harness
  // itself cannot be the thing that breaks byte-identity).
  cache::SolveCache::global().clear();
  ServerOptions options;
  Server server(options);
  server.start();
  ChaosProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  ChaosProxy proxy(proxy_options);
  proxy.start();

  Client direct = Client::connect(server.port());
  direct.set("points", "4");
  const Client::Result want = direct.run("transfer");
  direct.quit();

  Client proxied = Client::connect(proxy.port());
  proxied.set("points", "4");
  const Client::Result got = proxied.run("transfer");
  EXPECT_EQ(got.status, "ok");
  EXPECT_EQ(got.body, want.body);
  proxied.quit();

  proxy.stop();
  EXPECT_EQ(proxy.stats().resets, 0u);
  EXPECT_GT(proxy.stats().forwarded_bytes, 0u);
  server.stop();
}

}  // namespace
}  // namespace ppd::net
