// Crash-safe session recovery: the append-only SessionJournal (replay,
// torn-line tolerance, atomic rotation/compaction), server-side --recover
// rebuild, RESUME semantics, and idempotent re-issue by qid (acked ids are
// answered from the journal byte-identically, in-flight ids are deduped,
// unacked ids re-execute exactly once).
#include "ppd/net/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/server.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {
namespace {

constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

/// Unique journal path per test, cleaned up on destruction.
struct TempJournal {
  explicit TempJournal(const std::string& tag)
      : path("recovery_test_" + tag + ".journal") {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempJournal() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

TEST(Journal, ReplayRoundTripsRecords) {
  TempJournal tmp("roundtrip");
  {
    SessionJournal journal(tmp.path);
    journal.record_open("s1");
    journal.record_set("s1", "points", "5");
    journal.record_upload("s1", "c.bench", kBenchText);
    journal.record_accept("s1", 1, "transfer", "");
    journal.record_accept("s1", 2, "lint", "c.bench");
    journal.record_ack("s1", 1, "{\"event\":\"result\",\"id\":1}");
    journal.record_open("s2");
    journal.record_close("s2");
  }
  const SessionJournal::State state = SessionJournal::replay(tmp.path);
  ASSERT_EQ(state.size(), 1u);  // closed s2 elided
  const auto& s1 = state.at("s1");
  EXPECT_EQ(s1.config.at("points"), "5");
  EXPECT_EQ(s1.uploads.at("c.bench"), kBenchText);
  ASSERT_EQ(s1.accepted.size(), 1u);  // id 1 acked away
  EXPECT_EQ(s1.accepted.at(2), "lint c.bench");
  EXPECT_EQ(s1.acked.at(1), "{\"event\":\"result\",\"id\":1}");
  EXPECT_EQ(s1.next_id, 2u);
}

TEST(Journal, ReplayToleratesTornTrailingLine) {
  TempJournal tmp("torn");
  {
    SessionJournal journal(tmp.path);
    journal.record_open("s1");
    journal.record_set("s1", "points", "7");
  }
  // Simulate a crash mid-append: an unterminated, unparseable tail.
  {
    std::ofstream os(tmp.path, std::ios::binary | std::ios::app);
    os << "{\"j\":\"accept\",\"token\":\"s1\",\"id\"";
  }
  const SessionJournal::State state = SessionJournal::replay(tmp.path);
  ASSERT_EQ(state.count("s1"), 1u);
  EXPECT_EQ(state.at("s1").config.at("points"), "7");
  EXPECT_TRUE(state.at("s1").accepted.empty());
}

TEST(Journal, ReplayOfMissingFileIsEmpty) {
  EXPECT_TRUE(SessionJournal::replay("no_such_journal_file.journal").empty());
}

TEST(Journal, RotationCompactsAndStaysReplayable) {
  TempJournal tmp("rotate");
  {
    // Tiny rotation threshold: every few appends trigger a compaction.
    SessionJournal journal(tmp.path, 512);
    journal.record_open("s1");
    for (int i = 0; i < 64; ++i)
      journal.record_set("s1", "points", std::to_string(i));
    journal.record_open("s2");
    journal.record_close("s2");
    journal.record_accept("s1", 1, "transfer", "");
    EXPECT_GT(journal.rotations(), 0u);
    // Compaction folds the 64 SET rewrites into one line: the file stays
    // near the snapshot size instead of growing with history.
    EXPECT_LT(journal.bytes(), 4096u);
  }
  const SessionJournal::State state = SessionJournal::replay(tmp.path);
  ASSERT_EQ(state.count("s1"), 1u);
  EXPECT_EQ(state.at("s1").config.at("points"), "63");
  EXPECT_EQ(state.at("s1").accepted.count(1), 1u);
  EXPECT_EQ(state.count("s2"), 0u);
  // Atomic rename leaves no temp file behind.
  std::ifstream tmp_file(tmp.path + ".tmp");
  EXPECT_FALSE(tmp_file.good());
}

// ---------------------------------------------------------------------------
// Server-side recovery: --recover + RESUME + idempotent re-issue.
// ---------------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { cache::SolveCache::global().clear(); }
  void TearDown() override { cache::SolveCache::global().clear(); }
};

/// RESUME right after dropping a connection races the server's EOF
/// handling (the session detaches on the reader thread) — retry briefly.
Client resume_with_retry(std::uint16_t port, const std::string& token) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      return Client::resume(port, token);
    } catch (const ServiceError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

TEST_F(RecoveryTest, JournaledSessionSurvivesControlDisconnect) {
  TempJournal tmp("detach");
  ServerOptions options;
  options.journal_path = tmp.path;
  Server server(options);
  server.start();

  std::string token;
  std::uint64_t id = 0;
  std::string body;
  {
    Client client = Client::connect(server.port());
    token = client.session();
    client.set("points", "3");
    const Client::Result res = client.run("transfer");
    ASSERT_EQ(res.status, "ok");
    id = res.id;
    body = res.body;
    // No QUIT: both channels just drop, like a crashed client.
  }

  // The session must linger detached (journal-backed, has history).
  Client again = resume_with_retry(server.port(), token);
  EXPECT_EQ(again.session(), token);
  ASSERT_EQ(again.acked_ids().size(), 1u);
  EXPECT_EQ(again.acked_ids()[0], id);

  // Re-issue the acked id: answered from the journal, byte-identical, no
  // re-execution (the per-kind accepted counter must not move).
  const std::string stats_before = again.stats();
  const auto sub = again.submit("transfer", "", {0, id});
  EXPECT_TRUE(sub.cached);
  const Client::Result redone = again.wait(id);
  EXPECT_EQ(redone.body, body);
  const JsonValue stats = parse_json(again.stats());
  EXPECT_EQ(stats.at("kinds").at("transfer").at("accepted").as_uint(),
            parse_json(stats_before)
                .at("kinds")
                .at("transfer")
                .at("accepted")
                .as_uint());
  again.quit();
  server.stop();
}

TEST_F(RecoveryTest, RecoverRebuildsSessionsFromJournal) {
  TempJournal tmp("recover");
  const std::string acked_event =
      "{\"event\":\"result\",\"id\":1,\"qid\":1,\"kind\":\"transfer\","
      "\"status\":\"ok\",\"exit_code\":0,\"elapsed_s\":0.01,"
      "\"queue_s\":0.0,\"execute_s\":0.01,\"serialize_s\":0.0,"
      "\"body\":\"canned-recovered-body\"}";
  {
    // Craft the journal a crashed ppdd would leave behind: a session with
    // config, an upload, one acked qid and one accepted-but-unacked qid.
    // No close record — the daemon died, it did not drain.
    SessionJournal journal(tmp.path);
    journal.record_open("s7");
    journal.record_set("s7", "points", "3");
    journal.record_upload("s7", "c.bench", kBenchText);
    journal.record_accept("s7", 1, "transfer", "");
    journal.record_ack("s7", 1, acked_event);
    journal.record_accept("s7", 2, "lint", "c.bench");
  }

  ServerOptions options;
  options.journal_path = tmp.path;
  options.recover = true;
  Server server(options);
  server.start();

  // Unknown tokens are refused...
  EXPECT_THROW((void)Client::resume(server.port(), "nope"), ServiceError);
  // ...but the journaled session resumes with its acked-id inventory.
  Client client = Client::resume(server.port(), "s7");
  EXPECT_EQ(client.session(), "s7");
  ASSERT_EQ(client.acked_ids().size(), 1u);
  EXPECT_EQ(client.acked_ids()[0], 1u);

  // Acked qid 1: redelivered from the journal byte-for-byte.
  const auto cached = client.submit("transfer", "", {0, 1});
  EXPECT_TRUE(cached.cached);
  const Client::Result redelivered = client.wait(1);
  EXPECT_EQ(redelivered.raw, acked_event);
  EXPECT_EQ(redelivered.body, "canned-recovered-body");

  // Unacked qid 2: re-issued under the same id, executed exactly once —
  // and the recovered upload + config serve it (points survived too).
  const auto reissued = client.submit("lint", "c.bench", {0, 2});
  EXPECT_FALSE(reissued.cached);
  EXPECT_FALSE(reissued.duplicate);
  EXPECT_EQ(reissued.id, 2u);
  const Client::Result lint = client.wait(2);
  EXPECT_EQ(lint.status, "ok");
  EXPECT_NE(lint.body.find("c.bench"), std::string::npos);

  // Fresh queries never collide with recovered ids.
  const auto fresh = client.submit("transfer");
  ASSERT_FALSE(fresh.busy);
  EXPECT_GT(fresh.id, 2u);
  const Client::Result res = client.wait(fresh.id);
  EXPECT_EQ(res.status, "ok");

  // A second RESUME of the now-attached session is refused.
  EXPECT_THROW((void)Client::resume(server.port(), "s7"), ServiceError);
  client.quit();
  server.stop();
}

TEST_F(RecoveryTest, ReissueOfInFlightIdIsDeduped) {
  TempJournal tmp("dedup");
  ServerOptions options;
  options.journal_path = tmp.path;
  // Slow pickup keeps the first issue in flight while we re-issue it.
  options.debug_pickup_delay_seconds = 0.3;
  Server server(options);
  server.start();

  Client client = Client::connect(server.port());
  client.set("points", "3");
  const auto first = client.submit("transfer");
  ASSERT_FALSE(first.busy);
  const auto second = client.submit("transfer", "", {0, first.id});
  EXPECT_TRUE(second.duplicate);
  // Exactly one result arrives for the id; the next event after it is not
  // another copy (drain event closes the stream instead).
  const Client::Result res = client.wait(first.id);
  EXPECT_EQ(res.status, "ok");
  const JsonValue stats = parse_json(client.stats());
  EXPECT_EQ(stats.at("kinds").at("transfer").at("accepted").as_uint(), 1u);
  client.quit();
  server.stop();
}

TEST_F(RecoveryTest, ResumeMustPrecedeQueries) {
  TempJournal tmp("order");
  ServerOptions options;
  options.journal_path = tmp.path;
  Server server(options);
  server.start();

  std::string token;
  {
    Client victim = Client::connect(server.port());
    token = victim.session();
    victim.set("points", "3");
    const Client::Result res = victim.run("transfer");
    ASSERT_EQ(res.status, "ok");
  }

  // A connection that already ran queries cannot rebind: RESUME must be
  // the first thing a recovering client says. Drive the wire directly —
  // the Client API only resumes at connect time by design.
  TcpStream control = TcpStream::connect_loopback(server.port());
  control.write_all("CONTROL\n");
  ASSERT_TRUE(control.read_line().has_value());  // hello
  control.write_all("QUERY transfer\n");
  const auto accepted = control.read_line();
  ASSERT_TRUE(accepted.has_value());
  ASSERT_TRUE(is_ok(*accepted));
  control.write_all("RESUME " + token + "\n");
  const auto refused = control.read_line();
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->rfind("ERR", 0), 0u) << *refused;
  control.shutdown_both();
  server.stop();
}

TEST_F(RecoveryTest, DetachedSessionsAreBounded) {
  TempJournal tmp("evict");
  ServerOptions options;
  options.journal_path = tmp.path;
  options.max_detached_sessions = 2;
  Server server(options);
  server.start();

  std::vector<std::string> tokens;
  for (int i = 0; i < 4; ++i) {
    Client client = Client::connect(server.port());
    client.set("points", "3");
    const Client::Result res = client.run("transfer");
    ASSERT_EQ(res.status, "ok");
    tokens.push_back(client.session());
    // Drop without QUIT: session detaches.
  }
  // Eviction keeps only the newest max_detached_sessions; the server also
  // needs a moment to process the disconnects.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  std::size_t active = 99;
  while (std::chrono::steady_clock::now() < deadline) {
    active = server.stats().sessions_active;
    if (active <= options.max_detached_sessions) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(active, options.max_detached_sessions);
  // The oldest tokens are gone; the newest survives.
  EXPECT_THROW((void)Client::resume(server.port(), tokens[0]), ServiceError);
  Client ok = resume_with_retry(server.port(), tokens[3]);
  EXPECT_EQ(ok.session(), tokens[3]);
  ok.quit();
  server.stop();
}

}  // namespace
}  // namespace ppd::net
