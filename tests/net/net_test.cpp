// ppd::net — the service layer. Covers the wire protocol helpers (reversible
// JSON escaping, flat-object parsing), the loopback socket primitives, the
// shared query layer's key tables, and the headline service contracts:
// served responses byte-identical to direct run_query output (alone, under
// concurrent multi-client load, and with the solve cache disabled),
// per-session backpressure (BUSY), session isolation, and graceful drain.
#include "ppd/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/query.hpp"
#include "ppd/net/socket.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::net {
namespace {

// ---------------------------------------------------------------------------
// Protocol helpers.
// ---------------------------------------------------------------------------

TEST(Protocol, JsonQuoteRoundTripsEverything) {
  const std::string nasty =
      "line1\nline2\ttab \"quoted\" back\\slash\rcr \x01\x1f bytes";
  const std::string quoted = json_quote(nasty);
  EXPECT_EQ(json_unquote(quoted), nasty);
  // The quoted form itself must be one line (the framing depends on it).
  EXPECT_EQ(quoted.find('\n'), std::string::npos);
  EXPECT_EQ(quoted.find('\r'), std::string::npos);
}

TEST(Protocol, JsonUnquoteRejectsMalformedEscapes) {
  EXPECT_THROW((void)json_unquote("\"\\q\""), ParseError);
  EXPECT_THROW((void)json_unquote("no quotes"), ParseError);
  EXPECT_THROW((void)json_unquote("\"\\u2603\""), ParseError);  // > 0xff
}

TEST(Protocol, ParseFlatJsonReadsEventShapes) {
  const auto fields = parse_flat_json(
      R"({"event":"result","id":42,"exit_code":0,"elapsed_s":0.25,)"
      R"("ok":true,"body":"a\nb"})");
  EXPECT_EQ(fields.at("event"), "result");
  EXPECT_EQ(fields.at("id"), "42");
  EXPECT_EQ(fields.at("elapsed_s"), "0.25");
  EXPECT_EQ(fields.at("ok"), "true");
  EXPECT_EQ(fields.at("body"), "a\nb");
  EXPECT_THROW((void)parse_flat_json("{\"unterminated\":"), ParseError);
}

TEST(Protocol, ParseJsonReadsNestedDocuments) {
  const JsonValue doc = parse_json(
      R"({"server":{"queries_ok":3,"draining":false,"uptime_s":1.5},)"
      R"("kinds":{"transfer":{"queue_s":{"bins":[[1e-6,2e-6,4]]}}},)"
      R"("sessions":[{"token":"s1"},{"token":"s2"}],"none":null})");
  EXPECT_EQ(doc.at("server").at("queries_ok").as_uint(), 3u);
  EXPECT_FALSE(doc.at("server").at("draining").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("server").at("uptime_s").as_number(), 1.5);
  const JsonValue& bins =
      doc.at("kinds").at("transfer").at("queue_s").at("bins");
  ASSERT_EQ(bins.items.size(), 1u);
  ASSERT_EQ(bins.items[0].items.size(), 3u);
  EXPECT_DOUBLE_EQ(bins.items[0].items[2].as_number(), 4.0);
  ASSERT_EQ(doc.at("sessions").items.size(), 2u);
  EXPECT_EQ(doc.at("sessions").items[1].at("token").scalar, "s2");
  EXPECT_EQ(doc.at("none").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW((void)doc.at("absent"), ParseError);

  EXPECT_THROW((void)parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1} extra"), ParseError);
  EXPECT_THROW((void)parse_json("[[[[" + std::string(40, '[')), ParseError);
}

TEST(Protocol, ReplyHelpers) {
  EXPECT_TRUE(is_ok(ok_reply()));
  EXPECT_TRUE(is_ok(ok_reply("pong")));
  EXPECT_FALSE(is_ok(err_reply("nope")));
  // ERR flattens embedded newlines to keep one-line framing.
  EXPECT_EQ(err_reply("two\nlines").find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket primitives.
// ---------------------------------------------------------------------------

TEST(Socket, LoopbackLineEcho) {
  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  ASSERT_NE(port, 0);

  std::thread server([&listener] {
    auto peer = listener.accept();
    ASSERT_TRUE(peer.has_value());
    while (const auto line = peer->read_line())
      peer->write_all(*line + "\n");
  });

  TcpStream stream = TcpStream::connect_loopback(port);
  stream.write_all("hello\nworld\n");
  EXPECT_EQ(stream.read_line(), std::optional<std::string>("hello"));
  EXPECT_EQ(stream.read_line(), std::optional<std::string>("world"));
  stream.shutdown_both();
  server.join();
  listener.close();
}

TEST(Socket, CloseWakesAccept) {
  TcpListener listener(0);
  std::atomic<bool> accepted{true};
  std::thread waiter([&] { accepted = listener.accept().has_value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.close();
  waiter.join();
  EXPECT_FALSE(accepted.load());
}

// ---------------------------------------------------------------------------
// Query layer.
// ---------------------------------------------------------------------------

TEST(Query, KindNamesRoundTrip) {
  for (const QueryKind kind :
       {QueryKind::kTransfer, QueryKind::kCalibrate, QueryKind::kCoverage,
        QueryKind::kRmin, QueryKind::kLint, QueryKind::kSta})
    EXPECT_EQ(query_kind_from_string(query_kind_name(kind)), kind);
  EXPECT_THROW((void)query_kind_from_string("atpg"), ParseError);
}

TEST(Query, DefaultsMatchDocumentedCliDefaults) {
  const auto absent = [](const std::string&) -> std::optional<std::string> {
    return std::nullopt;
  };
  const QueryParams transfer = params_from_lookup(QueryKind::kTransfer, absent);
  EXPECT_EQ(transfer.points, 15u);
  const QueryParams coverage = params_from_lookup(QueryKind::kCoverage, absent);
  EXPECT_EQ(coverage.samples, 25);
  EXPECT_EQ(coverage.points, 9u);
  EXPECT_FALSE(coverage.strict);
  const QueryParams rmin = params_from_lookup(QueryKind::kRmin, absent);
  EXPECT_EQ(rmin.samples, 20);
  EXPECT_EQ(rmin.bisection_steps, 10);
  const QueryParams sta = params_from_lookup(QueryKind::kSta, absent);
  EXPECT_EQ(sta.k_paths, 5u);
  EXPECT_DOUBLE_EQ(sta.clock, 0.0);
  EXPECT_DOUBLE_EQ(sta.w_in_max, 1.2e-9);
  EXPECT_DOUBLE_EQ(sta.w_th_floor, 50e-12);
  EXPECT_DOUBLE_EQ(sta.margin, 0.25);
  EXPECT_DOUBLE_EQ(sta.slack_frac, 0.25);
}

TEST(Query, SuppressListIsValidatedAtRunTime) {
  const auto lookup = [](const std::string& key) -> std::optional<std::string> {
    if (key == "suppress") return "PPD999";
    return std::nullopt;
  };
  const QueryParams params = params_from_lookup(QueryKind::kSta, lookup);
  EXPECT_THROW((void)run_query(QueryKind::kSta, params), ParseError);
}

// ---------------------------------------------------------------------------
// End-to-end service contracts.
// ---------------------------------------------------------------------------

constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

/// Direct (no socket) execution with the same parameter source a session
/// SET would produce: the byte-identity reference.
std::string direct_body(
    QueryKind kind,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  QueryParams params = params_from_lookup(
      kind, [&kv](const std::string& key) -> std::optional<std::string> {
        for (const auto& [k, v] : kv)
          if (k == key) return v;
        return std::nullopt;
      });
  if (kind == QueryKind::kLint) {
    params.lint_name = "t.bench";
    params.lint_text = kBenchText;
  }
  if (kind == QueryKind::kSta) {
    params.bench_name = "t.bench";
    params.bench_text = kBenchText;
  }
  return run_query(kind, params).body;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache::SolveCache::global().clear();
    server_.emplace(options_);
    server_->start();
  }
  void TearDown() override {
    if (server_) server_->stop();
    cache::SolveCache::global().clear();
  }

  ServerOptions options_;
  std::optional<Server> server_;
};

TEST_F(ServiceTest, ServedTransferIsByteIdenticalToDirect) {
  Client client = Client::connect(server_->port());
  client.set("points", "5");
  const Client::Result res = client.run("transfer");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_EQ(res.body, direct_body(QueryKind::kTransfer, {{"points", "5"}}));
  client.quit();
}

TEST_F(ServiceTest, UploadedLintIsByteIdenticalAndCarriesExitCode) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  const Client::Result res = client.run("lint", "t.bench");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.body, direct_body(QueryKind::kLint, {}));

  // An unknown upload name is an ERR at submit time, not a result event.
  EXPECT_THROW((void)client.run("lint", "missing.bench"), ServiceError);
  client.quit();
}

TEST_F(ServiceTest, UploadedStaIsByteIdenticalToDirect) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  const Client::Result res = client.run("sta", "t.bench");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_EQ(res.body, direct_body(QueryKind::kSta, {}));
  client.quit();
}

TEST_F(ServiceTest, ServedStaRejectsUnknownSuppressCodes) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  client.set("suppress", "PPD999");
  const Client::Result res = client.run("sta", "t.bench");
  EXPECT_EQ(res.status, "error");
  EXPECT_NE(res.error.find("unknown diagnostic code"), std::string::npos);
  client.quit();
}

TEST_F(ServiceTest, SessionsAreIsolated) {
  Client a = Client::connect(server_->port());
  Client b = Client::connect(server_->port());
  a.set("points", "4");
  b.set("points", "6");
  const Client::Result ra = a.run("transfer");
  const Client::Result rb = b.run("transfer");
  EXPECT_EQ(ra.body, direct_body(QueryKind::kTransfer, {{"points", "4"}}));
  EXPECT_EQ(rb.body, direct_body(QueryKind::kTransfer, {{"points", "6"}}));
  EXPECT_NE(ra.body, rb.body);
  a.quit();
  b.quit();
}

TEST_F(ServiceTest, UnknownConfigKeyFailsAtSetTime) {
  Client client = Client::connect(server_->port());
  EXPECT_THROW(client.set("pionts", "5"), ServiceError);
  client.quit();
}

TEST_F(ServiceTest, StatsReportServerAndCacheCounters) {
  Client client = Client::connect(server_->port());
  client.set("points", "3");
  (void)client.run("transfer");
  const JsonValue stats = parse_json(client.stats());
  const JsonValue& server = stats.at("server");
  EXPECT_EQ(server.at("queries_ok").as_uint(), 1u);
  EXPECT_FALSE(server.at("draining").as_bool());
  EXPECT_GT(server.at("uptime_s").as_number(), 0.0);
  EXPECT_GE(stats.at("cache").at("hits").as_uint(), 0u);
  EXPECT_GE(stats.at("cache").at("entries").as_uint(), 0u);
  // Per-kind block: the transfer row saw exactly one query; both latency
  // histograms recorded it.
  const JsonValue& transfer = stats.at("kinds").at("transfer");
  EXPECT_EQ(transfer.at("accepted").as_uint(), 1u);
  EXPECT_EQ(transfer.at("ok").as_uint(), 1u);
  EXPECT_EQ(transfer.at("queue_s").at("count").as_uint(), 1u);
  EXPECT_EQ(transfer.at("execute_s").at("count").as_uint(), 1u);
  EXPECT_GT(transfer.at("execute_s").at("p50").as_number(), 0.0);
  // Kinds that saw no queries are present with zero counts (fixed shape).
  EXPECT_EQ(stats.at("kinds").at("rmin").at("accepted").as_uint(), 0u);
  // This session appears in the listing with its accepted count.
  ASSERT_EQ(stats.at("sessions").items.size(), 1u);
  EXPECT_EQ(stats.at("sessions").items[0].at("accepted").as_uint(), 1u);
  client.quit();
}

TEST_F(ServiceTest, ResultEventCarriesQueryIdAndTimingBreakdown) {
  Client client = Client::connect(server_->port());
  client.set("points", "3");
  const Client::Result res = client.run("transfer");
  EXPECT_EQ(res.status, "ok");
  EXPECT_GT(res.qid, 0u);
  EXPECT_GE(res.queue_s, 0.0);
  EXPECT_GT(res.execute_s, 0.0);
  EXPECT_GE(res.serialize_s, 0.0);
  // The breakdown rides in separate fields of the same event.
  EXPECT_NE(res.raw.find("\"qid\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"queue_s\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"execute_s\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"serialize_s\":"), std::string::npos);
  // elapsed_s is retained as an alias of execute_s for older consumers.
  EXPECT_DOUBLE_EQ(res.elapsed_s, res.execute_s);
  client.quit();
}

TEST_F(ServiceTest, StatsSnapshotExactUnderConcurrentMixedKinds) {
  // 4 concurrent clients, each running one transfer and one lint: the
  // per-kind snapshot totals must be exact (the PR 3 merge-exactness
  // contract — thread-count-invariant integer sums), not approximate.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      Client client = Client::connect(server_->port());
      client.set("points", "3");
      client.upload("t.bench", kBenchText);
      if (client.run("transfer").status != "ok") ++failures;
      if (client.run("lint", "t.bench").status != "ok") ++failures;
      client.quit();
    });
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  Client probe = Client::connect(server_->port());
  const JsonValue stats = parse_json(probe.stats());
  EXPECT_EQ(stats.at("server").at("queries_ok").as_uint(), 2u * kClients);
  for (const char* kind : {"transfer", "lint"}) {
    const JsonValue& row = stats.at("kinds").at(kind);
    EXPECT_EQ(row.at("accepted").as_uint(), static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("ok").as_uint(), static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("error").as_uint(), 0u) << kind;
    EXPECT_EQ(row.at("queue_s").at("count").as_uint(),
              static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("execute_s").at("count").as_uint(),
              static_cast<unsigned>(kClients))
        << kind;
  }
  for (const char* kind : {"calibrate", "coverage", "rmin", "sta"})
    EXPECT_EQ(stats.at("kinds").at(kind).at("accepted").as_uint(), 0u)
        << kind;
  probe.quit();
}

TEST_F(ServiceTest, SubscribeStreamsMetricsSnapshots) {
  Client worker = Client::connect(server_->port());
  worker.set("points", "3");
  (void)worker.run("transfer");

  Client watcher = Client::connect(server_->port());
  watcher.subscribe(0.05);
  std::uint64_t last_seq = 0;
  for (int i = 0; i < 2; ++i) {
    const auto line = watcher.next_event();
    ASSERT_TRUE(line.has_value());
    ASSERT_EQ(line->rfind("{\"event\":\"metrics\"", 0), 0u) << *line;
    const JsonValue ev = parse_json(*line);
    EXPECT_EQ(ev.at("seq").as_uint(), last_seq + 1);
    last_seq = ev.at("seq").as_uint();
    // The embedded stats block is the full STATS document.
    EXPECT_GE(ev.at("stats").at("server").at("queries_ok").as_uint(), 1u);
    EXPECT_GE(
        ev.at("stats").at("kinds").at("transfer").at("ok").as_uint(), 1u);
    (void)ev.at("interval").at("transfer").at("ok").as_uint();
  }
  watcher.subscribe(0.0);  // unsubscribe; the control channel still works
  EXPECT_TRUE(is_ok(watcher.ping()));
  watcher.quit();
  worker.quit();
}

TEST_F(ServiceTest, TraceDumpContainsServedQuerySpans) {
  obs::TraceSession& trace = obs::TraceSession::global();
  trace.set_ring_limit(4096);
  trace.start();

  Client client = Client::connect(server_->port());
  client.set("points", "3");
  const Client::Result res = client.run("transfer");
  ASSERT_EQ(res.status, "ok");
  ASSERT_GT(res.qid, 0u);

  const std::string dump = client.trace_dump();
  trace.stop();
  trace.clear();
  trace.set_ring_limit(0);

  // The served query's span is in the dump, tagged with the same qid the
  // result event carried — the client-side correlation contract.
  EXPECT_NE(dump.find("net.query.transfer"), std::string::npos);
  EXPECT_NE(dump.find("\"qid\":" + std::to_string(res.qid)),
            std::string::npos);
  client.quit();
}

TEST(ServiceBackpressure, SecondQueryWithoutDataChannelIsBusy) {
  // With max_queue=1 and no DATA channel attached, the first query's result
  // buffers inside the admission window — so a second QUERY must get BUSY
  // deterministically, no timing involved.
  ServerOptions options;
  options.limits.max_queue = 1;
  Server server(options);
  server.start();

  TcpStream control = TcpStream::connect_loopback(server.port());
  control.write_all("CONTROL\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("SET points 3\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("QUERY transfer\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("QUERY transfer\n");
  EXPECT_EQ(control.read_line().value(), "BUSY");
  control.shutdown_both();
  server.stop();
}

TEST(ServiceDrain, NotifiesDataChannelsAndRefusesNewConnections) {
  ServerOptions options;
  options.drain_grace_seconds = 5.0;
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  Client client = Client::connect(port);
  client.set("points", "3");
  const Client::Result before = client.run("transfer");
  EXPECT_EQ(before.status, "ok");

  // Capture the drain log line: the shutdown summary must account for
  // every accepted query (completed/cancelled/undelivered).
  std::ostringstream captured;
  obs::Logger::global().set_text_stream(&captured);
  obs::Logger::global().set_level(obs::LogLevel::kInfo);
  server.drain();
  obs::Logger::global().set_level(obs::LogLevel::kWarn);
  obs::Logger::global().set_text_stream(&std::cerr);
  EXPECT_TRUE(server.draining());

  const std::string drain_log = captured.str();
  EXPECT_NE(drain_log.find("ppdd drained"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("completed=1"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("cancelled=0"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("undelivered=0"), std::string::npos) << drain_log;

  // The drain event reached the data channel; the client notices on its
  // next read (the stream ends after the event, hence the throw).
  EXPECT_THROW((void)client.wait(9999), ServiceError);
  EXPECT_TRUE(client.drained());

  // Fully drained: the listener is gone.
  EXPECT_THROW((void)TcpStream::connect_loopback(port), NetError);
}

TEST_F(ServiceTest, ConcurrentClientsGetByteIdenticalResponses) {
  const std::vector<std::pair<std::string, std::string>> cov_kv = {
      {"samples", "3"}, {"points", "3"}};
  const std::string expect_transfer =
      direct_body(QueryKind::kTransfer, {{"points", "5"}});
  const std::string expect_coverage = direct_body(QueryKind::kCoverage, cov_kv);

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      Client client = Client::connect(server_->port());
      client.set("points", c % 2 == 0 ? "5" : "3");
      client.set("samples", "3");
      if (c % 2 == 0) {
        if (client.run("transfer").body != expect_transfer) ++mismatches;
        client.set("points", "3");
        if (client.run("coverage").body != expect_coverage) ++mismatches;
      } else {
        if (client.run("coverage").body != expect_coverage) ++mismatches;
      }
      client.quit();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const Server::Stats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok, 6u);
  EXPECT_EQ(stats.queries_error, 0u);
}

TEST_F(ServiceTest, ServedResponsesIdenticalWithCacheDisabled) {
  // The solve cache must be invisible across the wire: the same query
  // served warm (second run, populated cache) and served with the cache
  // killed produces the same bytes.
  const std::vector<std::pair<std::string, std::string>> kv = {
      {"samples", "3"}, {"points", "3"}};

  Client client = Client::connect(server_->port());
  client.set("samples", "3");
  client.set("points", "3");
  const std::string cold = client.run("coverage").body;
  const std::string warm = client.run("coverage").body;
  EXPECT_EQ(cold, warm);
  EXPECT_GT(cache::SolveCache::global().totals().hits, 0u);

  const bool was_enabled = cache::cache_enabled();
  cache::set_cache_enabled(false);
  const std::string uncached = client.run("coverage").body;
  cache::set_cache_enabled(was_enabled);

  EXPECT_EQ(cold, uncached);
  EXPECT_EQ(cold, direct_body(QueryKind::kCoverage, kv));
  client.quit();
}

// ---------------------------------------------------------------------------
// Quotas, overload control and hostile-input hardening.
// ---------------------------------------------------------------------------

/// Spin until `pred` holds (bounded) — replaces sleeps in the tests that
/// wait for a buffered result / failed delivery to become visible.
template <typename Pred>
bool poll_until(Pred pred, double seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Raw control-channel handshake; returns the session token.
std::string raw_control_handshake(TcpStream& control) {
  control.write_all("CONTROL\n");
  const auto hello = control.read_line();
  EXPECT_TRUE(hello.has_value() && is_ok(*hello));
  const auto words = util::split_ws(*hello);
  return words.size() > 4 ? words[4] : std::string();
}

TEST(ServiceQuota, MalformedUploadSizeAnswersErrAndDropsConnection) {
  // A size that cannot be parsed leaves the server with no way to know how
  // many payload bytes follow — the only safe move is a typed ERR and a
  // dropped connection, never an allocation sized by hostile input.
  ServerOptions options;
  Server server(options);
  server.start();
  for (const char* size : {"-1", "99999999999999999999999", "12abc", "0x10"}) {
    TcpStream control = TcpStream::connect_loopback(server.port());
    (void)raw_control_handshake(control);
    control.write_all(std::string("UPLOAD evil.bench ") + size + "\n");
    const auto reply = control.read_line();
    ASSERT_TRUE(reply.has_value()) << size;
    EXPECT_EQ(reply->rfind("ERR quota.size", 0), 0u) << *reply;
    // The connection is gone: the next read sees EOF (no resync possible).
    try {
      EXPECT_FALSE(control.read_line().has_value()) << size;
    } catch (const NetError&) {
      // RST instead of FIN is also an acceptable way to be dropped.
    }
  }
  // The violations never destabilized the server.
  Client probe = Client::connect(server.port());
  EXPECT_TRUE(is_ok(probe.ping()));
  EXPECT_GE(server.stats().quota_violations, 4u);
  probe.quit();
  server.stop();
}

TEST(ServiceQuota, UploadNameWithPathSeparatorsIsRefused) {
  ServerOptions options;
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  for (const char* name : {"../escape", "a/b.bench", "a\\b.bench"}) {
    try {
      client.upload(name, "x");
      FAIL() << "upload accepted hostile name " << name;
    } catch (const ServiceError& e) {
      EXPECT_NE(std::string(e.what()).find("quota.name"), std::string::npos)
          << e.what();
    }
  }
  // The session survives every refusal.
  EXPECT_TRUE(is_ok(client.ping()));
  client.quit();
  server.stop();
}

TEST(ServiceQuota, OversizedUploadIsDiscardedAndSessionSurvives) {
  // Well-formed but over-budget: the payload is drained in bounded chunks
  // (never allocated), the reply is a typed ERR, and the control stream
  // stays in sync for the next command.
  ServerOptions options;
  options.limits.max_upload_bytes = 16;
  Server server(options);
  server.start();
  TcpStream control = TcpStream::connect_loopback(server.port());
  (void)raw_control_handshake(control);
  const std::string payload(64, 'x');
  control.write_all("UPLOAD big.bench 64\n" + payload);
  const auto reply = control.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR quota.upload_bytes", 0), 0u) << *reply;
  control.write_all("PING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");

  // The cumulative budget also holds across small uploads: the second blob
  // that would push the total over is refused after being read, and the
  // session keeps serving.
  control.write_all("UPLOAD a.bench 12\nINPUT(a)\n a ");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("UPLOAD b.bench 12\nINPUT(b)\n b ");
  const auto over = control.read_line();
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(over->rfind("ERR quota.upload_bytes", 0), 0u) << *over;
  control.write_all("PING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");
  control.shutdown_both();
  server.stop();
}

TEST(ServiceQuota, OverlongControlLineAnswersErrAndStreamResyncs) {
  ServerOptions options;
  options.limits.max_line_bytes = 64;
  Server server(options);
  server.start();
  TcpStream control = TcpStream::connect_loopback(server.port());
  (void)raw_control_handshake(control);
  // 4 KiB of junk on one line: the reader must never buffer it all, answer
  // a typed ERR, and resync at the newline.
  control.write_all("SET noise " + std::string(4096, 'z') + "\n");
  const auto reply = control.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR quota.line", 0), 0u) << *reply;
  control.write_all("PING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");
  // A line just over the cap whose newline lands in the same TCP segment
  // (well under one recv) must be refused too, not slip through because the
  // terminator was already buffered.
  control.write_all("SET noise " + std::string(80, 'z') + "\n");
  const auto small_over = control.read_line();
  ASSERT_TRUE(small_over.has_value());
  EXPECT_EQ(small_over->rfind("ERR quota.line", 0), 0u) << *small_over;
  control.write_all("PING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");
  control.shutdown_both();
  EXPECT_GE(server.stats().quota_violations, 2u);
  server.stop();
}

TEST(ServiceQuota, ResultBacklogCapAnswersBusyBacklog) {
  // With no data channel attached, completed results pile up as
  // undelivered; past max_backlog the next QUERY is refused with the typed
  // backlog reply rather than buffering without bound.
  ServerOptions options;
  options.limits.max_queue = 8;
  options.limits.max_backlog = 1;
  Server server(options);
  server.start();
  TcpStream control = TcpStream::connect_loopback(server.port());
  (void)raw_control_handshake(control);
  control.write_all("SET points 3\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("QUERY transfer\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  // Wait for the result to land in the undelivered buffer.
  ASSERT_TRUE(poll_until([&control] {
    control.write_all("STATS\n");
    const JsonValue stats = parse_json(control.read_line().value());
    return stats.at("sessions").items.size() == 1 &&
           stats.at("sessions").items[0].at("undelivered").as_uint() >= 1;
  }));
  control.write_all("QUERY transfer\n");
  const auto reply = control.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("BUSY backlog", 0), 0u) << *reply;
  control.shutdown_both();
  server.stop();
}

TEST(ServiceOverload, DeadlineExpiredWhileQueuedIsNeverExecuted) {
  ServerOptions options;
  options.debug_pickup_delay_seconds = 0.2;  // simulated queue delay
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  client.set("points", "3");
  const Client::Submitted sub =
      client.submit("transfer", "", Client::SubmitOptions{/*deadline_ms=*/50});
  ASSERT_FALSE(sub.busy);
  const Client::Result res = client.wait(sub.id);
  EXPECT_EQ(res.status, "expired");
  EXPECT_NE(res.error.find("deadline"), std::string::npos) << res.error;
  EXPECT_TRUE(res.body.empty());  // expired queries never execute

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.queries_expired, 1u);
  EXPECT_EQ(stats.queries_ok, 0u);
  const JsonValue doc = parse_json(client.stats());
  EXPECT_EQ(doc.at("server").at("queries_expired").as_uint(), 1u);
  EXPECT_EQ(doc.at("kinds").at("transfer").at("expired").as_uint(), 1u);
  client.quit();
  server.stop();
}

TEST(ServiceOverload, ShedsLowPriorityKindsFirstAboveWatermark) {
  // ceiling 2, watermark 1: with one job pinned in flight the server is in
  // shed mode — coverage (lowest priority) is refused with the typed shed
  // reply while transfer (highest) still gets the last slot; at the ceiling
  // everything gets the typed server-ceiling reply. Deterministic: the
  // pinned pickup delay holds the jobs in flight for the whole sequence.
  ServerOptions options;
  options.max_inflight_total = 2;
  options.shed_watermark = 1;
  options.debug_pickup_delay_seconds = 0.4;
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  client.set("points", "3");
  client.set("samples", "3");

  const Client::Submitted first = client.submit("transfer");
  ASSERT_FALSE(first.busy);
  const Client::Submitted shed = client.submit("coverage");
  EXPECT_TRUE(shed.busy);
  EXPECT_NE(shed.reply.find("BUSY shed"), std::string::npos) << shed.reply;
  const Client::Submitted second = client.submit("transfer");
  ASSERT_FALSE(second.busy);
  const Client::Submitted ceiling = client.submit("transfer");
  EXPECT_TRUE(ceiling.busy);
  EXPECT_NE(ceiling.reply.find("BUSY server"), std::string::npos)
      << ceiling.reply;

  // The accepted queries still complete normally once picked up.
  EXPECT_EQ(client.wait(first.id).status, "ok");
  EXPECT_EQ(client.wait(second.id).status, "ok");
  const Server::Stats stats = server.stats();
  EXPECT_GE(stats.queries_shed, 1u);
  EXPECT_GE(stats.queries_busy, 1u);
  const JsonValue doc = parse_json(client.stats());
  EXPECT_GE(doc.at("kinds").at("coverage").at("shed").as_uint(), 1u);
  EXPECT_EQ(doc.at("server").at("shed_mode").as_bool(), false);
  client.quit();
  server.stop();
}

TEST(ServiceResilience, DataWriteFailureIsCountedAndParksTheEvent) {
  // The delivery write path must treat EPIPE/ECONNRESET as a value: the
  // channel detaches, the event parks as undelivered (slot retained), and
  // net.data.write_failed counts it — never an escaping exception.
  const auto failed_before = obs::counter("net.data.write_failed").value();
  TcpListener listener(0);
  TcpStream peer = TcpStream::connect_loopback(listener.port());
  auto accepted = listener.accept();
  ASSERT_TRUE(accepted.has_value());
  Session session("t", SessionLimits{});
  session.attach_data(std::make_shared<TcpStream>(std::move(*accepted)));
  peer.close();  // peer gone; the RST lands asynchronously
  // Deliveries keep "succeeding" into the socket buffer until the RST
  // arrives; the first write after it fails and parks its event.
  bool parked = false;
  for (int i = 0; i < 200 && !parked; ++i) {
    const std::uint64_t id = session.admit();
    ASSERT_NE(id, 0u);
    session.deliver(id, "{\"event\":\"result\",\"id\":" + std::to_string(id) +
                            "}");
    parked = session.undelivered() > 0;
    if (!parked) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(parked);
  EXPECT_GT(obs::counter("net.data.write_failed").value(), failed_before);
  listener.close();
}

TEST(ServiceResilience, DataChannelDeathIsAbsorbedAndFlushedOnReattach) {
  // Killing the data socket must cost the server nothing: results for a
  // dead channel park as undelivered, the control channel keeps answering,
  // and a fresh DATA attach flushes the buffered tail.
  ServerOptions options;
  Server server(options);
  server.start();

  TcpStream control = TcpStream::connect_loopback(server.port());
  const std::string token = raw_control_handshake(control);
  ASSERT_FALSE(token.empty());
  control.write_all("SET points 3\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  {
    TcpStream data = TcpStream::connect_loopback(server.port());
    data.write_all("DATA " + token + "\n");
    ASSERT_TRUE(is_ok(data.read_line().value()));
    ASSERT_TRUE(data.read_line().has_value());  // hello event
    data.close();  // abrupt death
  }
  for (int q = 0; q < 2; ++q) {
    control.write_all("QUERY transfer\n");
    ASSERT_TRUE(is_ok(control.read_line().value()));
  }
  // Both results end up parked for the dead channel.
  ASSERT_TRUE(poll_until([&control] {
    control.write_all("STATS\n");
    const JsonValue stats = parse_json(control.read_line().value());
    return stats.at("sessions").items.size() == 1 &&
           stats.at("sessions").items[0].at("undelivered").as_uint() >= 2;
  }));
  // Control channel unaffected by the dead data channel.
  control.write_all("PING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");

  // Reattach: the undelivered tail flushes to the new channel.
  TcpStream data2 = TcpStream::connect_loopback(server.port());
  data2.write_all("DATA " + token + "\n");
  ASSERT_TRUE(is_ok(data2.read_line().value()));
  int results = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (results < 1 && std::chrono::steady_clock::now() < deadline) {
    const auto line = data2.read_line();
    if (!line) break;
    if (line->rfind("{\"event\":\"result\"", 0) == 0) ++results;
  }
  EXPECT_GE(results, 1);
  control.write_all("QUIT\n");
  (void)control.read_line();
  server.stop();
}

TEST(ServiceFraming, DribbledControlBytesParseAsOneLine) {
  // A slow-loris client sending one byte at a time must look identical to
  // a whole-line write once the newline arrives.
  ServerOptions options;
  Server server(options);
  server.start();
  TcpStream control = TcpStream::connect_loopback(server.port());
  (void)raw_control_handshake(control);
  const std::string line = "PING\n";
  for (const char c : line) control.write_all(std::string_view(&c, 1));
  EXPECT_EQ(control.read_line().value(), "OK pong");
  control.shutdown_both();
  server.stop();
}

TEST(ServiceFraming, CoalescedControlFramesAnswerInOrder) {
  // Several commands in one TCP segment: the reader must split them at
  // newlines and answer each in order (no frame is lost or merged).
  ServerOptions options;
  Server server(options);
  server.start();
  TcpStream control = TcpStream::connect_loopback(server.port());
  (void)raw_control_handshake(control);
  control.write_all("PING\nSTATS\nPING\n");
  EXPECT_EQ(control.read_line().value(), "OK pong");
  const auto stats = control.read_line();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NO_THROW((void)parse_json(*stats));
  EXPECT_EQ(control.read_line().value(), "OK pong");
  control.shutdown_both();
  server.stop();
}

}  // namespace
}  // namespace ppd::net
