// ppd::net — the service layer. Covers the wire protocol helpers (reversible
// JSON escaping, flat-object parsing), the loopback socket primitives, the
// shared query layer's key tables, and the headline service contracts:
// served responses byte-identical to direct run_query output (alone, under
// concurrent multi-client load, and with the solve cache disabled),
// per-session backpressure (BUSY), session isolation, and graceful drain.
#include "ppd/net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/net/client.hpp"
#include "ppd/net/protocol.hpp"
#include "ppd/net/query.hpp"
#include "ppd/net/socket.hpp"
#include "ppd/util/error.hpp"

namespace ppd::net {
namespace {

// ---------------------------------------------------------------------------
// Protocol helpers.
// ---------------------------------------------------------------------------

TEST(Protocol, JsonQuoteRoundTripsEverything) {
  const std::string nasty =
      "line1\nline2\ttab \"quoted\" back\\slash\rcr \x01\x1f bytes";
  const std::string quoted = json_quote(nasty);
  EXPECT_EQ(json_unquote(quoted), nasty);
  // The quoted form itself must be one line (the framing depends on it).
  EXPECT_EQ(quoted.find('\n'), std::string::npos);
  EXPECT_EQ(quoted.find('\r'), std::string::npos);
}

TEST(Protocol, JsonUnquoteRejectsMalformedEscapes) {
  EXPECT_THROW((void)json_unquote("\"\\q\""), ParseError);
  EXPECT_THROW((void)json_unquote("no quotes"), ParseError);
  EXPECT_THROW((void)json_unquote("\"\\u2603\""), ParseError);  // > 0xff
}

TEST(Protocol, ParseFlatJsonReadsEventShapes) {
  const auto fields = parse_flat_json(
      R"({"event":"result","id":42,"exit_code":0,"elapsed_s":0.25,)"
      R"("ok":true,"body":"a\nb"})");
  EXPECT_EQ(fields.at("event"), "result");
  EXPECT_EQ(fields.at("id"), "42");
  EXPECT_EQ(fields.at("elapsed_s"), "0.25");
  EXPECT_EQ(fields.at("ok"), "true");
  EXPECT_EQ(fields.at("body"), "a\nb");
  EXPECT_THROW((void)parse_flat_json("{\"unterminated\":"), ParseError);
}

TEST(Protocol, ParseJsonReadsNestedDocuments) {
  const JsonValue doc = parse_json(
      R"({"server":{"queries_ok":3,"draining":false,"uptime_s":1.5},)"
      R"("kinds":{"transfer":{"queue_s":{"bins":[[1e-6,2e-6,4]]}}},)"
      R"("sessions":[{"token":"s1"},{"token":"s2"}],"none":null})");
  EXPECT_EQ(doc.at("server").at("queries_ok").as_uint(), 3u);
  EXPECT_FALSE(doc.at("server").at("draining").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("server").at("uptime_s").as_number(), 1.5);
  const JsonValue& bins =
      doc.at("kinds").at("transfer").at("queue_s").at("bins");
  ASSERT_EQ(bins.items.size(), 1u);
  ASSERT_EQ(bins.items[0].items.size(), 3u);
  EXPECT_DOUBLE_EQ(bins.items[0].items[2].as_number(), 4.0);
  ASSERT_EQ(doc.at("sessions").items.size(), 2u);
  EXPECT_EQ(doc.at("sessions").items[1].at("token").scalar, "s2");
  EXPECT_EQ(doc.at("none").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW((void)doc.at("absent"), ParseError);

  EXPECT_THROW((void)parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\":1} extra"), ParseError);
  EXPECT_THROW((void)parse_json("[[[[" + std::string(40, '[')), ParseError);
}

TEST(Protocol, ReplyHelpers) {
  EXPECT_TRUE(is_ok(ok_reply()));
  EXPECT_TRUE(is_ok(ok_reply("pong")));
  EXPECT_FALSE(is_ok(err_reply("nope")));
  // ERR flattens embedded newlines to keep one-line framing.
  EXPECT_EQ(err_reply("two\nlines").find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket primitives.
// ---------------------------------------------------------------------------

TEST(Socket, LoopbackLineEcho) {
  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  ASSERT_NE(port, 0);

  std::thread server([&listener] {
    auto peer = listener.accept();
    ASSERT_TRUE(peer.has_value());
    while (const auto line = peer->read_line())
      peer->write_all(*line + "\n");
  });

  TcpStream stream = TcpStream::connect_loopback(port);
  stream.write_all("hello\nworld\n");
  EXPECT_EQ(stream.read_line(), std::optional<std::string>("hello"));
  EXPECT_EQ(stream.read_line(), std::optional<std::string>("world"));
  stream.shutdown_both();
  server.join();
  listener.close();
}

TEST(Socket, CloseWakesAccept) {
  TcpListener listener(0);
  std::atomic<bool> accepted{true};
  std::thread waiter([&] { accepted = listener.accept().has_value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.close();
  waiter.join();
  EXPECT_FALSE(accepted.load());
}

// ---------------------------------------------------------------------------
// Query layer.
// ---------------------------------------------------------------------------

TEST(Query, KindNamesRoundTrip) {
  for (const QueryKind kind :
       {QueryKind::kTransfer, QueryKind::kCalibrate, QueryKind::kCoverage,
        QueryKind::kRmin, QueryKind::kLint, QueryKind::kSta})
    EXPECT_EQ(query_kind_from_string(query_kind_name(kind)), kind);
  EXPECT_THROW((void)query_kind_from_string("atpg"), ParseError);
}

TEST(Query, DefaultsMatchDocumentedCliDefaults) {
  const auto absent = [](const std::string&) -> std::optional<std::string> {
    return std::nullopt;
  };
  const QueryParams transfer = params_from_lookup(QueryKind::kTransfer, absent);
  EXPECT_EQ(transfer.points, 15u);
  const QueryParams coverage = params_from_lookup(QueryKind::kCoverage, absent);
  EXPECT_EQ(coverage.samples, 25);
  EXPECT_EQ(coverage.points, 9u);
  EXPECT_FALSE(coverage.strict);
  const QueryParams rmin = params_from_lookup(QueryKind::kRmin, absent);
  EXPECT_EQ(rmin.samples, 20);
  EXPECT_EQ(rmin.bisection_steps, 10);
  const QueryParams sta = params_from_lookup(QueryKind::kSta, absent);
  EXPECT_EQ(sta.k_paths, 5u);
  EXPECT_DOUBLE_EQ(sta.clock, 0.0);
  EXPECT_DOUBLE_EQ(sta.w_in_max, 1.2e-9);
  EXPECT_DOUBLE_EQ(sta.w_th_floor, 50e-12);
  EXPECT_DOUBLE_EQ(sta.margin, 0.25);
  EXPECT_DOUBLE_EQ(sta.slack_frac, 0.25);
}

TEST(Query, SuppressListIsValidatedAtRunTime) {
  const auto lookup = [](const std::string& key) -> std::optional<std::string> {
    if (key == "suppress") return "PPD999";
    return std::nullopt;
  };
  const QueryParams params = params_from_lookup(QueryKind::kSta, lookup);
  EXPECT_THROW((void)run_query(QueryKind::kSta, params), ParseError);
}

// ---------------------------------------------------------------------------
// End-to-end service contracts.
// ---------------------------------------------------------------------------

constexpr const char* kBenchText =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

/// Direct (no socket) execution with the same parameter source a session
/// SET would produce: the byte-identity reference.
std::string direct_body(
    QueryKind kind,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  QueryParams params = params_from_lookup(
      kind, [&kv](const std::string& key) -> std::optional<std::string> {
        for (const auto& [k, v] : kv)
          if (k == key) return v;
        return std::nullopt;
      });
  if (kind == QueryKind::kLint) {
    params.lint_name = "t.bench";
    params.lint_text = kBenchText;
  }
  if (kind == QueryKind::kSta) {
    params.bench_name = "t.bench";
    params.bench_text = kBenchText;
  }
  return run_query(kind, params).body;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache::SolveCache::global().clear();
    server_.emplace(options_);
    server_->start();
  }
  void TearDown() override {
    if (server_) server_->stop();
    cache::SolveCache::global().clear();
  }

  ServerOptions options_;
  std::optional<Server> server_;
};

TEST_F(ServiceTest, ServedTransferIsByteIdenticalToDirect) {
  Client client = Client::connect(server_->port());
  client.set("points", "5");
  const Client::Result res = client.run("transfer");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_EQ(res.body, direct_body(QueryKind::kTransfer, {{"points", "5"}}));
  client.quit();
}

TEST_F(ServiceTest, UploadedLintIsByteIdenticalAndCarriesExitCode) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  const Client::Result res = client.run("lint", "t.bench");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.body, direct_body(QueryKind::kLint, {}));

  // An unknown upload name is an ERR at submit time, not a result event.
  EXPECT_THROW((void)client.run("lint", "missing.bench"), ServiceError);
  client.quit();
}

TEST_F(ServiceTest, UploadedStaIsByteIdenticalToDirect) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  const Client::Result res = client.run("sta", "t.bench");
  EXPECT_EQ(res.status, "ok");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_EQ(res.body, direct_body(QueryKind::kSta, {}));
  client.quit();
}

TEST_F(ServiceTest, ServedStaRejectsUnknownSuppressCodes) {
  Client client = Client::connect(server_->port());
  client.upload("t.bench", kBenchText);
  client.set("suppress", "PPD999");
  const Client::Result res = client.run("sta", "t.bench");
  EXPECT_EQ(res.status, "error");
  EXPECT_NE(res.error.find("unknown diagnostic code"), std::string::npos);
  client.quit();
}

TEST_F(ServiceTest, SessionsAreIsolated) {
  Client a = Client::connect(server_->port());
  Client b = Client::connect(server_->port());
  a.set("points", "4");
  b.set("points", "6");
  const Client::Result ra = a.run("transfer");
  const Client::Result rb = b.run("transfer");
  EXPECT_EQ(ra.body, direct_body(QueryKind::kTransfer, {{"points", "4"}}));
  EXPECT_EQ(rb.body, direct_body(QueryKind::kTransfer, {{"points", "6"}}));
  EXPECT_NE(ra.body, rb.body);
  a.quit();
  b.quit();
}

TEST_F(ServiceTest, UnknownConfigKeyFailsAtSetTime) {
  Client client = Client::connect(server_->port());
  EXPECT_THROW(client.set("pionts", "5"), ServiceError);
  client.quit();
}

TEST_F(ServiceTest, StatsReportServerAndCacheCounters) {
  Client client = Client::connect(server_->port());
  client.set("points", "3");
  (void)client.run("transfer");
  const JsonValue stats = parse_json(client.stats());
  const JsonValue& server = stats.at("server");
  EXPECT_EQ(server.at("queries_ok").as_uint(), 1u);
  EXPECT_FALSE(server.at("draining").as_bool());
  EXPECT_GT(server.at("uptime_s").as_number(), 0.0);
  EXPECT_GE(stats.at("cache").at("hits").as_uint(), 0u);
  EXPECT_GE(stats.at("cache").at("entries").as_uint(), 0u);
  // Per-kind block: the transfer row saw exactly one query; both latency
  // histograms recorded it.
  const JsonValue& transfer = stats.at("kinds").at("transfer");
  EXPECT_EQ(transfer.at("accepted").as_uint(), 1u);
  EXPECT_EQ(transfer.at("ok").as_uint(), 1u);
  EXPECT_EQ(transfer.at("queue_s").at("count").as_uint(), 1u);
  EXPECT_EQ(transfer.at("execute_s").at("count").as_uint(), 1u);
  EXPECT_GT(transfer.at("execute_s").at("p50").as_number(), 0.0);
  // Kinds that saw no queries are present with zero counts (fixed shape).
  EXPECT_EQ(stats.at("kinds").at("rmin").at("accepted").as_uint(), 0u);
  // This session appears in the listing with its accepted count.
  ASSERT_EQ(stats.at("sessions").items.size(), 1u);
  EXPECT_EQ(stats.at("sessions").items[0].at("accepted").as_uint(), 1u);
  client.quit();
}

TEST_F(ServiceTest, ResultEventCarriesQueryIdAndTimingBreakdown) {
  Client client = Client::connect(server_->port());
  client.set("points", "3");
  const Client::Result res = client.run("transfer");
  EXPECT_EQ(res.status, "ok");
  EXPECT_GT(res.qid, 0u);
  EXPECT_GE(res.queue_s, 0.0);
  EXPECT_GT(res.execute_s, 0.0);
  EXPECT_GE(res.serialize_s, 0.0);
  // The breakdown rides in separate fields of the same event.
  EXPECT_NE(res.raw.find("\"qid\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"queue_s\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"execute_s\":"), std::string::npos);
  EXPECT_NE(res.raw.find("\"serialize_s\":"), std::string::npos);
  // elapsed_s is retained as an alias of execute_s for older consumers.
  EXPECT_DOUBLE_EQ(res.elapsed_s, res.execute_s);
  client.quit();
}

TEST_F(ServiceTest, StatsSnapshotExactUnderConcurrentMixedKinds) {
  // 4 concurrent clients, each running one transfer and one lint: the
  // per-kind snapshot totals must be exact (the PR 3 merge-exactness
  // contract — thread-count-invariant integer sums), not approximate.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      Client client = Client::connect(server_->port());
      client.set("points", "3");
      client.upload("t.bench", kBenchText);
      if (client.run("transfer").status != "ok") ++failures;
      if (client.run("lint", "t.bench").status != "ok") ++failures;
      client.quit();
    });
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  Client probe = Client::connect(server_->port());
  const JsonValue stats = parse_json(probe.stats());
  EXPECT_EQ(stats.at("server").at("queries_ok").as_uint(), 2u * kClients);
  for (const char* kind : {"transfer", "lint"}) {
    const JsonValue& row = stats.at("kinds").at(kind);
    EXPECT_EQ(row.at("accepted").as_uint(), static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("ok").as_uint(), static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("error").as_uint(), 0u) << kind;
    EXPECT_EQ(row.at("queue_s").at("count").as_uint(),
              static_cast<unsigned>(kClients))
        << kind;
    EXPECT_EQ(row.at("execute_s").at("count").as_uint(),
              static_cast<unsigned>(kClients))
        << kind;
  }
  for (const char* kind : {"calibrate", "coverage", "rmin", "sta"})
    EXPECT_EQ(stats.at("kinds").at(kind).at("accepted").as_uint(), 0u)
        << kind;
  probe.quit();
}

TEST_F(ServiceTest, SubscribeStreamsMetricsSnapshots) {
  Client worker = Client::connect(server_->port());
  worker.set("points", "3");
  (void)worker.run("transfer");

  Client watcher = Client::connect(server_->port());
  watcher.subscribe(0.05);
  std::uint64_t last_seq = 0;
  for (int i = 0; i < 2; ++i) {
    const auto line = watcher.next_event();
    ASSERT_TRUE(line.has_value());
    ASSERT_EQ(line->rfind("{\"event\":\"metrics\"", 0), 0u) << *line;
    const JsonValue ev = parse_json(*line);
    EXPECT_EQ(ev.at("seq").as_uint(), last_seq + 1);
    last_seq = ev.at("seq").as_uint();
    // The embedded stats block is the full STATS document.
    EXPECT_GE(ev.at("stats").at("server").at("queries_ok").as_uint(), 1u);
    EXPECT_GE(
        ev.at("stats").at("kinds").at("transfer").at("ok").as_uint(), 1u);
    (void)ev.at("interval").at("transfer").at("ok").as_uint();
  }
  watcher.subscribe(0.0);  // unsubscribe; the control channel still works
  EXPECT_TRUE(is_ok(watcher.ping()));
  watcher.quit();
  worker.quit();
}

TEST_F(ServiceTest, TraceDumpContainsServedQuerySpans) {
  obs::TraceSession& trace = obs::TraceSession::global();
  trace.set_ring_limit(4096);
  trace.start();

  Client client = Client::connect(server_->port());
  client.set("points", "3");
  const Client::Result res = client.run("transfer");
  ASSERT_EQ(res.status, "ok");
  ASSERT_GT(res.qid, 0u);

  const std::string dump = client.trace_dump();
  trace.stop();
  trace.clear();
  trace.set_ring_limit(0);

  // The served query's span is in the dump, tagged with the same qid the
  // result event carried — the client-side correlation contract.
  EXPECT_NE(dump.find("net.query.transfer"), std::string::npos);
  EXPECT_NE(dump.find("\"qid\":" + std::to_string(res.qid)),
            std::string::npos);
  client.quit();
}

TEST(ServiceBackpressure, SecondQueryWithoutDataChannelIsBusy) {
  // With max_queue=1 and no DATA channel attached, the first query's result
  // buffers inside the admission window — so a second QUERY must get BUSY
  // deterministically, no timing involved.
  ServerOptions options;
  options.limits.max_queue = 1;
  Server server(options);
  server.start();

  TcpStream control = TcpStream::connect_loopback(server.port());
  control.write_all("CONTROL\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("SET points 3\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("QUERY transfer\n");
  ASSERT_TRUE(is_ok(control.read_line().value()));
  control.write_all("QUERY transfer\n");
  EXPECT_EQ(control.read_line().value(), "BUSY");
  control.shutdown_both();
  server.stop();
}

TEST(ServiceDrain, NotifiesDataChannelsAndRefusesNewConnections) {
  ServerOptions options;
  options.drain_grace_seconds = 5.0;
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();

  Client client = Client::connect(port);
  client.set("points", "3");
  const Client::Result before = client.run("transfer");
  EXPECT_EQ(before.status, "ok");

  // Capture the drain log line: the shutdown summary must account for
  // every accepted query (completed/cancelled/undelivered).
  std::ostringstream captured;
  obs::Logger::global().set_text_stream(&captured);
  obs::Logger::global().set_level(obs::LogLevel::kInfo);
  server.drain();
  obs::Logger::global().set_level(obs::LogLevel::kWarn);
  obs::Logger::global().set_text_stream(&std::cerr);
  EXPECT_TRUE(server.draining());

  const std::string drain_log = captured.str();
  EXPECT_NE(drain_log.find("ppdd drained"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("completed=1"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("cancelled=0"), std::string::npos) << drain_log;
  EXPECT_NE(drain_log.find("undelivered=0"), std::string::npos) << drain_log;

  // The drain event reached the data channel; the client notices on its
  // next read (the stream ends after the event, hence the throw).
  EXPECT_THROW((void)client.wait(9999), ServiceError);
  EXPECT_TRUE(client.drained());

  // Fully drained: the listener is gone.
  EXPECT_THROW((void)TcpStream::connect_loopback(port), NetError);
}

TEST_F(ServiceTest, ConcurrentClientsGetByteIdenticalResponses) {
  const std::vector<std::pair<std::string, std::string>> cov_kv = {
      {"samples", "3"}, {"points", "3"}};
  const std::string expect_transfer =
      direct_body(QueryKind::kTransfer, {{"points", "5"}});
  const std::string expect_coverage = direct_body(QueryKind::kCoverage, cov_kv);

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      Client client = Client::connect(server_->port());
      client.set("points", c % 2 == 0 ? "5" : "3");
      client.set("samples", "3");
      if (c % 2 == 0) {
        if (client.run("transfer").body != expect_transfer) ++mismatches;
        client.set("points", "3");
        if (client.run("coverage").body != expect_coverage) ++mismatches;
      } else {
        if (client.run("coverage").body != expect_coverage) ++mismatches;
      }
      client.quit();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const Server::Stats stats = server_->stats();
  EXPECT_EQ(stats.queries_ok, 6u);
  EXPECT_EQ(stats.queries_error, 0u);
}

TEST_F(ServiceTest, ServedResponsesIdenticalWithCacheDisabled) {
  // The solve cache must be invisible across the wire: the same query
  // served warm (second run, populated cache) and served with the cache
  // killed produces the same bytes.
  const std::vector<std::pair<std::string, std::string>> kv = {
      {"samples", "3"}, {"points", "3"}};

  Client client = Client::connect(server_->port());
  client.set("samples", "3");
  client.set("points", "3");
  const std::string cold = client.run("coverage").body;
  const std::string warm = client.run("coverage").body;
  EXPECT_EQ(cold, warm);
  EXPECT_GT(cache::SolveCache::global().totals().hits, 0u);

  const bool was_enabled = cache::cache_enabled();
  cache::set_cache_enabled(false);
  const std::string uncached = client.run("coverage").body;
  cache::set_cache_enabled(was_enabled);

  EXPECT_EQ(cold, uncached);
  EXPECT_EQ(cold, direct_body(QueryKind::kCoverage, kv));
  client.quit();
}

}  // namespace
}  // namespace ppd::net
