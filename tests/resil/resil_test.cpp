// ppd::resil — the fault-tolerance machinery itself, tested under its own
// deterministic fault-injection harness: deadlines and watchdogs, the retry
// ladder, FaultPlan parsing and seam helpers, checkpoint round-trips, and
// the end-to-end sweep contracts (quarantine determinism at any thread
// count, strict-mode fail-fast, checkpoint/resume bit-identity) on the real
// coverage and faultsim sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "ppd/core/coverage.hpp"
#include "ppd/exec/cancel.hpp"
#include "ppd/exec/parallel.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/faultsim.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/resil/checkpoint.hpp"
#include "ppd/resil/deadline.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/resil/retry.hpp"
#include "ppd/util/error.hpp"

namespace ppd::resil {
namespace {

// ---------------------------------------------------------------- deadlines

TEST(Deadline, DefaultAndNonPositiveBudgetsNeverExpire) {
  EXPECT_TRUE(Deadline().unlimited());
  EXPECT_TRUE(Deadline::never().unlimited());
  EXPECT_TRUE(Deadline::after(0.0).unlimited());
  EXPECT_TRUE(Deadline::after(-1.0).unlimited());
  EXPECT_FALSE(Deadline().expired());
  EXPECT_GT(Deadline().remaining_seconds(), 1e6);
}

TEST(Deadline, ShortBudgetExpires) {
  const Deadline d = Deadline::after(1e-4);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_seconds(), 0.0);
}

TEST(Watchdog, ZeroBudgetArmsNothing) {
  exec::CancelToken token;
  const Watchdog dog(token, 0.0);
  EXPECT_FALSE(dog.armed());
  EXPECT_FALSE(dog.fired());
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, FiresTheTokenWhenTheBudgetElapses) {
  exec::CancelToken token;
  const Watchdog dog(token, 1e-3);
  ASSERT_TRUE(dog.armed());
  for (int i = 0; i < 500 && !token.cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(dog.fired());
}

TEST(Watchdog, DestructionBeforeTheBudgetLeavesTheTokenAlone) {
  exec::CancelToken token;
  { const Watchdog dog(token, 30.0); }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
}

// ------------------------------------------------------------- retry ladder

TEST(RetryLadder, StopsAtTheFirstSuccessfulRung) {
  RetryPolicy policy;
  policy.rungs = {{"a", 2}, {"b", 3}, {"c", 1}};
  int calls = 0;
  const LadderOutcome out =
      run_ladder(policy, [&](const RetryRung& rung, int attempt) {
        ++calls;
        return rung.name == "b" && attempt == 1;
      });
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.rung, 1);
  EXPECT_EQ(out.total_attempts, 4);  // a,a,b then the winning b attempt
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(out.attempted, "a,b");
  EXPECT_EQ(take_last_ladder(), "");  // success leaves no parked trail
}

TEST(RetryLadder, ExhaustionReportsTheFullTrail) {
  RetryPolicy policy;
  policy.rungs = {{"newton", 1}, {"gmin-step", 1}};
  const LadderOutcome out =
      run_ladder(policy, [](const RetryRung&, int) { return false; });
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.rung, -1);
  EXPECT_EQ(out.total_attempts, 2);
  EXPECT_EQ(out.attempted, "newton,gmin-step");
  // The trail is parked for a quarantine handler further up the stack.
  EXPECT_EQ(take_last_ladder(), "newton,gmin-step");
  EXPECT_EQ(take_last_ladder(), "");  // take_ clears the slot
}

TEST(RetryLadder, ExpiredDeadlineThrowsTimeout) {
  RetryPolicy policy;
  policy.rungs = {{"only", 5}};
  const Deadline expired = Deadline::after(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_THROW(run_ladder(
                   policy, [](const RetryRung&, int) { return false; },
                   expired, "op recovery"),
               TimeoutError);
}

// --------------------------------------------------------------- fault plan

TEST(FaultPlan, DisabledByDefaultAndRoundTrips) {
  const FaultPlan off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.describe(), "off");

  const FaultPlan plan = FaultPlan::parse(
      "seed=13,newton=0.35,nan=0.08,item=0.2,delay=0.1:0.01,cancel-after=30");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 13u);
  EXPECT_DOUBLE_EQ(plan.p_newton_nonconverge, 0.35);
  EXPECT_DOUBLE_EQ(plan.p_newton_nan, 0.08);
  EXPECT_DOUBLE_EQ(plan.p_item_fail, 0.2);
  EXPECT_DOUBLE_EQ(plan.p_item_delay, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_seconds, 0.01);
  EXPECT_EQ(plan.cancel_after_items, 30u);
  // describe() parses back to the same plan.
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.describe(), plan.describe());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("bogus=1"), ParseError);
  EXPECT_THROW((void)FaultPlan::parse("newton=nope"), ParseError);
}

TEST(FaultPlan, SeamsAreInertWithoutAScope) {
  EXPECT_FALSE(inject_newton_nonconvergence());
  EXPECT_FALSE(inject_newton_nan());
  EXPECT_NO_THROW(inject_item_failure());
  EXPECT_NO_THROW(inject_item_delay());
}

TEST(FaultPlan, CertainItemFailureThrowsInsideTheScope) {
  FaultPlan plan;
  plan.p_item_fail = 1.0;
  const FaultScope scope(plan, 7);
  EXPECT_THROW(inject_item_failure(), NumericalError);
}

TEST(FaultPlan, DrawsAreAPureFunctionOfSeedItemAndSite) {
  FaultPlan plan;
  plan.seed = 99;
  plan.p_newton_nonconverge = 0.5;
  const auto draw_sequence = [&](std::uint64_t item) {
    const FaultScope scope(plan, item);
    std::vector<bool> draws;
    draws.reserve(16);
    for (int i = 0; i < 16; ++i) draws.push_back(inject_newton_nonconvergence());
    return draws;
  };
  const auto a = draw_sequence(3);
  EXPECT_EQ(a, draw_sequence(3));   // re-entering the scope replays the draws
  EXPECT_NE(a, draw_sequence(4));   // another item draws independently
}

// --------------------------------------------------------------- checkpoint

TEST(Checkpoint, RoundTripsPayloadsAndQuarantine) {
  const std::string path = testing::TempDir() + "ppd_resil_ck_roundtrip.json";
  Checkpoint ck;
  ck.bind(41, 10, "round trip sweep");
  ck.record(2, "101");
  ck.record(3, "000");
  ck.record(7, "1");
  // Error text exercising the JSON string escaper.
  ck.record_quarantine({5, 55, "newton,gmin-step", "bad \"quote\"\nnewline"});
  ck.save(path);

  Checkpoint loaded = Checkpoint::load(path);
  loaded.bind(41, 10, "round trip sweep");
  EXPECT_EQ(loaded.completed(), 3u);
  ASSERT_TRUE(loaded.has(2));
  EXPECT_TRUE(loaded.has(3) && loaded.has(7));
  EXPECT_FALSE(loaded.has(0));
  EXPECT_EQ(loaded.payload(2), "101");
  EXPECT_EQ(loaded.payload(7), "1");
  const auto q = loaded.quarantine();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0], (QuarantineEntry{5, 55, "newton,gmin-step",
                                   "bad \"quote\"\nnewline"}));
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedSweepIdentityRefusesToResume) {
  const std::string path = testing::TempDir() + "ppd_resil_ck_identity.json";
  Checkpoint ck;
  ck.bind(41, 10, "experiment A");
  ck.record(0, "1");
  ck.save(path);
  EXPECT_THROW(Checkpoint::load(path).bind(42, 10, "experiment A"), ParseError);
  EXPECT_THROW(Checkpoint::load(path).bind(41, 11, "experiment A"), ParseError);
  EXPECT_THROW(Checkpoint::load(path).bind(41, 10, "experiment B"), ParseError);
  EXPECT_NO_THROW(Checkpoint::load(path).bind(41, 10, "experiment A"));
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "ppd_resil_ck_garbage.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not json at all", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)Checkpoint::load(path), ParseError);
  EXPECT_THROW((void)Checkpoint::load(path + ".missing"), ParseError);
  std::remove(path.c_str());
}

// ------------------------------------------------- exec quarantine hook

TEST(ExecQuarantineHook, SwallowsOfferedFailuresAndKeepsSweeping) {
  exec::ParallelOptions par;
  par.threads = 3;
  std::atomic<int> offered{0};
  par.on_item_error = [&](std::size_t, const std::exception_ptr&) {
    offered.fetch_add(1);
    return true;
  };
  std::vector<char> done(20, 0);
  exec::parallel_for(
      done.size(),
      [&](std::size_t i) {
        if (i % 5 == 0) throw NumericalError("boom");
        done[i] = 1;
      },
      par);
  EXPECT_EQ(offered.load(), 4);
  for (std::size_t i = 0; i < done.size(); ++i)
    EXPECT_EQ(done[i], i % 5 == 0 ? 0 : 1) << "i=" << i;
}

TEST(ExecQuarantineHook, DecliningTheOfferFailsTheSweep) {
  exec::ParallelOptions par;
  par.on_item_error = [](std::size_t, const std::exception_ptr&) {
    return false;
  };
  EXPECT_THROW(exec::parallel_for(
                   4, [](std::size_t) { throw NumericalError("boom"); }, par),
               NumericalError);
}

TEST(ExecQuarantineHook, CancellationIsNeverOfferedToTheHook) {
  exec::ParallelOptions par;
  par.cancel.cancel();
  par.on_item_error = [](std::size_t, const std::exception_ptr&) {
    ADD_FAILURE() << "CancelledError must bypass the quarantine hook";
    return true;
  };
  EXPECT_THROW(exec::parallel_for(4, [](std::size_t) {}, par),
               exec::CancelledError);
}

// --------------------------------------------- coverage sweep contracts

core::PathFactory rop_factory() {
  core::PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

core::PulseTestCalibration pinned_calibration() {
  core::PulseTestCalibration cal;
  cal.w_in = 1.5e-10;
  cal.w_th = 1.1e-10;
  return cal;
}

core::CoverageOptions chaos_coverage_options() {
  core::CoverageOptions o;
  o.samples = 6;
  o.seed = 2007;
  o.variation = mc::VariationModel::uniform_sigma(0.05);
  o.resistances = {2e3, 10e3, 40e3};
  o.resil.quarantine = true;
  o.resil.faults = FaultPlan::parse("seed=5,item=0.3");
  return o;
}

TEST(CoverageResilience, QuarantineIsDeterministicAtAnyThreadCount) {
  const core::PathFactory f = rop_factory();
  const core::PulseTestCalibration cal = pinned_calibration();
  core::CoverageOptions copt = chaos_coverage_options();
  copt.threads = 1;
  const core::CoverageResult serial = core::run_pulse_coverage(f, cal, copt);
  ASSERT_GT(serial.n_quarantined(), 0u);
  ASSERT_LT(serial.n_quarantined(), serial.quarantine.items);
  for (int threads : {2, 0}) {
    copt.threads = threads;
    const core::CoverageResult par = core::run_pulse_coverage(f, cal, copt);
    EXPECT_EQ(par.coverage, serial.coverage) << "threads=" << threads;
    EXPECT_EQ(par.simulations, serial.simulations) << "threads=" << threads;
    EXPECT_EQ(par.quarantine.entries, serial.quarantine.entries)
        << "threads=" << threads;
  }
}

TEST(CoverageResilience, EmptyQuarantineLeavesTheNumericsUntouched) {
  const core::PathFactory f = rop_factory();
  const core::PulseTestCalibration cal = pinned_calibration();
  core::CoverageOptions copt = chaos_coverage_options();
  copt.resil.faults = {};  // quarantine armed, nothing injected
  const core::CoverageResult guarded = core::run_pulse_coverage(f, cal, copt);
  EXPECT_EQ(guarded.n_quarantined(), 0u);
  core::CoverageOptions strict = chaos_coverage_options();
  strict.resil = {};  // the all-defaults policy: pre-resil behaviour
  const core::CoverageResult plain = core::run_pulse_coverage(f, cal, strict);
  EXPECT_EQ(guarded.coverage, plain.coverage);
  EXPECT_EQ(guarded.simulations, plain.simulations);
}

TEST(CoverageResilience, StrictModeFailsFastUnderInjection) {
  const core::PathFactory f = rop_factory();
  core::CoverageOptions copt = chaos_coverage_options();
  copt.resil.quarantine = false;  // --strict
  EXPECT_THROW(core::run_pulse_coverage(f, pinned_calibration(), copt),
               NumericalError);
}

TEST(CoverageResilience, NonConvergenceErrorNamesCircuitAndRungs) {
  const core::PathFactory f = rop_factory();
  core::CoverageOptions copt = chaos_coverage_options();
  copt.resil.quarantine = false;
  // Every Newton solve reports non-convergence: the whole homotopy ladder
  // runs dry and the error must say which circuit and which rungs.
  copt.resil.faults = FaultPlan::parse("seed=1,newton=1");
  try {
    (void)core::run_pulse_coverage(f, pinned_calibration(), copt);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("operating point did not converge"), std::string::npos)
        << what;
    EXPECT_NE(what.find("path INV-INV-INV"), std::string::npos) << what;
    EXPECT_NE(what.find("rungs attempted: newton,gmin-step,source-step"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("unknowns"), std::string::npos) << what;
  }
}

TEST(CoverageResilience, SweepBudgetConvertsToTimeoutError) {
  const core::PathFactory f = rop_factory();
  core::CoverageOptions copt = chaos_coverage_options();
  // Every item sleeps 50 ms; the sweep budget expires long before the
  // 18-item sweep can finish, so the watchdog must cancel it.
  copt.resil.faults = FaultPlan::parse("seed=1,delay=1:0.05");
  copt.resil.sweep_budget_seconds = 0.02;
  copt.threads = 2;
  EXPECT_THROW(core::run_pulse_coverage(f, pinned_calibration(), copt),
               TimeoutError);
}

TEST(CoverageResilience, CheckpointResumeIsBitIdentical) {
  const core::PathFactory f = rop_factory();
  const core::PulseTestCalibration cal = pinned_calibration();
  const std::string path = testing::TempDir() + "ppd_resil_resume.json";
  std::remove(path.c_str());

  core::CoverageOptions base = chaos_coverage_options();
  base.resil.faults = {};
  base.threads = 2;
  const core::CoverageResult uninterrupted =
      core::run_pulse_coverage(f, cal, base);

  // Interrupt the sweep after 5 completed items; the guard must persist the
  // checkpoint on the way out.
  core::CoverageOptions interrupted = base;
  interrupted.resil.checkpoint_path = path;
  interrupted.resil.faults = FaultPlan::parse("seed=1,cancel-after=5");
  EXPECT_THROW(core::run_pulse_coverage(f, cal, interrupted),
               exec::CancelledError);
  {
    Checkpoint ck = Checkpoint::load(path);
    ck.bind(base.seed, uninterrupted.quarantine.items,
            "pulse-test coverage MC sweep");
    EXPECT_GE(ck.completed(), 5u);
  }

  // Resume: cached items merge with fresh ones into the exact same result.
  // (Fresh token: the cancel-after injection fired the shared one above.)
  core::CoverageOptions resumed = base;
  resumed.cancel = exec::CancelToken();
  resumed.resil.checkpoint_path = path;
  resumed.resil.resume = true;
  const core::CoverageResult merged = core::run_pulse_coverage(f, cal, resumed);
  EXPECT_EQ(merged.coverage, uninterrupted.coverage);
  EXPECT_EQ(merged.simulations, uninterrupted.simulations);
  EXPECT_EQ(merged.quarantine.entries, uninterrupted.quarantine.entries);
  std::remove(path.c_str());
}

// ------------------------------------------------- faultsim sweep contract

TEST(FaultSimResilience, QuarantineIsDeterministicAndDropsTheDenominator) {
  const logic::Netlist nl = logic::c17();
  const logic::FaultSimulator sim(nl, logic::GateTimingLibrary::generic());
  const logic::StaResult sta = logic::run_sta(nl, sim.library());
  const auto faults =
      logic::enumerate_rop_faults(logic::slack_sites(nl, sta, 0.0), 8e3);
  logic::AtpgOptions aopt;
  aopt.paths_per_site = 8;
  const logic::AtpgResult atpg = logic::generate_pulse_tests(sim, faults, aopt);
  ASSERT_FALSE(atpg.tests.empty());

  logic::FaultSimOptions opt;
  opt.resil.quarantine = true;
  opt.resil.faults = FaultPlan::parse("seed=3,item=0.4");
  const logic::FaultCoverage serial = sim.run(faults, atpg.tests, opt);
  ASSERT_GT(serial.n_quarantined(), 0u);
  ASSERT_LT(serial.n_quarantined(), faults.size());
  // Quarantined faults leave the coverage denominator.
  const logic::FaultCoverage clean = sim.run(faults, atpg.tests, {});
  EXPECT_GT(serial.coverage(faults.size()), 0.0);
  EXPECT_EQ(clean.n_quarantined(), 0u);
  for (int threads : {2, 0}) {
    logic::FaultSimOptions par = opt;
    par.threads = threads;
    const logic::FaultCoverage got = sim.run(faults, atpg.tests, par);
    EXPECT_EQ(got.detected, serial.detected) << "threads=" << threads;
    EXPECT_EQ(got.quarantine.entries, serial.quarantine.entries)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ppd::resil
