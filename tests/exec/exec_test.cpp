// ppd::exec contract tests: every index visited exactly once, bit-identical
// results at any thread count, worker exceptions rethrown on the caller,
// cooperative cancellation, nested-sweep serialization, and scheduler
// observability.
#include "ppd/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ppd/exec/cancel.hpp"
#include "ppd/exec/thread_pool.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
  EXPECT_THROW((void)resolve_threads(-1), PreconditionError);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 5, 0}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257}}) {
      std::vector<std::atomic<int>> visits(n);
      ParallelOptions opt;
      opt.threads = threads;
      parallel_for(
          n, [&](std::size_t i) { visits[i].fetch_add(1); }, opt);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, GrainBatchingStillCoversEverything) {
  std::vector<std::atomic<int>> visits(100);
  ParallelOptions opt;
  opt.threads = 4;
  opt.grain = 7;  // does not divide 100
  parallel_for(
      100, [&](std::size_t i) { visits[i].fetch_add(1); }, opt);
  for (std::size_t i = 0; i < visits.size(); ++i)
    ASSERT_EQ(visits[i].load(), 1);
}

TEST(ParallelMap, BitIdenticalAcrossThreadCounts) {
  // Items follow the seeding contract: RNG from (seed, index) only.
  const auto item = [](std::size_t i) {
    mc::Rng rng = mc::derive_rng(42, i);
    double acc = 0.0;
    for (int k = 0; k < 16; ++k) acc += rng.normal();
    return acc;
  };
  ParallelOptions serial;  // threads = 1
  const auto reference = parallel_map(64, item, serial);
  for (int threads : {2, 3, 8, 0}) {
    ParallelOptions opt;
    opt.threads = threads;
    const auto got = parallel_map(64, item, opt);
    EXPECT_EQ(got, reference) << "threads=" << threads;
  }
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ParallelOptions opt;
    opt.threads = threads;
    EXPECT_THROW(
        parallel_for(
            200,
            [](std::size_t i) {
              if (i == 37) throw NumericalError("exploded at 37");
            },
            opt),
        NumericalError)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, ExceptionCarriesItemIndexAndContext) {
  // The rethrown exception keeps its type but gains the failing item index
  // and the sweep's context string, so diagnostics thrown deep inside a
  // parallel sweep still say where they came from.
  for (int threads : {1, 4}) {
    ParallelOptions opt;
    opt.threads = threads;
    opt.context = "faultsim over <unit>";
    try {
      parallel_for(
          200,
          [](std::size_t i) {
            if (i == 37) throw NumericalError("exploded");
          },
          opt);
      FAIL() << "expected NumericalError, threads=" << threads;
    } catch (const NumericalError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("exploded"), std::string::npos) << what;
      EXPECT_NE(what.find("sweep item 37 of 200"), std::string::npos) << what;
      EXPECT_NE(what.find("faultsim over <unit>"), std::string::npos) << what;
    }
  }
}

TEST(ParallelFor, CancellationMidSweepStopsClaimingWork) {
  for (int threads : {1, 4}) {
    ParallelOptions opt;
    opt.threads = threads;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(parallel_for(
                     100000,
                     [&](std::size_t) {
                       if (executed.fetch_add(1) == 10) opt.cancel.cancel();
                     },
                     opt),
                 CancelledError)
        << "threads=" << threads;
    // Lanes stop at the next claim; only in-flight items may still finish.
    EXPECT_LT(executed.load(), std::size_t{100000});
  }
}

TEST(ParallelFor, PreFiredTokenCancelsImmediately) {
  ParallelOptions opt;
  opt.threads = 4;
  opt.cancel.cancel();
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          50, [&](std::size_t) { executed.fetch_add(1); }, opt),
      CancelledError);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ParallelFor, NestedSweepSerializesInsteadOfDeadlocking) {
  ParallelOptions outer;
  outer.threads = 4;
  std::atomic<std::size_t> inner_items{0};
  parallel_for(
      8,
      [&](std::size_t) {
        ParallelOptions inner;
        inner.threads = 4;  // degrades to serial on a pool worker
        parallel_for(
            16, [&](std::size_t) { inner_items.fetch_add(1); }, inner);
      },
      outer);
  EXPECT_EQ(inner_items.load(), 8u * 16u);
}

TEST(ParallelFor, SweepStatsReportTheSweep) {
  SweepStats stats;
  ParallelOptions opt;
  opt.threads = 2;
  parallel_for(
      32, [](std::size_t) {}, opt, &stats);
  EXPECT_EQ(stats.items, 32u);
  EXPECT_GE(stats.lanes, 1);
  EXPECT_LE(stats.lanes, 2);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolStats, CountersAdvanceWithSubmittedWork) {
  const PoolStats before = ThreadPool::global().stats();
  ParallelOptions opt;
  opt.threads = 0;  // hardware width: submits lanes-1 runner tasks
  std::atomic<std::size_t> executed{0};
  parallel_for(
      64, [&](std::size_t) { executed.fetch_add(1); }, opt);
  EXPECT_EQ(executed.load(), 64u);
  const PoolStats after = ThreadPool::global().stats();
  EXPECT_GE(after.tasks_executed, before.tasks_executed);
  EXPECT_GE(after.steals, before.steals);
}

TEST(ThreadPool, SubmitForwardsQueryContextToWorker) {
  // The submitter's obs query context must travel with the task so spans
  // and metrics recorded on the worker stay query-attributable.
  std::atomic<std::uint64_t> seen_with_ctx{~0ull};
  std::atomic<std::uint64_t> seen_without_ctx{~0ull};
  std::atomic<int> done{0};
  {
    const obs::ScopedQueryContext ctx(123);
    ThreadPool::global().submit([&] {
      seen_with_ctx.store(obs::query_context());
      done.fetch_add(1);
    });
  }
  ThreadPool::global().submit([&] {
    seen_without_ctx.store(obs::query_context());
    done.fetch_add(1);
  });
  while (done.load() < 2) std::this_thread::yield();
  EXPECT_EQ(seen_with_ctx.load(), 123u);
  EXPECT_EQ(seen_without_ctx.load(), 0u);
}

}  // namespace
}  // namespace ppd::exec
