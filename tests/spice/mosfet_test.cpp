// MOSFET model validation: square-law regions, drain/source symmetry, PMOS
// mirroring, derivative consistency (finite differences), and a DC inverter
// voltage transfer characteristic.
#include <gtest/gtest.h>

#include <cmath>

#include "ppd/spice/analysis.hpp"
#include "ppd/spice/circuit.hpp"

namespace ppd::spice {
namespace {

MosParams nmos_params() {
  MosParams p;
  p.type = MosType::kNmos;
  p.w = 1e-6;
  p.l = 180e-9;
  p.vt0 = 0.45;
  p.kp = 170e-6;
  p.lambda = 0.0;  // exact square law for the region checks
  return p;
}

MosParams pmos_params() {
  MosParams p = nmos_params();
  p.type = MosType::kPmos;
  p.vt0 = -0.45;
  p.kp = 60e-6;
  return p;
}

Mosfet make_nmos() { return Mosfet("mn", 1, 2, 3, nmos_params()); }
Mosfet make_pmos() { return Mosfet("mp", 1, 2, 3, pmos_params()); }

TEST(Mosfet, CutoffHasNoCurrent) {
  const Mosfet m = make_nmos();
  const auto e = m.evaluate(/*vd=*/1.0, /*vg=*/0.2, /*vs=*/0.0);
  EXPECT_DOUBLE_EQ(e.ids, 0.0);
  EXPECT_DOUBLE_EQ(e.gm, 0.0);
  EXPECT_DOUBLE_EQ(e.gds, 0.0);
}

TEST(Mosfet, SaturationCurrentMatchesSquareLaw) {
  const Mosfet m = make_nmos();
  const MosParams p = nmos_params();
  const double vgs = 1.2, vds = 1.5;  // vds > vov = 0.75
  const auto e = m.evaluate(vds, vgs, 0.0);
  const double beta = p.kp * p.w / p.l;
  EXPECT_NEAR(e.ids, 0.5 * beta * (vgs - p.vt0) * (vgs - p.vt0), 1e-12);
  EXPECT_NEAR(e.gm, beta * (vgs - p.vt0), 1e-12);
  EXPECT_NEAR(e.gds, 0.0, 1e-15);  // lambda = 0
}

TEST(Mosfet, TriodeCurrentMatchesSquareLaw) {
  const Mosfet m = make_nmos();
  const MosParams p = nmos_params();
  const double vgs = 1.8, vds = 0.3;  // vds < vov = 1.35
  const auto e = m.evaluate(vds, vgs, 0.0);
  const double beta = p.kp * p.w / p.l;
  EXPECT_NEAR(e.ids, beta * ((vgs - p.vt0) * vds - 0.5 * vds * vds), 1e-12);
}

TEST(Mosfet, DrainSourceSymmetry) {
  // Swapping drain and source negates the current.
  const Mosfet m = make_nmos();
  const auto fwd = m.evaluate(0.3, 1.8, 0.0);
  const auto rev = m.evaluate(0.0, 1.8, 0.3);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15);
}

TEST(Mosfet, PmosMirrorsNmos) {
  // A conducting PMOS (vgs, vds negative) carries negative drain current.
  const Mosfet mp = make_pmos();
  const auto e = mp.evaluate(/*vd=*/0.0, /*vg=*/0.0, /*vs=*/1.8);
  EXPECT_LT(e.ids, 0.0);
  // Cutoff when |vgs| < |vt|.
  const auto off = mp.evaluate(0.0, 1.6, 1.8);
  EXPECT_DOUBLE_EQ(off.ids, 0.0);
}

class MosfetDerivatives
    : public ::testing::TestWithParam<std::tuple<double, double, double, int>> {};

TEST_P(MosfetDerivatives, MatchFiniteDifferences) {
  // Property: analytic gm/gds match numerical differentiation everywhere,
  // including across region boundaries and for both polarities.
  const auto [vd, vg, vs, type] = GetParam();
  MosParams p = type == 0 ? nmos_params() : pmos_params();
  p.lambda = 0.07;  // exercise the CLM terms too
  const Mosfet m("m", 1, 2, 3, p);
  const double eps = 1e-7;
  const auto e = m.evaluate(vd, vg, vs);
  const double gm_fd =
      (m.evaluate(vd, vg + eps, vs).ids - m.evaluate(vd, vg - eps, vs).ids) /
      (2 * eps);
  const double gds_fd =
      (m.evaluate(vd + eps, vg, vs).ids - m.evaluate(vd - eps, vg, vs).ids) /
      (2 * eps);
  EXPECT_NEAR(e.gm, gm_fd, 1e-6 + 1e-4 * std::abs(gm_fd));
  EXPECT_NEAR(e.gds, gds_fd, 1e-6 + 1e-4 * std::abs(gds_fd));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MosfetDerivatives,
    ::testing::Values(
        // NMOS: cutoff, saturation, triode, reverse conduction.
        std::tuple{1.5, 0.2, 0.0, 0},
        std::tuple{1.5, 1.2, 0.0, 0},
        std::tuple{0.2, 1.8, 0.0, 0},
        std::tuple{0.0, 1.8, 0.9, 0},
        std::tuple{0.4, 1.0, 1.3, 0},
        // PMOS: conducting, cutoff, reverse.
        std::tuple{0.0, 0.0, 1.8, 1},
        std::tuple{1.2, 0.2, 1.8, 1},
        std::tuple{1.8, 0.0, 0.6, 1}));

TEST(Inverter, VtcEndpointsAndMidpoint) {
  // Static CMOS inverter driven by a DC sweep: out ~ VDD for low in,
  // out ~ 0 for high in, and the switching threshold lies mid-rail.
  constexpr double kVdd = 1.8;
  auto vtc = [&](double vin) {
    Circuit c;
    const NodeId nvdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add_vsource("Vdd", nvdd, kGround, Dc{kVdd});
    c.add_vsource("Vin", in, kGround, Dc{vin});
    MosParams pn = nmos_params();
    pn.lambda = 0.06;
    MosParams pp = pmos_params();
    pp.lambda = 0.08;
    pp.w = 2e-6;
    c.add_mosfet("mp", out, in, nvdd, pp);
    c.add_mosfet("mn", out, in, kGround, pn);
    return run_op(c).voltage(out);
  };
  EXPECT_NEAR(vtc(0.0), kVdd, 1e-3);
  EXPECT_NEAR(vtc(kVdd), 0.0, 1e-3);
  const double v_mid = vtc(0.9);
  EXPECT_GT(v_mid, 0.2);
  EXPECT_LT(v_mid, 1.6);
  // Monotone decreasing.
  double prev = vtc(0.0);
  for (double v = 0.15; v <= kVdd + 1e-9; v += 0.15) {
    const double cur = vtc(v);
    EXPECT_LE(cur, prev + 1e-6) << "VTC not monotone at vin=" << v;
    prev = cur;
  }
}

}  // namespace
}  // namespace ppd::spice
