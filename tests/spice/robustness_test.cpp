// Robustness and feature coverage of the analysis engine: homotopy
// fallbacks, probe subsets, periodic sources, current-source transients,
// and determinism guarantees the Monte-Carlo experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "ppd/cells/netlist.hpp"
#include "ppd/cells/path.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::spice {
namespace {

TEST(OpRobustness, LatchNodesetSelectsStableRail) {
  // A bistable pair has three mathematical solutions. From a flat start
  // Newton lands on the metastable mid-rail point (as real SPICE does); a
  // .NODESET bias steers it to the chosen stable rail.
  auto solve = [](bool with_nodeset) {
    cells::Process proc;
    cells::Netlist nl(proc);
    auto& c = nl.circuit();
    const NodeId q = c.node("q");
    nl.add_gate(cells::GateKind::kInv, "g0", {q}, "qb");
    nl.add_gate(cells::GateKind::kInv, "g1", {c.find_node("qb")}, "q");
    OpOptions opt;
    if (with_nodeset) opt.nodesets = {{q, proc.vdd}};
    const OpResult op = run_op(c, opt);
    return std::pair{op.voltage(q), op.voltage(c.find_node("qb"))};
  };
  const auto [vq_flat, vqb_flat] = solve(false);
  EXPECT_LT(std::abs(vq_flat - vqb_flat), 0.2) << "expected metastable point";
  const auto [vq_set, vqb_set] = solve(true);
  EXPECT_GT(vq_set, 1.6);   // latched high
  EXPECT_LT(vqb_set, 0.2);  // complement low
}

TEST(OpRobustness, NodesetValidatesNode) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V", a, kGround, Dc{1.0});
  c.add_resistor("R", a, kGround, 1e3);
  OpOptions opt;
  opt.nodesets = {{99, 1.0}};
  EXPECT_THROW(run_op(c, opt), PreconditionError);
  opt.nodesets = {{kGround, 1.0}};
  EXPECT_THROW(run_op(c, opt), PreconditionError);
}

TEST(OpRobustness, SourceSteppingPathStillSolves) {
  // Force the ladder's last rung by disabling gmin stepping.
  cells::Process proc;
  cells::Netlist nl(proc);
  auto& c = nl.circuit();
  nl.add_gate(cells::GateKind::kNor3, "g",
              {c.node("a"), c.node("b"), c.node("x")}, "o");
  c.add_vsource("Va", c.find_node("a"), kGround, Dc{0.0});
  c.add_vsource("Vb", c.find_node("b"), kGround, Dc{0.0});
  c.add_vsource("Vx", c.find_node("x"), kGround, Dc{0.0});
  OpOptions opt;
  opt.allow_gmin_stepping = false;
  const OpResult op = run_op(c, opt);
  EXPECT_GT(op.voltage(c.find_node("o")), 0.9 * proc.vdd);
}

TEST(Transient, ProbeSubsetRestrictsRecording) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("V1", a, kGround, Dc{1.0});
  c.add_resistor("R1", a, b, 1e3);
  c.add_capacitor("C1", b, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-11;
  opt.probe = {b};
  const TransientResult res = run_transient(c, opt);
  EXPECT_NO_THROW(static_cast<void>(res.wave(b)));
  EXPECT_THROW(static_cast<void>(res.wave(a)), PreconditionError);  // not probed
  EXPECT_THROW(static_cast<void>(res.wave(static_cast<NodeId>(0))), PreconditionError);
  TransientOptions bad = opt;
  bad.probe = {99};
  Circuit c2;
  const NodeId a2 = c2.node("a");
  c2.add_vsource("V1", a2, kGround, Dc{1.0});
  c2.add_resistor("R1", a2, kGround, 1e3);
  EXPECT_THROW(run_transient(c2, bad), PreconditionError);
}

TEST(Transient, PeriodicPulseProducesRepeatedCycles) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  Pulse p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 0.1e-9;
  p.rise = 10e-12;
  p.fall = 10e-12;
  p.width = 0.2e-9;
  p.period = 0.5e-9;
  c.add_vsource("V1", in, kGround, p);
  c.add_resistor("R1", in, out, 200.0);
  c.add_capacitor("C1", out, kGround, 0.05e-12);
  TransientOptions opt;
  opt.t_stop = 2.2e-9;
  opt.dt = 2e-12;
  const auto res = run_transient(c, opt);
  const auto xs = wave::crossings(res.wave(out), 0.5);
  // 4 full periods and a fifth pulse: at least 8 crossings.
  EXPECT_GE(xs.size(), 8u);
}

TEST(Transient, CurrentSourceChargesCapacitorLinearly) {
  // Pulsed current source into a capacitor: dV/dt = I/C once the source
  // turns on (a DC source would instead set a huge bleed-limited OP).
  Circuit c;
  const NodeId n = c.node("n");
  Pulse ip;
  ip.v1 = 0.0;
  ip.v2 = 1e-6;  // 1 uA
  ip.delay = 0.1e-9;
  ip.rise = 1e-12;
  ip.fall = 1e-12;
  ip.width = 2e-9;
  c.add_isource("I1", n, kGround, ip);
  c.add_capacitor("C1", n, kGround, 1e-12);
  c.add_resistor("Rb", n, kGround, 1e9);
  TransientOptions opt;
  opt.t_stop = 1.1e-9;
  opt.dt = 1e-12;
  const auto res = run_transient(c, opt);
  // I/C = 1e6 V/s -> 1 mV over the 1 ns the source is on.
  const double v0 = res.wave(n).at(0.1e-9);
  const double v1 = res.wave(n).at(1.1e-9);
  EXPECT_NEAR(v1 - v0, 1e-3, 5e-5);
}

TEST(Transient, DeterministicAcrossRuns) {
  // Bit-identical waveforms for identical circuits: the property that makes
  // the Monte-Carlo coverage experiments reproducible.
  auto run_once = [] {
    cells::Process proc;
    cells::PathOptions po;
    po.kinds.assign(3, cells::GateKind::kInv);
    cells::Path path = cells::build_path(proc, po);
    path.drive_pulse(true, 0.4e-9, 0.3e-9);
    TransientOptions opt;
    opt.t_stop = 2e-9;
    opt.dt = 2e-12;
    opt.adaptive = true;
    return run_transient(path.netlist().circuit(), opt)
        .wave(path.output())
        .values();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Transient, RejectedStepsReportedUnderStress) {
  // An adaptive run over a stiff edge may reject steps but must finish.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  Pulse p;
  p.v1 = 0.0;
  p.v2 = 5.0;
  p.delay = 0.1e-9;
  p.rise = 1e-13;  // brutal edge
  p.fall = 1e-13;
  p.width = 0.5e-9;
  c.add_vsource("V1", in, kGround, p);
  c.add_resistor("R1", in, out, 10.0);
  c.add_capacitor("C1", out, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 5e-12;
  opt.adaptive = true;
  const auto res = run_transient(c, opt);
  EXPECT_GT(res.steps, 0u);
  EXPECT_NEAR(res.wave(out).at(0.4e-9), 5.0, 0.05);
}

TEST(Circuit, NetlistDumpContainsDevices) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("Vsup", a, kGround, Dc{1.0});
  c.add_resistor("Rload", a, kGround, 1e3);
  const std::string dump = c.to_netlist();
  EXPECT_NE(dump.find("Vsup"), std::string::npos);
  EXPECT_NE(dump.find("Rload"), std::string::npos);
  EXPECT_NE(dump.find("a"), std::string::npos);
}

TEST(Circuit, DuplicateDeviceNameThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 2e3), PreconditionError);
}

TEST(Circuit, TypedAccessorsCheckKind) {
  Circuit c;
  const NodeId a = c.node("a");
  const DeviceId r = c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_NO_THROW(static_cast<void>(c.resistor(r)));
  EXPECT_THROW(static_cast<void>(c.vsource(r)), PreconditionError);
  EXPECT_THROW(static_cast<void>(c.mosfet(r)), PreconditionError);
}

}  // namespace
}  // namespace ppd::spice
