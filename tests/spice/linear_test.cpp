// Linear-circuit validation against closed-form solutions: voltage divider,
// RC step response, RC discharge, and dense/sparse solver agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "ppd/spice/analysis.hpp"
#include "ppd/spice/circuit.hpp"
#include "ppd/util/error.hpp"

namespace ppd::spice {
namespace {

TEST(Op, VoltageDivider) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", vin, kGround, Dc{10.0});
  c.add_resistor("R1", vin, mid, 1e3);
  c.add_resistor("R2", mid, kGround, 3e3);
  const OpResult op = run_op(c);
  EXPECT_NEAR(op.voltage(vin), 10.0, 1e-9);
  // The universal gmin leak (1 nS) shifts resistive dividers by a few uV.
  EXPECT_NEAR(op.voltage(mid), 7.5, 1e-4);
}

TEST(Op, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add_isource("I1", n, kGround, Dc{1e-3});
  c.add_resistor("R1", n, kGround, 2e3);
  const OpResult op = run_op(c);
  EXPECT_NEAR(op.voltage(n), 2.0, 1e-4);
}

TEST(Op, SeriesVoltageSources) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("V1", a, kGround, Dc{1.0});
  c.add_vsource("V2", b, a, Dc{2.0});
  c.add_resistor("Rl", b, kGround, 1e3);
  const OpResult op = run_op(c);
  EXPECT_NEAR(op.voltage(b), 3.0, 1e-9);
}

TEST(Op, CapacitorIsOpenInDc) {
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", vin, kGround, Dc{5.0});
  c.add_resistor("R1", vin, mid, 1e3);
  c.add_capacitor("C1", mid, kGround, 1e-12);
  const OpResult op = run_op(c);
  // No DC current: the node floats to the source value through R1.
  EXPECT_NEAR(op.voltage(mid), 5.0, 1e-3);
}

class RcStepResponse
    : public ::testing::TestWithParam<std::pair<Integrator, double>> {};

TEST_P(RcStepResponse, MatchesAnalyticExponential) {
  const auto [integrator, dt] = GetParam();
  // 1k / 1pF low-pass driven by a fast step: v(t) = V (1 - exp(-t/RC)).
  constexpr double kR = 1e3;
  constexpr double kC = 1e-12;
  constexpr double kV = 1.0;
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId out = c.node("out");
  Pulse p;
  p.v1 = 0.0;
  p.v2 = kV;
  p.delay = 0.0;
  p.rise = 1e-15;  // effectively instantaneous
  p.width = 1.0;
  c.add_vsource("V1", vin, kGround, p);
  c.add_resistor("R1", vin, out, kR);
  c.add_capacitor("C1", out, kGround, kC);

  TransientOptions opt;
  opt.t_stop = 5e-9;  // 5 tau
  opt.dt = dt;
  opt.integrator = integrator;
  const TransientResult res = run_transient(c, opt);
  const auto& w = res.wave(out);

  const double tol = integrator == Integrator::kTrapezoidal ? 2e-3 : 2e-2;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = kV * (1.0 - std::exp(-t / (kR * kC)));
    EXPECT_NEAR(w.at(t), expected, tol * kV) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, RcStepResponse,
    ::testing::Values(std::pair{Integrator::kTrapezoidal, 1e-12},
                      std::pair{Integrator::kTrapezoidal, 5e-12},
                      std::pair{Integrator::kBackwardEuler, 1e-12},
                      std::pair{Integrator::kBackwardEuler, 5e-12}));

TEST(Transient, RcDischargeFromOp) {
  // Node pre-charged via the OP (source high at t<=0), then source falls.
  constexpr double kR = 2e3;
  constexpr double kC = 2e-12;
  Circuit c;
  const NodeId vin = c.node("vin");
  const NodeId out = c.node("out");
  Pulse p;
  p.v1 = 1.0;
  p.v2 = 0.0;
  p.delay = 0.0;
  p.rise = 1e-15;
  p.width = 1.0;
  c.add_vsource("V1", vin, kGround, p);
  c.add_resistor("R1", vin, out, kR);
  c.add_capacitor("C1", out, kGround, kC);

  TransientOptions opt;
  opt.t_stop = 12e-9;
  opt.dt = 4e-12;
  const TransientResult res = run_transient(c, opt);
  const auto& w = res.wave("out");
  EXPECT_NEAR(w.at(0.0), 1.0, 1e-3);  // initial condition from OP
  for (double t : {2e-9, 4e-9, 8e-9}) {
    const double expected = std::exp(-t / (kR * kC));
    EXPECT_NEAR(w.at(t), expected, 5e-3) << "t=" << t;
  }
}

TEST(Transient, SparseSolverMatchesDense) {
  // Same RC ladder solved with both backends.
  auto build = [](Circuit& c) {
    const NodeId vin = c.node("vin");
    Pulse p;
    p.v1 = 0.0;
    p.v2 = 1.0;
    p.delay = 1e-10;
    p.rise = 1e-11;
    p.width = 1.0;
    c.add_vsource("V1", vin, kGround, p);
    NodeId prev = vin;
    for (int i = 0; i < 12; ++i) {
      const NodeId n = c.node("n" + std::to_string(i));
      c.add_resistor("R" + std::to_string(i), prev, n, 500.0);
      c.add_capacitor("C" + std::to_string(i), n, kGround, 0.5e-12);
      prev = n;
    }
  };
  Circuit c1, c2;
  build(c1);
  build(c2);
  TransientOptions dense_opt;
  dense_opt.t_stop = 3e-9;
  dense_opt.dt = 2e-12;
  TransientOptions sparse_opt = dense_opt;
  sparse_opt.sparse_threshold = 0;  // force sparse
  const TransientResult rd = run_transient(c1, dense_opt);
  const TransientResult rs = run_transient(c2, sparse_opt);
  const auto& wd = rd.wave("n11");
  const auto& ws = rs.wave("n11");
  for (double t = 0.0; t < 3e-9; t += 0.1e-9)
    EXPECT_NEAR(wd.at(t), ws.at(t), 1e-9) << "t=" << t;
}

TEST(Transient, RejectsBadOptions) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add_vsource("V1", n, kGround, Dc{1.0});
  c.add_resistor("R1", n, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = -1.0;
  EXPECT_THROW(run_transient(c, opt), PreconditionError);
  opt.t_stop = 1e-9;
  opt.dt = 0.0;
  EXPECT_THROW(run_transient(c, opt), PreconditionError);
}

TEST(TransientResult, UnknownNodeThrows) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add_vsource("V1", n, kGround, Dc{1.0});
  c.add_resistor("R1", n, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 1e-10;
  opt.dt = 1e-11;
  const TransientResult res = run_transient(c, opt);
  EXPECT_THROW(static_cast<void>(res.wave("nope")), PreconditionError);
  EXPECT_NO_THROW(static_cast<void>(res.wave("n")));
}

}  // namespace
}  // namespace ppd::spice
