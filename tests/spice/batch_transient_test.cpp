// BatchTransient contract tests: at a fixed step the batched kernel's
// per-sample waveforms are bit-identical to scalar run_transient() on the
// same circuits, and misuse (empty batch, mixed topologies, double run) is
// rejected up front.
#include "ppd/spice/batch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "ppd/cells/path.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::spice {
namespace {

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Same topology for every sample; only the output load value varies (the
// MC-sweep shape: one structure, per-sample parameter deltas).
cells::Path make_sample(double load_f) {
  cells::Process proc;
  cells::PathOptions po;
  po.kinds.assign(3, cells::GateKind::kInv);
  cells::Path path = cells::build_path(proc, po);
  path.netlist().add_load("Cl", path.output(), load_f);
  path.drive_pulse(/*positive=*/true, /*width=*/0.5e-9, /*t_launch=*/0.3e-9);
  return path;
}

TransientOptions fixed_step_options() {
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  opt.adaptive = false;
  return opt;
}

TEST(BatchTransient, FixedStepWaveformsBitIdenticalToScalar) {
  const std::vector<double> loads{5e-15, 10e-15, 20e-15, 40e-15};
  const TransientOptions opt = fixed_step_options();

  // Scalar references on one set of instances...
  std::vector<TransientResult> scalar;
  for (double load : loads) {
    cells::Path path = make_sample(load);
    scalar.push_back(run_transient(path.netlist().circuit(), opt));
  }

  // ...the batch on a second, identically built set.
  std::vector<cells::Path> paths;
  paths.reserve(loads.size());
  for (double load : loads) paths.push_back(make_sample(load));
  BatchOptions bopt;
  bopt.base = opt;
  BatchTransient batch(bopt);
  for (auto& p : paths) batch.add(p.netlist().circuit());
  const std::vector<BatchSampleResult> results = batch.run();

  ASSERT_EQ(results.size(), loads.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    ASSERT_FALSE(results[s].failed) << results[s].error;
    const TransientResult& a = scalar[s];
    const TransientResult& b = results[s].result;
    EXPECT_EQ(a.steps, b.steps);
    ASSERT_EQ(a.node_waves.size(), b.node_waves.size());
    for (std::size_t n = 1; n < a.node_waves.size(); ++n) {
      if (!a.probed[n]) continue;
      const wave::Waveform& wa = a.node_waves[n];
      const wave::Waveform& wb = b.node_waves[n];
      ASSERT_EQ(wa.size(), wb.size()) << "node " << a.node_names[n];
      for (std::size_t i = 0; i < wa.size(); ++i) {
        EXPECT_TRUE(bits_equal(wa.time(i), wb.time(i)))
            << "node " << a.node_names[n] << " sample " << i;
        EXPECT_TRUE(bits_equal(wa.value(i), wb.value(i)))
            << "node " << a.node_names[n] << " sample " << i;
      }
    }
  }
}

TEST(BatchTransient, RejectsEmptyBatch) {
  BatchOptions bopt;
  bopt.base = fixed_step_options();
  BatchTransient batch(bopt);
  EXPECT_THROW(static_cast<void>(batch.run()), PreconditionError);
}

TEST(BatchTransient, RejectsMixedTopologies) {
  cells::Path a = make_sample(10e-15);
  cells::Process proc;
  cells::PathOptions po;
  po.kinds.assign(5, cells::GateKind::kInv);  // different node/device count
  cells::Path b = cells::build_path(proc, po);
  b.drive_pulse(true, 0.5e-9, 0.3e-9);

  BatchOptions bopt;
  bopt.base = fixed_step_options();
  BatchTransient batch(bopt);
  batch.add(a.netlist().circuit());
  batch.add(b.netlist().circuit());
  EXPECT_THROW(static_cast<void>(batch.run()), PreconditionError);
}

TEST(BatchTransient, RejectsSecondRun) {
  cells::Path p = make_sample(10e-15);
  BatchOptions bopt;
  bopt.base = fixed_step_options();
  BatchTransient batch(bopt);
  batch.add(p.netlist().circuit());
  const auto first = batch.run();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_THROW(static_cast<void>(batch.run()), PreconditionError);
}

}  // namespace
}  // namespace ppd::spice
