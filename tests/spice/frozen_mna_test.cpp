// Structure-frozen MnaSystem contract: replayed assembles + in-place
// refactorization produce bit-identical solutions to a from-scratch
// assemble/factor/solve, across many random value sets, for both solver
// backends; and the bitwise change tracking takes the cached / rhs-only /
// refactor shortcuts exactly when it may.
#include "ppd/spice/mna.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "ppd/mc/rng.hpp"

namespace ppd::spice {
namespace {

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

constexpr std::size_t kN = 12;

// One fixed stamping structure (a ladder with duplicate diagonal adds and a
// long-range coupling, MNA-shaped), valued from the rng streams each call.
// Frozen replays require the identical add sequence every assemble; only
// the values may differ. Matrix and rhs values draw from separate streams
// so tests can vary one side while replaying the other bitwise.
void assemble(MnaSystem& mna, mc::Rng& mat_rng, mc::Rng& rhs_rng) {
  for (std::size_t i = 0; i < kN; ++i) {
    // Duplicate adds into the same cell exercise the recorded
    // accumulation-order scatter (the sum must match += order bitwise).
    mna.add(static_cast<MnaIndex>(i), static_cast<MnaIndex>(i),
            3.0 + mat_rng.uniform(0.0, 1.0));
    mna.add(static_cast<MnaIndex>(i), static_cast<MnaIndex>(i),
            1.0 + mat_rng.uniform(0.0, 1.0));
    if (i > 0) {
      mna.add(static_cast<MnaIndex>(i), static_cast<MnaIndex>(i - 1),
              mat_rng.uniform(-1.0, 1.0));
      mna.add(static_cast<MnaIndex>(i - 1), static_cast<MnaIndex>(i),
              mat_rng.uniform(-1.0, 1.0));
    }
    mna.add(static_cast<MnaIndex>(i), static_cast<MnaIndex>((i * 5) % kN),
            mat_rng.uniform(-0.2, 0.2));
    mna.add_rhs(static_cast<MnaIndex>(i), rhs_rng.uniform(-1.0, 1.0));
    mna.add_rhs(static_cast<MnaIndex>(i), rhs_rng.uniform(-1.0, 1.0));
  }
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bits_equal(a[i], b[i])) << "component " << i;
}

void run_random_assembles(bool use_sparse) {
  MnaSystem frozen(kN, use_sparse);
  frozen.freeze_structure();
  for (int round = 0; round < 100; ++round) {
    // Same value streams for both systems: re-derive the round's rngs.
    const auto seed = static_cast<std::uint64_t>(round) * 977 + 11;
    mc::Rng mat(seed), rhs(seed + 1);
    mc::Rng mat2 = mat, rhs2 = rhs;

    frozen.reset();
    assemble(frozen, mat, rhs);
    std::vector<double> x;
    frozen.solve_into(x);

    MnaSystem fresh(kN, use_sparse);
    assemble(fresh, mat2, rhs2);
    const std::vector<double> x_ref = fresh.solve();
    expect_bitwise_equal(x, x_ref);
  }
}

TEST(FrozenMna, SparseRefactorBitIdenticalAcross100RandomAssembles) {
  run_random_assembles(/*use_sparse=*/true);
}

TEST(FrozenMna, DenseRefactorBitIdenticalAcross100RandomAssembles) {
  run_random_assembles(/*use_sparse=*/false);
}

void run_solve_stats(bool use_sparse) {
  MnaSystem mna(kN, use_sparse);
  mna.freeze_structure();
  mc::Rng mat(7), rhs(8);
  mc::Rng mat_replay = mat, rhs_replay = rhs;

  mna.reset();
  assemble(mna, mat, rhs);
  std::vector<double> x;
  mna.solve_into(x);  // the learning solve factorizes once
  EXPECT_EQ(mna.solve_stats().refactored, 1u);

  // Bitwise-identical assemble: the previous solution is returned outright.
  {
    mc::Rng m = mat_replay, r = rhs_replay;
    mna.reset();
    assemble(mna, m, r);
    std::vector<double> x_cached;
    mna.solve_into(x_cached);
    EXPECT_EQ(mna.solve_stats().cached, 1u);
    EXPECT_EQ(mna.solve_stats().refactored, 1u);
    expect_bitwise_equal(x_cached, x);
  }

  // Same matrix values, different rhs values: solve against the live
  // factorization without refactorizing.
  {
    mc::Rng m = mat_replay, r(99);
    mna.reset();
    assemble(mna, m, r);
    std::vector<double> x_rhs;
    mna.solve_into(x_rhs);
    EXPECT_EQ(mna.solve_stats().rhs_only, 1u);
    EXPECT_EQ(mna.solve_stats().refactored, 1u);
  }

  // A changed matrix value forces the numeric refactorization, and the
  // result still matches a from-scratch solve bitwise.
  {
    mc::Rng m(991), r(992);
    mc::Rng m2 = m, r2 = r;
    mna.reset();
    assemble(mna, m, r);
    std::vector<double> x_new;
    mna.solve_into(x_new);
    EXPECT_EQ(mna.solve_stats().refactored, 2u);

    MnaSystem fresh(kN, use_sparse);
    assemble(fresh, m2, r2);
    expect_bitwise_equal(x_new, fresh.solve());
  }
}

TEST(FrozenMna, SparseSolveStatsTakeTheBitwiseShortcuts) {
  run_solve_stats(/*use_sparse=*/true);
}

TEST(FrozenMna, DenseSolveStatsTakeTheBitwiseShortcuts) {
  run_solve_stats(/*use_sparse=*/false);
}

}  // namespace
}  // namespace ppd::spice
