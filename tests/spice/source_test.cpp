#include "ppd/spice/source.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::spice {
namespace {

TEST(Source, DcIsConstant) {
  const SourceSpec s = Dc{1.8};
  EXPECT_DOUBLE_EQ(source_value(s, 0.0), 1.8);
  EXPECT_DOUBLE_EQ(source_value(s, 1e-9), 1.8);
}

TEST(Source, PulseShape) {
  Pulse p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 1.0;
  p.rise = 1.0;
  p.fall = 2.0;
  p.width = 3.0;
  const SourceSpec s = p;
  EXPECT_DOUBLE_EQ(source_value(s, 0.0), 0.0);    // before delay
  EXPECT_DOUBLE_EQ(source_value(s, 1.0), 0.0);    // at delay
  EXPECT_DOUBLE_EQ(source_value(s, 1.5), 0.5);    // mid-rise
  EXPECT_DOUBLE_EQ(source_value(s, 2.0), 1.0);    // top begins
  EXPECT_DOUBLE_EQ(source_value(s, 4.0), 1.0);    // still flat
  EXPECT_DOUBLE_EQ(source_value(s, 6.0), 0.5);    // mid-fall
  EXPECT_DOUBLE_EQ(source_value(s, 10.0), 0.0);   // back at v1
}

TEST(Source, PulseSingleShotStaysAtV1) {
  Pulse p;
  p.v1 = 0.2;
  p.v2 = 1.0;
  p.delay = 0.0;
  p.rise = 0.1;
  p.fall = 0.1;
  p.width = 0.5;
  EXPECT_DOUBLE_EQ(source_value(p, 100.0), 0.2);
}

TEST(Source, PulsePeriodicRepeats) {
  Pulse p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 0.0;
  p.rise = 0.1;
  p.fall = 0.1;
  p.width = 0.4;
  p.period = 1.0;
  EXPECT_DOUBLE_EQ(source_value(p, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(source_value(p, 1.3), 1.0);  // next period
  EXPECT_DOUBLE_EQ(source_value(p, 2.8), 0.0);
}

TEST(Source, NegativePulseForLKind) {
  // An l-pulse (high-low-high) is a pulse with v1 > v2.
  Pulse p;
  p.v1 = 1.8;
  p.v2 = 0.0;
  p.delay = 1.0;
  p.rise = 0.2;
  p.fall = 0.2;
  p.width = 1.0;
  EXPECT_DOUBLE_EQ(source_value(p, 0.0), 1.8);
  EXPECT_DOUBLE_EQ(source_value(p, 1.5), 0.0);
  EXPECT_DOUBLE_EQ(source_value(p, 5.0), 1.8);
}

TEST(Source, PwlInterpolatesAndClamps) {
  Pwl p;
  p.points = {{1.0, 0.0}, {2.0, 1.0}, {3.0, -1.0}};
  EXPECT_DOUBLE_EQ(source_value(p, 0.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(source_value(p, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(source_value(p, 2.5), 0.0);
  EXPECT_DOUBLE_EQ(source_value(p, 9.0), -1.0);  // clamp right
}

TEST(Source, EmptyPwlThrows) {
  const Pwl p;
  EXPECT_THROW(static_cast<void>(source_value(p, 0.0)), PreconditionError);
}

}  // namespace
}  // namespace ppd::spice
