// SPICE-deck export: structure, model deduplication, source specs, and a
// full transistor-level circuit round through the formatter.
#include "ppd/spice/export.hpp"

#include <gtest/gtest.h>

#include "ppd/cells/path.hpp"
#include "ppd/faults/fault.hpp"

namespace ppd::spice {
namespace {

std::size_t count_lines_starting(const std::string& s, char prefix) {
  std::size_t n = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] == prefix) ++n;
  return n;
}

TEST(SpiceExport, BasicDeckStructure) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("V1", a, kGround, Dc{1.8});
  c.add_resistor("R1", a, b, 1e3);
  c.add_capacitor("C1", b, kGround, 1e-12);
  Pulse p;
  p.v2 = 1.0;
  p.width = 1e-9;
  c.add_isource("I1", b, kGround, p);

  SpiceExportOptions o;
  o.tran_step = 1e-12;
  o.tran_stop = 4e-9;
  const std::string deck = spice_to_string(c, o);

  EXPECT_EQ(deck.substr(0, 1), "*");
  EXPECT_NE(deck.find("VV1 a 0 DC 1.8"), std::string::npos);
  EXPECT_NE(deck.find("RR1 a b 1000"), std::string::npos);
  EXPECT_NE(deck.find("CC1 b 0 1e-12"), std::string::npos);
  EXPECT_NE(deck.find("II1 0 b PULSE("), std::string::npos);
  EXPECT_NE(deck.find(".tran 1e-12 4e-09"), std::string::npos);
  EXPECT_NE(deck.rfind(".end\n"), std::string::npos);
}

TEST(SpiceExport, ModelsDeduplicated) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("Vdd", vdd, kGround, Dc{1.8});
  MosParams pn;
  MosParams pp;
  pp.type = MosType::kPmos;
  pp.vt0 = -0.45;
  c.add_mosfet("m1", out, in, kGround, pn);
  c.add_mosfet("m2", out, in, kGround, pn);   // same params: same model
  c.add_mosfet("m3", out, in, vdd, pp);
  const std::string deck = spice_to_string(c);
  EXPECT_EQ(count_lines_starting(deck, '.') - 1 /* .end */, 2u)
      << "expected exactly 2 .model cards";
  EXPECT_NE(deck.find("level=1"), std::string::npos);
  EXPECT_NE(deck.find("NMOS"), std::string::npos);
  EXPECT_NE(deck.find("PMOS"), std::string::npos);
}

TEST(SpiceExport, FaultyPathExportsCleanly) {
  cells::Process proc;
  cells::PathOptions po;
  po.kinds.assign(3, cells::GateKind::kInv);
  cells::Path path = cells::build_path(proc, po);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  (void)faults::inject_on_path(path, spec, 8e3);
  path.drive_pulse(true, 0.35e-9, 0.3e-9);

  const std::string deck = spice_to_string(path.netlist().circuit());
  // Every MOSFET in the circuit appears as an M card.
  std::size_t mosfets = 0;
  for (const auto& dev : path.netlist().circuit().devices())
    if (dynamic_cast<const Mosfet*>(dev.get()) != nullptr) ++mosfets;
  EXPECT_EQ(count_lines_starting(deck, 'M'), mosfets);
  // Sanitized names: no dots left on element cards.
  std::istringstream is(deck);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '*' || line[0] == '.') continue;
    EXPECT_EQ(line.substr(0, line.find(' ')).find('.'), std::string::npos)
        << line;
  }
  // The injected defect resistor survives with its value.
  EXPECT_NE(deck.find("8000"), std::string::npos);
}

TEST(SpiceExport, PwlSource) {
  Circuit c;
  const NodeId a = c.node("a");
  Pwl pw;
  pw.points = {{0.0, 0.0}, {1e-9, 1.8}};
  c.add_vsource("Vp", a, kGround, pw);
  c.add_resistor("R", a, kGround, 1.0);
  const std::string deck = spice_to_string(c);
  EXPECT_NE(deck.find("PWL(0 0 1e-09 1.8)"), std::string::npos);
}

}  // namespace
}  // namespace ppd::spice
