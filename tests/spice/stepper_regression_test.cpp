// Transient-stepper bugfix regressions:
//  - a sub-dt_min final sliver is snapped to t_stop instead of being
//    integrated (or spinning the loop) — the record still ends at exactly
//    t_stop;
//  - the end-of-sweep guard is relative, so sweeps end at exactly t_stop at
//    any time scale, fixed or adaptive;
//  - a failed operating point reports the UNCLAMPED Newton update, not a
//    value saturated at dv_max.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "ppd/cells/netlist.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::spice {
namespace {

// One driven inverter with an output load — the smallest circuit that
// exercises OP + nonlinear transient stepping.
struct InverterFixture {
  cells::Process proc;
  cells::Netlist nl{proc};
  NodeId out = kGround;

  InverterFixture() {
    Circuit& c = nl.circuit();
    const NodeId in = c.node("in");
    Pulse p;
    p.v1 = 0.0;
    p.v2 = proc.vdd;
    p.delay = 0.2e-9;
    p.rise = 50e-12;
    p.fall = 50e-12;
    p.width = 1.0;
    c.add_vsource("Vin", in, kGround, p);
    nl.add_gate(cells::GateKind::kInv, "g0", {in}, "out");
    out = c.find_node("out");
    nl.add_load("Cl", out, 10e-15);
  }
};

void expect_ends_exactly_at(const wave::Waveform& w, double t_stop) {
  ASSERT_FALSE(w.empty());
  // Bitwise ==, not NEAR: the sweep must end at exactly the requested stop
  // time (accumulated-sum drift and absolute-epsilon guards both broke this).
  EXPECT_EQ(w.time(w.size() - 1), t_stop);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_LE(w.time(i), t_stop);
  for (std::size_t i = 1; i < w.size(); ++i)
    EXPECT_GT(w.time(i), w.time(i - 1));
}

TEST(StepperRegression, SubDtMinSliverSnapsToTStop) {
  // t_stop sits a sub-dt_min sliver past a whole number of steps: the final
  // remainder must be absorbed by snapping, not integrated as a ~1e-16 s
  // step (which used to either violate dt_min or stall Newton).
  InverterFixture f;
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.adaptive = false;
  opt.t_stop = 1000 * opt.dt + 1e-16;
  const TransientResult res = run_transient(f.nl.circuit(), opt);
  expect_ends_exactly_at(res.wave(f.out), opt.t_stop);
}

TEST(StepperRegression, FixedStepEndsExactlyAtTStop) {
  // t_stop deliberately NOT a multiple of dt: the last step must shorten to
  // land on t_stop exactly.
  InverterFixture f;
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.adaptive = false;
  opt.t_stop = 1.7e-9 + 0.7e-12;
  const TransientResult res = run_transient(f.nl.circuit(), opt);
  expect_ends_exactly_at(res.wave(f.out), opt.t_stop);
}

TEST(StepperRegression, AdaptiveSweepEndsExactlyAtTStop) {
  InverterFixture f;
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.adaptive = true;
  opt.t_stop = 2e-9;
  const TransientResult res = run_transient(f.nl.circuit(), opt);
  expect_ends_exactly_at(res.wave(f.out), opt.t_stop);
}

TEST(StepperRegression, AdaptiveLteControlEndsExactlyAtTStop) {
  InverterFixture f;
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.adaptive = true;
  opt.step_control = StepControl::kLte;
  opt.t_stop = 2e-9;
  const TransientResult res = run_transient(f.nl.circuit(), opt);
  expect_ends_exactly_at(res.wave(f.out), opt.t_stop);
}

TEST(StepperRegression, ShortTimeScaleSweepEndsExactlyAtTStop) {
  // The old end guard compared against an ABSOLUTE epsilon; at picosecond
  // stop times it swallowed real steps. Relative guard: exact landing.
  InverterFixture f;
  TransientOptions opt;
  opt.dt = 1e-15;
  opt.adaptive = false;
  opt.t_stop = 3e-13;
  const TransientResult res = run_transient(f.nl.circuit(), opt);
  expect_ends_exactly_at(res.wave(f.out), opt.t_stop);
}

TEST(StepperRegression, OpFailureReportsUnclampedResidual) {
  // One Newton iteration from a flat start moves the supply rail by vdd
  // (1.8 V) — larger than the dv_max clamp (1.0 V). The failure message
  // must report that true update; the clamped bug saturated it at dv_max.
  InverterFixture f;
  // A unique load value keeps this circuit's content hash distinct from
  // every other test's, so the OP warm-start cache cannot hand the solver a
  // converged iterate and defeat the one-iteration failure setup.
  f.nl.add_load("Cl2", f.out, 3.3e-15);
  OpOptions opt;
  opt.newton.max_iterations = 1;
  opt.allow_gmin_stepping = false;
  opt.allow_source_stepping = false;
  try {
    static_cast<void>(run_op(f.nl.circuit(), opt));
    FAIL() << "operating point unexpectedly converged in one iteration";
  } catch (const NumericalError& e) {
    const std::string msg = e.what();
    const char* tag = "final update ";
    const auto pos = msg.find(tag);
    ASSERT_NE(pos, std::string::npos) << msg;
    const double residual = std::atof(msg.c_str() + pos + std::strlen(tag));
    EXPECT_GT(residual, opt.newton.dv_max) << msg;
  }
}

}  // namespace
}  // namespace ppd::spice
