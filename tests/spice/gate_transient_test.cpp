// Transient validation on transistor-level gates built via the cell
// library: inverter switching, delay positivity, pulse propagation through a
// chain, and a ring oscillator.
#include <gtest/gtest.h>

#include "ppd/cells/netlist.hpp"
#include "ppd/cells/path.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::spice {
namespace {

using cells::GateKind;
using cells::Netlist;
using cells::Process;

TEST(GateTransient, InverterSwitches) {
  Process proc;
  Netlist nl(proc);
  Circuit& c = nl.circuit();
  const NodeId in = c.node("in");
  Pulse p;
  p.v1 = 0.0;
  p.v2 = proc.vdd;
  p.delay = 0.2e-9;
  p.rise = 50e-12;
  p.fall = 50e-12;
  p.width = 1.0;
  c.add_vsource("Vin", in, kGround, p);
  nl.add_gate(GateKind::kInv, "g0", {in}, "out");
  nl.add_load("Cl", c.find_node("out"), 10e-15);

  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  const TransientResult res = run_transient(c, opt);
  const auto& w = res.wave("out");
  EXPECT_NEAR(w.at(0.0), proc.vdd, 0.02);  // input low -> output high
  EXPECT_NEAR(w.at(2e-9), 0.0, 0.02);      // input high -> output low
  const auto d = wave::propagation_delay(res.wave("in"), w, proc.vdd / 2,
                                         wave::Edge::kRise, wave::Edge::kFall);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 0.5e-9);
}

TEST(GateTransient, Nand2TruthTableDynamics) {
  // Side input low forces the output high regardless of the path input.
  Process proc;
  Netlist nl(proc);
  Circuit& c = nl.circuit();
  const NodeId in = c.node("in");
  Pulse p;
  p.v1 = 0.0;
  p.v2 = proc.vdd;
  p.delay = 0.2e-9;
  p.rise = 50e-12;
  p.width = 1.0;
  c.add_vsource("Vin", in, kGround, p);
  nl.add_gate(GateKind::kNand2, "g0", {in, nl.tie_low()}, "out");
  nl.add_load("Cl", c.find_node("out"), 10e-15);
  TransientOptions opt;
  opt.t_stop = 1.5e-9;
  opt.dt = 2e-12;
  const TransientResult res = run_transient(c, opt);
  EXPECT_GT(res.wave("out").min_value(), proc.vdd - 0.1);
}

TEST(GateTransient, PulsePropagatesThroughFaultFreeChain) {
  // A comfortably wide pulse traverses a 5-inverter chain with full swing.
  Process proc;
  cells::PathOptions po;
  po.kinds.assign(5, GateKind::kInv);
  cells::Path path = cells::build_path(proc, po);
  path.drive_pulse(/*positive=*/true, /*width=*/0.6e-9, /*t_launch=*/0.3e-9);

  TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const TransientResult res = run_transient(path.netlist().circuit(), opt);
  const auto& out = res.wave(path.output());
  // 5 inversions: a positive input pulse emerges as a negative pulse.
  const auto width =
      wave::pulse_width(out, proc.vdd / 2, /*positive_pulse=*/false);
  ASSERT_TRUE(width.has_value());
  EXPECT_GT(*width, 0.3e-9);
  EXPECT_GT(wave::peak_excursion(out), 0.9 * proc.vdd);
}

TEST(GateTransient, NarrowPulseIsDampenedEvenFaultFree) {
  // A pulse much narrower than the chain's inertia dies out: region 1 of
  // the paper's Fig. 10 exists even without a fault.
  Process proc;
  cells::PathOptions po;
  po.kinds.assign(7, GateKind::kInv);
  cells::Path path = cells::build_path(proc, po);
  path.drive_pulse(true, 0.08e-9, 0.3e-9);

  TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const TransientResult res = run_transient(path.netlist().circuit(), opt);
  const auto& out = res.wave(path.output());
  EXPECT_FALSE(wave::pulse_width(out, proc.vdd / 2, false).has_value());
  EXPECT_LT(wave::peak_excursion(out), 0.5 * proc.vdd);
}

TEST(GateTransient, RingOscillatorOscillates) {
  Process proc;
  Netlist nl(proc);
  Circuit& c = nl.circuit();
  const int kStages = 5;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kStages; ++i) nodes.push_back(c.node("r" + std::to_string(i)));
  for (int i = 0; i < kStages; ++i) {
    nl.add_gate(GateKind::kInv, "g" + std::to_string(i), {nodes[static_cast<std::size_t>(i)]},
                "r" + std::to_string((i + 1) % kStages));
    nl.add_load("Cl" + std::to_string(i), nodes[static_cast<std::size_t>(i)], 5e-15);
  }
  // Kick the loop out of its metastable OP with a brief current pulse.
  Pulse kick;
  kick.v1 = 0.0;
  kick.v2 = 2e-4;
  kick.delay = 10e-12;
  kick.rise = 5e-12;
  kick.fall = 5e-12;
  kick.width = 50e-12;
  c.add_isource("Ikick", nodes[0], kGround, kick);

  TransientOptions opt;
  opt.t_stop = 6e-9;
  opt.dt = 2e-12;
  const TransientResult res = run_transient(c, opt);
  const auto& w = res.wave("r0");
  const auto xs = wave::crossings(w, proc.vdd / 2);
  EXPECT_GE(xs.size(), 4u) << "ring oscillator failed to oscillate";
}

TEST(GateTransient, AdaptiveSteppingAgreesWithFixed) {
  Process proc;
  cells::PathOptions po;
  po.kinds.assign(3, GateKind::kInv);

  auto run_with = [&](bool adaptive) {
    cells::Path path = cells::build_path(proc, po);
    path.drive_pulse(true, 0.5e-9, 0.3e-9);
    TransientOptions opt;
    opt.t_stop = 2.5e-9;
    opt.dt = 2e-12;
    opt.adaptive = adaptive;
    opt.dt_max = 10e-12;
    const TransientResult res = run_transient(path.netlist().circuit(), opt);
    const auto w = res.wave(path.output());
    return wave::pulse_width(w, proc.vdd / 2, false);
  };
  const auto fixed = run_with(false);
  const auto adaptive = run_with(true);
  ASSERT_TRUE(fixed.has_value());
  ASSERT_TRUE(adaptive.has_value());
  EXPECT_NEAR(*fixed, *adaptive, 0.05 * *fixed);
}

}  // namespace
}  // namespace ppd::spice
