// Batched coverage contract: with `batch` set, the MC population advances
// through the factor-once/solve-many kernel and the resulting coverage
// POPULATION — every cell of every curve — is identical to the scalar
// path's, at a fixed step and at any thread count. The solve cache is
// cleared between passes so the comparison exercises the kernel, not
// measurement memoization.
#include "ppd/core/coverage.hpp"

#include <gtest/gtest.h>

#include "ppd/cache/solve_cache.hpp"

namespace ppd::core {
namespace {

PathFactory rop_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

CoverageOptions fixed_step_coverage() {
  CoverageOptions o;
  o.samples = 4;
  o.seed = 21;
  o.variation = mc::VariationModel::uniform_sigma(0.05);
  o.resistances = {1e3, 8e3, 40e3, 200e3};
  o.sim.adaptive = false;  // the bit-identity regime
  return o;
}

CoverageResult run_delay(const CoverageOptions& o) {
  const PathFactory f = rop_factory();
  DelayTestCalibration cal;
  cal.t_nominal = 0.6e-9;
  cache::SolveCache::global().clear();
  return run_delay_coverage(f, cal, o);
}

CoverageResult run_pulse(const CoverageOptions& o) {
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.3e-9;
  cal.w_th = 0.1e-9;
  cache::SolveCache::global().clear();
  return run_pulse_coverage(f, cal, o);
}

void expect_same_population(const CoverageResult& a, const CoverageResult& b) {
  EXPECT_EQ(a.coverage, b.coverage);  // exact, not approximate
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.resistances, b.resistances);
  EXPECT_EQ(a.n_quarantined(), b.n_quarantined());
}

TEST(CoverageBatch, DelayPopulationIdenticalToScalarAtFixedStep) {
  CoverageOptions o = fixed_step_coverage();
  const CoverageResult scalar = run_delay(o);
  o.batch = true;
  const CoverageResult batched = run_delay(o);
  expect_same_population(scalar, batched);
}

TEST(CoverageBatch, PulsePopulationIdenticalToScalarAtFixedStep) {
  CoverageOptions o = fixed_step_coverage();
  const CoverageResult scalar = run_pulse(o);
  o.batch = true;
  const CoverageResult batched = run_pulse(o);
  expect_same_population(scalar, batched);
}

TEST(CoverageBatch, ThreadedBatchMatchesSerialBatch) {
  // Resistance columns fan out over the exec pool while each column's
  // samples advance through one batch — the workload the sanitizer stage
  // runs under TSan. The population must not depend on the thread count.
  CoverageOptions o = fixed_step_coverage();
  o.batch = true;
  o.threads = 1;
  const CoverageResult serial = run_delay(o);
  o.threads = 2;
  const CoverageResult threaded = run_delay(o);
  expect_same_population(serial, threaded);
}

}  // namespace
}  // namespace ppd::core
