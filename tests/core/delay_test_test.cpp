#include "ppd/core/delay_test.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory small_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  return f;
}

DelayCalibrationOptions quick_options() {
  DelayCalibrationOptions o;
  o.samples = 5;
  o.seed = 11;
  return o;
}

TEST(DelayDetects, PredicateLogic) {
  FlipFlopTiming ff;
  ff.tau_cq = 50e-12;
  ff.tau_dc = 50e-12;
  // Total path requirement: d + 100ps must fit in T.
  EXPECT_FALSE(delay_detects(0.5e-9, /*t_applied=*/0.7e-9, ff));  // 600 < 700
  EXPECT_TRUE(delay_detects(0.65e-9, 0.7e-9, ff));                // 750 > 700
  // Missing transition is always detected.
  EXPECT_TRUE(delay_detects(std::nullopt, 10.0, ff));
}

TEST(CalibrateDelayTest, NominalPeriodCoversWorstCaseWithGuard) {
  const PathFactory f = small_factory();
  const DelayCalibrationOptions opt = quick_options();
  const DelayTestCalibration cal = calibrate_delay_test(f, opt);
  EXPECT_GT(cal.worst_fault_free_delay, 0.0);
  // T0 * (1 - guard) == worst + overhead exactly, by construction.
  EXPECT_NEAR(cal.t_nominal * (1.0 - opt.clock_guard),
              cal.worst_fault_free_delay + opt.flip_flops.overhead(),
              1e-15);
}

TEST(CalibrateDelayTest, NoFalsePositivesByConstruction) {
  // Every calibration instance passes at the guard-banded clock.
  const PathFactory f = small_factory();
  const DelayCalibrationOptions opt = quick_options();
  const DelayTestCalibration cal = calibrate_delay_test(f, opt);
  const double t_slow_clock = (1.0 - opt.clock_guard) * cal.t_nominal;
  for (int s = 0; s < opt.samples; ++s) {
    mc::Rng rng = sample_rng(opt.seed, static_cast<std::size_t>(s));
    mc::GaussianVariationSource var(opt.variation, rng);
    PathInstance inst = make_instance(f, 0.0, &var);
    const auto d = path_delay(inst.path, opt.input_rising, opt.sim);
    EXPECT_FALSE(delay_detects(d, t_slow_clock, cal.flip_flops))
        << "fault-free sample " << s << " rejected";
  }
}

TEST(CalibrateDelayTest, MoreVariationRaisesT0) {
  const PathFactory f = small_factory();
  DelayCalibrationOptions tight = quick_options();
  tight.variation = mc::VariationModel::uniform_sigma(0.01);
  DelayCalibrationOptions loose = quick_options();
  loose.variation = mc::VariationModel::uniform_sigma(0.10);
  const double t_tight = calibrate_delay_test(f, tight).t_nominal;
  const double t_loose = calibrate_delay_test(f, loose).t_nominal;
  EXPECT_GT(t_loose, t_tight);
}

TEST(MeasuredFlipFlopTiming, FeedsTheBudget) {
  const FlipFlopTiming t = measured_flip_flop_timing(cells::Process{});
  EXPECT_GT(t.tau_cq, 10e-12);
  EXPECT_GT(t.tau_dc, 0.0);
  EXPECT_LT(t.overhead(), 400e-12);
  // Calibrating with the measured budget must track the default budget.
  const PathFactory f = small_factory();
  DelayCalibrationOptions opt = quick_options();
  opt.flip_flops = t;
  const auto measured_cal = calibrate_delay_test(f, opt);
  const auto default_cal = calibrate_delay_test(f, quick_options());
  EXPECT_NEAR(measured_cal.t_nominal, default_cal.t_nominal,
              0.2 * default_cal.t_nominal);
}

TEST(CalibrateDelayTest, RejectsBadOptions) {
  const PathFactory f = small_factory();
  DelayCalibrationOptions opt = quick_options();
  opt.samples = 0;
  EXPECT_THROW(static_cast<void>(calibrate_delay_test(f, opt)), PreconditionError);
  opt = quick_options();
  opt.clock_guard = 1.5;
  EXPECT_THROW(static_cast<void>(calibrate_delay_test(f, opt)), PreconditionError);
}

}  // namespace
}  // namespace ppd::core
