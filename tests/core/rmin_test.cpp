#include "ppd/core/rmin.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory rop_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

PulseTestCalibration quick_calibration(const PathFactory& f) {
  PulseCalibrationOptions popt;
  popt.samples = 3;
  popt.seed = 31;
  popt.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
  return calibrate_pulse_test(f, popt);
}

TEST(Rmin, FindsThresholdWithinBracket) {
  const PathFactory f = rop_factory();
  const PulseTestCalibration cal = quick_calibration(f);
  RminOptions opt;
  opt.samples = 3;
  opt.seed = 31;
  opt.r_lo = 500.0;
  opt.r_hi = 500e3;
  opt.bisection_steps = 8;
  const RminResult res = find_r_min(f, cal, opt);
  ASSERT_TRUE(res.detectable);
  EXPECT_GT(res.r_min, opt.r_lo);
  EXPECT_LT(res.r_min, opt.r_hi);
  EXPECT_GT(res.simulations, 0u);

  // Verify the bisection result: detected at r_min, not at r_min / 2.
  auto detected_everywhere = [&](double r) {
    for (int s = 0; s < opt.samples; ++s) {
      mc::Rng rng = sample_rng(opt.seed, static_cast<std::size_t>(s));
      mc::GaussianVariationSource var(opt.variation, rng);
      PathInstance inst = make_instance(f, r, &var);
      const auto w = output_pulse_width(inst.path, cal.kind, cal.w_in, opt.sim);
      if (!pulse_detects(w, cal.w_th)) return false;
    }
    return true;
  };
  EXPECT_TRUE(detected_everywhere(res.r_min * 1.05));
  EXPECT_FALSE(detected_everywhere(res.r_min * 0.5));
}

TEST(Rmin, UndetectableBracketReported) {
  const PathFactory f = rop_factory();
  const PulseTestCalibration cal = quick_calibration(f);
  RminOptions opt;
  opt.samples = 3;
  opt.seed = 31;
  opt.r_lo = 10.0;
  opt.r_hi = 100.0;  // far too small to dampen anything
  const RminResult res = find_r_min(f, cal, opt);
  EXPECT_FALSE(res.detectable);
}

TEST(Rmin, FullyQuarantinedSweepDoesNotWrapAccounting) {
  // Every sample of every bisection step fails by injection and lands in
  // quarantine. The valid-sample count must clamp at zero (a size_t
  // "hits - quarantined" would wrap to ~2^64) and a 0-valid population
  // reads as fraction 0 -> undetectable, never as division noise.
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.3e-9;
  cal.w_th = 0.1e-9;
  RminOptions opt;
  opt.samples = 3;
  opt.seed = 31;
  opt.r_lo = 500.0;
  opt.r_hi = 500e3;
  opt.resil.quarantine = true;
  opt.resil.faults.seed = 13;
  opt.resil.faults.p_item_fail = 1.0;
  const RminResult res = find_r_min(f, cal, opt);
  EXPECT_FALSE(res.detectable);
  EXPECT_EQ(res.simulations, 0u);
  EXPECT_LT(res.simulations, 1u << 30);  // the wrap would be ~1.8e19
  EXPECT_EQ(res.n_quarantined, 3u);      // one bracket-check sweep ran
}

TEST(Rmin, ValidatesOptions) {
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.3e-9;
  cal.w_th = 0.1e-9;
  RminOptions opt;
  opt.r_lo = 10.0;
  opt.r_hi = 5.0;
  EXPECT_THROW(static_cast<void>(find_r_min(f, cal, opt)), PreconditionError);
  PathFactory clean = f;
  clean.fault.reset();
  RminOptions ok;
  EXPECT_THROW(static_cast<void>(find_r_min(clean, cal, ok)), PreconditionError);
}

}  // namespace
}  // namespace ppd::core
