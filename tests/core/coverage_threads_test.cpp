// ppd::exec wiring into the coverage layer: the parallel Monte-Carlo sweep
// must be bit-identical to the serial one at any thread count (the
// determinism contract documented in README), cancellation must abandon a
// sweep, and a pinned run_pulse_coverage result guards the historical
// (seed, sample) -> RNG derivation against accidental reseeding.
#include "ppd/core/coverage.hpp"

#include <gtest/gtest.h>

#include "ppd/core/rmin.hpp"
#include "ppd/exec/cancel.hpp"

namespace ppd::core {
namespace {

PathFactory rop_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

PulseTestCalibration pinned_calibration(const PathFactory& f) {
  PulseCalibrationOptions popt;
  popt.samples = 4;
  popt.seed = 21;
  popt.variation = mc::VariationModel::uniform_sigma(0.05);
  popt.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
  return calibrate_pulse_test(f, popt);
}

CoverageOptions pinned_coverage_options() {
  CoverageOptions o;
  o.samples = 8;
  o.seed = 2007;
  o.variation = mc::VariationModel::uniform_sigma(0.05);
  o.resistances = {2e3, 4e3, 6e3, 10e3, 40e3};
  return o;
}

bool identical(const CoverageResult& a, const CoverageResult& b) {
  return a.resistances == b.resistances && a.multipliers == b.multipliers &&
         a.coverage == b.coverage && a.simulations == b.simulations;
}

// Regression pin: exact values produced by the serial implementation before
// ppd::exec existed. The fractions are eighths (8 samples), exact in double,
// so EXPECT_DOUBLE_EQ is an equality check, not a tolerance check. If this
// fails, the (seed, sample) RNG derivation or the sweep order changed.
TEST(PulseCoverageThreads, PinnedResultAtFixedSeed) {
  const PathFactory f = rop_factory();
  const PulseTestCalibration cal = pinned_calibration(f);
  EXPECT_DOUBLE_EQ(cal.w_in, 1.5e-10);
  EXPECT_DOUBLE_EQ(cal.w_th, 1.1171540878212508e-10);

  const CoverageResult res =
      run_pulse_coverage(f, cal, pinned_coverage_options());
  ASSERT_EQ(res.coverage.size(), 3u);
  const std::vector<std::vector<double>> expected = {
      {0.0, 1.0, 1.0, 1.0, 1.0},
      {0.125, 1.0, 1.0, 1.0, 1.0},
      {0.25, 1.0, 1.0, 1.0, 1.0},
  };
  for (std::size_t m = 0; m < expected.size(); ++m) {
    ASSERT_EQ(res.coverage[m].size(), expected[m].size()) << "m=" << m;
    for (std::size_t r = 0; r < expected[m].size(); ++r)
      EXPECT_DOUBLE_EQ(res.coverage[m][r], expected[m][r])
          << "m=" << m << " r=" << r;
  }
  EXPECT_EQ(res.simulations, 40u);
}

TEST(PulseCoverageThreads, BitIdenticalAcrossThreadCounts) {
  const PathFactory f = rop_factory();
  const PulseTestCalibration cal = pinned_calibration(f);
  CoverageOptions copt = pinned_coverage_options();
  copt.threads = 1;
  const CoverageResult serial = run_pulse_coverage(f, cal, copt);
  for (int threads : {3, 0}) {
    copt.threads = threads;
    const CoverageResult par = run_pulse_coverage(f, cal, copt);
    EXPECT_TRUE(identical(par, serial)) << "threads=" << threads;
  }
}

TEST(DelayCoverageThreads, BitIdenticalAcrossThreadCounts) {
  const PathFactory f = rop_factory();
  // Fixed calibration: this test exercises the sweep, not the calibration.
  DelayTestCalibration cal;
  cal.t_nominal = 0.6e-9;
  CoverageOptions copt = pinned_coverage_options();
  copt.threads = 1;
  const CoverageResult serial = run_delay_coverage(f, cal, copt);
  for (int threads : {3, 0}) {
    copt.threads = threads;
    const CoverageResult par = run_delay_coverage(f, cal, copt);
    EXPECT_TRUE(identical(par, serial)) << "threads=" << threads;
  }
}

TEST(PulseCoverageThreads, PreFiredTokenAbandonsSweep) {
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 1.5e-10;
  cal.w_th = 1.1e-10;
  CoverageOptions copt = pinned_coverage_options();
  copt.cancel.cancel();
  EXPECT_THROW(run_pulse_coverage(f, cal, copt), exec::CancelledError);
}

TEST(RminThreads, BitIdenticalAcrossThreadCounts) {
  const PathFactory f = rop_factory();
  const PulseTestCalibration cal = pinned_calibration(f);
  RminOptions opt;
  opt.samples = 3;
  opt.seed = 31;
  opt.variation = mc::VariationModel::uniform_sigma(0.05);
  opt.r_lo = 500.0;
  opt.r_hi = 500e3;
  opt.bisection_steps = 6;
  opt.threads = 1;
  const RminResult serial = find_r_min(f, cal, opt);
  opt.threads = 3;
  const RminResult par = find_r_min(f, cal, opt);
  EXPECT_EQ(par.detectable, serial.detectable);
  EXPECT_DOUBLE_EQ(par.r_min, serial.r_min);
  EXPECT_EQ(par.simulations, serial.simulations);
}

}  // namespace
}  // namespace ppd::core
