// Coverage-experiment behaviour on a short path with an external ROP:
// monotonicity in R and in the swept test parameter, the paper's
// qualitative claims in miniature.
#include "ppd/core/coverage.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory rop_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

CoverageOptions quick_coverage() {
  CoverageOptions o;
  o.samples = 4;
  o.seed = 21;
  o.resistances = {1e3, 8e3, 40e3, 200e3};
  return o;
}

TEST(DelayCoverage, MonotoneInRAndClock) {
  const PathFactory f = rop_factory();
  DelayCalibrationOptions dopt;
  dopt.samples = 4;
  dopt.seed = 21;
  const DelayTestCalibration cal = calibrate_delay_test(f, dopt);
  const CoverageOptions copt = quick_coverage();
  const CoverageResult res = run_delay_coverage(f, cal, copt);

  ASSERT_EQ(res.coverage.size(), 3u);
  for (const auto& row : res.coverage) {
    for (double c : row) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
    // Larger defect -> never less detectable.
    for (std::size_t r = 1; r < row.size(); ++r)
      EXPECT_GE(row[r] + 1e-12, row[r - 1]);
  }
  // Faster clock (smaller multiplier) -> at least as much coverage.
  for (std::size_t r = 0; r < res.resistances.size(); ++r) {
    EXPECT_GE(res.coverage[0][r] + 1e-12, res.coverage[1][r]);  // 0.9 vs 1.0
    EXPECT_GE(res.coverage[1][r] + 1e-12, res.coverage[2][r]);  // 1.0 vs 1.1
  }
  // A huge open defeats even the slow clock.
  EXPECT_EQ(res.coverage[2].back(), 1.0);
  EXPECT_EQ(res.simulations,
            static_cast<std::size_t>(copt.samples) * copt.resistances.size());
}

TEST(PulseCoverage, MonotoneInRAndThreshold) {
  const PathFactory f = rop_factory();
  PulseCalibrationOptions popt;
  popt.samples = 4;
  popt.seed = 21;
  popt.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
  const PulseTestCalibration cal = calibrate_pulse_test(f, popt);
  const CoverageOptions copt = quick_coverage();
  const CoverageResult res = run_pulse_coverage(f, cal, copt);

  for (const auto& row : res.coverage)
    for (std::size_t r = 1; r < row.size(); ++r)
      EXPECT_GE(row[r] + 1e-12, row[r - 1]);
  // Higher sensing threshold -> at least as much coverage.
  for (std::size_t r = 0; r < res.resistances.size(); ++r) {
    EXPECT_GE(res.coverage[2][r] + 1e-12, res.coverage[1][r]);  // 1.1 vs 1.0
    EXPECT_GE(res.coverage[1][r] + 1e-12, res.coverage[0][r]);  // 1.0 vs 0.9
  }
  // A huge open dampens the pulse for every sample.
  EXPECT_EQ(res.coverage[0].back(), 1.0);
  // A tiny defect is not flagged at the nominal (calibrated) threshold; the
  // 1.1x "hot" threshold may legitimately flag marginal small defects.
  EXPECT_EQ(res.coverage[1].front(), 0.0);
}

TEST(Coverage, FullyQuarantinedSweepReportsZeroSimulations) {
  // All items injected to fail: simulations must clamp at 0 (the old
  // verdicts.size() - quarantine.size() arithmetic wraps the moment the
  // report outnumbers collected verdicts) and every coverage cell reads 0.
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.3e-9;
  cal.w_th = 0.1e-9;
  CoverageOptions copt = quick_coverage();
  copt.resil.quarantine = true;
  copt.resil.faults.seed = 13;
  copt.resil.faults.p_item_fail = 1.0;
  const CoverageResult res = run_pulse_coverage(f, cal, copt);
  EXPECT_EQ(res.simulations, 0u);
  EXPECT_EQ(res.quarantine.size(),
            static_cast<std::size_t>(copt.samples) * copt.resistances.size());
  for (const auto& row : res.coverage)
    for (const double c : row) EXPECT_EQ(c, 0.0);
}

TEST(Coverage, PartialQuarantineCountsOnlyValidItems) {
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.3e-9;
  cal.w_th = 0.1e-9;
  CoverageOptions copt = quick_coverage();
  copt.resil.quarantine = true;
  copt.resil.faults.seed = 13;
  copt.resil.faults.p_item_fail = 0.4;
  const CoverageResult res = run_pulse_coverage(f, cal, copt);
  const std::size_t items =
      static_cast<std::size_t>(copt.samples) * copt.resistances.size();
  ASSERT_GT(res.quarantine.size(), 0u);  // seed 13 at p=0.4 injects some
  ASSERT_LT(res.quarantine.size(), items);
  EXPECT_EQ(res.simulations, items - res.quarantine.size());
}

TEST(Coverage, RequiresFaultSpec) {
  PathFactory f = rop_factory();
  f.fault.reset();
  DelayTestCalibration cal;
  cal.t_nominal = 1e-9;
  EXPECT_THROW(static_cast<void>(run_delay_coverage(f, cal, quick_coverage())), PreconditionError);
}

TEST(Coverage, RejectsEmptySweep) {
  const PathFactory f = rop_factory();
  DelayTestCalibration cal;
  cal.t_nominal = 1e-9;
  CoverageOptions copt = quick_coverage();
  copt.resistances.clear();
  EXPECT_THROW(static_cast<void>(run_delay_coverage(f, cal, copt)), PreconditionError);
}

}  // namespace
}  // namespace ppd::core
