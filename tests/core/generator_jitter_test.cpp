// Uncertainty (a) of Sect. 3 — the on-chip pulse generator's own width
// fluctuation — must be guarded by the calibration and exercised by the
// coverage experiments.
#include <gtest/gtest.h>

#include "ppd/core/coverage.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory rop_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

TEST(GeneratorJitter, LargerSigmaLowersCalibratedThreshold) {
  // A sloppier generator forces a more conservative (smaller) w_th: the
  // calibration evaluates the fault-free minimum at the slow-generator
  // tail, where the output pulse is narrower.
  const PathFactory f = rop_factory();
  auto calibrate_with = [&](double sigma) {
    PulseCalibrationOptions o;
    o.samples = 5;
    o.seed = 77;
    o.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
    o.generator_sigma = sigma;
    return calibrate_pulse_test(f, o);
  };
  const auto tight = calibrate_with(0.0);
  const auto sloppy = calibrate_with(0.08);
  EXPECT_LT(sloppy.w_th, tight.w_th);
}

TEST(GeneratorJitter, AbsurdSigmaRejected) {
  const PathFactory f = rop_factory();
  PulseCalibrationOptions o;
  o.samples = 2;
  o.generator_sigma = 0.5;  // 3 sigma > 100%: no realizable pulse
  EXPECT_THROW(static_cast<void>(calibrate_pulse_test(f, o)), PreconditionError);
}

TEST(GeneratorJitter, CoverageStillZeroFalsePositiveAtNominal) {
  // With jitter active in both calibration and application, tiny defects
  // must still pass at the nominal threshold (the joint guard bands hold).
  const PathFactory f = rop_factory();
  PulseCalibrationOptions popt;
  popt.samples = 6;
  popt.seed = 77;
  popt.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
  popt.generator_sigma = 0.04;
  const auto cal = calibrate_pulse_test(f, popt);
  CoverageOptions copt;
  copt.samples = 6;
  copt.seed = 77;
  copt.resistances = {50.0};
  copt.generator_sigma = 0.04;
  const auto res = run_pulse_coverage(f, cal, copt);
  EXPECT_EQ(res.coverage[1][0], 0.0) << "near-zero defect flagged";
}

TEST(GeneratorJitter, DeterministicPerSeed) {
  const PathFactory f = rop_factory();
  PulseTestCalibration cal;
  cal.w_in = 0.35e-9;
  cal.w_th = 0.15e-9;
  CoverageOptions copt;
  copt.samples = 4;
  copt.seed = 99;
  copt.resistances = {8e3};
  copt.generator_sigma = 0.05;
  const auto a = run_pulse_coverage(f, cal, copt);
  const auto b = run_pulse_coverage(f, cal, copt);
  EXPECT_EQ(a.coverage, b.coverage);
}

}  // namespace
}  // namespace ppd::core
