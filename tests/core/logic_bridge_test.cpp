#include "ppd/core/logic_bridge.hpp"

#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

TEST(ToCellKinds, MapsPrimitives) {
  logic::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_gate(logic::LogicKind::kNand, "g1", {a, b});
  const auto g2 = nl.add_gate(logic::LogicKind::kNot, "g2", {g1});
  const auto g3 = nl.add_gate(logic::LogicKind::kNor, "g3", {g2, b});
  nl.mark_output(g3);
  logic::Path p;
  p.nets = {a, g1, g2, g3};
  const auto kinds = to_cell_kinds(nl, p);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], cells::GateKind::kNand2);
  EXPECT_EQ(kinds[1], cells::GateKind::kInv);
  EXPECT_EQ(kinds[2], cells::GateKind::kNor2);
}

TEST(ToCellKinds, ExpandsAndOrIntoTwoStages) {
  logic::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_gate(logic::LogicKind::kAnd, "g1", {a, b});
  const auto g2 = nl.add_gate(logic::LogicKind::kOr, "g2", {g1, b});
  nl.mark_output(g2);
  logic::Path p;
  p.nets = {a, g1, g2};
  const auto kinds = to_cell_kinds(nl, p);
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], cells::GateKind::kNand2);
  EXPECT_EQ(kinds[1], cells::GateKind::kInv);
  EXPECT_EQ(kinds[2], cells::GateKind::kNor2);
  EXPECT_EQ(kinds[3], cells::GateKind::kInv);
}

TEST(ToCellKinds, RejectsXor) {
  logic::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g = nl.add_gate(logic::LogicKind::kXor, "g", {a, b});
  nl.mark_output(g);
  logic::Path p;
  p.nets = {a, g};
  EXPECT_THROW(static_cast<void>(to_cell_kinds(nl, p)), PreconditionError);
}

TEST(ToCellKinds, WideNandUsesThreeInputCell) {
  logic::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto g = nl.add_gate(logic::LogicKind::kNand, "g", {a, b, c});
  nl.mark_output(g);
  logic::Path p;
  p.nets = {a, g};
  EXPECT_EQ(to_cell_kinds(nl, p)[0], cells::GateKind::kNand3);
}

TEST(CalibrateGateTiming, InverterValuesPlausible) {
  const cells::Process proc;
  const logic::GateTiming t =
      calibrate_gate_timing(proc, cells::GateKind::kInv);
  EXPECT_GT(t.delay_rise, 5e-12);
  EXPECT_LT(t.delay_rise, 400e-12);
  EXPECT_GT(t.delay_fall, 5e-12);
  EXPECT_GT(t.w_pass, t.w_block);
  EXPECT_GT(t.w_block, 0.0);
  EXPECT_LT(t.shrink, 100e-12);
}

TEST(CalibrateTimingLibrary, StackedGatesFilterHarderThanInverter) {
  const cells::Process proc;
  const logic::GateTimingLibrary lib = calibrate_timing_library(proc);
  const auto& inv = lib.timing(logic::LogicKind::kNot);
  const auto& nand2 = lib.timing(logic::LogicKind::kNand);
  const auto& nor2 = lib.timing(logic::LogicKind::kNor);
  EXPECT_GE(nand2.w_block, inv.w_block);
  EXPECT_GE(nor2.w_block, inv.w_block);
  // NOR2 rising output goes through the series PMOS stack: slowest.
  EXPECT_GT(nor2.delay_rise, inv.delay_rise);
}

TEST(LogicChainApproximatesElectricalChain, InvChain) {
  // The calibrated logic model's chained width map should approximate the
  // electrical 5-inverter chain within ~25% in the asymptotic region.
  const cells::Process proc;
  const logic::GateTimingLibrary lib = calibrate_timing_library(proc);
  const std::vector<logic::LogicKind> kinds(5, logic::LogicKind::kNot);

  PathFactory f;
  f.options.kinds.assign(5, cells::GateKind::kInv);
  SimSettings sim;
  PathInstance inst = make_instance(f, 0.0, nullptr);
  const double w_in = 0.4e-9;
  const auto w_elec = output_pulse_width(inst.path, PulseKind::kH, w_in, sim);
  ASSERT_TRUE(w_elec.has_value());
  const double w_logic = logic::chain_pulse_out(lib, kinds, w_in);
  EXPECT_NEAR(w_logic, *w_elec, 0.25 * *w_elec);
}

}  // namespace
}  // namespace ppd::core
