#include "ppd/core/pulse_test.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory small_factory() {
  PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  return f;
}

PulseCalibrationOptions quick_options() {
  PulseCalibrationOptions o;
  o.samples = 5;
  o.seed = 13;
  o.w_in_grid = linspace(0.10e-9, 0.60e-9, 11);
  return o;
}

TEST(PulseDetects, PredicateLogic) {
  EXPECT_TRUE(pulse_detects(std::nullopt, 0.1e-9));       // dampened
  EXPECT_TRUE(pulse_detects(0.05e-9, 0.1e-9));            // under threshold
  EXPECT_FALSE(pulse_detects(0.2e-9, 0.1e-9));            // clean pulse
}

TEST(AsymptoticOnset, SyntheticCurve) {
  TransferCurve c;
  c.w_in = {1.0, 2.0, 3.0, 4.0, 5.0};
  c.w_out = {0.0, 0.0, 0.5, 1.4, 2.4};  // slopes: 0, 0.5, 0.9, 1.0
  const auto onset = asymptotic_onset(c, 0.15);  // band [0.85, 1.15]
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 2u);
  // A tighter band moves the onset right.
  const auto strict = asymptotic_onset(c, 0.05);
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(*strict, 3u);
}

TEST(AsymptoticOnset, SuperLinearAttenuationRegionExcluded) {
  // The attenuation region approaches from above (slopes > 1): only the
  // final slope-1 stretch qualifies.
  TransferCurve c;
  c.w_in = {1.0, 2.0, 3.0, 4.0};
  c.w_out = {0.0, 1.8, 2.9, 3.9};  // slopes: 1.8, 1.1, 1.0
  const auto onset = asymptotic_onset(c, 0.12);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(*onset, 1u);
}

TEST(AsymptoticOnset, NeverStraightensReturnsNullopt) {
  TransferCurve c;
  c.w_in = {1.0, 2.0, 3.0};
  c.w_out = {0.0, 0.1, 0.3};  // slopes 0.1, 0.2: never near 1
  EXPECT_FALSE(asymptotic_onset(c, 0.3).has_value());
}

TEST(AsymptoticOnset, FullyDampenedPointExcluded) {
  // Perfect slope but w_out = 0 at the candidate point: not usable.
  TransferCurve c;
  c.w_in = {1.0, 2.0};
  c.w_out = {0.0, 1.0};
  const auto onset = asymptotic_onset(c, 0.1);
  ASSERT_FALSE(onset.has_value());
}

TEST(AsymptoticOnset, RejectsBadTolerance) {
  TransferCurve c;
  c.w_in = {1.0, 2.0};
  c.w_out = {0.5, 1.5};
  EXPECT_THROW(static_cast<void>(asymptotic_onset(c, 0.0)), PreconditionError);
  EXPECT_THROW(static_cast<void>(asymptotic_onset(c, 1.0)), PreconditionError);
}

TEST(CalibratePulseTest, ProducesFeasibleConfiguration) {
  const PathFactory f = small_factory();
  const PulseCalibrationOptions opt = quick_options();
  const PulseTestCalibration cal = calibrate_pulse_test(f, opt);
  EXPECT_GE(cal.w_th, opt.w_th_floor);
  EXPECT_GT(cal.w_in, 0.0);
  // Threshold honours the sensing guard against the MC minimum.
  EXPECT_NEAR(cal.w_th * (1.0 + opt.sensor_guard), cal.min_fault_free_w_out,
              1e-15);
  EXPECT_FALSE(cal.nominal_curve.w_in.empty());
}

TEST(CalibratePulseTest, NoFalsePositivesByConstruction) {
  const PathFactory f = small_factory();
  const PulseCalibrationOptions opt = quick_options();
  const PulseTestCalibration cal = calibrate_pulse_test(f, opt);
  // Even a sensor running 10% hot never rejects a fault-free instance.
  const double hot_threshold = (1.0 + opt.sensor_guard) * cal.w_th;
  for (int s = 0; s < opt.samples; ++s) {
    mc::Rng rng = sample_rng(opt.seed, static_cast<std::size_t>(s));
    mc::GaussianVariationSource var(opt.variation, rng);
    PathInstance inst = make_instance(f, 0.0, &var);
    const auto w = output_pulse_width(inst.path, cal.kind, cal.w_in, opt.sim);
    EXPECT_FALSE(pulse_detects(w, hot_threshold))
        << "fault-free sample " << s << " rejected";
  }
}

TEST(CalibratePulseTest, InfeasibleGridThrows) {
  const PathFactory f = small_factory();
  PulseCalibrationOptions opt = quick_options();
  // Grid entirely inside the dampened region: no asymptotic onset.
  opt.w_in_grid = linspace(0.055e-9, 0.075e-9, 4);
  EXPECT_THROW(static_cast<void>(calibrate_pulse_test(f, opt)), NumericalError);
}

TEST(CalibratePulseTest, LKindAlsoCalibrates) {
  const PathFactory f = small_factory();
  PulseCalibrationOptions opt = quick_options();
  opt.kind = PulseKind::kL;
  const PulseTestCalibration cal = calibrate_pulse_test(f, opt);
  EXPECT_EQ(cal.kind, PulseKind::kL);
  EXPECT_GT(cal.w_th, 0.0);
}

}  // namespace
}  // namespace ppd::core
