#include "ppd/core/measure.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory small_factory(std::size_t n = 3) {
  PathFactory f;
  f.options.kinds.assign(n, cells::GateKind::kInv);
  return f;
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
  EXPECT_THROW(static_cast<void>(linspace(1.0, 3.0, 1)), PreconditionError);
  EXPECT_THROW(static_cast<void>(linspace(3.0, 1.0, 5)), PreconditionError);
}

TEST(Logspace, EndpointsAndGrowth) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_THROW(static_cast<void>(logspace(0.0, 1.0, 3)), PreconditionError);
}

TEST(SampleRng, DeterministicPerIndex) {
  mc::Rng a = sample_rng(7, 3);
  mc::Rng b = sample_rng(7, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  mc::Rng c = sample_rng(7, 4);
  EXPECT_NE(sample_rng(7, 3).next_u64(), c.next_u64());
}

TEST(MakeInstance, FaultFreeHasNoInjectedHandle) {
  const PathFactory f = small_factory();
  PathInstance inst = make_instance(f, 0.0, nullptr);
  EXPECT_FALSE(inst.fault.has_value());
  EXPECT_EQ(inst.path.length(), 3u);
}

TEST(MakeInstance, FaultSpecInjectsWhenResistancePositive) {
  PathFactory f = small_factory();
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  PathInstance faulty = make_instance(f, 5e3, nullptr);
  ASSERT_TRUE(faulty.fault.has_value());
  // Zero resistance still builds fault-free even with a spec present.
  PathInstance clean = make_instance(f, 0.0, nullptr);
  EXPECT_FALSE(clean.fault.has_value());
}

TEST(PathDelay, PositiveAndPolarityConsistent) {
  const PathFactory f = small_factory();
  SimSettings sim;
  PathInstance a = make_instance(f, 0.0, nullptr);
  const auto d_rise = path_delay(a.path, true, sim);
  PathInstance b = make_instance(f, 0.0, nullptr);
  const auto d_fall = path_delay(b.path, false, sim);
  ASSERT_TRUE(d_rise.has_value());
  ASSERT_TRUE(d_fall.has_value());
  EXPECT_GT(*d_rise, 0.0);
  EXPECT_GT(*d_fall, 0.0);
  EXPECT_LT(*d_rise, 1e-9);
  EXPECT_LT(*d_fall, 1e-9);
}

TEST(OutputPulseWidth, BothKindsPropagateWidePulses) {
  const PathFactory f = small_factory();
  SimSettings sim;
  PathInstance a = make_instance(f, 0.0, nullptr);
  const auto w_h = output_pulse_width(a.path, PulseKind::kH, 0.5e-9, sim);
  PathInstance b = make_instance(f, 0.0, nullptr);
  const auto w_l = output_pulse_width(b.path, PulseKind::kL, 0.5e-9, sim);
  ASSERT_TRUE(w_h.has_value());
  ASSERT_TRUE(w_l.has_value());
  EXPECT_NEAR(*w_h, 0.5e-9, 0.2e-9);
  EXPECT_NEAR(*w_l, 0.5e-9, 0.2e-9);
}

TEST(MakeTransientOptions, OneBudgetCoversBothPhases) {
  // Regression pin for the double-budget bug: setting sim.budget_seconds
  // used to grant the OP phase a second full-length deadline on top of the
  // transient's, letting a "budgeted" solve run for 2x its budget. The OP
  // now spends from the transient's own deadline (op.budget_seconds 0).
  const PathFactory f = small_factory();
  PathInstance inst = make_instance(f, 0.0, nullptr);
  SimSettings sim;
  sim.budget_seconds = 1.5;
  const spice::TransientOptions opt =
      make_transient_options(sim, 1e-9, inst.path);
  EXPECT_DOUBLE_EQ(opt.budget_seconds, 1.5);
  EXPECT_DOUBLE_EQ(opt.op.budget_seconds, 0.0);
  EXPECT_DOUBLE_EQ(opt.t_stop, 1e-9);
  ASSERT_EQ(opt.probe.size(), 2u);
}

TEST(MakeTransientOptions, TransientBudgetGovernsTheOpPhase) {
  // With an (effectively pre-expired) transient budget, the FIRST phase to
  // notice must be the operating point — proof that it draws from the
  // shared deadline rather than owning an unlimited one. Warm-starting is
  // switched off so a cached OP cannot skip the phase under test.
  const PathFactory f = small_factory();
  PathInstance inst = make_instance(f, 0.0, nullptr);
  inst.path.drive_pulse(true, 0.3e-9, 0.3e-9);
  SimSettings sim;
  sim.budget_seconds = 1e-9;
  const bool was_enabled = cache::cache_enabled();
  cache::set_cache_enabled(false);
  try {
    static_cast<void>(spice::run_transient(
        inst.path.netlist().circuit(),
        make_transient_options(sim, 1e-9, inst.path)));
    cache::set_cache_enabled(was_enabled);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    cache::set_cache_enabled(was_enabled);
    EXPECT_NE(std::string(e.what()).find("operating point"), std::string::npos)
        << e.what();
  }
}

TEST(MakeTransientOptions, BudgetBoundMeasurementFinishesNearBudget) {
  // A deliberately step-starved transient (fixed 1 fs steps) cannot finish;
  // it must abort within ~1x the budget, not the historical 2x.
  const PathFactory f = small_factory();
  PathInstance inst = make_instance(f, 0.0, nullptr);
  SimSettings sim;
  sim.dt = 1e-15;
  sim.adaptive = false;
  sim.budget_seconds = 0.3;
  const bool was_enabled = cache::cache_enabled();
  cache::set_cache_enabled(false);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      static_cast<void>(output_pulse_width(inst.path, PulseKind::kH, 0.3e-9, sim)),
      TimeoutError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cache::set_cache_enabled(was_enabled);
  EXPECT_LT(elapsed, 3.0 * sim.budget_seconds);
}

TEST(TransferFunction, SolverFailureIsFlaggedNotZero) {
  // Force every Newton solve to report non-convergence: each grid point's
  // measurement fails. The curve must mark those points failed with NaN —
  // not record w_out = 0, which means "perfectly dampened pulse".
  const PathFactory f = small_factory();
  SimSettings sim;
  PathInstance inst = make_instance(f, 0.0, nullptr);
  resil::FaultPlan plan;
  plan.seed = 1;
  plan.p_newton_nonconverge = 1.0;
  const resil::FaultScope scope(plan, 0);
  const auto grid = linspace(0.2e-9, 0.4e-9, 3);
  const TransferCurve c = transfer_function(inst.path, PulseKind::kH, grid, sim);
  ASSERT_EQ(c.w_out.size(), grid.size());
  ASSERT_EQ(c.failed.size(), grid.size());
  EXPECT_EQ(c.n_failed, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(c.failed[i]) << "point " << i;
    EXPECT_TRUE(std::isnan(c.w_out[i])) << "point " << i;
  }
}

TEST(TransferFunction, HasThreeRegions) {
  // Fig. 10 structure: zeros, then a sub-linear climb, then slope ~1.
  const PathFactory f = small_factory(7);
  SimSettings sim;
  PathInstance inst = make_instance(f, 0.0, nullptr);
  const auto grid = linspace(0.06e-9, 0.6e-9, 12);
  const TransferCurve c = transfer_function(inst.path, PulseKind::kH, grid, sim);
  ASSERT_EQ(c.w_out.size(), grid.size());
  ASSERT_EQ(c.failed.size(), grid.size());
  EXPECT_EQ(c.n_failed, 0u);                // healthy path: no failed solves
  EXPECT_DOUBLE_EQ(c.w_out.front(), 0.0);   // region 1: dampened
  EXPECT_GT(c.w_out.back(), 0.4e-9);        // region 3 reached
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < c.w_out.size(); ++i)
    EXPECT_GE(c.w_out[i] + 1e-12, c.w_out[i - 1]);
  // Final segment slope ~1.
  const double slope = (c.w_out.back() - c.w_out[c.w_out.size() - 2]) /
                       (grid.back() - grid[grid.size() - 2]);
  EXPECT_NEAR(slope, 1.0, 0.15);
}

}  // namespace
}  // namespace ppd::core
