#include "ppd/core/measure.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::core {
namespace {

PathFactory small_factory(std::size_t n = 3) {
  PathFactory f;
  f.options.kinds.assign(n, cells::GateKind::kInv);
  return f;
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
  EXPECT_THROW(static_cast<void>(linspace(1.0, 3.0, 1)), PreconditionError);
  EXPECT_THROW(static_cast<void>(linspace(3.0, 1.0, 5)), PreconditionError);
}

TEST(Logspace, EndpointsAndGrowth) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_THROW(static_cast<void>(logspace(0.0, 1.0, 3)), PreconditionError);
}

TEST(SampleRng, DeterministicPerIndex) {
  mc::Rng a = sample_rng(7, 3);
  mc::Rng b = sample_rng(7, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  mc::Rng c = sample_rng(7, 4);
  EXPECT_NE(sample_rng(7, 3).next_u64(), c.next_u64());
}

TEST(MakeInstance, FaultFreeHasNoInjectedHandle) {
  const PathFactory f = small_factory();
  PathInstance inst = make_instance(f, 0.0, nullptr);
  EXPECT_FALSE(inst.fault.has_value());
  EXPECT_EQ(inst.path.length(), 3u);
}

TEST(MakeInstance, FaultSpecInjectsWhenResistancePositive) {
  PathFactory f = small_factory();
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  PathInstance faulty = make_instance(f, 5e3, nullptr);
  ASSERT_TRUE(faulty.fault.has_value());
  // Zero resistance still builds fault-free even with a spec present.
  PathInstance clean = make_instance(f, 0.0, nullptr);
  EXPECT_FALSE(clean.fault.has_value());
}

TEST(PathDelay, PositiveAndPolarityConsistent) {
  const PathFactory f = small_factory();
  SimSettings sim;
  PathInstance a = make_instance(f, 0.0, nullptr);
  const auto d_rise = path_delay(a.path, true, sim);
  PathInstance b = make_instance(f, 0.0, nullptr);
  const auto d_fall = path_delay(b.path, false, sim);
  ASSERT_TRUE(d_rise.has_value());
  ASSERT_TRUE(d_fall.has_value());
  EXPECT_GT(*d_rise, 0.0);
  EXPECT_GT(*d_fall, 0.0);
  EXPECT_LT(*d_rise, 1e-9);
  EXPECT_LT(*d_fall, 1e-9);
}

TEST(OutputPulseWidth, BothKindsPropagateWidePulses) {
  const PathFactory f = small_factory();
  SimSettings sim;
  PathInstance a = make_instance(f, 0.0, nullptr);
  const auto w_h = output_pulse_width(a.path, PulseKind::kH, 0.5e-9, sim);
  PathInstance b = make_instance(f, 0.0, nullptr);
  const auto w_l = output_pulse_width(b.path, PulseKind::kL, 0.5e-9, sim);
  ASSERT_TRUE(w_h.has_value());
  ASSERT_TRUE(w_l.has_value());
  EXPECT_NEAR(*w_h, 0.5e-9, 0.2e-9);
  EXPECT_NEAR(*w_l, 0.5e-9, 0.2e-9);
}

TEST(TransferFunction, HasThreeRegions) {
  // Fig. 10 structure: zeros, then a sub-linear climb, then slope ~1.
  const PathFactory f = small_factory(7);
  SimSettings sim;
  PathInstance inst = make_instance(f, 0.0, nullptr);
  const auto grid = linspace(0.06e-9, 0.6e-9, 12);
  const TransferCurve c = transfer_function(inst.path, PulseKind::kH, grid, sim);
  ASSERT_EQ(c.w_out.size(), grid.size());
  EXPECT_DOUBLE_EQ(c.w_out.front(), 0.0);   // region 1: dampened
  EXPECT_GT(c.w_out.back(), 0.4e-9);        // region 3 reached
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < c.w_out.size(); ++i)
    EXPECT_GE(c.w_out[i] + 1e-12, c.w_out[i - 1]);
  // Final segment slope ~1.
  const double slope = (c.w_out.back() - c.w_out[c.w_out.size() - 2]) /
                       (grid.back() - grid[grid.size() - 2]);
  EXPECT_NEAR(slope, 1.0, 0.15);
}

}  // namespace
}  // namespace ppd::core
