// Measurement-cache key regression: every solver knob that changes the
// computed waveform must land in the content key. Omitting dt_min and the
// Newton tolerances let a measurement taken with loose settings poison the
// cache for a later strict run — the second run silently replayed the
// first's result instead of recomputing.
#include <gtest/gtest.h>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/core/measure.hpp"

namespace ppd::core {
namespace {

TEST(MeasureCacheKey, SolverTolerancesSeparateCacheEntries) {
  PathFactory factory;
  factory.options.kinds.assign(3, cells::GateKind::kInv);
  PathInstance inst = make_instance(factory, 0.0, nullptr);

  cache::SolveCache& cache = cache::SolveCache::global();
  cache.clear();
  SimSettings sim;  // adaptive by default, so dt_min participates

  const auto misses = [&] { return cache.totals().misses; };

  // Cold: the measurement key misses and the result is stored.
  const std::uint64_t m0 = misses();
  const auto base = path_delay(inst.path, /*input_rising=*/true, sim);
  EXPECT_GT(misses(), m0);

  // Identical settings: served from the cache, no recompute.
  const std::uint64_t m1 = misses();
  const auto replay = path_delay(inst.path, true, sim);
  EXPECT_EQ(misses(), m1);
  EXPECT_EQ(replay, base);

  // Differing ONLY in a Newton tolerance: NOT the same measurement — the
  // key must miss and force a recompute (the poisoning bug replayed here).
  SimSettings loose = sim;
  loose.newton_reltol = 1e-2;
  const std::uint64_t m2 = misses();
  static_cast<void>(path_delay(inst.path, true, loose));
  EXPECT_GT(misses(), m2);

  SimSettings loose_abs = sim;
  loose_abs.newton_abstol = 1e-4;
  const std::uint64_t m3 = misses();
  static_cast<void>(path_delay(inst.path, true, loose_abs));
  EXPECT_GT(misses(), m3);

  // Differing ONLY in the adaptive rejection floor: same story.
  SimSettings floor = sim;
  floor.dt_min = 1e-13;
  const std::uint64_t m4 = misses();
  static_cast<void>(path_delay(inst.path, true, floor));
  EXPECT_GT(misses(), m4);

  // And the original settings still hit their own entry afterwards.
  const std::uint64_t m5 = misses();
  EXPECT_EQ(path_delay(inst.path, true, sim), base);
  EXPECT_EQ(misses(), m5);
}

}  // namespace
}  // namespace ppd::core
