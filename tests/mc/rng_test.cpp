#include "ppd/mc/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ppd/mc/variation.hpp"
#include "ppd/util/error.hpp"

namespace ppd::mc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMomentsReasonable) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.uniform();
  const Stats s = compute_stats(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
  EXPECT_NEAR(s.stddev, 0.2887, 0.01);
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  const Stats s = compute_stats(xs);
  EXPECT_NEAR(s.mean, 2.0, 0.02);
  EXPECT_NEAR(s.stddev, 0.5, 0.02);
}

TEST(Rng, NormalClippedRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.normal_clipped(1.0, 0.1, 3.0);
    EXPECT_GE(v, 1.0 - 0.3 - 1e-12);
    EXPECT_LE(v, 1.0 + 0.3 + 1e-12);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(19);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent_copy(23);
  static_cast<void>(parent_copy.split());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ppd::mc
