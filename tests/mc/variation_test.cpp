#include "ppd/mc/variation.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::mc {
namespace {

TEST(VariationModel, UniformSigmaSetsAll) {
  const VariationModel m = VariationModel::uniform_sigma(0.08);
  EXPECT_DOUBLE_EQ(m.sigma_vt, 0.08);
  EXPECT_DOUBLE_EQ(m.sigma_kp, 0.08);
  EXPECT_DOUBLE_EQ(m.sigma_w, 0.08);
  EXPECT_DOUBLE_EQ(m.sigma_cap, 0.08);
}

TEST(GaussianVariationSource, MultipliersCenteredOnOne) {
  GaussianVariationSource src(VariationModel::uniform_sigma(0.05), Rng(5));
  std::vector<double> vt, kp, w, cap;
  for (int i = 0; i < 5000; ++i) {
    const auto t = src.transistor();
    vt.push_back(t.vt_mult);
    kp.push_back(t.kp_mult);
    w.push_back(t.w_mult);
    cap.push_back(src.cap_mult());
  }
  for (const auto* v : {&vt, &kp, &w, &cap}) {
    const Stats s = compute_stats(*v);
    EXPECT_NEAR(s.mean, 1.0, 0.01);
    EXPECT_NEAR(s.stddev, 0.05, 0.01);
    EXPECT_GT(s.min, 0.0) << "multiplier went non-positive";
  }
}

TEST(GaussianVariationSource, ZeroSigmaIsNominal) {
  GaussianVariationSource src(VariationModel::uniform_sigma(0.0), Rng(5));
  const auto t = src.transistor();
  EXPECT_DOUBLE_EQ(t.vt_mult, 1.0);
  EXPECT_DOUBLE_EQ(t.kp_mult, 1.0);
  EXPECT_DOUBLE_EQ(t.w_mult, 1.0);
  EXPECT_DOUBLE_EQ(src.cap_mult(), 1.0);
}

TEST(ComputeStats, HandlesEmptyAndSingle) {
  const Stats empty = compute_stats({});
  EXPECT_EQ(empty.count, 0u);
  const Stats one = compute_stats({3.0});
  EXPECT_DOUBLE_EQ(one.mean, 3.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.min, 3.0);
  EXPECT_DOUBLE_EQ(one.max, 3.0);
}

TEST(ComputeStats, KnownValues) {
  const Stats s = compute_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Quantile, InterpolatesAndBounds) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_THROW(static_cast<void>(quantile({}, 0.5)), PreconditionError);
  EXPECT_THROW(static_cast<void>(quantile(xs, 1.5)), PreconditionError);
}

}  // namespace
}  // namespace ppd::mc
