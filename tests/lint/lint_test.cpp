// ppd::lint contract tests: stable PPD0xx/1xx/2xx codes on seeded defects,
// clean passes on the bundled netlists, reporter output (text + JSON),
// severity/suppression filtering, and the load-time gates in ppd::logic
// and ppd::spice.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ppd/lint/bench_lint.hpp"
#include "ppd/lint/diagnostic.hpp"
#include "ppd/lint/graph.hpp"
#include "ppd/lint/spice_lint.hpp"
#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/lint.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/spice/circuit.hpp"
#include "ppd/spice/lint.hpp"

namespace ppd {
namespace {

using lint::Report;
using lint::Severity;

bool has_code(const Report& report, const std::string& code) {
  for (const auto& d : report.diagnostics())
    if (d.code == code) return true;
  return false;
}

std::size_t count_code(const Report& report, const std::string& code) {
  std::size_t n = 0;
  for (const auto& d : report.diagnostics())
    if (d.code == code) ++n;
  return n;
}

/// The bundled netlists live in data/; the test may run from the build tree.
std::string find_data(const std::string& name) {
  for (const char* prefix : {"data/", "../data/", "../../data/", "../../../data/"}) {
    const std::string cand = prefix + name;
    std::ifstream probe(cand);
    if (probe) return cand;
  }
  return {};
}

// ------------------------------------------------------------- diagnostics

TEST(Diagnostics, SeverityNamesRoundTrip) {
  EXPECT_STREQ(lint::severity_name(Severity::kNote), "note");
  EXPECT_STREQ(lint::severity_name(Severity::kWarning), "warning");
  EXPECT_STREQ(lint::severity_name(Severity::kError), "error");
  EXPECT_EQ(lint::severity_from_string("Warning"), Severity::kWarning);
  EXPECT_EQ(lint::severity_from_string("ERROR"), Severity::kError);
  EXPECT_THROW((void)lint::severity_from_string("fatal"), ParseError);
}

TEST(Diagnostics, FilteringBySeverityAndSuppression) {
  Report report;
  report.add(Severity::kNote, "PPD007", "f", "histogram");
  report.add(Severity::kWarning, "PPD004", "f", "floating input");
  report.add(Severity::kError, "PPD001", "f", "cycle");
  EXPECT_EQ(report.count(Severity::kNote), 1u);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_TRUE(report.has_errors());

  lint::LintOptions warnings_up;
  warnings_up.min_severity = Severity::kWarning;
  const Report filtered = report.filtered(warnings_up);
  EXPECT_EQ(filtered.diagnostics().size(), 2u);
  EXPECT_FALSE(has_code(filtered, "PPD007"));

  lint::LintOptions suppressed;
  suppressed.suppress = {"PPD001", "PPD004"};
  const Report rest = report.filtered(suppressed);
  EXPECT_EQ(rest.diagnostics().size(), 1u);
  EXPECT_FALSE(rest.has_errors());
}

TEST(Diagnostics, KnownCodesCoverEveryFamily) {
  const auto& codes = lint::known_codes();
  EXPECT_FALSE(codes.empty());
  for (const char* c : {"PPD001", "PPD014", "PPD101", "PPD110", "PPD201",
                        "PPD207", "PPD301", "PPD304"})
    EXPECT_TRUE(lint::is_known_code(c)) << c;
  EXPECT_FALSE(lint::is_known_code("PPD999"));
  EXPECT_FALSE(lint::is_known_code("PPD3"));
  EXPECT_FALSE(lint::is_known_code("ppd001"));  // codes are case-sensitive
}

TEST(Diagnostics, ParseSuppressListValidatesCodes) {
  EXPECT_EQ(lint::parse_suppress_list("PPD001"),
            (std::vector<std::string>{"PPD001"}));
  EXPECT_EQ(lint::parse_suppress_list(" PPD004 , PPD301 "),
            (std::vector<std::string>{"PPD004", "PPD301"}));
  // Empty fields and the empty list are fine (no suppression).
  EXPECT_TRUE(lint::parse_suppress_list("").empty());
  EXPECT_TRUE(lint::parse_suppress_list(" , ,").empty());
  // Unknown or malformed codes are hard errors, not silently dead filters.
  EXPECT_THROW((void)lint::parse_suppress_list("PPD999"), ParseError);
  EXPECT_THROW((void)lint::parse_suppress_list("PPD001,PPD9999"), ParseError);
  EXPECT_THROW((void)lint::parse_suppress_list("301"), ParseError);
  EXPECT_THROW((void)lint::parse_suppress_list("PPD001;PPD004"), ParseError);
}

TEST(Diagnostics, TextReporterFormat) {
  Report report;
  report.add(Severity::kError, "PPD001", "f.bench:3", "combinational cycle",
             "break the loop");
  const std::string text = lint::to_text(report);
  EXPECT_NE(text.find("error PPD001 [f.bench:3]: combinational cycle"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hint: break the loop"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error"), std::string::npos) << text;
}

TEST(Diagnostics, JsonReporterShapeAndEscaping) {
  Report report;
  report.add(Severity::kWarning, "PPD004", "a\\b", "quote \" and\nnewline");
  const std::string json = lint::to_json(report);
  EXPECT_NE(json.find("\"code\":\"PPD004\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("a\\\\b"), std::string::npos) << json;
  EXPECT_NE(json.find("quote \\\" and\\nnewline"), std::string::npos) << json;
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos) << json;
}

TEST(Diagnostics, ThrowOnErrorCarriesTheReport) {
  Report report;
  report.add(Severity::kError, "PPD002", "n1", "undriven");
  report.add(Severity::kError, "PPD003", "n2", "two drivers");
  try {
    report.throw_on_error("bad.bench");
    FAIL() << "expected LintError";
  } catch (const lint::LintError& e) {
    EXPECT_EQ(e.report().diagnostics().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.bench"), std::string::npos) << what;
    EXPECT_NE(what.find("PPD002"), std::string::npos) << what;
  }
  Report clean;
  clean.add(Severity::kWarning, "PPD004", "n", "floating");
  EXPECT_NO_THROW(clean.throw_on_error("ok"));
}

// -------------------------------------------------------------- bench lint

TEST(BenchLint, CombinationalCycleIsPpd001) {
  const Report r = lint::lint_bench_text(R"(INPUT(a)
OUTPUT(y)
b = AND(a, c)
c = NOT(b)
y = OR(b, a)
)");
  EXPECT_TRUE(has_code(r, "PPD001"));
  EXPECT_TRUE(r.has_errors());
}

TEST(BenchLint, UndrivenNetIsPpd002) {
  const Report r = lint::lint_bench_text(R"(INPUT(a)
OUTPUT(y)
y = AND(a, ghost)
)");
  EXPECT_TRUE(has_code(r, "PPD002"));
}

TEST(BenchLint, MultiDrivenNetIsPpd003) {
  const Report r = lint::lint_bench_text(R"(INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
y = OR(a, b)
)");
  EXPECT_TRUE(has_code(r, "PPD003"));
}

TEST(BenchLint, FloatingInputIsPpd004) {
  const Report r = lint::lint_bench_text(R"(INPUT(a)
INPUT(unused)
OUTPUT(y)
y = NOT(a)
)");
  EXPECT_TRUE(has_code(r, "PPD004"));
  EXPECT_FALSE(r.has_errors());  // a floating input is only a warning
}

TEST(BenchLint, SyntaxProblemsArePpd013WithLineNumbers) {
  const Report r = lint::lint_bench_text(R"(INPUT(a
OUTPUT(y)
y FOO a
z = FROB(a)
)", "bad.bench");
  EXPECT_GE(count_code(r, "PPD013"), 3u);
  bool line_1 = false;
  for (const auto& d : r.diagnostics())
    line_1 = line_1 || d.location == "bad.bench:1";
  EXPECT_TRUE(line_1);
}

TEST(BenchLint, OutputDeclarationsChecked) {
  const Report r = lint::lint_bench_text(R"(INPUT(a)
OUTPUT(y)
OUTPUT(y)
OUTPUT(never)
y = NOT(a)
)");
  EXPECT_TRUE(has_code(r, "PPD012"));
  EXPECT_TRUE(has_code(r, "PPD014"));
}

TEST(BenchLint, MissingInterfaceIsPpd010And011) {
  const Report r = lint::lint_bench_text("x = NOT(x)\n");
  EXPECT_TRUE(has_code(r, "PPD010"));
  EXPECT_TRUE(has_code(r, "PPD011"));
  EXPECT_TRUE(has_code(r, "PPD001"));  // the self-loop
}

TEST(BenchLint, LenientScannerReportsAllDefectsAtOnce) {
  // One pass over one bad file finds every independent problem, unlike the
  // strict parser which stops at the first.
  const Report r = lint::lint_bench_text(R"(INPUT(a)
INPUT(unused)
OUTPUT(y)
u = AND(a, ghost)
u = OR(a, a)
y = NOT(u)
)");
  EXPECT_TRUE(has_code(r, "PPD002"));
  EXPECT_TRUE(has_code(r, "PPD003"));
  EXPECT_TRUE(has_code(r, "PPD004"));
}

TEST(BenchLint, UnreadableFileIsAnErrorDiagnostic) {
  const Report r = lint::lint_bench_file("/nonexistent/nope.bench");
  EXPECT_TRUE(has_code(r, "PPD013"));
  EXPECT_TRUE(r.has_errors());
}

TEST(BenchLint, CleanNetlistHasNoFindings) {
  const Report r = lint::lint_bench_text(logic::write_bench(logic::c17()));
  EXPECT_EQ(r.count(Severity::kError), 0u);
  EXPECT_EQ(r.count(Severity::kWarning), 0u);
  EXPECT_TRUE(has_code(r, "PPD007"));  // the histogram note is always there
}

TEST(BenchLint, BundledNetlistsLintClean) {
  for (const char* name : {"c17.bench", "c432_class.bench"}) {
    const std::string path = find_data(name);
    if (path.empty()) GTEST_SKIP() << "data/ not reachable from cwd";
    const Report r = lint::lint_bench_file(path);
    EXPECT_EQ(r.count(Severity::kError), 0u) << name << "\n" << to_text(r);
    EXPECT_EQ(r.count(Severity::kWarning), 0u) << name << "\n" << to_text(r);
  }
}

// --------------------------------------------------- load-time gate (logic)

TEST(BenchLint, LoadBenchFileThrowsLintErrorWithFullReport) {
  const std::string path = ::testing::TempDir() + "/ppd_lint_bad.bench";
  {
    std::ofstream f(path);
    f << "INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = NOT(b)\ny = OR(b, ghost)\n";
  }
  try {
    (void)logic::load_bench_file(path);
    FAIL() << "expected LintError";
  } catch (const lint::LintError& e) {
    // Both independent defects arrive in one throw: the cycle AND the
    // undriven reference.
    EXPECT_TRUE(has_code(e.report(), "PPD001")) << e.what();
    EXPECT_TRUE(has_code(e.report(), "PPD002")) << e.what();
  }
  // The gate throws a ParseError subclass: legacy catch sites still work.
  EXPECT_THROW((void)logic::load_bench_file(path), ParseError);
  std::remove(path.c_str());
}

TEST(LogicLint, NetlistAdapterFindsSemanticIssues) {
  const Report clean = logic::lint_netlist(logic::c17());
  EXPECT_EQ(clean.count(Severity::kError), 0u);
  EXPECT_EQ(clean.count(Severity::kWarning), 0u);

  logic::Netlist nl;
  const auto a = nl.add_input("a");
  nl.add_input("floater");
  nl.mark_output(nl.add_gate(logic::LogicKind::kNot, "y", {a}));
  const Report r = logic::lint_netlist(nl);
  EXPECT_TRUE(has_code(r, "PPD004"));
  EXPECT_FALSE(r.has_errors());
}

// --------------------------------------------------------------- deck lint

TEST(SpiceLint, NegativeResistanceIsPpd103) {
  const Report r = lint::lint_spice_deck_text(R"(* bad deck
V1 vdd 0 1.0
R1 vdd out -100
R2 out 0 1k
.end
)");
  EXPECT_TRUE(has_code(r, "PPD103"));
  EXPECT_TRUE(r.has_errors());
}

TEST(SpiceLint, FloatingIslandIsPpd101) {
  const Report r = lint::lint_spice_deck_text(R"(* island deck
V1 vdd 0 1.0
R1 vdd 0 1k
R2 a b 1k
.end
)");
  EXPECT_TRUE(has_code(r, "PPD101"));
}

TEST(SpiceLint, VoltageSourceLoopIsPpd106) {
  const Report r = lint::lint_spice_deck_text(R"(* vloop
V1 a 0 1.0
V2 a 0 2.0
R1 a 0 1k
.end
)");
  EXPECT_TRUE(has_code(r, "PPD106"));
}

TEST(SpiceLint, CapacitorOnlyNodeIsGminWarning) {
  const Report r = lint::lint_spice_deck_text(R"(* gmin node
V1 vdd 0 1.0
R1 vdd mid 1k
C1 mid 0 10f
C2 mid top 10f
.end
)");
  EXPECT_TRUE(has_code(r, "PPD102"));  // 'top' hangs off capacitors only
  EXPECT_FALSE(r.has_errors());
}

TEST(SpiceLint, MosfetParameterChecksArePpd105) {
  const Report r = lint::lint_spice_deck_text(R"(* mosfets
.model badn NMOS level=1 vto=-0.45 kp=170u lambda=0.05
V1 vdd 0 1.0
Vg g 0 1.0
M1 vdd g 0 0 badn w=-1u l=0.1u
R1 vdd 0 10k
.end
)");
  // Negative width and wrong-sign NMOS threshold are separate findings.
  EXPECT_GE(count_code(r, "PPD105"), 2u);
}

TEST(SpiceLint, UnknownCardAndUndefinedModelArePpd110) {
  const Report r = lint::lint_spice_deck_text(R"(* syntax
V1 a 0 1.0
R1 a 0 1k
Q1 a b c bjt
M1 a b 0 0 nomodel w=1u l=0.1u
.end
)");
  EXPECT_GE(count_code(r, "PPD110"), 2u);
}

TEST(SpiceLint, CleanDeckPasses) {
  const Report r = lint::lint_spice_deck_text(R"(* divider
V1 vdd 0 1.0
R1 vdd out 1k
R2 out 0 2k
C1 out 0 10f
.end
)");
  EXPECT_EQ(r.count(Severity::kError), 0u) << to_text(r);
  EXPECT_EQ(r.count(Severity::kWarning), 0u) << to_text(r);
}

TEST(SpiceLint, ImplausibleValueIsPpd107) {
  const Report r = lint::lint_spice_deck_text(R"(* unit slip
V1 vdd 0 1.0
R1 vdd 0 1e15
)");
  EXPECT_TRUE(has_code(r, "PPD107"));
  EXPECT_FALSE(r.has_errors());
}

// ------------------------------------------------- load-time gate (spice)

TEST(SpiceLint, ValidateCircuitThrowsOnIsland) {
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  c.add_vsource("V1", vdd, 0, spice::Dc{1.0});
  c.add_resistor("R1", vdd, 0, 1e3);
  EXPECT_NO_THROW(spice::validate_circuit(c));

  c.add_resistor("R2", c.node("a"), c.node("b"), 1e3);
  EXPECT_THROW(spice::validate_circuit(c), lint::LintError);
}

TEST(SpiceLint, RunOpRejectsBrokenCircuitWithDiagnostics) {
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  c.add_vsource("V1", vdd, 0, spice::Dc{1.0});
  c.add_resistor("R1", vdd, c.node("out"), 1e3);
  c.add_resistor("R2", c.find_node("out"), 0, 2e3);
  const auto op = spice::run_op(c);  // clean circuit still solves
  EXPECT_NEAR(op.voltage(c.find_node("out")), 1.0 * 2e3 / 3e3, 1e-6);

  spice::Circuit broken;
  const auto n = broken.node("vdd");
  broken.add_vsource("V1", n, 0, spice::Dc{1.0});
  broken.add_resistor("R1", broken.node("a"), broken.node("b"), 1e3);
  try {
    (void)spice::run_op(broken);
    FAIL() << "expected LintError";
  } catch (const lint::LintError& e) {
    EXPECT_TRUE(has_code(e.report(), "PPD101")) << e.what();
  }
}

// ----------------------------------------------------- pulse-test configs

logic::PulseTest c17_test(const logic::Netlist& nl) {
  // Path 1 -> 10 -> 22 with side inputs justified non-controlling:
  // inputs (1,2,3,6,7) = (0,0,1,1,0) gives 11=0, 16=1 on both phases.
  logic::PulseTest t;
  t.path.nets = {nl.find("1"), nl.find("10"), nl.find("22")};
  t.vector = {false, false, true, true, false};
  t.positive_pulse = true;
  t.w_in = 0.5e-9;
  t.w_th = 0.05e-9;
  return t;
}

TEST(PulseTestLint, WellFormedTestPasses) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  const Report r = logic::lint_pulse_test(nl, lib, c17_test(nl));
  EXPECT_EQ(r.count(Severity::kError), 0u) << to_text(r);
}

TEST(PulseTestLint, ControllingSideInputIsPpd201) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  logic::PulseTest t = c17_test(nl);
  t.vector[2] = false;  // input 3 = 0 controls NAND gate 10
  const Report r = logic::lint_pulse_test(nl, lib, t);
  EXPECT_TRUE(has_code(r, "PPD201"));
}

TEST(PulseTestLint, BrokenPathIsPpd202) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  logic::PulseTest t = c17_test(nl);
  t.path.nets = {nl.find("1"), nl.find("11")};  // 1 is not a fanin of 11
  const Report r = logic::lint_pulse_test(nl, lib, t);
  EXPECT_TRUE(has_code(r, "PPD202"));
}

TEST(PulseTestLint, NonPositiveWidthsArePpd203) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  logic::PulseTest t = c17_test(nl);
  t.w_in = 0.0;
  t.w_th = -1e-12;
  const Report r = logic::lint_pulse_test(nl, lib, t);
  EXPECT_EQ(count_code(r, "PPD203"), 2u);
}

TEST(PulseTestLint, InfeasibleThresholdIsPpd204) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  logic::PulseTest t = c17_test(nl);
  t.w_th = 10.0 * t.w_in;  // no chain output can exceed this
  const Report r = logic::lint_pulse_test(nl, lib, t);
  EXPECT_TRUE(has_code(r, "PPD204"));
}

TEST(PulseTestLint, VectorArityMismatchIsPpd206) {
  const logic::Netlist nl = logic::c17();
  const auto lib = logic::GateTimingLibrary::generic();
  logic::PulseTest t = c17_test(nl);
  t.vector.pop_back();
  const Report r = logic::lint_pulse_test(nl, lib, t);
  EXPECT_TRUE(has_code(r, "PPD206"));
}

}  // namespace
}  // namespace ppd
