// ppd::cache — the solve-reuse layer. Covers the Hasher's aliasing
// guarantees, the sharded LRU's bookkeeping (hits, eviction, kill switch,
// concurrent traffic), the circuit content hashes, the Newton warm-start,
// and the headline contract: cached and uncached sweeps are bit-identical
// at any thread count.
#include "ppd/cache/solve_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "ppd/cells/path.hpp"
#include "ppd/core/coverage.hpp"
#include "ppd/core/measure.hpp"
#include "ppd/core/pulse_test.hpp"
#include "ppd/core/rmin.hpp"
#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/spice/hash.hpp"

namespace ppd::cache {
namespace {

/// RAII: run one test against a private cache state — global cache cleared
/// on entry and exit, enablement restored.
class CacheSandbox {
 public:
  CacheSandbox() : was_enabled_(cache_enabled()) {
    set_cache_enabled(true);
    SolveCache::global().clear();
  }
  ~CacheSandbox() {
    SolveCache::global().clear();
    set_cache_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(Hasher, DeterministicAndOrderSensitive) {
  Hasher a, b;
  a.f64(1.5);
  a.u64(7);
  b.f64(1.5);
  b.u64(7);
  EXPECT_EQ(a.value(), b.value());
  Hasher c;
  c.u64(7);
  c.f64(1.5);
  EXPECT_NE(a.value(), c.value());
}

TEST(Hasher, TypeTagsPreventCrossTypeAliasing) {
  Hasher a, b;
  a.u64(0);
  b.f64(0.0);
  EXPECT_NE(a.value(), b.value());
  Hasher t, f;
  t.boolean(true);
  f.boolean(false);
  EXPECT_NE(t.value(), f.value());
}

TEST(Hasher, LengthPrefixPreventsConcatenationAliasing) {
  Hasher a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(Hasher, DoublesHashByBitPattern) {
  Hasher pos, neg;
  pos.f64(0.0);
  neg.f64(-0.0);
  EXPECT_NE(pos.value(), neg.value());
  // Values below any printing precision still key distinct entries.
  Hasher x, y;
  x.f64(1.0);
  y.f64(std::nextafter(1.0, 2.0));
  EXPECT_NE(x.value(), y.value());
}

TEST(SolveCache, RoundTripAndRecency) {
  CacheSandbox sandbox;
  SolveCache cache;
  EXPECT_FALSE(cache.get(42).has_value());
  cache.put(42, {1.0, 2.0, 3.0});
  const auto hit = cache.get(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{1.0, 2.0, 3.0}));
  const auto t = cache.totals();
  EXPECT_EQ(t.hits, 1u);
  EXPECT_EQ(t.misses, 1u);
  EXPECT_EQ(t.entries, 1u);
  EXPECT_GT(t.bytes, 0u);
}

TEST(SolveCache, DuplicatePutKeepsFirstValue) {
  CacheSandbox sandbox;
  SolveCache cache;
  cache.put(9, {1.0});
  cache.put(9, {2.0});  // determinism contract: same key => same bits
  EXPECT_EQ(*cache.get(9), std::vector<double>{1.0});
  EXPECT_EQ(cache.totals().entries, 1u);
}

TEST(SolveCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  CacheSandbox sandbox;
  // Room for roughly one entry per shard; keys in one shard (multiples of
  // 16) compete for a single slot.
  SolveCache cache(16 * 130);
  cache.put(16, std::vector<double>(4, 1.0));
  cache.put(32, std::vector<double>(4, 2.0));
  EXPECT_GT(cache.totals().evictions, 0u);
  EXPECT_FALSE(cache.get(16).has_value());  // LRU victim
  EXPECT_TRUE(cache.get(32).has_value());
}

TEST(SolveCache, KillSwitchMakesItInvisible) {
  CacheSandbox sandbox;
  SolveCache cache;
  set_cache_enabled(false);
  cache.put(5, {1.0});
  EXPECT_FALSE(cache.get(5).has_value());
  const auto t = cache.totals();
  EXPECT_EQ(t.entries, 0u);
  EXPECT_EQ(t.hits, 0u);
  EXPECT_EQ(t.misses, 0u);  // disabled gets don't even count as misses
  set_cache_enabled(true);
  cache.put(5, {1.0});
  EXPECT_TRUE(cache.get(5).has_value());
}

TEST(SolveCache, ShrinkingCapacityEvictsImmediately) {
  CacheSandbox sandbox;
  SolveCache cache;
  for (std::uint64_t k = 0; k < 64; ++k)
    cache.put(k, std::vector<double>(16, 1.0));
  EXPECT_EQ(cache.totals().entries, 64u);
  cache.set_capacity_bytes(16 * 256);
  EXPECT_LT(cache.totals().entries, 64u);
  EXPECT_LE(cache.totals().bytes, cache.capacity_bytes());
}

TEST(SolveCache, ConcurrentMixedTrafficIsSafeAndConsistent) {
  CacheSandbox sandbox;
  SolveCache cache;
  constexpr std::size_t kItems = 512;
  // Every item writes-then-reads its key; keys repeat across items so
  // threads race get/put on shared shards (the interesting TSan surface).
  const auto results = exec::parallel_map(
      kItems,
      [&](std::size_t i) -> double {
        const auto key = static_cast<std::uint64_t>(i % 37);
        cache.put(key, {static_cast<double>(key)});
        const auto hit = cache.get(key);
        return hit.has_value() ? (*hit)[0] : -1.0;
      },
      {});
  for (std::size_t i = 0; i < kItems; ++i)
    EXPECT_EQ(results[i], static_cast<double>(i % 37)) << "item " << i;
  EXPECT_EQ(cache.totals().entries, 37u);
}

TEST(SolveCache, TinyBudgetConcurrentHitsAndEvictionsStayConsistent) {
  // The multi-session service shape: many clients hammering one shared
  // cache whose budget only holds a handful of entries, so every put races
  // ongoing gets with LRU evictions on the same shards. Run with
  // PPD_SANITIZE=thread this is the eviction-path TSan surface; the value
  // assertions check eviction never corrupts a surviving entry.
  CacheSandbox sandbox;
  // The budget is split per shard (capacity / 16): 4000 bytes leaves room
  // for about two entries in each shard, and keys that are multiples of 16
  // all land in shard 0 — so 13 hot keys contend for two slots.
  SolveCache cache(/*capacity_bytes=*/4000);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cache, &corrupt, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto slot = static_cast<std::uint64_t>((t + i) % 13);
        const auto key = slot * 16;  // same shard for every key
        cache.put(key, {static_cast<double>(slot), static_cast<double>(slot)});
        if (const auto hit = cache.get(key)) {
          if (hit->size() != 2 || (*hit)[0] != static_cast<double>(slot))
            corrupt.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  const auto totals = cache.totals();
  // Quiescent state: the shard is back under (or at the keep-one floor of)
  // its slice of the budget despite the concurrent eviction storm.
  EXPECT_LE(totals.entries, 2u);
  EXPECT_GT(totals.evictions, 0u);
  EXPECT_GT(totals.hits, 0u);
}

cells::Path make_inverter_chain(std::size_t n) {
  cells::PathOptions opt;
  opt.kinds.assign(n, cells::GateKind::kInv);
  return cells::build_path(cells::Process{}, opt, nullptr);
}

TEST(CircuitHash, ContentAddressesNotIdentities) {
  cells::Path a = make_inverter_chain(3);
  cells::Path b = make_inverter_chain(3);
  EXPECT_EQ(spice::circuit_content_hash(a.netlist().circuit()),
            spice::circuit_content_hash(b.netlist().circuit()));
  cells::Path c = make_inverter_chain(4);
  EXPECT_NE(spice::circuit_content_hash(a.netlist().circuit()),
            spice::circuit_content_hash(c.netlist().circuit()));
}

TEST(CircuitHash, OpViewCollapsesPulseWidths) {
  // Two stimuli that differ only in pulse width are the same system at
  // t = 0 (the OP never sees the waveform) but different systems overall —
  // the equivalence the transfer_function warm-start rides on.
  cells::Path a = make_inverter_chain(3);
  cells::Path b = make_inverter_chain(3);
  a.drive_pulse(true, 0.2e-9, 0.3e-9);
  b.drive_pulse(true, 0.4e-9, 0.3e-9);
  EXPECT_NE(spice::circuit_content_hash(a.netlist().circuit()),
            spice::circuit_content_hash(b.netlist().circuit()));
  Hasher ha, hb;
  spice::hash_circuit_op(ha, a.netlist().circuit());
  spice::hash_circuit_op(hb, b.netlist().circuit());
  EXPECT_EQ(ha.value(), hb.value());
}

TEST(WarmStart, RepeatOpIsBitIdenticalAndCounted) {
  CacheSandbox sandbox;
  cells::Path a = make_inverter_chain(3);
  a.drive_pulse(true, 0.2e-9, 0.3e-9);
  const std::uint64_t hits_before =
      obs::counter("spice.newton.warm_start.hit").value();
  const spice::OpResult cold = spice::run_op(a.netlist().circuit());
  EXPECT_EQ(obs::counter("spice.newton.warm_start.hit").value(), hits_before);

  // Same electrical system, rebuilt from scratch; and a different pulse
  // width, which shares the OP by construction.
  cells::Path b = make_inverter_chain(3);
  b.drive_pulse(true, 0.4e-9, 0.3e-9);
  const spice::OpResult warm = spice::run_op(b.netlist().circuit());
  EXPECT_EQ(obs::counter("spice.newton.warm_start.hit").value(),
            hits_before + 1);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < cold.x.size(); ++i)
    EXPECT_EQ(warm.x[i], cold.x[i]) << "unknown " << i;  // bitwise, not NEAR
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.used_gmin_stepping, cold.used_gmin_stepping);
  EXPECT_EQ(warm.used_source_stepping, cold.used_source_stepping);
}

TEST(WarmStart, DisabledCacheStaysCold) {
  CacheSandbox sandbox;
  set_cache_enabled(false);
  const std::uint64_t hits_before =
      obs::counter("spice.newton.warm_start.hit").value();
  for (int rep = 0; rep < 2; ++rep) {
    cells::Path p = make_inverter_chain(3);
    p.drive_pulse(true, 0.2e-9, 0.3e-9);
    static_cast<void>(spice::run_op(p.netlist().circuit()));
  }
  EXPECT_EQ(obs::counter("spice.newton.warm_start.hit").value(), hits_before);
}

TEST(MeasureCache, RepeatPulseWidthIsBitIdentical) {
  CacheSandbox sandbox;
  core::PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  const core::SimSettings sim;

  core::PathInstance cold_inst = core::make_instance(f, 0.0, nullptr);
  const auto cold =
      core::output_pulse_width(cold_inst.path, core::PulseKind::kH, 0.3e-9, sim);
  const std::uint64_t hits_before = SolveCache::global().totals().hits;
  core::PathInstance warm_inst = core::make_instance(f, 0.0, nullptr);
  const auto warm =
      core::output_pulse_width(warm_inst.path, core::PulseKind::kH, 0.3e-9, sim);
  EXPECT_GT(SolveCache::global().totals().hits, hits_before);
  ASSERT_EQ(warm.has_value(), cold.has_value());
  if (cold.has_value()) {
    EXPECT_EQ(*warm, *cold);  // bitwise
  }
}

core::PathFactory rop_factory() {
  core::PathFactory f;
  f.options.kinds.assign(3, cells::GateKind::kInv);
  faults::PathFaultSpec spec;
  spec.kind = faults::FaultKind::kExternalRopOutput;
  spec.stage = 1;
  f.fault = spec;
  return f;
}

core::CoverageOptions small_coverage_options(int threads) {
  core::CoverageOptions o;
  o.samples = 4;
  o.seed = 2007;
  o.resistances = {2e3, 10e3, 40e3};
  o.threads = threads;
  return o;
}

bool identical(const core::CoverageResult& a, const core::CoverageResult& b) {
  return a.resistances == b.resistances && a.multipliers == b.multipliers &&
         a.coverage == b.coverage && a.simulations == b.simulations;
}

// The headline acceptance criterion: the cache must be invisible to
// results. One cold run (empty cache, caching on), one warm run (populated
// cache), and one run with the kill switch thrown must produce identical
// coverage matrices — at several thread counts.
TEST(CacheDeterminism, CoverageColdWarmAndDisabledAgreeAtAnyThreadCount) {
  CacheSandbox sandbox;
  const core::PathFactory f = rop_factory();
  core::PulseCalibrationOptions popt;
  popt.samples = 3;
  popt.seed = 21;
  popt.w_in_grid = core::linspace(0.10e-9, 0.60e-9, 8);
  const core::PulseTestCalibration cal = core::calibrate_pulse_test(f, popt);

  SolveCache::global().clear();
  const core::CoverageResult cold =
      core::run_pulse_coverage(f, cal, small_coverage_options(1));
  EXPECT_GT(SolveCache::global().totals().entries, 0u);

  for (const int threads : {1, 2, 4}) {
    const core::CoverageResult warm =
        core::run_pulse_coverage(f, cal, small_coverage_options(threads));
    EXPECT_TRUE(identical(warm, cold)) << "warm, threads=" << threads;
  }

  set_cache_enabled(false);
  for (const int threads : {1, 2}) {
    const core::CoverageResult off =
        core::run_pulse_coverage(f, cal, small_coverage_options(threads));
    EXPECT_TRUE(identical(off, cold)) << "disabled, threads=" << threads;
  }
}

// find_r_min re-measures the same (sample, R) pairs across bisection steps;
// the memoized repeats must not move the answer.
TEST(CacheDeterminism, RminColdWarmAndDisabledAgree) {
  CacheSandbox sandbox;
  const core::PathFactory f = rop_factory();
  core::PulseCalibrationOptions popt;
  popt.samples = 3;
  popt.seed = 31;
  popt.w_in_grid = core::linspace(0.10e-9, 0.60e-9, 8);
  const core::PulseTestCalibration cal = core::calibrate_pulse_test(f, popt);
  core::RminOptions opt;
  opt.samples = 3;
  opt.seed = 31;
  opt.r_lo = 500.0;
  opt.r_hi = 500e3;
  opt.bisection_steps = 5;

  SolveCache::global().clear();
  const core::RminResult cold = core::find_r_min(f, cal, opt);
  const std::uint64_t hits_after_cold = SolveCache::global().totals().hits;
  // Bisection repeats identical measurements, so even the cold pass hits.
  EXPECT_GT(hits_after_cold, 0u);

  const core::RminResult warm = core::find_r_min(f, cal, opt);
  EXPECT_GT(SolveCache::global().totals().hits, hits_after_cold);

  set_cache_enabled(false);
  const core::RminResult off = core::find_r_min(f, cal, opt);

  EXPECT_EQ(cold.detectable, warm.detectable);
  EXPECT_EQ(cold.detectable, off.detectable);
  EXPECT_DOUBLE_EQ(cold.r_min, warm.r_min);
  EXPECT_DOUBLE_EQ(cold.r_min, off.r_min);
  EXPECT_EQ(cold.simulations, warm.simulations);
  EXPECT_EQ(cold.simulations, off.simulations);
}

}  // namespace
}  // namespace ppd::cache
