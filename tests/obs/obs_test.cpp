// ppd::obs unit tests: histogram binning, registry merge determinism under
// concurrent recording (TSan-clean by construction), trace-event validity
// (balanced B/E, monotonic timestamps per lane), logger plumbing and the
// shared --metrics/--trace flag extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/run.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"

namespace {

using namespace ppd;

TEST(Histogram, LogSpacedBinEdges) {
  // 3 bins over [1, 1000): edges must be the geometric ladder 1/10/100/1000.
  obs::Histogram& h =
      obs::histogram("test.obs.edges", obs::HistogramSpec{1.0, 1000.0, 3});
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-12);
  EXPECT_NEAR(h.bin_upper(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_lower(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(1), 100.0, 1e-7);
  EXPECT_NEAR(h.bin_lower(2), 100.0, 1e-7);
  EXPECT_NEAR(h.bin_upper(2), 1000.0, 1e-6);
}

TEST(Histogram, RoutesValuesToBinsAndOverflow) {
  obs::Histogram& h =
      obs::histogram("test.obs.routing", obs::HistogramSpec{1.0, 1000.0, 3});
  h.record(0.5);     // underflow
  h.record(-3.0);    // underflow (non-positive)
  h.record(1.0);     // bin 0 (inclusive lower edge)
  h.record(9.9);     // bin 0
  h.record(10.1);    // bin 1
  h.record(999.0);   // bin 2
  h.record(1000.0);  // overflow (exclusive upper edge)
  h.record(5e6);     // overflow

  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto it =
      std::find_if(snap.histograms.begin(), snap.histograms.end(),
                   [](const auto& s) { return s.name == "test.obs.routing"; });
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->count, 8u);
  EXPECT_EQ(it->underflow, 2u);
  EXPECT_EQ(it->overflow, 2u);
  EXPECT_DOUBLE_EQ(it->min, -3.0);
  EXPECT_DOUBLE_EQ(it->max, 5e6);
  // Snapshot keeps only non-empty bins; reconstruct counts keyed by lower
  // edge.
  std::map<int, std::uint64_t> by_edge;
  for (const auto& b : it->bins)
    by_edge[static_cast<int>(std::lround(b.lo))] = b.count;
  EXPECT_EQ(by_edge[1], 2u);
  EXPECT_EQ(by_edge[10], 1u);
  EXPECT_EQ(by_edge[100], 1u);
}

TEST(Registry, ConcurrentRecordingMergesExactly) {
  // Hammer one counter + one histogram from many threads; totals must be
  // exact (relaxed adds into per-thread shards, merged on snapshot), and the
  // test doubles as the TSan gate for the sharded hot path.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  obs::Counter& c = obs::counter("test.obs.concurrent.count");
  obs::Histogram& h = obs::histogram("test.obs.concurrent.hist",
                                     obs::HistogramSpec{1.0, 1e4, 16});
  obs::Gauge& g = obs::gauge("test.obs.concurrent.gauge");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<double>(i % 100 + 1));
        g.set(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const obs::MetricsSnapshot a = obs::Registry::global().snapshot();
  const obs::MetricsSnapshot b = obs::Registry::global().snapshot();
  const auto find_hist = [](const obs::MetricsSnapshot& s, const char* name) {
    return *std::find_if(s.histograms.begin(), s.histograms.end(),
                         [&](const auto& x) { return x.name == name; });
  };
  const auto ha = find_hist(a, "test.obs.concurrent.hist");
  const auto hb = find_hist(b, "test.obs.concurrent.hist");
  EXPECT_EQ(ha.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Quiescent snapshots are deterministic: same totals, same bins.
  EXPECT_EQ(ha.count, hb.count);
  EXPECT_EQ(ha.bins.size(), hb.bins.size());
  for (std::size_t i = 0; i < ha.bins.size(); ++i)
    EXPECT_EQ(ha.bins[i].count, hb.bins[i].count);
}

TEST(Registry, DisabledMetricsRecordNothing) {
  obs::Counter& c = obs::counter("test.obs.disabled");
  obs::set_metrics_enabled(false);
  c.add(7);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Trace, BalancedPairsAndMonotonicPerLane) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        const obs::Span outer("outer");
        const obs::Span inner("inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  session.stop();

  const auto events = session.events();
  ASSERT_FALSE(events.empty());
  std::map<std::uint32_t, int> depth;
  std::map<std::uint32_t, double> last_ts;
  for (const auto& e : events) {
    if (last_ts.count(e.tid)) {
      EXPECT_GE(e.ts_us, last_ts[e.tid]) << "lane " << e.tid;
    }
    last_ts[e.tid] = e.ts_us;
    if (e.phase == 'B') {
      ++depth[e.tid];
    } else {
      ASSERT_EQ(e.phase, 'E');
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0) << "E without matching B on lane " << e.tid;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "lane " << tid;
  session.clear();
}

TEST(Trace, SpanStraddlingStopStaysBalanced) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.start();
  {
    const obs::Span span("straddler");
    session.stop();  // B already recorded: dtor must still write the E
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  session.clear();
}

TEST(Trace, InactiveSessionRecordsNothing) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.clear();
  { const obs::Span span("ignored"); }
  EXPECT_TRUE(session.events().empty());
}

TEST(Trace, ChromeExportShape) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.start();
  { const obs::Span span("exported"); }
  session.stop();
  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"exported\""), std::string::npos);
  session.clear();
}

TEST(Trace, QueryContextScopesAndNests) {
  EXPECT_EQ(obs::query_context(), 0u);
  {
    const obs::ScopedQueryContext outer(7);
    EXPECT_EQ(obs::query_context(), 7u);
    {
      const obs::ScopedQueryContext inner(9);
      EXPECT_EQ(obs::query_context(), 9u);
    }
    EXPECT_EQ(obs::query_context(), 7u);
  }
  EXPECT_EQ(obs::query_context(), 0u);
}

TEST(Trace, SpansCarryQueryContextIntoChromeExport) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.start();
  {
    const obs::ScopedQueryContext ctx(42);
    const obs::Span span("ctx.tagged");
  }
  { const obs::Span span("ctx.untagged"); }
  session.stop();

  const auto events = session.events();
  ASSERT_EQ(events.size(), 4u);
  bool saw_tagged = false;
  for (const auto& e : events)
    if (e.phase == 'B' && e.name == "ctx.tagged") {
      EXPECT_EQ(e.ctx, 42u);
      saw_tagged = true;
    }
  EXPECT_TRUE(saw_tagged);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"args\":{\"qid\":42}"), std::string::npos);
  // The untagged span exports without an args block.
  const auto untagged = json.find("\"name\":\"ctx.untagged\"");
  ASSERT_NE(untagged, std::string::npos);
  EXPECT_EQ(json.find("\"qid\":0"), std::string::npos);
  session.clear();
}

TEST(Trace, RingLimitBoundsLanesAndExportStaysBalanced) {
  obs::TraceSession& session = obs::TraceSession::global();
  session.set_ring_limit(8);
  EXPECT_EQ(session.ring_limit(), 8u);
  session.start();
  for (int i = 0; i < 100; ++i) {
    const obs::Span span("ring.churn");
  }
  session.stop();

  const auto events = session.events();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), 8u);

  // Eviction can orphan a B or E at the ring edge; the exporter must emit
  // stack-matched pairs only.
  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos)
    ++begins, pos += 8;
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos)
    ++ends, pos += 8;
  EXPECT_EQ(begins, ends);
  session.clear();
  session.set_ring_limit(0);
}

TEST(Histogram, QuantileInterpolatesWithinBins) {
  obs::Registry registry;
  obs::Histogram& hist =
      registry.histogram("q", obs::HistogramSpec{1.0, 1e3, 12});
  for (int i = 0; i < 100; ++i) hist.record(10.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  // Every observation sits in one bin: all quantiles land inside it.
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 20.0);
  // Out-of-range p clamps; an empty histogram estimates 0.
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(obs::HistogramSnapshot{}.quantile(0.5), 0.0);
  // Underflow-only data resolves to the recorded min.
  obs::Histogram& under =
      registry.histogram("u", obs::HistogramSpec{1.0, 1e3, 12});
  under.record(0.25);
  const auto snap2 = registry.snapshot();
  for (const auto& hs : snap2.histograms) {
    if (hs.name == "u") {
      EXPECT_DOUBLE_EQ(hs.quantile(0.5), 0.25);
    }
  }
}

TEST(Metrics, SnapshotDeltaSubtractsWindowTotals) {
  obs::Registry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(1.0);
  registry.histogram("h", obs::HistogramSpec{1.0, 1e3, 12}).record(5.0);
  const auto older = registry.snapshot();

  registry.counter("c").add(2);
  registry.counter("fresh").add(7);
  registry.gauge("g").set(4.0);
  registry.histogram("h").record(6.0);
  registry.histogram("h").record(7.0);
  const auto newer = registry.snapshot();

  const auto delta = obs::snapshot_delta(older, newer);
  for (const auto& [name, value] : delta.counters) {
    if (name == "c") {
      EXPECT_EQ(value, 2u);
    }
    if (name == "fresh") {
      EXPECT_EQ(value, 7u);  // absent in older: counts from zero
    }
  }
  for (const auto& [name, value] : delta.gauges) {
    if (name == "g") {
      EXPECT_DOUBLE_EQ(value, 4.0);  // instantaneous
    }
  }
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(delta.histograms[0].sum, 13.0);

  std::ostringstream os;
  obs::write_histogram_json(os, delta.histograms[0]);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"bins\":["), std::string::npos);
}

TEST(MetricsJson, EmbedsMetaAndSeries) {
  obs::counter("test.obs.json").add(3);
  std::ostringstream os;
  obs::write_metrics_json(os, obs::Registry::global().snapshot(),
                          obs::run_meta_json(42, 4));
  const std::string json = os.str();
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json\": 3"), std::string::npos);
  // Crude structural check: braces and brackets balance.
  long braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Log, LevelParsingAndFiltering) {
  EXPECT_EQ(obs::log_level_from_string("WARN"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::log_level_from_string("debug"), obs::LogLevel::kDebug);
  EXPECT_THROW((void)obs::log_level_from_string("loud"), ppd::ParseError);

  obs::Logger& logger = obs::Logger::global();
  std::ostringstream sink;
  logger.set_text_stream(&sink);
  logger.set_level(obs::LogLevel::kWarn);
  obs::log_info("test", "below threshold");
  obs::log_warn("test", "visible", {{"k", "v"}});
  logger.set_text_stream(nullptr);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("below threshold"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("k=v"), std::string::npos);
}

TEST(Log, RateLimitWindow) {
  obs::RateLimit limit(3, /*window_seconds=*/3600.0);
  EXPECT_TRUE(limit.allow());
  EXPECT_TRUE(limit.allow());
  EXPECT_TRUE(limit.allow());
  EXPECT_FALSE(limit.allow());
  EXPECT_FALSE(limit.allow());
  EXPECT_EQ(limit.suppressed(), 2u);
}

TEST(RunOptions, ExtractStripsObsFlagsOnly) {
  const char* raw[] = {"ppdtool",          "--metrics=m.json",
                       "coverage",         "--trace=t.json",
                       "--samples=8",      "--log-level=debug",
                       "--metrics-format=text"};
  std::vector<std::string> storage(std::begin(raw), std::end(raw));
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  const obs::RunOptions opts = obs::extract_run_options(argc, argv.data());
  EXPECT_EQ(opts.metrics_path, "m.json");
  EXPECT_EQ(opts.metrics_format, "text");
  EXPECT_EQ(opts.trace_path, "t.json");
  EXPECT_EQ(opts.log_level, "debug");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "ppdtool");
  EXPECT_STREQ(argv[1], "coverage");
  EXPECT_STREQ(argv[2], "--samples=8");
  EXPECT_NE(opts.command.find("--metrics=m.json"), std::string::npos);

  obs::RunOptions partial;
  EXPECT_FALSE(obs::consume_run_flag("--samples=8", partial));
  EXPECT_TRUE(obs::consume_run_flag("--log-json=l.jsonl", partial));
  EXPECT_EQ(partial.log_json_path, "l.jsonl");
}

}  // namespace
