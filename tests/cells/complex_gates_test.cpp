// AOI21 / OAI21 complex gates: structure, full DC truth tables, side-input
// tie values, and pulse propagation through mixed paths containing them.
#include <gtest/gtest.h>

#include "ppd/cells/path.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::cells {
namespace {

TEST(ComplexGates, Metadata) {
  EXPECT_EQ(gate_input_count(GateKind::kAoi21), 3);
  EXPECT_EQ(gate_input_count(GateKind::kOai21), 3);
  EXPECT_TRUE(gate_inverting(GateKind::kAoi21));
  EXPECT_TRUE(gate_inverting(GateKind::kOai21));
  // AOI21 path on input a: b high, c low.
  EXPECT_TRUE(gate_side_tie_high(GateKind::kAoi21, 1));
  EXPECT_FALSE(gate_side_tie_high(GateKind::kAoi21, 2));
  // OAI21 path on input a: b low, c high.
  EXPECT_FALSE(gate_side_tie_high(GateKind::kOai21, 1));
  EXPECT_TRUE(gate_side_tie_high(GateKind::kOai21, 2));
  // Simple gates defer to the single non-controlling value.
  EXPECT_TRUE(gate_side_tie_high(GateKind::kNand2, 1));
  EXPECT_FALSE(gate_side_tie_high(GateKind::kNor2, 2));
}

TEST(ComplexGates, Structure) {
  Netlist nl{Process{}};
  auto& c = nl.circuit();
  const GateId aoi = nl.add_gate(GateKind::kAoi21, "g0",
                                 {c.node("a"), c.node("b"), c.node("x")}, "o0");
  const GateInst& inst = nl.gate(aoi);
  EXPECT_EQ(inst.pullup.size(), 3u);
  EXPECT_EQ(inst.pulldown.size(), 3u);
  EXPECT_EQ(inst.pu_rail.size(), 2u);  // parallel PMOS pair touches VDD
  EXPECT_EQ(inst.pd_rail.size(), 2u);  // nb and nc touch GND
  EXPECT_EQ(inst.input_pins.size(), 3u);
  for (const auto& pins : inst.input_pins) EXPECT_EQ(pins.size(), 2u);
}

class ComplexGateTruth
    : public ::testing::TestWithParam<std::tuple<GateKind, int>> {};

TEST_P(ComplexGateTruth, DcMatchesBoolean) {
  // Property: the transistor network realizes the boolean function at every
  // input corner. Parameter int encodes inputs abc as bits 0..2.
  const auto [kind, bits] = GetParam();
  const bool a = (bits & 1) != 0, b = (bits & 2) != 0, x = (bits & 4) != 0;
  const bool expected = kind == GateKind::kAoi21 ? !((a && b) || x)
                                                 : !((a || b) && x);
  Process proc;
  Netlist nl(proc);
  const auto tie = [&](bool v) { return v ? nl.tie_high() : nl.tie_low(); };
  nl.add_gate(kind, "g", {tie(a), tie(b), tie(x)}, "o");
  const auto op = spice::run_op(nl.circuit());
  const double v = op.voltage(nl.circuit().find_node("o"));
  if (expected)
    EXPECT_GT(v, 0.9 * proc.vdd) << "abc=" << bits;
  else
    EXPECT_LT(v, 0.1 * proc.vdd) << "abc=" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    AllCorners, ComplexGateTruth,
    ::testing::Combine(::testing::Values(GateKind::kAoi21, GateKind::kOai21),
                       ::testing::Range(0, 8)));

TEST(ComplexGates, PathWithComplexGatesPropagatesPulse) {
  Process proc;
  PathOptions po;
  po.kinds = {GateKind::kInv, GateKind::kAoi21, GateKind::kOai21,
              GateKind::kInv};
  Path path = build_path(proc, po);
  EXPECT_EQ(path.inversions(), 4);
  path.drive_pulse(true, 0.45e-9, 0.3e-9);
  spice::TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  opt.adaptive = true;
  const auto res = spice::run_transient(path.netlist().circuit(), opt);
  const auto w =
      wave::pulse_width(res.wave(path.output()), proc.vdd / 2, true);
  ASSERT_TRUE(w.has_value()) << "pulse died in the complex-gate path";
  EXPECT_GT(*w, 0.25e-9);
}

TEST(ComplexGates, TransitionPropagatesThroughAoiPath) {
  Process proc;
  PathOptions po;
  po.kinds = {GateKind::kAoi21, GateKind::kNand2};
  Path path = build_path(proc, po);
  path.drive_transition(true, 0.3e-9);
  spice::TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  opt.adaptive = true;
  const auto res = spice::run_transient(path.netlist().circuit(), opt);
  const auto d = wave::propagation_delay(
      res.wave(path.input()), res.wave(path.output()), proc.vdd / 2,
      wave::Edge::kRise,
      path.same_polarity() ? wave::Edge::kRise : wave::Edge::kFall);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
}

}  // namespace
}  // namespace ppd::cells
