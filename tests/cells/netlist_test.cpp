#include "ppd/cells/netlist.hpp"

#include <gtest/gtest.h>

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"

namespace ppd::cells {
namespace {

TEST(GateKindMeta, InputCounts) {
  EXPECT_EQ(gate_input_count(GateKind::kInv), 1);
  EXPECT_EQ(gate_input_count(GateKind::kNand2), 2);
  EXPECT_EQ(gate_input_count(GateKind::kNand3), 3);
  EXPECT_EQ(gate_input_count(GateKind::kNor3), 3);
  EXPECT_EQ(gate_input_count(GateKind::kBuf), 1);
}

TEST(GateKindMeta, InvertingFlags) {
  EXPECT_TRUE(gate_inverting(GateKind::kInv));
  EXPECT_TRUE(gate_inverting(GateKind::kNor2));
  EXPECT_FALSE(gate_inverting(GateKind::kAnd2));
  EXPECT_FALSE(gate_inverting(GateKind::kBuf));
}

TEST(GateKindMeta, NonControllingValues) {
  EXPECT_TRUE(gate_noncontrolling_high(GateKind::kNand2));   // NC of NAND is 1
  EXPECT_FALSE(gate_noncontrolling_high(GateKind::kNor2));   // NC of NOR is 0
}

TEST(Netlist, WrongArityThrows) {
  Netlist nl{Process{}};
  const spice::NodeId a = nl.circuit().node("a");
  EXPECT_THROW(static_cast<void>(nl.add_gate(GateKind::kNand2, "g", {a}, "o")), PreconditionError);
}

TEST(Netlist, InverterStructure) {
  Netlist nl{Process{}};
  const spice::NodeId a = nl.circuit().node("a");
  const GateId g = nl.add_gate(GateKind::kInv, "g", {a}, "o");
  const GateInst& inst = nl.gate(g);
  EXPECT_EQ(inst.pullup.size(), 1u);
  EXPECT_EQ(inst.pulldown.size(), 1u);
  EXPECT_EQ(inst.pu_rail.size(), 1u);
  EXPECT_EQ(inst.pd_rail.size(), 1u);
  EXPECT_EQ(inst.output_drains.size(), 2u);
  ASSERT_EQ(inst.input_pins.size(), 1u);
  EXPECT_EQ(inst.input_pins[0].size(), 2u);  // both transistor gates
  EXPECT_FALSE(inst.caps.empty());
}

TEST(Netlist, Nand2Structure) {
  Netlist nl{Process{}};
  auto& c = nl.circuit();
  const GateId g =
      nl.add_gate(GateKind::kNand2, "g", {c.node("a"), c.node("b")}, "o");
  const GateInst& inst = nl.gate(g);
  EXPECT_EQ(inst.pullup.size(), 2u);
  EXPECT_EQ(inst.pulldown.size(), 2u);
  EXPECT_EQ(inst.pu_rail.size(), 2u);  // parallel PMOS: both touch VDD
  EXPECT_EQ(inst.pd_rail.size(), 1u);  // series NMOS: one touches GND
  // Output drains: both PMOS plus the top NMOS.
  EXPECT_EQ(inst.output_drains.size(), 3u);
}

TEST(Netlist, Nor2Structure) {
  Netlist nl{Process{}};
  auto& c = nl.circuit();
  const GateId g =
      nl.add_gate(GateKind::kNor2, "g", {c.node("a"), c.node("b")}, "o");
  const GateInst& inst = nl.gate(g);
  EXPECT_EQ(inst.pu_rail.size(), 1u);  // series PMOS
  EXPECT_EQ(inst.pd_rail.size(), 2u);  // parallel NMOS
}

TEST(Netlist, And2IsCompositeWithInverterNetworks) {
  Netlist nl{Process{}};
  auto& c = nl.circuit();
  const GateId g =
      nl.add_gate(GateKind::kAnd2, "g", {c.node("a"), c.node("b")}, "o");
  const GateInst& inst = nl.gate(g);
  // The output-stage inverter defines the rail metadata.
  EXPECT_EQ(inst.pu_rail.size(), 1u);
  EXPECT_EQ(inst.pd_rail.size(), 1u);
  EXPECT_EQ(inst.pullup.size(), 3u);   // 2 NAND PMOS + 1 INV PMOS
  EXPECT_EQ(inst.pulldown.size(), 3u);
}

class GateDcTruth : public ::testing::TestWithParam<
                        std::tuple<GateKind, int, int, int>> {};

TEST_P(GateDcTruth, OutputMatchesBoolean) {
  // Property: the transistor-level gate reproduces its boolean function at
  // DC for every input corner.
  const auto [kind, a_high, b_high, expected_high] = GetParam();
  Process proc;
  Netlist nl(proc);
  auto& c = nl.circuit();
  std::vector<spice::NodeId> ins;
  ins.push_back(a_high != 0 ? nl.tie_high() : nl.tie_low());
  if (gate_input_count(kind) >= 2)
    ins.push_back(b_high != 0 ? nl.tie_high() : nl.tie_low());
  while (static_cast<int>(ins.size()) < gate_input_count(kind))
    ins.push_back(nl.tie_high());
  nl.add_gate(kind, "g", ins, "o");
  const auto op = spice::run_op(c);
  const double v = op.voltage(c.find_node("o"));
  if (expected_high != 0)
    EXPECT_GT(v, 0.9 * proc.vdd);
  else
    EXPECT_LT(v, 0.1 * proc.vdd);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, GateDcTruth,
    ::testing::Values(
        std::tuple{GateKind::kInv, 0, 0, 1}, std::tuple{GateKind::kInv, 1, 0, 0},
        std::tuple{GateKind::kBuf, 0, 0, 0}, std::tuple{GateKind::kBuf, 1, 0, 1},
        std::tuple{GateKind::kNand2, 0, 0, 1},
        std::tuple{GateKind::kNand2, 0, 1, 1},
        std::tuple{GateKind::kNand2, 1, 0, 1},
        std::tuple{GateKind::kNand2, 1, 1, 0},
        std::tuple{GateKind::kNor2, 0, 0, 1},
        std::tuple{GateKind::kNor2, 0, 1, 0},
        std::tuple{GateKind::kNor2, 1, 0, 0},
        std::tuple{GateKind::kNor2, 1, 1, 0},
        std::tuple{GateKind::kAnd2, 1, 1, 1},
        std::tuple{GateKind::kAnd2, 1, 0, 0},
        std::tuple{GateKind::kOr2, 0, 0, 0},
        std::tuple{GateKind::kOr2, 0, 1, 1}));

TEST(Netlist, VariationScalesTransistors) {
  // A fixed variation source must change the stored MOSFET parameters.
  class Fixed : public VariationSource {
   public:
    TransistorVariation transistor() override { return {1.1, 0.9, 1.2}; }
    double cap_mult() override { return 1.3; }
  };
  Process proc;
  Netlist nominal(proc);
  Netlist varied(proc);
  Fixed fixed;
  varied.set_variation(&fixed);
  const spice::NodeId a0 = nominal.circuit().node("a");
  const spice::NodeId a1 = varied.circuit().node("a");
  const GateId g0 = nominal.add_gate(GateKind::kInv, "g", {a0}, "o");
  const GateId g1 = varied.add_gate(GateKind::kInv, "g", {a1}, "o");
  const auto& m0 =
      nominal.circuit().mosfet(nominal.gate(g0).pulldown[0]).params();
  const auto& m1 = varied.circuit().mosfet(varied.gate(g1).pulldown[0]).params();
  EXPECT_NEAR(m1.vt0, 1.1 * m0.vt0, 1e-15);
  EXPECT_NEAR(m1.kp, 0.9 * m0.kp, 1e-15);
  EXPECT_NEAR(m1.w, 1.2 * m0.w, 1e-15);
}

}  // namespace
}  // namespace ppd::cells
