#include "ppd/cells/path.hpp"

#include <gtest/gtest.h>

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::cells {
namespace {

TEST(Path, SevenGatePathShape) {
  const PathOptions po = seven_gate_path();
  EXPECT_EQ(po.kinds.size(), 7u);
  Process proc;
  Path path = build_path(proc, po);
  EXPECT_EQ(path.length(), 7u);
  EXPECT_EQ(path.stage_outputs().size(), 7u);
  EXPECT_EQ(path.inversions(), 7);
  EXPECT_FALSE(path.same_polarity());
}

TEST(Path, RejectsNonPrimitiveKinds) {
  PathOptions po;
  po.kinds = {GateKind::kAnd2};
  EXPECT_THROW(static_cast<void>(build_path(Process{}, po)), PreconditionError);
}

TEST(Path, RejectsEmpty) {
  EXPECT_THROW(static_cast<void>(build_path(Process{}, PathOptions{})), PreconditionError);
}

TEST(Path, SensitizedTransitionPropagates) {
  // A rising input transition reaches the PO of the mixed 7-gate path with
  // the correct (odd-parity) polarity.
  Process proc;
  Path path = build_path(proc, seven_gate_path());
  path.drive_transition(/*rising=*/true, 0.3e-9);

  spice::TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const auto res = run_transient(path.netlist().circuit(), opt);
  const auto& out = res.wave(path.output());
  // Odd inversions: rising input -> falling output.
  EXPECT_GT(out.at(0.0), 0.9 * proc.vdd);
  EXPECT_LT(out.at(3e-9), 0.1 * proc.vdd);
  const auto d = wave::propagation_delay(res.wave(path.input()), out,
                                         proc.vdd / 2, wave::Edge::kRise,
                                         wave::Edge::kFall);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.1e-9);
  EXPECT_LT(*d, 2e-9);
}

TEST(Path, DelayGrowsWithLength) {
  Process proc;
  auto delay_of = [&](std::size_t n) {
    PathOptions po;
    po.kinds.assign(n, GateKind::kInv);
    Path path = build_path(proc, po);
    path.drive_transition(true, 0.3e-9);
    spice::TransientOptions opt;
    opt.t_stop = 4e-9;
    opt.dt = 2e-12;
    const auto res = run_transient(path.netlist().circuit(), opt);
    const bool out_rises = path.same_polarity();
    const auto d = wave::propagation_delay(
        res.wave(path.input()), res.wave(path.output()), proc.vdd / 2,
        wave::Edge::kRise, out_rises ? wave::Edge::kRise : wave::Edge::kFall);
    EXPECT_TRUE(d.has_value());
    return d.value_or(0.0);
  };
  const double d3 = delay_of(3);
  const double d6 = delay_of(6);
  EXPECT_GT(d6, 1.5 * d3);
}

TEST(Path, DrivePulseValidatesWidth) {
  Process proc;
  PathOptions po;
  po.kinds = {GateKind::kInv};
  Path path = build_path(proc, po);
  EXPECT_THROW(path.drive_pulse(true, -1.0, 0.3e-9), PreconditionError);
  // Width must exceed the source transition time.
  EXPECT_THROW(path.drive_pulse(true, po.input_transition * 0.5, 0.3e-9),
               PreconditionError);
}

TEST(Path, RestLevelFollowsDriveConfig) {
  Process proc;
  PathOptions po;
  po.kinds = {GateKind::kInv};
  Path path = build_path(proc, po);
  path.drive_pulse(/*positive=*/true, 0.4e-9, 0.5e-9);
  EXPECT_DOUBLE_EQ(path.rest_level(), 0.0);
  path.drive_pulse(/*positive=*/false, 0.4e-9, 0.5e-9);
  EXPECT_DOUBLE_EQ(path.rest_level(), proc.vdd);
}

TEST(Path, ExtraFanoutAddsGates) {
  Process proc;
  PathOptions po;
  po.kinds = {GateKind::kInv, GateKind::kInv};
  po.extra_fanout = 2;
  Path path = build_path(proc, po);
  // 2 path gates + 4 dummy loads.
  EXPECT_EQ(path.netlist().gate_count(), 6u);
}

}  // namespace
}  // namespace ppd::cells
