// Transistor-level pulse catcher: width thresholding, tuning knobs, and an
// end-to-end hardware fault detection (catcher at a faulty path's output).
#include "ppd/cells/sensor.hpp"

#include <gtest/gtest.h>

#include "ppd/cells/path.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"

namespace ppd::cells {
namespace {

/// Final CAUGHT level for a positive pulse of `width` fed to a catcher.
double caught_level(double width, const PulseCatcherOptions& options) {
  Process proc;
  Netlist nl(proc);
  auto& c = nl.circuit();
  const spice::NodeId x = c.node("x");
  spice::Pulse p;
  p.v1 = 0.0;
  p.v2 = proc.vdd;
  p.delay = 0.5e-9;
  p.rise = 30e-12;
  p.fall = 30e-12;
  p.width = width;
  c.add_vsource("Vx", x, spice::kGround, p);
  const PulseCatcher pc = add_pulse_catcher(nl, "pc", x, options);
  spice::TransientOptions t;
  t.t_stop = 2.5e-9;
  t.dt = 2e-12;
  t.adaptive = true;
  const auto res = spice::run_transient(c, t);
  return res.wave(pc.caught).at(t.t_stop);
}

TEST(PulseCatcher, ValidatesOptions) {
  Process proc;
  Netlist nl(proc);
  const spice::NodeId x = nl.circuit().node("x");
  PulseCatcherOptions o;
  o.delay_stages = 3;  // odd
  EXPECT_THROW(static_cast<void>(add_pulse_catcher(nl, "pc", x, o)),
               PreconditionError);
  o.delay_stages = 0;
  EXPECT_THROW(static_cast<void>(add_pulse_catcher(nl, "pc", x, o)),
               PreconditionError);
  o = {};
  o.keep_cap = -1.0;
  EXPECT_THROW(static_cast<void>(add_pulse_catcher(nl, "pc", x, o)),
               PreconditionError);
}

TEST(PulseCatcher, ThresholdsPulseWidth) {
  PulseCatcherOptions o;
  o.delay_stages = 2;
  const Process proc;
  EXPECT_LT(caught_level(20e-12, o), 0.3);              // too narrow: ignored
  EXPECT_GT(caught_level(80e-12, o), 0.9 * proc.vdd);   // wide: caught
  EXPECT_GT(caught_level(300e-12, o), 0.9 * proc.vdd);  // very wide: caught
}

/// Bisected minimal caught width for a given catcher configuration.
double measure_threshold(const PulseCatcherOptions& options) {
  const Process proc;
  double lo = 10e-12, hi = 400e-12;
  EXPECT_GT(caught_level(hi, options), 0.5 * proc.vdd) << "even 400 ps missed";
  for (int i = 0; i < 7; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (caught_level(mid, options) > 0.5 * proc.vdd)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

TEST(PulseCatcher, ThresholdGrowsWithDelayChain) {
  // Property: the minimal caught width grows with the delay-chain length —
  // the designer's coarse w_th knob.
  double prev = 0.0;
  for (int stages : {2, 4, 6}) {
    PulseCatcherOptions o;
    o.delay_stages = stages;
    const double th = measure_threshold(o);
    EXPECT_GT(th, prev) << "threshold not monotone at " << stages << " stages";
    EXPECT_GT(th, 20e-12);
    EXPECT_LT(th, 400e-12);
    prev = th;
  }
}

TEST(PulseCatcher, KeepCapRaisesThreshold) {
  PulseCatcherOptions small;
  small.delay_stages = 2;
  small.keep_cap = 4e-15;
  PulseCatcherOptions big = small;
  big.keep_cap = 30e-15;
  const Process proc;
  // A width the small-cap catcher sees but the big-cap one misses.
  const double w = 55e-12;
  EXPECT_GT(caught_level(w, small), 0.5 * proc.vdd);
  EXPECT_LT(caught_level(w, big), 0.5 * proc.vdd);
}

TEST(PulseCatcher, InvertedInputCatchesNegativePulses) {
  Process proc;
  Netlist nl(proc);
  auto& c = nl.circuit();
  const spice::NodeId x = c.node("x");
  spice::Pulse p;
  p.v1 = proc.vdd;  // rest high, negative pulse
  p.v2 = 0.0;
  p.delay = 0.5e-9;
  p.rise = 30e-12;
  p.fall = 30e-12;
  p.width = 150e-12;
  c.add_vsource("Vx", x, spice::kGround, p);
  PulseCatcherOptions o;
  o.invert_input = true;
  const PulseCatcher pc = add_pulse_catcher(nl, "pc", x, o);
  spice::TransientOptions t;
  t.t_stop = 2.5e-9;
  t.dt = 2e-12;
  t.adaptive = true;
  const auto res = spice::run_transient(c, t);
  EXPECT_GT(res.wave(pc.caught).at(t.t_stop), 0.9 * proc.vdd);
}

TEST(PulseCatcher, HardwareFaultDetectionEndToEnd) {
  // The paper's full test loop in silicon: pulse generator at the path
  // input, transition sensor at the path output. The fault-free device
  // raises CAUGHT; a device with a 20 kOhm open does not.
  auto caught = [](double fault_r) {
    Process proc;
    PathOptions po;
    po.kinds.assign(5, GateKind::kInv);
    Path path = build_path(proc, po);
    if (fault_r > 0.0) {
      faults::PathFaultSpec spec;
      spec.kind = faults::FaultKind::kExternalRopOutput;
      spec.stage = 1;
      (void)faults::inject_on_path(path, spec, fault_r);
    }
    // Odd inversions: positive input pulse -> negative output pulse.
    PulseCatcherOptions o;
    o.invert_input = true;
    o.delay_stages = 4;
    const PulseCatcher pc =
        add_pulse_catcher(path.netlist(), "pc", path.output(), o);
    path.drive_pulse(/*positive=*/true, 0.35e-9, 0.5e-9);
    spice::TransientOptions t;
    t.t_stop = 4e-9;
    t.dt = 2e-12;
    t.adaptive = true;
    const auto res = spice::run_transient(path.netlist().circuit(), t);
    return res.wave(pc.caught).at(t.t_stop) > proc.vdd / 2;
  };
  EXPECT_TRUE(caught(0.0)) << "fault-free pulse not sensed";
  EXPECT_FALSE(caught(20e3)) << "dampened pulse still sensed";
}

}  // namespace
}  // namespace ppd::cells
