// Bus substrate: construction, propagation, crosstalk, and the defect
// behaviours the handshake test application relies on.
#include "ppd/cells/bus.hpp"

#include <gtest/gtest.h>

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::cells {
namespace {

spice::TransientOptions bus_tran(double t_stop = 4e-9) {
  spice::TransientOptions t;
  t.t_stop = t_stop;
  t.dt = 2e-12;
  t.adaptive = true;
  return t;
}

TEST(Bus, ConstructionShape) {
  Process proc;
  Netlist nl(proc);
  BusOptions o;
  o.lines = 3;
  o.segments = 5;
  const Bus bus = build_bus(nl, o);
  EXPECT_EQ(bus.inputs.size(), 3u);
  EXPECT_EQ(bus.outputs.size(), 3u);
  ASSERT_EQ(bus.taps.size(), 3u);
  EXPECT_EQ(bus.taps[0].size(), 6u);  // driver out + 5 segment taps
  EXPECT_EQ(bus.segment_resistors[0].size(), 5u);
  EXPECT_EQ(bus.inversions_per_line, 2);
  EXPECT_THROW(build_bus(nl, BusOptions{.lines = 0}), PreconditionError);
}

TEST(Bus, PulseTraversesFaultFreeLine) {
  Process proc;
  Netlist nl(proc);
  const Bus bus = build_bus(nl, BusOptions{});
  drive_bus_pulse(nl, bus, 0, /*positive=*/true, 0.4e-9, 0.4e-9);
  const auto res = spice::run_transient(nl.circuit(), bus_tran());
  // Two inversions: positive pulse in, positive pulse out.
  const auto w = wave::pulse_width(res.wave(bus.outputs[0]), proc.vdd / 2, true);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, 0.4e-9, 0.12e-9);
}

TEST(Bus, RepeaterVariantStillPropagates) {
  Process proc;
  Netlist nl(proc);
  BusOptions o;
  o.repeaters = true;
  const Bus bus = build_bus(nl, o);
  EXPECT_EQ(bus.inversions_per_line, 3);
  drive_bus_pulse(nl, bus, 0, true, 0.4e-9, 0.4e-9);
  const auto res = spice::run_transient(nl.circuit(), bus_tran());
  // Odd inversions: the output pulse is negative.
  const auto w = wave::pulse_width(res.wave(bus.outputs[0]), proc.vdd / 2, false);
  EXPECT_TRUE(w.has_value());
}

TEST(Bus, CouplingProducesCrosstalkOnQuietVictim) {
  Process proc;
  Netlist nl(proc);
  BusOptions o;
  o.lines = 3;
  o.coupling_capacitance = 20e-15;  // aggressive coupling
  const Bus bus = build_bus(nl, o);
  // Aggressors (lines 0 and 2) switch; victim (line 1) held low -> its
  // far end rests high (one inversion from the driver).
  drive_bus_pulse(nl, bus, 0, true, 0.5e-9, 0.4e-9);
  drive_bus_pulse(nl, bus, 2, true, 0.5e-9, 0.4e-9);
  hold_bus_line(nl, bus, 1, false);
  const auto res = spice::run_transient(nl.circuit(), bus_tran());
  const double bump = wave::peak_excursion(res.wave(bus.far_ends[1]));
  EXPECT_GT(bump, 0.1) << "expected visible capacitive crosstalk";
  EXPECT_LT(bump, proc.vdd / 2) << "crosstalk must not flip the victim";
}

TEST(Bus, SeriesOpenDampensThePulse) {
  auto far_pulse = [](double open_ohms) {
    Process proc;
    Netlist nl(proc);
    const Bus bus = build_bus(nl, BusOptions{});
    if (open_ohms > 0.0) (void)inject_bus_open(nl, bus, 0, 2, open_ohms);
    drive_bus_pulse(nl, bus, 0, true, 0.35e-9, 0.4e-9);
    const auto res = spice::run_transient(nl.circuit(), bus_tran());
    return wave::pulse_width(res.wave(bus.outputs[0]), proc.vdd / 2, true);
  };
  const auto clean = far_pulse(0.0);
  ASSERT_TRUE(clean.has_value());
  const auto weak = far_pulse(5e3);
  ASSERT_TRUE(weak.has_value());
  EXPECT_LT(*weak, *clean);
  // A hard open swallows the request pulse completely.
  EXPECT_FALSE(far_pulse(60e3).has_value());
}

TEST(Bus, BridgeCouplesAdjacentLines) {
  Process proc;
  Netlist nl(proc);
  BusOptions o;
  o.lines = 2;
  const Bus bus = build_bus(nl, o);
  (void)inject_bus_bridge(nl, bus, 0, 1, 2, 500.0);
  // Line 0 pulses; line 1 held low (far end rests high).
  drive_bus_pulse(nl, bus, 0, true, 0.4e-9, 0.4e-9);
  hold_bus_line(nl, bus, 1, false);
  const auto res = spice::run_transient(nl.circuit(), bus_tran());
  // The bridge drags the victim's far end well below its rest level.
  EXPECT_GT(wave::peak_excursion(res.wave(bus.far_ends[1])), proc.vdd / 3);
  // And the aggressor's own pulse is degraded by the fight.
  const auto w = wave::pulse_width(res.wave(bus.outputs[0]), proc.vdd / 2, true);
  if (w.has_value()) {
    EXPECT_LT(*w, 0.4e-9);
  }
}

TEST(Bus, InjectionValidation) {
  Process proc;
  Netlist nl(proc);
  const Bus bus = build_bus(nl, BusOptions{});
  EXPECT_THROW(inject_bus_open(nl, bus, 9, 0, 1e3), PreconditionError);
  EXPECT_THROW(inject_bus_open(nl, bus, 0, 9, 1e3), PreconditionError);
  EXPECT_THROW(inject_bus_bridge(nl, bus, 0, 0, 1, 1e3), PreconditionError);
  EXPECT_THROW(drive_bus_pulse(nl, bus, 0, true, 1e-12, 0.4e-9),
               PreconditionError);
}

}  // namespace
}  // namespace ppd::cells
