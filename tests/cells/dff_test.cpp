// Transmission-gate master-slave flip-flop: functional latching, hold
// behaviour, and electrical characterization of the timing numbers the
// DF-test baseline budgets.
#include "ppd/cells/dff.hpp"

#include <gtest/gtest.h>

#include "ppd/spice/analysis.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::cells {
namespace {

struct Fixture {
  Process proc;
  Netlist nl{Process{}};
  DffInst ff;
  spice::DeviceId vd = 0;
  spice::DeviceId vclk = 0;

  Fixture() {
    auto& c = nl.circuit();
    const spice::NodeId d = c.node("d");
    const spice::NodeId clk = c.node("clk");
    vd = c.add_vsource("Vd", d, spice::kGround, spice::Dc{0.0});
    vclk = c.add_vsource("Vclk", clk, spice::kGround, spice::Dc{0.0});
    ff = add_dff(nl, "ff", d, clk);
    nl.add_load("Cq", ff.q, 5e-15);
  }

  spice::TransientResult run(double t_stop) {
    spice::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = 2e-12;
    opt.adaptive = true;
    opt.op.nodesets = {{ff.slave, proc.vdd}, {ff.q, 0.0}};
    return spice::run_transient(nl.circuit(), opt);
  }
};

spice::Pulse clock_train(double vdd, double first_edge, double period) {
  spice::Pulse p;
  p.v2 = vdd;
  p.delay = first_edge - 15e-12;
  p.rise = 30e-12;
  p.fall = 30e-12;
  p.width = period * 0.45;
  p.period = period;
  return p;
}

TEST(Dff, LatchesDataOnRisingEdge) {
  Fixture f;
  // D: 0 -> 1 at 1.5 ns -> 0 at 3.5 ns. Clock edges at 1, 2, 3, 4 ns.
  spice::Pwl d;
  d.points = {{0.0, 0.0},
              {1.5e-9, 0.0},
              {1.53e-9, f.proc.vdd},
              {3.5e-9, f.proc.vdd},
              {3.53e-9, 0.0}};
  f.nl.circuit().vsource(f.vd).set_spec(d);
  f.nl.circuit().vsource(f.vclk).set_spec(clock_train(f.proc.vdd, 1e-9, 1e-9));
  const auto res = f.run(4.8e-9);
  const auto& q = res.wave(f.ff.q);
  // After edge 1 (D=0): Q low. After edge 2 (D=1): Q high. After edge 3
  // (D=1): high. After edge 4 (D=0): low again.
  EXPECT_LT(q.at(1.6e-9), 0.2);
  EXPECT_GT(q.at(2.6e-9), f.proc.vdd - 0.2);
  EXPECT_GT(q.at(3.6e-9), f.proc.vdd - 0.2);
  EXPECT_LT(q.at(4.7e-9), 0.2);
}

TEST(Dff, HoldsWhileClockIdles) {
  Fixture f;
  // One edge latches D=1; D then drops while the clock stays low: Q must
  // keep the stored 1.
  spice::Pwl d;
  d.points = {{0.0, f.proc.vdd}, {1.4e-9, f.proc.vdd}, {1.43e-9, 0.0}};
  f.nl.circuit().vsource(f.vd).set_spec(d);
  spice::Pulse clk;
  clk.v2 = f.proc.vdd;
  clk.delay = 1e-9;
  clk.rise = 30e-12;
  clk.fall = 30e-12;
  clk.width = 0.2e-9;  // single short pulse, then low forever
  f.nl.circuit().vsource(f.vclk).set_spec(clk);
  const auto res = f.run(4e-9);
  const auto& q = res.wave(f.ff.q);
  EXPECT_GT(q.at(1.5e-9), f.proc.vdd - 0.2);
  EXPECT_GT(q.at(4e-9), f.proc.vdd - 0.2) << "stored value leaked away";
}

TEST(Dff, DataAfterEdgeIsNotCaptured) {
  Fixture f;
  // D rises 100 ps AFTER the only rising edge: Q stays low.
  spice::Pwl d;
  d.points = {{0.0, 0.0}, {1.1e-9, 0.0}, {1.13e-9, f.proc.vdd}};
  f.nl.circuit().vsource(f.vd).set_spec(d);
  spice::Pulse clk;
  clk.v2 = f.proc.vdd;
  clk.delay = 1e-9;
  clk.rise = 30e-12;
  clk.fall = 30e-12;
  clk.width = 0.4e-9;
  f.nl.circuit().vsource(f.vclk).set_spec(clk);
  const auto res = f.run(3e-9);
  EXPECT_LT(res.wave(f.ff.q).at(3e-9), 0.2);
}

TEST(Dff, MeasuredTimingIsPlausible) {
  const MeasuredFfTiming m = measure_ff_timing(Process{});
  ASSERT_TRUE(m.valid);
  EXPECT_GT(m.clk_to_q, 10e-12);
  EXPECT_LT(m.clk_to_q, 200e-12);
  EXPECT_GT(m.setup, 0.0);
  EXPECT_LT(m.setup, 200e-12);
  // The DF-test baseline's default budget (60 ps + 40 ps) must be of the
  // same order as the measured silicon: within a factor of 2 each.
  EXPECT_LT(m.clk_to_q, 2 * 60e-12);
  EXPECT_GT(m.clk_to_q, 0.5 * 60e-12);
  EXPECT_LT(m.setup, 2.5 * 40e-12);
}

TEST(Dff, SlowerProcessSlowsTheFlipFlop) {
  Process slow;
  slow.kp_n *= 0.6;
  slow.kp_p *= 0.6;
  const auto nominal = measure_ff_timing(Process{});
  const auto degraded = measure_ff_timing(slow);
  ASSERT_TRUE(nominal.valid);
  ASSERT_TRUE(degraded.valid);
  EXPECT_GT(degraded.clk_to_q, nominal.clk_to_q);
}

}  // namespace
}  // namespace ppd::cells
