#include "ppd/linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "ppd/linalg/dense.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::linalg {
namespace {

TEST(SparseMatrix, SumsDuplicates) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 5.0);
  const SparseMatrix m(b);
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  SparseBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(0, 2, -1.0);
  b.add(1, 1, 3.0);
  b.add(2, 0, 4.0);
  b.add(2, 2, 1.0);
  const SparseMatrix m(b);
  const auto y = m.multiply({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(SparseLu, SolvesDiagonal) {
  SparseBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 4.0);
  b.add(2, 2, 8.0);
  const SparseLu lu{SparseMatrix(b)};
  const auto x = lu.solve({2.0, 4.0, 8.0});
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(SparseLu, RequiresPivoting) {
  SparseBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  const SparseLu lu{SparseMatrix(b)};
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, SingularThrows) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 1.0);  // column 1 empty -> structurally singular
  EXPECT_THROW(SparseLu{SparseMatrix(b)}, NumericalError);
}

class SparseVsDense : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(SparseVsDense, AgreesWithDenseSolver) {
  // Property: sparse and dense LU agree on random sparse systems.
  const auto [n, density] = GetParam();
  mc::Rng rng(99u + static_cast<unsigned>(n * 1000));
  SparseBuilder b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  DenseMatrix d(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c || rng.uniform() < density) {
        double v = rng.uniform(-1.0, 1.0);
        if (r == c) v += static_cast<double>(n);  // keep well-conditioned
        b.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c), v);
        d(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
      }
    }
  }
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.uniform(-5.0, 5.0);

  const auto xs = SparseLu{SparseMatrix(b)}.solve(rhs);
  const auto xd = DenseLu{d}.solve(rhs);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)],
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SparseVsDense,
    ::testing::Values(std::pair{5, 0.5}, std::pair{10, 0.3}, std::pair{20, 0.2},
                      std::pair{40, 0.1}, std::pair{80, 0.05},
                      std::pair{120, 0.03}));

TEST(SparseLu, SolveRhsSizeMismatchThrows) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  const SparseLu lu{SparseMatrix(b)};
  EXPECT_THROW(lu.solve({1.0}), PreconditionError);
}

}  // namespace
}  // namespace ppd::linalg
