#include "ppd/linalg/dense.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::linalg {
namespace {

TEST(DenseMatrix, ZeroInitialized) {
  DenseMatrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(DenseMatrix, IndexOutOfRangeThrows) {
  DenseMatrix m(2, 2);
  EXPECT_THROW(static_cast<void>(std::as_const(m)(2, 0)), PreconditionError);
  EXPECT_THROW(static_cast<void>(std::as_const(m)(0, 2)), PreconditionError);
}

TEST(DenseMatrix, MultiplyIdentity) {
  const DenseMatrix i = DenseMatrix::identity(3);
  const std::vector<double> x{1.0, -2.0, 3.0};
  EXPECT_EQ(i.multiply(x), x);
}

TEST(DenseLu, SolvesSmallSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const DenseLu lu(a);
  const auto x = lu.solve({3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the initial diagonal but nonsingular.
  DenseMatrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const DenseLu lu(a);
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, SingularThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(DenseLu{a}, NumericalError);
}

TEST(DenseLu, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(DenseLu{a}, PreconditionError);
}

TEST(DenseLu, Determinant) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_NEAR(DenseLu(a).determinant(), 10.0, 1e-12);
}

class DenseLuRandom : public ::testing::TestWithParam<int> {};

TEST_P(DenseLuRandom, SolveMatchesMultiply) {
  // Property: for random well-conditioned A and x, solve(A*x) == x.
  const int n = GetParam();
  mc::Rng rng(1234u + static_cast<unsigned>(n));
  DenseMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonal dominance
  }
  std::vector<double> x_ref(static_cast<std::size_t>(n));
  for (auto& v : x_ref) v = rng.uniform(-10.0, 10.0);
  const auto b = a.multiply(x_ref);
  const auto x = DenseLu(a).solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                                          x_ref[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

TEST(Norms, InfAndTwo) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
}

}  // namespace
}  // namespace ppd::linalg
