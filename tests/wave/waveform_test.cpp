#include "ppd/wave/waveform.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ppd/util/error.hpp"

namespace ppd::wave {
namespace {

Waveform ramp() {
  // 0V at t=0 rising linearly to 1V at t=1.
  return Waveform({0.0, 1.0}, {0.0, 1.0});
}

Waveform square_pulse(double t_rise, double t_fall, double v_hi = 1.0) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(t_rise - 1e-3, 0.0);
  w.append(t_rise + 1e-3, v_hi);
  w.append(t_fall - 1e-3, v_hi);
  w.append(t_fall + 1e-3, 0.0);
  w.append(t_fall + 1.0, 0.0);
  return w;
}

TEST(Waveform, AppendRequiresIncreasingTime) {
  Waveform w;
  w.append(0.0, 1.0);
  EXPECT_THROW(w.append(0.0, 2.0), PreconditionError);
  EXPECT_THROW(w.append(-1.0, 2.0), PreconditionError);
}

TEST(Waveform, InterpolatesLinearly) {
  const Waveform w = ramp();
  EXPECT_DOUBLE_EQ(w.at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(w.at(0.25), 0.25);
}

TEST(Waveform, ClampsOutsideRange) {
  const Waveform w = ramp();
  EXPECT_DOUBLE_EQ(w.at(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(5.0), 1.0);
}

TEST(Waveform, MinMax) {
  const Waveform w({0.0, 1.0, 2.0}, {0.5, -1.0, 2.0});
  EXPECT_DOUBLE_EQ(w.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(w.max_value(), 2.0);
}

TEST(FirstCrossing, FindsRise) {
  const Waveform w = ramp();
  const auto t = first_crossing(w, 0.5, Edge::kRise);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
}

TEST(FirstCrossing, MissingEdgeReturnsNullopt) {
  const Waveform w = ramp();
  EXPECT_FALSE(first_crossing(w, 0.5, Edge::kFall).has_value());
  EXPECT_FALSE(first_crossing(w, 2.0, Edge::kRise).has_value());
}

TEST(FirstCrossing, HonoursTFrom) {
  const Waveform w = square_pulse(1.0, 2.0);
  const auto t = first_crossing(w, 0.5, Edge::kRise, 1.5);
  EXPECT_FALSE(t.has_value());  // only one rise, before t_from
}

TEST(Crossings, TagsBothEdges) {
  const Waveform w = square_pulse(1.0, 2.0);
  const auto xs = crossings(w, 0.5);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0].edge, Edge::kRise);
  EXPECT_EQ(xs[1].edge, Edge::kFall);
  EXPECT_LT(xs[0].t, xs[1].t);
}

TEST(PropagationDelay, MeasuresBetweenWaveforms) {
  const Waveform in = square_pulse(1.0, 5.0);
  const Waveform out = square_pulse(1.4, 5.6);
  const auto d = propagation_delay(in, out, 0.5, Edge::kRise, Edge::kRise);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 0.4, 1e-3);
}

TEST(PulseWidth, PositivePulse) {
  const Waveform w = square_pulse(1.0, 2.5);
  const auto width = pulse_width(w, 0.5, /*positive_pulse=*/true);
  ASSERT_TRUE(width.has_value());
  EXPECT_NEAR(*width, 1.5, 1e-3);
}

TEST(PulseWidth, DampenedPulseReturnsNullopt) {
  // Signal that rises but never falls back: not a complete pulse.
  const Waveform w = ramp();
  EXPECT_FALSE(pulse_width(w, 0.5, true).has_value());
  // Flat signal: no pulse at all.
  const Waveform flat({0.0, 1.0}, {0.0, 0.0});
  EXPECT_FALSE(pulse_width(flat, 0.5, true).has_value());
}

TEST(PulseWidth, NegativePulse) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(0.9, 1.0);
  w.append(1.1, 0.0);
  w.append(2.9, 0.0);
  w.append(3.1, 1.0);
  w.append(4.0, 1.0);
  const auto width = pulse_width(w, 0.5, /*positive_pulse=*/false);
  ASSERT_TRUE(width.has_value());
  EXPECT_NEAR(*width, 2.0, 1e-2);
}

TEST(PeakExcursion, MeasuresFromInitialValue) {
  const Waveform w = square_pulse(1.0, 2.0, 0.7);
  EXPECT_NEAR(peak_excursion(w), 0.7, 1e-12);
}

TEST(SlewTime, RisingEdge) {
  const Waveform w = ramp();  // 0->1 over 1s; 10%-90% takes 0.8s
  const auto s = slew_time(w, Edge::kRise, 0.0, 1.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 0.8, 1e-9);
}

TEST(SlewTime, FallingEdge) {
  const Waveform w({0.0, 1.0}, {1.0, 0.0});
  const auto s = slew_time(w, Edge::kFall, 0.0, 1.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 0.8, 1e-9);
}

TEST(WriteCsv, MergesTimeAxes) {
  const Waveform a({0.0, 2.0}, {0.0, 2.0});
  const Waveform b({0.0, 1.0, 2.0}, {1.0, 1.0, 1.0});
  std::ostringstream os;
  write_csv(os, {"a", "b"}, {&a, &b});
  EXPECT_EQ(os.str(), "t,a,b\n0,0,1\n1,1,1\n2,2,1\n");
}

TEST(AsciiPlot, ProducesGrid) {
  const std::string plot = ascii_plot(ramp(), 0.0, 1.0, 10, 4);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(Waveform, EmptyAccessorsThrow) {
  const Waveform w;
  EXPECT_THROW(static_cast<void>(w.t_begin()), PreconditionError);
  EXPECT_THROW(static_cast<void>(w.at(0.0)), PreconditionError);
  EXPECT_THROW(static_cast<void>(peak_excursion(w)), PreconditionError);
}

}  // namespace
}  // namespace ppd::wave
