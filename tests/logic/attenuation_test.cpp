#include "ppd/logic/attenuation.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

GateTiming simple_timing() {
  GateTiming t;
  t.w_block = 50e-12;
  t.w_pass = 150e-12;
  t.shrink = 10e-12;
  return t;
}

TEST(GatePulseOut, ThreeRegions) {
  const GateTiming t = simple_timing();
  EXPECT_DOUBLE_EQ(gate_pulse_out(t, 30e-12), 0.0);        // blocked
  EXPECT_DOUBLE_EQ(gate_pulse_out(t, 50e-12), 0.0);        // boundary
  EXPECT_DOUBLE_EQ(gate_pulse_out(t, 300e-12), 290e-12);   // asymptotic
  // Attenuation region: between 0 and the asymptotic value, continuous at
  // w_pass.
  const double at_pass = gate_pulse_out(t, t.w_pass);
  EXPECT_NEAR(at_pass, t.w_pass - t.shrink, 1e-18);
  const double mid = gate_pulse_out(t, 100e-12);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 100e-12 - 0.0);
  // Monotone within the attenuation region.
  EXPECT_LT(gate_pulse_out(t, 80e-12), mid);
}

TEST(GatePulseOut, ContinuityAtPass) {
  const GateTiming t = simple_timing();
  const double just_below = gate_pulse_out(t, t.w_pass - 1e-15);
  const double just_above = gate_pulse_out(t, t.w_pass + 1e-15);
  EXPECT_NEAR(just_below, just_above, 1e-14);
}

TEST(ChainPulseOut, DiesOnceBlocked) {
  GateTimingLibrary lib;
  lib.set_default(simple_timing());
  const std::vector<LogicKind> chain(5, LogicKind::kNot);
  EXPECT_DOUBLE_EQ(chain_pulse_out(lib, chain, 40e-12), 0.0);
  // Wide pulses lose 5 * shrink.
  EXPECT_NEAR(chain_pulse_out(lib, chain, 500e-12), 450e-12, 1e-15);
}

TEST(ChainPulseOut, AttenuationCompounds) {
  GateTimingLibrary lib;
  lib.set_default(simple_timing());
  // In the attenuation region each stage shaves width; a pulse that one
  // gate passes can die after several.
  const double w = 90e-12;
  const double one = chain_pulse_out(lib, {LogicKind::kNot}, w);
  EXPECT_GT(one, 0.0);
  const double five = chain_pulse_out(lib, std::vector<LogicKind>(5, LogicKind::kNot), w);
  EXPECT_EQ(five, 0.0);
}

TEST(RequiredInputWidth, InvertsTheChain) {
  GateTimingLibrary lib;
  lib.set_default(simple_timing());
  const std::vector<LogicKind> chain(3, LogicKind::kNand);
  const auto w_req = required_input_width(lib, chain, 100e-12);
  ASSERT_TRUE(w_req.has_value());
  EXPECT_GE(chain_pulse_out(lib, chain, *w_req), 100e-12 - 1e-15);
  EXPECT_LT(chain_pulse_out(lib, chain, *w_req - 2e-12), 100e-12);
}

TEST(RequiredInputWidth, UnreachableTargetReturnsNullopt) {
  GateTimingLibrary lib;
  lib.set_default(simple_timing());
  const auto w = required_input_width(lib, {LogicKind::kNot}, 10e-9, 1e-9);
  EXPECT_FALSE(w.has_value());
}

TEST(GateTimingLibrary, FallsBackToDefault) {
  GateTimingLibrary lib;
  GateTiming d;
  d.delay_rise = 123e-12;
  lib.set_default(d);
  EXPECT_DOUBLE_EQ(lib.timing(LogicKind::kXor).delay_rise, 123e-12);
  GateTiming n;
  n.delay_rise = 77e-12;
  lib.set(LogicKind::kNand, n);
  EXPECT_DOUBLE_EQ(lib.timing(LogicKind::kNand).delay_rise, 77e-12);
}

TEST(GenericLibrary, OrderedSanity) {
  const GateTimingLibrary lib = GateTimingLibrary::generic();
  const GateTiming& inv = lib.timing(LogicKind::kNot);
  const GateTiming& nand2 = lib.timing(LogicKind::kNand);
  const GateTiming& nor2 = lib.timing(LogicKind::kNor);
  // Stacked gates are slower and filter harder than the inverter.
  EXPECT_GT(nand2.delay_rise, inv.delay_rise);
  EXPECT_GT(nor2.delay_rise, inv.delay_rise);
  EXPECT_GT(nand2.w_block, inv.w_block);
  EXPECT_GT(nor2.w_block, inv.w_block);
}

TEST(ChainDelay, Sums) {
  GateTimingLibrary lib;
  GateTiming t;
  t.delay_rise = 100e-12;
  t.delay_fall = 60e-12;
  lib.set_default(t);
  EXPECT_NEAR(chain_delay(lib, std::vector<LogicKind>(4, LogicKind::kNot)),
              4 * 80e-12, 1e-15);
}

}  // namespace
}  // namespace ppd::logic
