// ppd::exec wiring into the logic layer: fault-list evaluation, ATPG
// cross-detection folds, compaction and DF-testing verdicts must all be
// bit-identical to the serial path at any thread count, and a fired cancel
// token must abandon the evaluation.
#include "ppd/logic/faultsim.hpp"

#include <gtest/gtest.h>

#include "ppd/exec/cancel.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/logic/sta.hpp"

namespace ppd::logic {
namespace {

FaultSimulator c17_sim() {
  static const Netlist nl = c17();
  return FaultSimulator(nl, GateTimingLibrary::generic());
}

std::vector<LogicFault> all_site_faults(const FaultSimulator& sim, double r) {
  const StaResult sta = run_sta(sim.netlist(), sim.library());
  // Zero slack floor: every gate output is a fault site.
  return enumerate_rop_faults(slack_sites(sim.netlist(), sta, 0.0), r);
}

bool identical(const FaultCoverage& a, const FaultCoverage& b) {
  return a.detected == b.detected && a.detected_count == b.detected_count;
}

TEST(FaultSimThreads, RunMatchesSerialAtAnyThreadCount) {
  const FaultSimulator sim = c17_sim();
  const auto faults = all_site_faults(sim, 8e3);
  AtpgOptions aopt;
  aopt.paths_per_site = 8;
  const AtpgResult atpg = generate_pulse_tests(sim, faults, aopt);
  ASSERT_FALSE(atpg.tests.empty());

  FaultSimOptions serial;  // threads = 1
  const FaultCoverage reference = sim.run(faults, atpg.tests, serial);
  for (int threads : {3, 0}) {
    FaultSimOptions par;
    par.threads = threads;
    EXPECT_TRUE(identical(sim.run(faults, atpg.tests, par), reference))
        << "threads=" << threads;
  }
}

TEST(FaultSimThreads, AtpgAndCompactionMatchSerial) {
  const FaultSimulator sim = c17_sim();
  const auto faults = all_site_faults(sim, 8e3);
  AtpgOptions serial;
  serial.paths_per_site = 8;
  const AtpgResult ref = generate_pulse_tests(sim, faults, serial);
  const auto ref_compacted = compact_tests(sim, faults, ref.tests, serial.exec);

  for (int threads : {3, 0}) {
    AtpgOptions par = serial;
    par.exec.threads = threads;
    const AtpgResult got = generate_pulse_tests(sim, faults, par);
    EXPECT_TRUE(identical(got.coverage, ref.coverage)) << "threads=" << threads;
    EXPECT_EQ(got.tests.size(), ref.tests.size()) << "threads=" << threads;
    EXPECT_EQ(got.aborted, ref.aborted) << "threads=" << threads;
    // The greedy selection order is sequential in both cases, so the chosen
    // tests line up one-to-one.
    for (std::size_t i = 0; i < got.tests.size(); ++i) {
      EXPECT_EQ(got.tests[i].path.nets, ref.tests[i].path.nets) << "i=" << i;
      EXPECT_DOUBLE_EQ(got.tests[i].w_in, ref.tests[i].w_in) << "i=" << i;
      EXPECT_DOUBLE_EQ(got.tests[i].w_th, ref.tests[i].w_th) << "i=" << i;
    }
    const auto compacted = compact_tests(sim, faults, got.tests, par.exec);
    EXPECT_EQ(compacted.size(), ref_compacted.size()) << "threads=" << threads;
  }
}

TEST(FaultSimThreads, DelayTestingMatchesSerial) {
  const FaultSimulator sim = c17_sim();
  const auto faults = all_site_faults(sim, 8e3);
  const StaResult sta = run_sta(sim.netlist(), sim.library());
  DelayTestModel reduced;
  reduced.clock_period = 0.6 * (sta.critical_delay + reduced.ff_overhead);

  AtpgOptions serial;
  serial.paths_per_site = 8;
  const FaultCoverage ref = run_delay_testing(sim, faults, reduced, serial);
  for (int threads : {3, 0}) {
    AtpgOptions par = serial;
    par.exec.threads = threads;
    EXPECT_TRUE(identical(run_delay_testing(sim, faults, reduced, par), ref))
        << "threads=" << threads;
  }
}

TEST(FaultSimThreads, PreFiredTokenAbandonsRun) {
  const FaultSimulator sim = c17_sim();
  const auto faults = all_site_faults(sim, 8e3);
  AtpgOptions aopt;
  aopt.paths_per_site = 8;
  const AtpgResult atpg = generate_pulse_tests(sim, faults, aopt);

  FaultSimOptions cancelled;
  cancelled.cancel.cancel();
  EXPECT_THROW(sim.run(faults, atpg.tests, cancelled), exec::CancelledError);
}

}  // namespace
}  // namespace ppd::logic
