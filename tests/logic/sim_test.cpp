#include "ppd/logic/sim.hpp"

#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

/// inv chain: a -> n0 -> n1 -> ... of length k.
Netlist inv_chain(std::size_t k) {
  Netlist nl;
  NetId prev = nl.add_input("a");
  for (std::size_t i = 0; i < k; ++i)
    prev = nl.add_gate(LogicKind::kNot, "n" + std::to_string(i), {prev});
  nl.mark_output(prev);
  return nl;
}

EventSimOptions flat_options() {
  // Uniform 100 ps delays, 50 ps inertial block for easy arithmetic.
  EventSimOptions opt;
  GateTiming t;
  t.delay_rise = 100e-12;
  t.delay_fall = 100e-12;
  t.w_block = 50e-12;
  t.w_pass = 150e-12;
  t.shrink = 0.0;
  opt.library.set_default(t);
  opt.library.set(LogicKind::kNot, t);
  opt.library.set(LogicKind::kNand, t);
  return opt;
}

TEST(Stimulus, Helpers) {
  const Stimulus s = Stimulus::step(false, 1e-9);
  EXPECT_FALSE(s.initial);
  ASSERT_EQ(s.changes.size(), 1u);
  EXPECT_TRUE(s.changes[0].value);
  const Stimulus p = Stimulus::pulse(true, 1e-9, 0.5e-9);
  ASSERT_EQ(p.changes.size(), 2u);
  EXPECT_FALSE(p.changes[0].value);
  EXPECT_TRUE(p.changes[1].value);
  EXPECT_THROW(Stimulus::pulse(true, 1e-9, -1.0), PreconditionError);
}

TEST(EventSim, StepPropagatesWithAccumulatedDelay) {
  const Netlist nl = inv_chain(4);
  const auto res = simulate(nl, {Stimulus::step(false, 1e-9)}, flat_options());
  const NetId out = nl.outputs()[0];
  // 4 stages x 100 ps.
  ASSERT_EQ(res.activity(out), 1u);
  EXPECT_NEAR(res.changes(out)[0].t, 1e-9 + 4 * 100e-12, 1e-15);
  // Even number of inversions of initial 0: output starts 0, ends 1.
  EXPECT_FALSE(res.initial_value(out));
  EXPECT_TRUE(res.value_at(out, 2e-9));
}

TEST(EventSim, WidePulseArrivesIntact) {
  const Netlist nl = inv_chain(3);
  const auto res =
      simulate(nl, {Stimulus::pulse(false, 1e-9, 0.4e-9)}, flat_options());
  const NetId out = nl.outputs()[0];
  ASSERT_EQ(res.activity(out), 2u);
  const auto w = res.first_pulse_width(out);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, 0.4e-9, 1e-12);  // transport through equal rise/fall delays
}

TEST(EventSim, NarrowPulseFilteredByInertia) {
  // A 60 ps pulse is narrower than the 100 ps gate delay: with inertial
  // filtering on, the first gate's output never moves.
  const Netlist nl = inv_chain(3);
  const auto res =
      simulate(nl, {Stimulus::pulse(false, 1e-9, 60e-12)}, flat_options());
  EXPECT_EQ(res.activity(nl.outputs()[0]), 0u);
  EXPECT_EQ(res.activity(nl.find("n0")), 0u);
}

TEST(EventSim, TransportModeKeepsNarrowPulse) {
  EventSimOptions opt = flat_options();
  opt.inertial = false;
  const Netlist nl = inv_chain(3);
  const auto res = simulate(nl, {Stimulus::pulse(false, 1e-9, 60e-12)}, opt);
  EXPECT_EQ(res.activity(nl.outputs()[0]), 2u);
}

TEST(EventSim, SideInputGatingOnC17) {
  const Netlist nl = c17();
  // Drive input "1"; hold 3 = 1 so 10 = NAND(1, 3) follows input 1
  // inverted; hold 2 = 0 so 16 = 1 regardless; 22 = NAND(10, 16) = NOT(10).
  std::vector<Stimulus> stim(5);
  stim[0] = Stimulus::step(false, 1e-9);  // input "1" rises
  stim[1].initial = false;                // input "2" = 0
  stim[2].initial = true;                 // input "3" = 1
  stim[3].initial = false;                // input "6"
  stim[4].initial = false;                // input "7"
  const auto res = simulate(nl, stim, flat_options());
  const NetId out22 = nl.find("22");
  ASSERT_EQ(res.activity(out22), 1u);
  // 0 -> 1 at input gives 10: 1 -> 0, then 22: 0 -> 1... initial: in=0 ->
  // 10=1, 16=1, 22=0. After rise: 10=0 => 22=1.
  EXPECT_FALSE(res.initial_value(out22));
  EXPECT_TRUE(res.changes(out22)[0].value);
  // Two levels of 100 ps.
  EXPECT_NEAR(res.changes(out22)[0].t, 1e-9 + 200e-12, 1e-15);
}

TEST(EventSim, ReconvergentHazardProducesGlitch) {
  // y = NAND(a, NOT(a)): static 1, but a rising edge on `a` can glitch low
  // (the classic hazard) because the NOT path lags.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId na = nl.add_gate(LogicKind::kNot, "na", {a});
  const NetId y = nl.add_gate(LogicKind::kNand, "y", {a, na});
  nl.mark_output(y);
  const auto res = simulate(nl, {Stimulus::step(false, 1e-9)}, flat_options());
  // Glitch: y falls when `a` rises (na still high), recovers when na falls.
  ASSERT_EQ(res.activity(y), 2u);
  EXPECT_FALSE(res.changes(y)[0].value);
  EXPECT_TRUE(res.changes(y)[1].value);
  const auto w = res.first_pulse_width(y);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, 100e-12, 1e-12);  // one NOT delay
}

TEST(EventSim, StimulusArityValidated) {
  const Netlist nl = inv_chain(1);
  EXPECT_THROW(static_cast<void>(simulate(nl, {}, flat_options())), PreconditionError);
}

TEST(EventSim, ValueAtInterpolatesHistory) {
  const Netlist nl = inv_chain(1);
  const auto res = simulate(nl, {Stimulus::step(false, 1e-9)}, flat_options());
  const NetId out = nl.outputs()[0];
  EXPECT_TRUE(res.value_at(out, 0.0));       // NOT(0) = 1 initially
  EXPECT_TRUE(res.value_at(out, 1.05e-9));   // before gate delay elapses
  EXPECT_FALSE(res.value_at(out, 1.2e-9));   // after
}

}  // namespace
}  // namespace ppd::logic
