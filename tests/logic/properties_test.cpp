// Property-based tests over random circuits and stimuli:
//  * the event-driven simulator's settled state equals the static
//    evaluation of the final input vector (for any stimulus),
//  * transport-mode activity bounds inertial-mode activity,
//  * write/parse round-trips preserve function,
//  * sensitized paths propagate transitions in the timed simulator.
#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/logic/sim.hpp"
#include "ppd/mc/rng.hpp"

namespace ppd::logic {
namespace {

Netlist random_circuit(std::uint64_t seed, std::size_t gates = 40) {
  SyntheticOptions o;
  o.inputs = 8;
  o.outputs = 3;
  o.gates = gates;
  o.seed = seed;
  return synthetic_benchmark(o);
}

class RandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuits, SettledStateMatchesStaticEvaluation) {
  const std::uint64_t seed = GetParam();
  const Netlist nl = random_circuit(seed);
  mc::Rng rng(seed * 17 + 3);

  // Random multi-transition stimuli.
  std::vector<Stimulus> stim(nl.inputs().size());
  std::vector<bool> final_values(nl.inputs().size());
  for (std::size_t i = 0; i < stim.size(); ++i) {
    stim[i].initial = rng.uniform() < 0.5;
    bool v = stim[i].initial;
    double t = 0.5e-9;
    const int changes = static_cast<int>(rng.below(4));
    for (int k = 0; k < changes; ++k) {
      t += rng.uniform(0.2e-9, 1.5e-9);
      v = !v;
      stim[i].changes.push_back({t, v});
    }
    final_values[i] = v;
  }

  EventSimOptions opt;
  opt.t_stop = 40e-9;  // far beyond the last input change + circuit depth
  const auto res = simulate(nl, stim, opt);
  const auto expected = nl.evaluate(final_values);
  for (NetId id = 0; id < nl.size(); ++id) {
    EXPECT_EQ(res.value_at(id, opt.t_stop), expected[id])
        << "net " << nl.gate(id).name << " (seed " << seed << ")";
  }
}

TEST_P(RandomCircuits, InertialFilteringNeverAddsActivity) {
  const std::uint64_t seed = GetParam();
  const Netlist nl = random_circuit(seed);
  mc::Rng rng(seed * 31 + 1);
  std::vector<Stimulus> stim(nl.inputs().size());
  for (std::size_t i = 0; i < stim.size(); ++i) {
    stim[i].initial = rng.uniform() < 0.5;
    stim[i] = Stimulus::pulse(stim[i].initial, 0.5e-9 + rng.uniform(0.0, 0.2e-9),
                              rng.uniform(0.05e-9, 0.5e-9));
  }
  EventSimOptions inertial;
  inertial.t_stop = 40e-9;
  EventSimOptions transport = inertial;
  transport.inertial = false;
  const auto ri = simulate(nl, stim, inertial);
  const auto rt = simulate(nl, stim, transport);
  std::size_t act_i = 0, act_t = 0;
  for (NetId id = 0; id < nl.size(); ++id) {
    act_i += ri.activity(id);
    act_t += rt.activity(id);
  }
  EXPECT_LE(act_i, act_t) << "inertial filtering created activity";
}

TEST_P(RandomCircuits, BenchRoundTripPreservesFunction) {
  const std::uint64_t seed = GetParam();
  const Netlist nl = random_circuit(seed, 25);
  const Netlist back = parse_bench(write_bench(nl));
  mc::Rng rng(seed + 5);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform() < 0.5;
    const auto v1 = nl.evaluate(in);
    const auto v2 = back.evaluate(in);
    for (NetId o : nl.outputs())
      EXPECT_EQ(v1[o], v2[back.find(nl.gate(o).name)]);
  }
}

TEST_P(RandomCircuits, SensitizedPathsPropagateInTimedSim) {
  // Property: when the ATPG says a path is sensitized, launching a
  // transition at its input moves its output in the event simulator.
  const std::uint64_t seed = GetParam();
  const Netlist nl = random_circuit(seed, 60);
  int checked = 0;
  for (NetId id = 0; id < nl.size() && checked < 3; ++id) {
    if (nl.gate(id).kind == LogicKind::kInput) continue;
    for (const auto& p : enumerate_paths_through(nl, id, 8)) {
      const auto sens = sensitize_path(nl, p);
      if (!sens.ok) continue;
      std::vector<Stimulus> stim(nl.inputs().size());
      std::size_t pi_index = 0;
      for (std::size_t i = 0; i < stim.size(); ++i) {
        stim[i].initial = sens.pi_values[i];
        if (nl.inputs()[i] == p.input()) pi_index = i;
      }
      stim[pi_index] = Stimulus::step(sens.pi_values[pi_index], 1e-9);
      const auto res = simulate(nl, stim);
      EXPECT_GE(res.activity(p.output()), 1u)
          << "sensitized path did not propagate (seed " << seed << ")";
      ++checked;
      break;
    }
  }
  // Not every random circuit yields 3 sensitizable paths; at least assert
  // the loop was able to run on some.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ppd::logic
