#include "ppd/logic/bench.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

TEST(BenchParser, ParsesC17) {
  const Netlist nl = c17();
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  // All gates are NAND2.
  for (NetId id = 0; id < nl.size(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    EXPECT_EQ(g.kind, LogicKind::kNand);
    EXPECT_EQ(g.fanin.size(), 2u);
  }
}

TEST(BenchParser, C17TruthSpotChecks) {
  // 22 = NAND(10, 16), 10 = NAND(1,3), 16 = NAND(2, 11), 11 = NAND(3, 6).
  const Netlist nl = c17();
  // Inputs ordered as declared: 1, 2, 3, 6, 7.
  // Note the explicit bool return: vector<bool>'s operator[] yields a proxy
  // into the temporary, which must not escape the expression.
  auto out22 = [&](bool i1, bool i2, bool i3, bool i6, bool i7) -> bool {
    return nl.evaluate({i1, i2, i3, i6, i7})[nl.find("22")];
  };
  // All zero: 10 = 1, 11 = 1, 16 = NAND(0,1)=1 -> 22 = NAND(1,1) = 0.
  EXPECT_FALSE(out22(false, false, false, false, false));
  // 1=1,3=1 -> 10=0 -> 22=1 regardless of 16.
  EXPECT_TRUE(out22(true, false, true, false, false));
}

TEST(BenchParser, HandlesForwardReferencesAndComments) {
  const Netlist nl = parse_bench(
      "# comment\n"
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "y = NOT(m)\n"       // forward reference
      "m = BUF(a)\n");
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.gate(nl.find("y")).kind, LogicKind::kNot);
}

TEST(BenchParser, AcceptsAllGateTypes) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n"
      "g1 = AND(a, b)\n"
      "g2 = OR(a, b)\n"
      "g3 = XOR(g1, g2)\n"
      "g4 = XNOR(a, g3)\n"
      "g5 = NOR(g4, b)\n"
      "z = NAND(g5, a)\n");
  EXPECT_EQ(nl.gate_count(), 6u);
}

TEST(BenchParser, Errors) {
  EXPECT_THROW(static_cast<void>(parse_bench("INPUT(a)\ny = FROB(a)\n")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bench("INPUT(a)\nOUTPUT(zz)\ny = NOT(a)\n")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bench("y = NOT(undefined_net)\n")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bench("INPUT(a)\ny = NOT(a\n")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bench("INPUT(a)\nINPUT(a)\n")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_bench("INPUT(a)\na = NOT(a)\n")), ParseError);
}

TEST(BenchWriter, RoundTripsC17) {
  const Netlist nl = c17();
  const Netlist back = parse_bench(write_bench(nl));
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  EXPECT_EQ(back.gate_count(), nl.gate_count());
  // Functional equivalence over all 32 input vectors.
  for (unsigned m = 0; m < 32; ++m) {
    std::vector<bool> in;
    for (unsigned b = 0; b < 5; ++b) in.push_back(((m >> b) & 1u) != 0);
    const auto v1 = nl.evaluate(in);
    const auto v2 = back.evaluate(in);
    for (NetId o : nl.outputs())
      EXPECT_EQ(v1[o], v2[back.find(nl.gate(o).name)]);
  }
}

TEST(Synthetic, MatchesRequestedShape) {
  SyntheticOptions opt;
  opt.inputs = 36;
  opt.outputs = 7;
  opt.gates = 160;
  const Netlist nl = synthetic_benchmark(opt);
  EXPECT_EQ(nl.inputs().size(), 36u);
  EXPECT_EQ(nl.outputs().size(), 7u);
  EXPECT_EQ(nl.gate_count(), 160u);
  EXPECT_GE(nl.depth(), 8u);  // deep enough for interesting paths
  EXPECT_NO_THROW(nl.topological_order());
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticOptions opt;
  const std::string a = write_bench(synthetic_benchmark(opt));
  const std::string b = write_bench(synthetic_benchmark(opt));
  EXPECT_EQ(a, b);
  opt.seed = 433;
  EXPECT_NE(a, write_bench(synthetic_benchmark(opt)));
}

TEST(Synthetic, OnlyPrimitiveKinds) {
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  for (NetId id = 0; id < nl.size(); ++id) {
    const LogicKind k = nl.gate(id).kind;
    EXPECT_TRUE(k == LogicKind::kInput || k == LogicKind::kNot ||
                k == LogicKind::kNand || k == LogicKind::kNor);
  }
}

}  // namespace
}  // namespace ppd::logic
