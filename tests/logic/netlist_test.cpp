#include "ppd/logic/netlist.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

Netlist tiny() {
  // c = NAND(a, b); d = NOT(c)
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_gate(LogicKind::kNand, "c", {a, b});
  const NetId d = nl.add_gate(LogicKind::kNot, "d", {c});
  nl.mark_output(d);
  return nl;
}

TEST(EvalGate, TruthTables) {
  EXPECT_TRUE(eval_gate(LogicKind::kNand, {true, false}));
  EXPECT_FALSE(eval_gate(LogicKind::kNand, {true, true}));
  EXPECT_TRUE(eval_gate(LogicKind::kNor, {false, false}));
  EXPECT_FALSE(eval_gate(LogicKind::kNor, {false, true}));
  EXPECT_TRUE(eval_gate(LogicKind::kXor, {true, false, false}));
  EXPECT_FALSE(eval_gate(LogicKind::kXor, {true, true}));
  EXPECT_TRUE(eval_gate(LogicKind::kXnor, {true, true}));
  EXPECT_TRUE(eval_gate(LogicKind::kAnd, {true, true, true}));
  EXPECT_FALSE(eval_gate(LogicKind::kAnd, {true, false, true}));
  EXPECT_TRUE(eval_gate(LogicKind::kOr, {false, true}));
  EXPECT_FALSE(eval_gate(LogicKind::kBuf, {false}));
  EXPECT_TRUE(eval_gate(LogicKind::kNot, {false}));
}

TEST(EvalGate, ArityChecks) {
  EXPECT_THROW(static_cast<void>(eval_gate(LogicKind::kNot, {true, false})), PreconditionError);
  EXPECT_THROW(static_cast<void>(eval_gate(LogicKind::kAnd, {})), PreconditionError);
  EXPECT_THROW(static_cast<void>(eval_gate(LogicKind::kInput, {true})), PreconditionError);
}

TEST(ControllingValue, PerKind) {
  EXPECT_EQ(controlling_value(LogicKind::kNand), false);
  EXPECT_EQ(controlling_value(LogicKind::kAnd), false);
  EXPECT_EQ(controlling_value(LogicKind::kNor), true);
  EXPECT_EQ(controlling_value(LogicKind::kOr), true);
  EXPECT_FALSE(controlling_value(LogicKind::kNot).has_value());
  EXPECT_FALSE(controlling_value(LogicKind::kXor).has_value());
}

TEST(Netlist, StructureAccessors) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.depth(), 2u);
  EXPECT_TRUE(nl.is_output(nl.find("d")));
  EXPECT_FALSE(nl.is_output(nl.find("c")));
  EXPECT_EQ(nl.fanout(nl.find("c")).size(), 1u);
  EXPECT_THROW(static_cast<void>(nl.find("nope")), PreconditionError);
}

TEST(Netlist, EvaluateMatchesBoolean) {
  const Netlist nl = tiny();
  // d = NOT(NAND(a,b)) = AND(a,b)
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const auto v = nl.evaluate({a != 0, b != 0});
      EXPECT_EQ(v[nl.find("d")], (a != 0) && (b != 0));
    }
  }
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist nl = tiny();
  const auto order = nl.topological_order();
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NetId id = 0; id < nl.size(); ++id)
    for (NetId f : nl.gate(id).fanin) EXPECT_LT(pos[f], pos[id]);
}

TEST(Netlist, RejectsBadFanin) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(static_cast<void>(nl.add_gate(LogicKind::kNot, "g", {99})), PreconditionError);
  EXPECT_THROW(static_cast<void>(nl.add_gate(LogicKind::kNot, "g", {})), PreconditionError);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(a);
  nl.mark_output(a);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

}  // namespace
}  // namespace ppd::logic
