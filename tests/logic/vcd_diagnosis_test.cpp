// VCD export and fault-dictionary diagnosis.
#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/diagnosis.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/logic/vcd.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

TEST(Vcd, HeaderAndChangesWellFormed) {
  const Netlist nl = c17();
  std::vector<Stimulus> stim(nl.inputs().size());
  stim[2].initial = true;  // input "3"
  stim[0] = Stimulus::pulse(false, 1e-9, 0.4e-9);  // input "1"
  const auto res = simulate(nl, stim);
  const std::string vcd = vcd_to_string(nl, res);

  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  // One $var per net.
  std::size_t vars = 0, pos = 0;
  while ((pos = vcd.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    pos += 1;
  }
  EXPECT_EQ(vars, nl.size());
  // The input pulse shows up as a #1000 timestamp (1 ns / 1 ps).
  EXPECT_NE(vcd.find("#1000"), std::string::npos);
}

TEST(Vcd, NetSubsetAndValidation) {
  const Netlist nl = c17();
  std::vector<Stimulus> stim(nl.inputs().size());
  const auto res = simulate(nl, stim);
  VcdOptions o;
  o.nets = {nl.find("22")};
  const std::string vcd = vcd_to_string(nl, res, o);
  EXPECT_NE(vcd.find(" 22 $end"), std::string::npos);
  EXPECT_EQ(vcd.find(" 23 $end"), std::string::npos);
  o.nets = {999};
  EXPECT_THROW(vcd_to_string(nl, res, o), PreconditionError);
}

/// Dictionary fixture: c17 ROP faults with an ATPG-generated test set.
struct DictFixture {
  Netlist nl = c17();
  FaultSimulator sim{nl, GateTimingLibrary::generic()};
  std::vector<LogicFault> faults;
  AtpgResult atpg;

  DictFixture() {
    std::vector<NetId> sites;
    for (NetId id = 0; id < nl.size(); ++id)
      if (nl.gate(id).kind != LogicKind::kInput) sites.push_back(id);
    faults = enumerate_rop_faults(sites, 25e3);
    atpg = generate_pulse_tests(sim, faults);
  }
};

TEST(Diagnosis, ExactMatchRecoversTheInjectedFault) {
  DictFixture fx;
  ASSERT_FALSE(fx.atpg.tests.empty());
  const FaultDictionary dict(fx.sim, fx.faults, fx.atpg.tests);

  // "Test" a machine carrying fault 4 (simulate its syndrome) and diagnose.
  int diagnosed = 0, checked = 0;
  for (std::size_t injected = 0; injected < fx.faults.size(); ++injected) {
    const auto& observed = dict.syndrome(injected);
    if (std::none_of(observed.begin(), observed.end(),
                     [](char c) { return c != 0; }))
      continue;  // undetected fault: no syndrome to match
    ++checked;
    const auto cands = dict.exact_matches(observed);
    EXPECT_FALSE(cands.empty());
    if (std::find(cands.begin(), cands.end(), injected) != cands.end())
      ++diagnosed;
  }
  EXPECT_GT(checked, 5);
  EXPECT_EQ(diagnosed, checked) << "every syndrome must contain its cause";
}

TEST(Diagnosis, NearMatchAbsorbsOneFlippedBit) {
  DictFixture fx;
  const FaultDictionary dict(fx.sim, fx.faults, fx.atpg.tests);
  // Find a detected fault and corrupt one bit of its syndrome.
  for (std::size_t i = 0; i < dict.fault_count(); ++i) {
    auto observed = dict.syndrome(i);
    const auto it = std::find(observed.begin(), observed.end(), char{1});
    if (it == observed.end()) continue;
    *it = 0;  // tester noise
    const auto near = dict.near_matches(observed, 1);
    ASSERT_FALSE(near.empty());
    bool found = false;
    for (const auto& m : near) found = found || m.fault_index == i;
    EXPECT_TRUE(found) << "true fault must survive a 1-bit corruption";
    // Ordered by distance.
    for (std::size_t k = 1; k < near.size(); ++k)
      EXPECT_LE(near[k - 1].distance, near[k].distance);
    break;
  }
}

TEST(Diagnosis, ResolutionBounds) {
  DictFixture fx;
  const FaultDictionary dict(fx.sim, fx.faults, fx.atpg.tests);
  const double r = dict.resolution();
  EXPECT_GT(r, 0.0);
  EXPECT_LE(r, 1.0);
  // c17's 6 sites cannot be fully distinguished by a handful of paths, but
  // the dictionary must carry real information (several distinct columns).
  EXPECT_GT(r, 0.2);
}

TEST(Diagnosis, ValidatesAritiesAndIndices) {
  DictFixture fx;
  const FaultDictionary dict(fx.sim, fx.faults, fx.atpg.tests);
  EXPECT_THROW(static_cast<void>(dict.exact_matches(std::vector<char>(1, 0))),
               PreconditionError);
  EXPECT_THROW(static_cast<void>(dict.syndrome(dict.fault_count())),
               PreconditionError);
  EXPECT_THROW(FaultDictionary(fx.sim, fx.faults, {}), PreconditionError);
}

}  // namespace
}  // namespace ppd::logic
