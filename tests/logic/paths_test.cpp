#include "ppd/logic/paths.hpp"

#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

TEST(Paths, EnumeratesThroughC17Gate16) {
  const Netlist nl = c17();
  const NetId g16 = nl.find("16");
  const auto paths = enumerate_paths_through(nl, g16, 64);
  // Upstream of 16: via input 2 (direct) or via 11 (from 3 or 6): 3 prefixes.
  // Downstream: 16 -> 22 and 16 -> 23: 2 suffixes. Total 6.
  EXPECT_EQ(paths.size(), 6u);
  for (const auto& p : paths) {
    EXPECT_EQ(nl.gate(p.input()).kind, LogicKind::kInput);
    EXPECT_TRUE(nl.is_output(p.output()));
    // Consecutive nets connected.
    for (std::size_t i = 1; i < p.nets.size(); ++i) {
      const auto& fanin = nl.gate(p.nets[i]).fanin;
      EXPECT_NE(std::find(fanin.begin(), fanin.end(), p.nets[i - 1]),
                fanin.end());
    }
    // The fault site is on every path.
    EXPECT_NE(std::find(p.nets.begin(), p.nets.end(), g16), p.nets.end());
  }
}

TEST(Paths, LimitCapsEnumeration) {
  const Netlist nl = c17();
  const auto paths = enumerate_paths_through(nl, nl.find("16"), 3);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(Paths, AllPathsOfC17) {
  const Netlist nl = c17();
  const auto paths = enumerate_all_paths(nl, 256);
  // c17 has 11 PI->PO structural paths.
  EXPECT_EQ(paths.size(), 11u);
}

TEST(Paths, KindsSkipInputPseudoGate) {
  const Netlist nl = c17();
  const auto paths = enumerate_paths_through(nl, nl.find("16"), 64);
  for (const auto& p : paths) {
    const auto kinds = path_kinds(nl, p);
    EXPECT_EQ(kinds.size(), p.nets.size() - 1);
    for (LogicKind k : kinds) EXPECT_EQ(k, LogicKind::kNand);
  }
}

TEST(Paths, SyntheticBenchmarkHasDeepPaths) {
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  // Pick a mid-circuit gate and require paths with several gates.
  const NetId site = nl.find("G80");
  const auto paths = enumerate_paths_through(nl, site, 32);
  ASSERT_FALSE(paths.empty());
  std::size_t longest = 0;
  for (const auto& p : paths) longest = std::max(longest, p.length());
  EXPECT_GE(longest, 4u);
}

}  // namespace
}  // namespace ppd::logic
