#include "ppd/logic/sensitize.hpp"

#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"

namespace ppd::logic {
namespace {

TEST(Sensitize, C17AllPathsThroughGate16) {
  const Netlist nl = c17();
  const auto paths = enumerate_paths_through(nl, nl.find("16"), 64);
  ASSERT_FALSE(paths.empty());
  int sensitizable = 0;
  for (const auto& p : paths) {
    const auto res = sensitize_path(nl, p);
    if (res.ok) {
      ++sensitizable;
      EXPECT_TRUE(is_sensitized(nl, p, res.pi_values));
    }
  }
  // c17 is highly testable: most of these paths sensitize statically.
  EXPECT_GE(sensitizable, 4);
}

TEST(Sensitize, ImpossibleConstraintFails) {
  // y = AND(a, NOT(a)) -> path through input a of the AND needs the side
  // input NOT(a) = 1, i.e. a = 0; but a is the on-path PI that must also
  // toggle. Static sensitization of the direct a->y edge requires
  // NOT(a) = 1 while a itself is the path input, which *is* satisfiable
  // statically (a's own value is unconstrained). A truly unsatisfiable case
  // needs reconvergence: y = AND(m, NOT(m)) with m = BUF(a): side input of
  // the m->y edge is NOT(m) = 1 -> m = 0; fine. Force a conflict instead:
  // z = AND(m, n), m = BUF(a), n = NOT(a): sensitizing the m->z edge needs
  // n = 1 -> a = 0. That's satisfiable too. Build a real conflict:
  // z = AND(p, q), p = BUF(a), q = BUF(p)?? q = 1 needs a = 1; no conflict
  // with the path through p... use: z = AND(a, b), w = AND(z, NOT(b)):
  // path through z->w needs NOT(b) = 1 (b = 0) AND the z-gate's side b = 1.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId z = nl.add_gate(LogicKind::kAnd, "z", {a, b});
  const NetId nb = nl.add_gate(LogicKind::kNot, "nb", {b});
  const NetId w = nl.add_gate(LogicKind::kAnd, "w", {z, nb});
  nl.mark_output(w);
  Path p;
  p.nets = {a, z, w};
  const auto res = sensitize_path(nl, p);
  EXPECT_FALSE(res.ok);
  EXPECT_GT(res.nodes_visited, 0u);
}

TEST(Sensitize, BacktrackingFindsTheOneChoice) {
  // y = NAND(m, n); m = NAND(a, b); n = NAND(a, c).
  // Sensitize path b -> m -> y: side of m is a (must be 1), side of y is n
  // (must be 1): n = NAND(a, c) with a = 1 -> need c = 0.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  const NetId m = nl.add_gate(LogicKind::kNand, "m", {a, b});
  const NetId n = nl.add_gate(LogicKind::kNand, "n", {a, c});
  const NetId y = nl.add_gate(LogicKind::kNand, "y", {m, n});
  nl.mark_output(y);
  Path p;
  p.nets = {b, m, y};
  const auto res = sensitize_path(nl, p);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.pi_values[0]);   // a = 1
  EXPECT_FALSE(res.pi_values[2]);  // c = 0
  EXPECT_TRUE(is_sensitized(nl, p, res.pi_values));
}

TEST(Sensitize, XorPathNeedsNoPinning) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(LogicKind::kXor, "y", {a, b});
  nl.mark_output(y);
  Path p;
  p.nets = {a, y};
  const auto res = sensitize_path(nl, p);
  EXPECT_TRUE(res.ok);
}

TEST(Sensitize, SyntheticBenchmarkYieldsSensitizablePaths) {
  // Most structural paths in reconvergent logic are statically false; the
  // test-generation flow scans fault sites until it finds true paths. A
  // handful of sites must yield some.
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  int ok = 0;
  for (int gi = 30; gi <= 150 && ok == 0; gi += 30) {
    const auto paths =
        enumerate_paths_through(nl, nl.find("G" + std::to_string(gi)), 24);
    for (const auto& p : paths)
      if (sensitize_path(nl, p).ok) ++ok;
  }
  EXPECT_GT(ok, 0);
}

TEST(IsSensitized, DetectsControllingSideInput) {
  const Netlist nl = c17();
  // Path 1 -> 10 -> 22. Side input of 10 is 3 (needs 1); side input of 22
  // is 16 (needs 1).
  Path p;
  p.nets = {nl.find("1"), nl.find("10"), nl.find("22")};
  // With 3 = 0 the NAND side input is controlling: not sensitized.
  EXPECT_FALSE(is_sensitized(nl, p, {false, false, false, false, false}));
  // With 3 = 1 and 2 = 0 (16 = 1): sensitized.
  EXPECT_TRUE(is_sensitized(nl, p, {false, false, true, false, false}));
}

}  // namespace
}  // namespace ppd::logic
