// File-level .bench I/O, including the netlists bundled in data/.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ppd/logic/bench.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

TEST(BenchFile, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/ppd_roundtrip.bench";
  {
    std::ofstream f(path);
    f << write_bench(c17());
  }
  const Netlist nl = load_bench_file(path);
  EXPECT_EQ(nl.gate_count(), 6u);
  std::remove(path.c_str());
}

TEST(BenchFile, MissingFileThrows) {
  EXPECT_THROW(load_bench_file("/nonexistent/definitely_missing.bench"),
               ParseError);
}

TEST(BenchFile, BundledC17MatchesBuiltin) {
  // The repository ships data/c17.bench; when the test runs from the build
  // tree the file sits at ../data or ../../data — search a few candidates
  // and skip gracefully if the tree layout is unusual.
  Netlist from_file;
  bool found = false;
  for (const char* cand : {"data/c17.bench", "../data/c17.bench",
                           "../../data/c17.bench", "../../../data/c17.bench"}) {
    std::ifstream probe(cand);
    if (probe) {
      from_file = load_bench_file(cand);
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "data/c17.bench not reachable from cwd";
  const Netlist builtin = c17();
  EXPECT_EQ(from_file.gate_count(), builtin.gate_count());
  for (unsigned m = 0; m < 32; ++m) {
    std::vector<bool> in;
    for (unsigned b = 0; b < 5; ++b) in.push_back(((m >> b) & 1u) != 0);
    const auto v1 = builtin.evaluate(in);
    const auto v2 = from_file.evaluate(in);
    for (NetId o : builtin.outputs())
      EXPECT_EQ(v1[o], v2[from_file.find(builtin.gate(o).name)]);
  }
}

TEST(BenchFile, BundledC432ClassParses) {
  Netlist nl;
  bool found = false;
  for (const char* cand :
       {"data/c432_class.bench", "../data/c432_class.bench",
        "../../data/c432_class.bench", "../../../data/c432_class.bench"}) {
    std::ifstream probe(cand);
    if (probe) {
      nl = load_bench_file(cand);
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "data/c432_class.bench not reachable from cwd";
  EXPECT_EQ(nl.inputs().size(), 36u);
  EXPECT_EQ(nl.gate_count(), 160u);
  // Functionally identical to the in-process generator with the default
  // seed (gate *emission order* differs between generator and parser, so a
  // textual comparison would be too strict).
  const Netlist gen = synthetic_benchmark(SyntheticOptions{});
  mc::Rng rng(99);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<bool> in(gen.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform() < 0.5;
    const auto v1 = gen.evaluate(in);
    const auto v2 = nl.evaluate(in);
    for (NetId o : gen.outputs())
      EXPECT_EQ(v1[o], v2[nl.find(gen.gate(o).name)]);
  }
}

}  // namespace
}  // namespace ppd::logic
