#include "ppd/logic/sta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ppd/logic/bench.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

GateTimingLibrary flat_library(double delay = 100e-12) {
  GateTimingLibrary lib;
  GateTiming t;
  t.delay_rise = delay;
  t.delay_fall = delay;
  lib.set_default(t);
  for (LogicKind k : {LogicKind::kNot, LogicKind::kNand, LogicKind::kNor,
                      LogicKind::kBuf, LogicKind::kAnd, LogicKind::kOr})
    lib.set(k, t);
  return lib;
}

/// Chain with a short side branch:
///  a -> g0 -> g1 -> g2 -> out (critical, 4 levels incl. out gate)
///  b ----------------^ side input of g2's NAND partner "fast".
Netlist chain_with_branch() {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g0 = nl.add_gate(LogicKind::kNot, "g0", {a});
  const NetId g1 = nl.add_gate(LogicKind::kNot, "g1", {g0});
  const NetId g2 = nl.add_gate(LogicKind::kNot, "g2", {g1});
  const NetId fast = nl.add_gate(LogicKind::kNot, "fast", {b});
  const NetId out = nl.add_gate(LogicKind::kNand, "out", {g2, fast});
  nl.mark_output(out);
  return nl;
}

TEST(Sta, ArrivalTimesAccumulate) {
  const Netlist nl = chain_with_branch();
  const StaResult sta = run_sta(nl, flat_library());
  EXPECT_DOUBLE_EQ(sta.arrival[nl.find("a")], 0.0);
  EXPECT_DOUBLE_EQ(sta.arrival[nl.find("g0")], 100e-12);
  EXPECT_DOUBLE_EQ(sta.arrival[nl.find("g2")], 300e-12);
  EXPECT_DOUBLE_EQ(sta.arrival[nl.find("fast")], 100e-12);
  EXPECT_DOUBLE_EQ(sta.arrival[nl.find("out")], 400e-12);
  EXPECT_DOUBLE_EQ(sta.critical_delay, 400e-12);
}

TEST(Sta, SlackZeroOnCriticalPathAtCriticalClock) {
  const Netlist nl = chain_with_branch();
  const StaResult sta = run_sta(nl, flat_library());
  for (const char* n : {"g0", "g1", "g2", "out"})
    EXPECT_NEAR(sta.slack_at(nl.find(n)), 0.0, 1e-18) << n;
  // The fast branch has two levels of spare time.
  EXPECT_NEAR(sta.slack_at(nl.find("fast")), 200e-12, 1e-18);
}

TEST(Sta, LargerClockAddsUniformSlack) {
  const Netlist nl = chain_with_branch();
  const StaResult sta = run_sta(nl, flat_library(), 600e-12);
  EXPECT_NEAR(sta.slack_at(nl.find("out")), 200e-12, 1e-18);
  EXPECT_NEAR(sta.slack_at(nl.find("fast")), 400e-12, 1e-18);
  EXPECT_DOUBLE_EQ(sta.clock_period, 600e-12);
}

TEST(Sta, CriticalPathWalksTheSlowChain) {
  const Netlist nl = chain_with_branch();
  const StaResult sta = run_sta(nl, flat_library());
  const Path p = critical_path(nl, sta, flat_library());
  ASSERT_EQ(p.length(), 5u);  // a g0 g1 g2 out
  EXPECT_EQ(p.input(), nl.find("a"));
  EXPECT_EQ(p.output(), nl.find("out"));
  EXPECT_EQ(p.nets[2], nl.find("g1"));
}

TEST(Sta, SlackSitesSelectsNonCriticalGates) {
  const Netlist nl = chain_with_branch();
  const StaResult sta = run_sta(nl, flat_library());
  const auto sites = slack_sites(nl, sta, 150e-12);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], nl.find("fast"));
  // With an (epsilon-negative) threshold every gate qualifies — critical
  // gates sit at slack 0 modulo rounding.
  EXPECT_EQ(slack_sites(nl, sta, -1e-15).size(), nl.gate_count());
}

TEST(Sta, SyntheticBenchmarkHasSlackSpread) {
  // The premise of the paper: realistic circuits contain many gates with
  // substantial slack where small defects hide from delay testing.
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  const StaResult sta = run_sta(nl, GateTimingLibrary::generic());
  EXPECT_GT(sta.critical_delay, 1e-9);  // ~20 levels
  const auto relaxed = slack_sites(nl, sta, 0.25 * sta.critical_delay);
  EXPECT_GT(relaxed.size(), nl.gate_count() / 10)
      << "expected a large non-critical population";
  // And the critical path itself has (near) zero slack.
  const Path crit = critical_path(nl, sta, GateTimingLibrary::generic());
  EXPECT_LT(sta.slack_at(crit.nets[crit.length() / 2]), 1e-12);
}

TEST(Sta, InverterChainUsesAlternatingEdgeDelays) {
  // Polarity regression: through two inverters, a launched rising edge
  // falls at the first output (delay_fall) and rises again at the second
  // (delay_rise) — 120 + 60 = 180 ps either way, NOT 2 x max = 240 ps.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(LogicKind::kNot, "g1", {a});
  const NetId g2 = nl.add_gate(LogicKind::kNot, "g2", {g1});
  nl.mark_output(g2);
  GateTimingLibrary lib;
  GateTiming t;
  t.delay_rise = 120e-12;
  t.delay_fall = 60e-12;
  lib.set(LogicKind::kNot, t);
  const StaResult sta = run_sta(nl, lib);
  EXPECT_DOUBLE_EQ(sta.arrival_rise[g1], 120e-12);
  EXPECT_DOUBLE_EQ(sta.arrival_fall[g1], 60e-12);
  EXPECT_DOUBLE_EQ(sta.arrival_rise[g2], 60e-12 + 120e-12);
  EXPECT_DOUBLE_EQ(sta.arrival_fall[g2], 120e-12 + 60e-12);
  EXPECT_DOUBLE_EQ(sta.critical_delay, 180e-12);
  // And the critical path still walks the whole chain.
  const Path p = critical_path(nl, sta, lib);
  ASSERT_EQ(p.length(), 3u);
  EXPECT_EQ(p.input(), a);
  EXPECT_EQ(p.output(), g2);
}

TEST(Sta, SingleGateNetlist) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate(LogicKind::kBuf, "g", {a});
  nl.mark_output(g);
  const StaResult sta = run_sta(nl, flat_library());
  EXPECT_DOUBLE_EQ(sta.critical_delay, 100e-12);
  const Path p = critical_path(nl, sta, flat_library());
  ASSERT_EQ(p.length(), 2u);
  EXPECT_EQ(p.input(), a);
  EXPECT_EQ(p.output(), g);
  EXPECT_NEAR(sta.slack_at(g), 0.0, 1e-18);
  ASSERT_EQ(slack_sites(nl, sta, -1e-15).size(), 1u);
}

TEST(Sta, GateReachingNoOutputClampsSlackToClock) {
  // `dead` feeds nothing that reaches an output: its required time stays
  // infinite, and the reported slack clamps against the clock period
  // instead of going infinite.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(LogicKind::kNot, "g", {a});
  const NetId dead = nl.add_gate(LogicKind::kNot, "dead", {b});
  (void)dead;
  nl.mark_output(g);
  const StaResult sta = run_sta(nl, flat_library(), 500e-12);
  EXPECT_TRUE(std::isinf(sta.required[nl.find("dead")]));
  EXPECT_NEAR(sta.slack_at(nl.find("dead")), 500e-12 - 100e-12, 1e-18);
  // slack_sites at a generous threshold picks it up (alongside the equally
  // slack output gate), not infinity-NaN.
  const auto sites = slack_sites(nl, sta, 300e-12);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_TRUE(std::find(sites.begin(), sites.end(), nl.find("dead")) !=
              sites.end());
}

TEST(Sta, CriticalPathTieBreakIsDeterministic) {
  // Two exactly tied 2-level branches into one NAND: the walk must keep
  // the first (lowest-id) fanin at every tie, run after run.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId ga = nl.add_gate(LogicKind::kNot, "ga", {a});
  const NetId gb = nl.add_gate(LogicKind::kNot, "gb", {b});
  const NetId out = nl.add_gate(LogicKind::kNand, "out", {ga, gb});
  nl.mark_output(out);
  const StaResult sta = run_sta(nl, flat_library());
  EXPECT_DOUBLE_EQ(sta.arrival[ga], sta.arrival[gb]);  // the tie is exact
  const Path first = critical_path(nl, sta, flat_library());
  ASSERT_EQ(first.length(), 3u);
  EXPECT_EQ(first.nets[1], ga) << "tie must resolve to the first fanin";
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(critical_path(nl, sta, flat_library()).nets, first.nets);
}

TEST(Sta, UsesWorstEdgeDelay) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate(LogicKind::kNor, "g", {a, a});
  nl.mark_output(g);
  GateTimingLibrary lib;
  GateTiming t;
  t.delay_rise = 120e-12;
  t.delay_fall = 60e-12;
  lib.set(LogicKind::kNor, t);
  const StaResult sta = run_sta(nl, lib);
  EXPECT_DOUBLE_EQ(sta.critical_delay, 120e-12);
}

}  // namespace
}  // namespace ppd::logic
