#include "ppd/logic/faultsim.hpp"

#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

FaultSimulator c17_sim() {
  static const Netlist nl = c17();
  return FaultSimulator(nl, GateTimingLibrary::generic());
}

PulseTest test_on(const Netlist& nl, const std::vector<std::string>& nets,
                  double w_in = 0.4e-9, double w_th = 0.15e-9) {
  PulseTest t;
  for (const auto& n : nets) t.path.nets.push_back(nl.find(n));
  t.w_in = w_in;
  t.w_th = w_th;
  t.vector.assign(nl.inputs().size(), false);
  return t;
}

TEST(FaultyTiming, InternalRopAttacksOnePolarityOnly) {
  const FaultSimulator sim = c17_sim();
  const Gate& g = sim.netlist().gate(sim.netlist().find("16"));
  LogicFault f;
  f.gate = sim.netlist().find("16");
  f.kind = LogicFaultKind::kInternalRopPullUp;
  f.resistance = 10e3;
  const GateTiming clean = sim.library().timing(g.kind);
  const GateTiming hit = sim.faulty_timing(g, f, /*positive=*/true);
  const GateTiming spared = sim.faulty_timing(g, f, /*positive=*/false);
  EXPECT_GT(hit.w_block, clean.w_block);
  EXPECT_GT(hit.delay_rise, clean.delay_rise);
  EXPECT_DOUBLE_EQ(spared.w_block, clean.w_block);
  // Pull-down mirror.
  f.kind = LogicFaultKind::kInternalRopPullDown;
  EXPECT_GT(sim.faulty_timing(g, f, false).w_block, clean.w_block);
  EXPECT_DOUBLE_EQ(sim.faulty_timing(g, f, true).w_block, clean.w_block);
}

TEST(FaultyTiming, ExternalRopAttacksBothPolarities) {
  const FaultSimulator sim = c17_sim();
  const Gate& g = sim.netlist().gate(sim.netlist().find("16"));
  LogicFault f;
  f.gate = sim.netlist().find("16");
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 10e3;
  const GateTiming clean = sim.library().timing(g.kind);
  for (bool pol : {true, false}) {
    const GateTiming t = sim.faulty_timing(g, f, pol);
    EXPECT_GT(t.w_block, clean.w_block);
    EXPECT_GT(t.delay_rise, clean.delay_rise);
    EXPECT_GT(t.delay_fall, clean.delay_fall);
  }
}

TEST(Response, FaultFreeMatchesAttenuationChain) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"2", "16", "22"});
  const auto kinds = path_kinds(nl, t.path);
  EXPECT_DOUBLE_EQ(sim.response(t, nullptr),
                   chain_pulse_out(sim.library(), kinds, t.w_in));
}

TEST(Response, GrowsWeakerWithResistance) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"2", "16", "22"});
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kExternalRop;
  double prev = sim.response(t, nullptr);
  for (double r : {2e3, 6e3, 12e3, 20e3}) {
    f.resistance = r;
    const double w = sim.response(t, &f);
    EXPECT_LE(w, prev + 1e-18) << "R=" << r;
    prev = w;
  }
  // Large enough opens kill the pulse completely.
  f.resistance = 60e3;
  EXPECT_DOUBLE_EQ(sim.response(t, &f), 0.0);
}

TEST(Detects, RequiresFaultOnPath) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"2", "16", "22"});
  LogicFault f;
  f.gate = nl.find("19");  // not on the tested path
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 1e6;
  EXPECT_FALSE(sim.detects(t, f));
  f.gate = nl.find("16");
  EXPECT_TRUE(sim.detects(t, f));
}

TEST(Detects, PolarityChoiceMatters) {
  // An internal pull-up ROP at NAND gate 16: its output pulse must lead
  // with a rising edge to be attacked. With NAND gates on the way the
  // polarity at gate 16 depends on the launched pulse kind.
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  PulseTest t = test_on(nl, {"2", "16", "22"});
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kInternalRopPullUp;
  f.resistance = 12e3;
  t.positive_pulse = true;   // h at PI "2" -> negative pulse at 16's output
  const double resp_h = sim.response(t, &f);
  t.positive_pulse = false;  // l at PI -> positive pulse at 16: attacked
  const double resp_l = sim.response(t, &f);
  EXPECT_LT(resp_l, resp_h);
}

TEST(Run, CountsDetections) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  PulseTest t = test_on(nl, {"2", "16", "22"}, 0.4e-9, 0.2e-9);
  std::vector<LogicFault> faults;
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 40e3;
  faults.push_back(f);       // on path, strong: detected
  f.gate = nl.find("19");
  faults.push_back(f);       // off path: missed
  f.gate = nl.find("16");
  f.resistance = 100.0;
  faults.push_back(f);       // too weak: missed
  const FaultCoverage cov = sim.run(faults, {t});
  EXPECT_EQ(cov.detected_count, 1u);
  EXPECT_TRUE(cov.detected[0]);
  EXPECT_FALSE(cov.detected[1]);
  EXPECT_FALSE(cov.detected[2]);
  EXPECT_NEAR(cov.coverage(faults.size()), 1.0 / 3.0, 1e-12);
}

TEST(Atpg, CoversC17RopFaults) {
  const Netlist nl = c17();
  const FaultSimulator sim(nl, GateTimingLibrary::generic());
  std::vector<NetId> sites;
  for (NetId id = 0; id < nl.size(); ++id)
    if (nl.gate(id).kind != LogicKind::kInput) sites.push_back(id);
  const auto faults = enumerate_rop_faults(sites, 20e3);
  const AtpgResult res = generate_pulse_tests(sim, faults);
  EXPECT_EQ(res.faults_total, 18u);  // 6 gates x 3 kinds
  EXPECT_GE(res.coverage.coverage(res.faults_total), 0.8)
      << "c17 is highly testable";
  EXPECT_FALSE(res.tests.empty());
  // Every generated test must actually be sensitizable and self-consistent.
  for (const auto& t : res.tests) {
    EXPECT_TRUE(is_sensitized(nl, t.path, t.vector));
    EXPECT_GT(sim.response(t, nullptr), t.w_th)
        << "fault-free machine must pass its own test";
  }
}

TEST(Atpg, DegenerateWidthGridYieldsNoTestsNotAWrap) {
  // w_grid_points < 2 cannot support a slope estimate; width planning must
  // report "no feasible pair" instead of wrapping w_in.size() - 1 at 0.
  const Netlist nl = c17();
  const FaultSimulator sim(nl, GateTimingLibrary::generic());
  std::vector<NetId> sites;
  for (NetId id = 0; id < nl.size(); ++id)
    if (nl.gate(id).kind != LogicKind::kInput) sites.push_back(id);
  const auto faults = enumerate_rop_faults(sites, 20e3);
  for (const std::size_t points : {0u, 1u}) {
    AtpgOptions opt;
    opt.w_grid_points = points;
    const AtpgResult res = generate_pulse_tests(sim, faults, opt);
    EXPECT_TRUE(res.tests.empty()) << points;
    EXPECT_EQ(res.coverage.detected_count, 0u) << points;
  }
}

TEST(Atpg, SmallResistanceLowersCoverage) {
  const Netlist nl = c17();
  const FaultSimulator sim(nl, GateTimingLibrary::generic());
  std::vector<NetId> sites;
  for (NetId id = 0; id < nl.size(); ++id)
    if (nl.gate(id).kind != LogicKind::kInput) sites.push_back(id);
  const auto strong = enumerate_rop_faults(sites, 30e3);
  const auto weak = enumerate_rop_faults(sites, 150.0);
  const double cov_strong =
      generate_pulse_tests(sim, strong).coverage.coverage(strong.size());
  const double cov_weak =
      generate_pulse_tests(sim, weak).coverage.coverage(weak.size());
  EXPECT_GT(cov_strong, cov_weak);
  // 150-ohm opens shave only a few ps of width: inside the sensor guard
  // band for (almost) every fault. (Internal opens in the 0.5-1 kOhm range
  // are already borderline-detectable, matching the electrical layer.)
  EXPECT_LT(cov_weak, 0.2) << "sub-guard-band opens should be undetectable";
}

TEST(Atpg, FullFlowOnSyntheticBenchmarkSlackSites) {
  // The complete announced tool: STA -> non-critical sites -> fault list ->
  // ATPG -> coverage, on the C432-class benchmark.
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const StaResult sta = run_sta(nl, lib);
  auto sites = slack_sites(nl, sta, 0.25 * sta.critical_delay);
  ASSERT_GE(sites.size(), 8u);
  sites.resize(8);  // keep the test quick
  const FaultSimulator sim(nl, lib);
  const auto faults = enumerate_rop_faults(sites, 25e3);
  const AtpgResult res = generate_pulse_tests(sim, faults);
  EXPECT_GT(res.coverage.coverage(res.faults_total), 0.2)
      << "some slack-site faults must be testable";
  EXPECT_EQ(res.coverage.detected_count + res.aborted +
                (res.faults_total - res.coverage.detected_count - res.aborted),
            res.faults_total);
  // Tests target non-critical sites: by construction every tested fault
  // would need > 0.25 * Tcrit of extra delay to show up in DF testing.
  for (const auto& t : res.tests) EXPECT_GE(t.path.length(), 2u);
}

TEST(MultiFault, DampeningCompoundsNeverMasks) {
  // The paper criticizes ordering-based DF methods because "fault effects
  // can be masked by the presence of multiple path DFs". The pulse width
  // map is monotone: adding defects can only shrink the response.
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"3", "11", "16", "22"});
  LogicFault f1;
  f1.gate = nl.find("11");
  f1.kind = LogicFaultKind::kExternalRop;
  f1.resistance = 6e3;
  LogicFault f2;
  f2.gate = nl.find("16");
  f2.kind = LogicFaultKind::kExternalRop;
  f2.resistance = 6e3;
  const double clean = sim.response(t, nullptr);
  const double only1 = sim.response(t, &f1);
  const double only2 = sim.response(t, &f2);
  const double both = sim.response_multi(t, {f1, f2});
  EXPECT_LT(only1, clean);
  EXPECT_LT(only2, clean);
  EXPECT_LE(both, std::min(only1, only2))
      << "a second defect must never restore the pulse";
}

TEST(MultiFault, CoLocatedDefectsStack) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"2", "16", "22"});
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 5e3;
  const double one = sim.response(t, &f);
  const double two = sim.response_multi(t, {f, f});
  LogicFault big = f;
  big.resistance = 10e3;
  const double doubled = sim.response(t, &big);
  EXPECT_LE(two, one);
  EXPECT_NEAR(two, doubled, 1e-15) << "stacking equals the summed R";
}

TEST(MultiFault, EmptyListEqualsFaultFree) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  const PulseTest t = test_on(nl, {"2", "16", "22"});
  EXPECT_DOUBLE_EQ(sim.response_multi(t, {}), sim.response(t, nullptr));
}

TEST(Compaction, DropsRedundantTests) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  std::vector<LogicFault> faults;
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 40e3;
  faults.push_back(f);
  // Two tests through the fault plus one useless test elsewhere.
  std::vector<PulseTest> tests{test_on(nl, {"2", "16", "22"}, 0.4e-9, 0.2e-9),
                               test_on(nl, {"2", "16", "23"}, 0.4e-9, 0.2e-9),
                               test_on(nl, {"7", "19", "23"}, 0.4e-9, 0.2e-9)};
  const auto before = sim.run(faults, tests);
  const auto compacted = compact_tests(sim, faults, tests);
  const auto after = sim.run(faults, compacted);
  EXPECT_EQ(before.detected_count, after.detected_count);
  EXPECT_LT(compacted.size(), tests.size());
  EXPECT_EQ(compacted.size(), 1u);
}

TEST(DelayTestingLogic, FaultAddsPathDelay) {
  const FaultSimulator sim = c17_sim();
  const Netlist& nl = sim.netlist();
  Path p;
  p.nets = {nl.find("2"), nl.find("16"), nl.find("22")};
  LogicFault f;
  f.gate = nl.find("16");
  f.kind = LogicFaultKind::kExternalRop;
  f.resistance = 10e3;
  const double clean = path_delay_logic(sim, p, nullptr);
  const double faulty = path_delay_logic(sim, p, &f);
  EXPECT_GT(clean, 0.0);
  EXPECT_NEAR(faulty - clean, 10e3 * FaultTimingCoefficients{}.c_delay, 1e-15);
}

TEST(DelayTestingLogic, SlackHidesSmallDefects) {
  // At a clock sized by the critical path, a path with generous slack hides
  // even a 10 kOhm open; a clock reduced to just above that path's own
  // delay exposes it — Figs. 6/8 at the logic level.
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const FaultSimulator sim(nl, lib);
  const StaResult sta = run_sta(nl, lib);

  // Find a slack site with a sensitizable path through it.
  Path tested;
  NetId site = 0;
  bool found = false;
  for (NetId s : slack_sites(nl, sta, 0.4 * sta.critical_delay)) {
    for (const auto& p : enumerate_paths_through(nl, s, 16)) {
      if (sensitize_path(nl, p).ok) {
        tested = p;
        site = s;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  ASSERT_TRUE(found);

  const auto faults = enumerate_rop_faults({site}, 10e3);
  const double fault_delay = 10e3 * FaultTimingCoefficients{}.c_delay;
  const double d_clean = path_delay_logic(sim, tested, nullptr);

  DelayTestModel at_speed;  // clock = critical delay + overhead
  const auto cov_at_speed = run_delay_testing(sim, faults, at_speed);
  EXPECT_EQ(cov_at_speed.detected_count, 0u)
      << "slack must hide the defect at speed";

  DelayTestModel reduced;
  reduced.clock_period = d_clean + reduced.ff_overhead + 0.5 * fault_delay;
  const auto cov_reduced = run_delay_testing(sim, faults, reduced);
  EXPECT_GT(cov_reduced.detected_count, cov_at_speed.detected_count);
}

TEST(DelayTestingLogic, PulseBeatsDelayAtCircuitScale) {
  // The headline comparison, at circuit scale and logic level: same faults,
  // at-speed DF testing vs the pulse method.
  const Netlist nl = synthetic_benchmark(SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const FaultSimulator sim(nl, lib);
  const StaResult sta = run_sta(nl, lib);
  auto sites = slack_sites(nl, sta, 0.3 * sta.critical_delay);
  ASSERT_GE(sites.size(), 6u);
  sites.resize(6);
  const auto faults = enumerate_rop_faults(sites, 20e3);
  const auto pulse = generate_pulse_tests(sim, faults);
  const auto delay = run_delay_testing(sim, faults, DelayTestModel{});
  EXPECT_GT(pulse.coverage.detected_count, delay.detected_count);
}

TEST(EnumerateFaults, ThreeKindsPerSite) {
  const auto faults = enumerate_rop_faults({3, 7}, 5e3);
  ASSERT_EQ(faults.size(), 6u);
  EXPECT_EQ(faults[0].gate, 3u);
  EXPECT_EQ(faults[5].gate, 7u);
  EXPECT_THROW(static_cast<void>(enumerate_rop_faults({1}, -5.0)), PreconditionError);
}

}  // namespace
}  // namespace ppd::logic
