// Three-valued evaluation and don't-care certification of sensitization
// vectors.
#include <gtest/gtest.h>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {
namespace {

TEST(Ternary, GateCalculus) {
  using enum Tri;
  // Controlling values decide despite Xs.
  EXPECT_EQ(eval_gate_ternary(LogicKind::kAnd, {k0, kX}), k0);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNand, {k0, kX}), k1);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kOr, {k1, kX}), k1);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNor, {k1, kX}), k0);
  // Non-controlling + X stays X.
  EXPECT_EQ(eval_gate_ternary(LogicKind::kAnd, {k1, kX}), kX);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNor, {k0, kX}), kX);
  // Fully known reduces to boolean.
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNand, {k1, k1}), k0);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kXor, {k1, k0}), k1);
  // Any X poisons parity.
  EXPECT_EQ(eval_gate_ternary(LogicKind::kXor, {k1, kX}), kX);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNot, {kX}), kX);
  EXPECT_EQ(eval_gate_ternary(LogicKind::kNot, {k0}), k1);
}

TEST(Ternary, PessimismIsSound) {
  // Property: whenever the ternary evaluation says k0/k1, every boolean
  // completion of the X inputs agrees.
  const Netlist nl = c17();
  mc::Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Tri> tri(nl.inputs().size());
    for (auto& t : tri) {
      const double u = rng.uniform();
      t = u < 0.33 ? Tri::k0 : (u < 0.66 ? Tri::k1 : Tri::kX);
    }
    const auto tv = nl.evaluate_ternary(tri);
    for (int completion = 0; completion < 8; ++completion) {
      std::vector<bool> pis(nl.inputs().size());
      for (std::size_t i = 0; i < pis.size(); ++i) {
        if (tri[i] == Tri::kX)
          pis[i] = rng.uniform() < 0.5;
        else
          pis[i] = tri[i] == Tri::k1;
      }
      const auto bv = nl.evaluate(pis);
      for (NetId id = 0; id < nl.size(); ++id) {
        if (tv[id] == Tri::kX) continue;
        EXPECT_EQ(bv[id], tv[id] == Tri::k1)
            << "net " << nl.gate(id).name << " trial " << trial;
      }
    }
  }
}

TEST(Ternary, SensitizationCertifiesDontCares) {
  // c17 path 2 -> 16 -> 22: requires 11 = 1 (via 3 = 0 or 6 = 0) and
  // 10 = 1; several of the five inputs should be certified don't-care.
  const Netlist nl = c17();
  Path p;
  p.nets = {nl.find("2"), nl.find("16"), nl.find("22")};
  const auto res = sensitize_path(nl, p);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.pi_care.size(), nl.inputs().size());
  EXPECT_GT(res.dont_care_count(), 0u) << "expected at least one don't-care";
  // The path input itself is always a care bit.
  std::size_t input_index = 99;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    if (nl.inputs()[i] == p.input()) input_index = i;
  ASSERT_LT(input_index, nl.inputs().size());
  EXPECT_TRUE(res.pi_care[input_index] != 0);
}

TEST(Ternary, DontCareCompletionsAllWork) {
  // Property: flipping certified don't-care inputs never breaks the
  // sensitization or the output toggle.
  const Netlist nl = c17();
  for (const auto& p : enumerate_paths_through(nl, nl.find("16"), 8)) {
    const auto res = sensitize_path(nl, p);
    if (!res.ok || res.pi_care.empty()) continue;
    std::size_t input_index = 0;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      if (nl.inputs()[i] == p.input()) input_index = i;
    mc::Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<bool> v = res.pi_values;
      for (std::size_t i = 0; i < v.size(); ++i)
        if (res.pi_care[i] == 0) v[i] = rng.uniform() < 0.5;
      std::vector<bool> flipped = v;
      flipped[input_index] = !flipped[input_index];
      EXPECT_TRUE(is_sensitized(nl, p, v));
      EXPECT_TRUE(is_sensitized(nl, p, flipped));
      EXPECT_NE(nl.evaluate(v)[p.output()], nl.evaluate(flipped)[p.output()]);
    }
  }
}

}  // namespace
}  // namespace ppd::logic
