#include "ppd/util/cli.hpp"

#include <gtest/gtest.h>

#include "ppd/util/error.hpp"

namespace ppd::util {
namespace {

Cli make(std::initializer_list<const char*> args,
         const std::vector<std::string>& allowed) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(Cli, ParsesKeyValue) {
  const Cli cli = make({"--samples=25", "--sigma=0.05"}, {"samples", "sigma"});
  EXPECT_EQ(cli.get("samples", 0), 25);
  EXPECT_DOUBLE_EQ(cli.get("sigma", 0.0), 0.05);
}

TEST(Cli, FlagWithoutValueReadsAsOne) {
  const Cli cli = make({"--csv"}, {"csv"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_EQ(cli.get("csv", 0), 1);
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({}, {"samples"});
  EXPECT_EQ(cli.get("samples", 42), 42);
  EXPECT_EQ(cli.get("samples", std::string("x")), "x");
}

TEST(Cli, RejectsUnknownOption) {
  EXPECT_THROW(make({"--bogus=1"}, {"samples"}), ParseError);
}

TEST(Cli, RejectsNonFlagArgument) {
  EXPECT_THROW(make({"positional"}, {"samples"}), ParseError);
}

TEST(Cli, RejectsNonNumericValue) {
  const Cli cli = make({"--samples=abc"}, {"samples"});
  EXPECT_THROW(static_cast<void>(cli.get("samples", 0)), ParseError);
}

}  // namespace
}  // namespace ppd::util
