#include "ppd/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ppd/util/error.hpp"

namespace ppd::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, StoresRows) {
  Table t({"R", "coverage"});
  t.add_row({"100", "0.5"});
  t.add_numeric_row({200.0, 0.75});
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "100");
  EXPECT_EQ(t.row(1)[1], "0.75");
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"long-name", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1e-9, 3), "1e-09");
}

}  // namespace
}  // namespace ppd::util
