#include "ppd/util/strings.hpp"

#include <gtest/gtest.h>

namespace ppd::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, IequalsIgnoresCase) {
  EXPECT_TRUE(iequals("NAND", "nand"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("nand", "nor"));
  EXPECT_FALSE(iequals("nand", "nand2"));
}

TEST(Strings, ToUpper) {
  EXPECT_EQ(to_upper("abC1"), "ABC1");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

}  // namespace
}  // namespace ppd::util
