// Unit tests for the ppd::sta static-analysis subsystem: interval STA,
// K-slackiest enumeration, SCOAP, survival bounds, the path screen and the
// PPD3xx lint family.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/sta.hpp"
#include "ppd/sta/interval.hpp"
#include "ppd/sta/interval_sta.hpp"
#include "ppd/sta/lint.hpp"
#include "ppd/sta/scoap.hpp"
#include "ppd/sta/screen.hpp"
#include "ppd/sta/survival.hpp"

namespace ppd::sta {
namespace {

using logic::GateTiming;
using logic::GateTimingLibrary;
using logic::LogicKind;
using logic::Netlist;
using logic::NetId;

GateTimingLibrary flat_library(double rise = 100e-12, double fall = 100e-12) {
  GateTimingLibrary lib;
  GateTiming t;
  t.delay_rise = rise;
  t.delay_fall = fall;
  lib.set_default(t);
  for (LogicKind k : {LogicKind::kNot, LogicKind::kNand, LogicKind::kNor,
                      LogicKind::kBuf, LogicKind::kAnd, LogicKind::kOr,
                      LogicKind::kXor, LogicKind::kXnor})
    lib.set(k, t);
  return lib;
}

TEST(Interval, BasicsAndHull) {
  const Interval a{1.0, 3.0};
  EXPECT_DOUBLE_EQ(a.width(), 2.0);
  EXPECT_TRUE(a.contains(2.0));
  EXPECT_FALSE(a.contains(3.5));
  EXPECT_EQ(a + 1.0, (Interval{2.0, 4.0}));
  EXPECT_EQ(hull(a, Interval{0.5, 2.0}), (Interval{0.5, 3.0}));
  EXPECT_EQ(Interval::point(5.0), (Interval{5.0, 5.0}));
}

TEST(EdgeCauseMap, MatchesGateSemantics) {
  EXPECT_EQ(edge_cause(LogicKind::kBuf), EdgeCause::kSame);
  EXPECT_EQ(edge_cause(LogicKind::kAnd), EdgeCause::kSame);
  EXPECT_EQ(edge_cause(LogicKind::kOr), EdgeCause::kSame);
  EXPECT_EQ(edge_cause(LogicKind::kNot), EdgeCause::kInverted);
  EXPECT_EQ(edge_cause(LogicKind::kNand), EdgeCause::kInverted);
  EXPECT_EQ(edge_cause(LogicKind::kNor), EdgeCause::kInverted);
  EXPECT_EQ(edge_cause(LogicKind::kXor), EdgeCause::kEither);
  EXPECT_EQ(edge_cause(LogicKind::kXnor), EdgeCause::kEither);
}

TEST(IntervalSta, PolarityAlternatesThroughInverters) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(LogicKind::kNot, "g1", {a});
  const NetId g2 = nl.add_gate(LogicKind::kNot, "g2", {g1});
  nl.mark_output(g2);
  const auto lib = flat_library(120e-12, 60e-12);
  const IntervalStaResult r = run_interval_sta(nl, lib);
  // A rising g1 edge is caused by a falling input edge and costs
  // delay_rise; both windows are points (single path, no reconvergence).
  EXPECT_EQ(r.arrival[g1].rise, Interval::point(120e-12));
  EXPECT_EQ(r.arrival[g1].fall, Interval::point(60e-12));
  EXPECT_EQ(r.arrival[g2].rise, Interval::point(180e-12));
  EXPECT_EQ(r.arrival[g2].fall, Interval::point(180e-12));
  EXPECT_DOUBLE_EQ(r.critical_delay, 180e-12);
}

TEST(IntervalSta, ReconvergenceWidensTheWindow) {
  // out = NAND(a->slow chain, a): the fast and slow routes give the output
  // a genuine arrival window, not a single number.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId s1 = nl.add_gate(LogicKind::kBuf, "s1", {a});
  const NetId s2 = nl.add_gate(LogicKind::kBuf, "s2", {s1});
  const NetId out = nl.add_gate(LogicKind::kAnd, "out", {s2, a});
  nl.mark_output(out);
  const IntervalStaResult r = run_interval_sta(nl, flat_library());
  EXPECT_DOUBLE_EQ(r.arrival[out].rise.lo, 100e-12);  // via the direct input
  EXPECT_DOUBLE_EQ(r.arrival[out].rise.hi, 300e-12);  // via the buffer chain
  EXPECT_DOUBLE_EQ(r.arrival[out].rise.width(), 200e-12);
  EXPECT_DOUBLE_EQ(r.critical_delay, 300e-12);
  // Guaranteed slack is measured against the latest arrival, optimistic
  // against the earliest.
  EXPECT_NEAR(r.slack[out].lo, 0.0, 1e-18);
  EXPECT_NEAR(r.slack[out].hi, 200e-12, 1e-18);
}

TEST(IntervalSta, SlackIntervalClampsUnreachableNets) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g = nl.add_gate(LogicKind::kNot, "g", {a});
  const NetId dead = nl.add_gate(LogicKind::kNot, "dead", {b});
  nl.mark_output(g);
  const IntervalStaResult r = run_interval_sta(nl, flat_library(), 400e-12);
  EXPECT_TRUE(std::isinf(r.required_rise[dead]));
  EXPECT_TRUE(std::isinf(r.required_fall[dead]));
  EXPECT_NEAR(r.slack[dead].lo, 300e-12, 1e-18);
  EXPECT_DOUBLE_EQ(r.clock_period, 400e-12);
}

TEST(IntervalSta, AgreesWithScalarStaOnTheBenchmark) {
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const IntervalStaResult ir = run_interval_sta(nl, lib);
  const logic::StaResult sr = logic::run_sta(nl, lib);
  // Both passes are polarity-aware; the worst-case critical delay and the
  // per-net latest arrivals must agree exactly.
  EXPECT_DOUBLE_EQ(ir.critical_delay, sr.critical_delay);
  for (NetId id = 0; id < nl.size(); ++id)
    EXPECT_DOUBLE_EQ(ir.arrival[id].latest(), sr.arrival[id]) << "net " << id;
}

TEST(KSlackiest, FindsAllPathsOfATinyNetlist) {
  // a -> g1 -> out and b -> g2 -> out; delays make (b, g2) strictly
  // slacker. Both paths must come out, slackest first.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g1 = nl.add_gate(LogicKind::kBuf, "g1", {a});
  const NetId g2 = nl.add_gate(LogicKind::kBuf, "g2", {b});
  const NetId g3 = nl.add_gate(LogicKind::kBuf, "g3", {g1});
  const NetId out = nl.add_gate(LogicKind::kAnd, "out", {g3, g2});
  nl.mark_output(out);
  const auto paths = k_slackiest_paths(nl, flat_library(), 8);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].path.nets, (std::vector<NetId>{b, g2, out}));
  EXPECT_EQ(paths[1].path.nets, (std::vector<NetId>{a, g1, g3, out}));
  EXPECT_DOUBLE_EQ(paths[0].delay, 200e-12);
  EXPECT_DOUBLE_EQ(paths[1].delay, 300e-12);
  EXPECT_GT(paths[0].slack, paths[1].slack);
  // Clock defaults to the critical delay: the critical path has slack 0.
  EXPECT_NEAR(paths[1].slack, 0.0, 1e-18);
}

TEST(KSlackiest, DelaysMatchPathDelayWorstAndAreSorted) {
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const auto paths = k_slackiest_paths(nl, lib, 12);
  ASSERT_EQ(paths.size(), 12u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_DOUBLE_EQ(paths[i].delay,
                     path_delay_worst(nl, lib, paths[i].path));
    if (i > 0) EXPECT_GE(paths[i].delay, paths[i - 1].delay);
  }
  // Determinism: a second run returns byte-identical paths.
  const auto again = k_slackiest_paths(nl, lib, 12);
  for (std::size_t i = 0; i < paths.size(); ++i)
    EXPECT_EQ(paths[i].path.nets, again[i].path.nets);
}

TEST(Scoap, HandComputedValuesOnASmallNetlist) {
  // c = AND(a, b); d = NOT(c). Goldstein: PIs CC0 = CC1 = 1.
  // AND: CC1 = cc1(a) + cc1(b) + 1 = 3, CC0 = min(cc0) + 1 = 2.
  // NOT: CC0 = cc1(c) + 1 = 4, CC1 = cc0(c) + 1 = 3.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_gate(LogicKind::kAnd, "c", {a, b});
  const NetId d = nl.add_gate(LogicKind::kNot, "d", {c});
  nl.mark_output(d);
  const ScoapResult s = compute_scoap(nl);
  EXPECT_EQ(s.cc0[a], 1u);
  EXPECT_EQ(s.cc1[a], 1u);
  EXPECT_EQ(s.cc0[c], 2u);
  EXPECT_EQ(s.cc1[c], 3u);
  EXPECT_EQ(s.cc0[d], 4u);
  EXPECT_EQ(s.cc1[d], 3u);
  // CO: output d = 0; c through the NOT costs +1; a through the AND costs
  // co(c) + 1 + cc1(b) = 1 + 1 + 1 = 3.
  EXPECT_EQ(s.co[d], 0u);
  EXPECT_EQ(s.co[c], 1u);
  EXPECT_EQ(s.co[a], 3u);
}

TEST(Scoap, SaturatingAddAbsorbsInfinity) {
  EXPECT_EQ(scoap_add(2, 3), 5u);
  EXPECT_EQ(scoap_add(kScoapInfinite, 3), kScoapInfinite);
  EXPECT_EQ(scoap_add(3, kScoapInfinite), kScoapInfinite);
  EXPECT_EQ(scoap_add(kScoapInfinite - 2, 5), kScoapInfinite);
}

TEST(Scoap, FiniteEverywhereOnTheBenchmark) {
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const ScoapResult s = compute_scoap(nl);
  for (NetId id = 0; id < nl.size(); ++id) {
    EXPECT_NE(s.cc0[id], kScoapInfinite) << id;
    EXPECT_NE(s.cc1[id], kScoapInfinite) << id;
  }
}

TEST(Scoap, SideInputCostPricesNonControllingValues) {
  // Path a -> c -> e with side inputs b (AND: must be 1) and d (NOR: must
  // be 0).
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId d = nl.add_input("d");
  const NetId c = nl.add_gate(LogicKind::kAnd, "c", {a, b});
  const NetId e = nl.add_gate(LogicKind::kNor, "e", {c, d});
  nl.mark_output(e);
  const ScoapResult s = compute_scoap(nl);
  logic::Path p;
  p.nets = {a, c, e};
  EXPECT_EQ(side_input_cost(nl, s, p), s.cc1[b] + s.cc0[d]);
}

TEST(Survival, NominalBoundsMatchTheGateMap) {
  const GateTiming t = GateTimingLibrary::generic().timing(LogicKind::kNand);
  for (double w : {30e-12, 80e-12, 150e-12, 300e-12}) {
    const Interval out = gate_pulse_bounds(t, Interval::point(w), 0.0);
    EXPECT_DOUBLE_EQ(out.lo, logic::gate_pulse_out(t, w)) << w;
    EXPECT_DOUBLE_EQ(out.hi, logic::gate_pulse_out(t, w)) << w;
  }
}

TEST(Survival, MarginBoundsBracketTheNominalMapAtCorners) {
  // Corner exactness: the optimistic bound must equal the nominal map
  // under parameters scaled by (1 - margin), the pessimistic one under
  // (1 + margin) — and the bounds must bracket the nominal output.
  const GateTiming t = GateTimingLibrary::generic().timing(LogicKind::kNor);
  const double margin = 0.25;
  const auto scaled = [&](double f) {
    GateTiming s = t;
    s.w_block *= f;
    s.w_pass *= f;
    s.shrink *= f;
    return s;
  };
  for (double w : {40e-12, 70e-12, 110e-12, 200e-12, 500e-12}) {
    const Interval out = gate_pulse_bounds(t, Interval::point(w), margin);
    EXPECT_DOUBLE_EQ(out.hi, logic::gate_pulse_out(scaled(1.0 - margin), w));
    EXPECT_DOUBLE_EQ(out.lo, logic::gate_pulse_out(scaled(1.0 + margin), w));
    EXPECT_LE(out.lo, logic::gate_pulse_out(t, w) + 1e-18);
    EXPECT_GE(out.hi, logic::gate_pulse_out(t, w) - 1e-18);
  }
}

TEST(Survival, RequiredWidthInvertsTheOptimisticMap) {
  const GateTiming t = GateTimingLibrary::generic().timing(LogicKind::kNand);
  for (double margin : {0.0, 0.1, 0.25}) {
    for (double target : {10e-12, 60e-12, 120e-12, 400e-12}) {
      const double w = gate_required_width(t, target, margin);
      // Feeding the required width back through the optimistic corner must
      // reach the target (closed-form inverse of a piecewise-linear map).
      const Interval out = gate_pulse_bounds(t, Interval::point(w), margin);
      EXPECT_NEAR(out.hi, target, 1e-18) << margin << " " << target;
      // And epsilon less must fall short.
      const Interval under =
          gate_pulse_bounds(t, Interval::point(w - 1e-15), margin);
      EXPECT_LT(under.hi, target) << margin << " " << target;
    }
  }
}

TEST(Survival, PathRequiredWidthAgreesWithBisection) {
  // The closed-form backward composition must agree with the existing
  // bisection solver on the nominal (margin 0) chain map.
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  const auto paths = k_slackiest_paths(nl, lib, 6);
  ASSERT_FALSE(paths.empty());
  for (const auto& sp : paths) {
    const double closed =
        path_required_width(lib, nl, sp.path, 100e-12, 0.0);
    const auto kinds = logic::path_kinds(nl, sp.path);
    const auto bisect =
        logic::required_input_width(lib, kinds, 100e-12, 2e-9, 1e-14);
    ASSERT_TRUE(bisect.has_value());
    EXPECT_NEAR(closed, *bisect, 1e-13);
  }
}

TEST(Survival, BackwardNeedPassMatchesPerPathBoundsOnAChain) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g1 = nl.add_gate(LogicKind::kNand, "g1", {a, a});
  const NetId g2 = nl.add_gate(LogicKind::kNor, "g2", {g1, g1});
  nl.mark_output(g2);
  const auto lib = GateTimingLibrary::generic();
  SurvivalOptions opt;
  opt.w_th_floor = 80e-12;
  opt.margin = 0.2;
  const SurvivalResult r = compute_survival(nl, lib, opt);
  // At the PO the need is the sensing floor itself; at the PI it equals
  // the full backward composition along the only path.
  EXPECT_DOUBLE_EQ(r.need[g2], opt.w_th_floor);
  logic::Path p;
  p.nets = {a, g1, g2};
  EXPECT_DOUBLE_EQ(r.need[a],
                   path_required_width(lib, nl, p, opt.w_th_floor, opt.margin));
  EXPECT_FALSE(r.dead(a));
}

TEST(Survival, TightCeilingMakesSitesDead) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  NetId prev = a;
  for (int i = 0; i < 8; ++i)
    prev = nl.add_gate(LogicKind::kNor, "n" + std::to_string(i), {prev, prev});
  nl.mark_output(prev);
  SurvivalOptions opt;
  opt.w_in_max = 90e-12;  // below the 8-stage NOR block threshold
  opt.margin = 0.0;
  const SurvivalResult r = compute_survival(nl, GateTimingLibrary::generic(), opt);
  EXPECT_TRUE(r.dead(a));
  EXPECT_FALSE(r.dead(prev));  // the PO itself only needs the floor
}

TEST(Screen, VerdictsAndDeterminismAcrossThreadCounts) {
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  std::vector<logic::Path> paths;
  for (const auto& sp : k_slackiest_paths(nl, lib, 10)) paths.push_back(sp.path);
  ScreenOptions opt;
  opt.w_in_max = 0.14e-9;  // constrained generator: long paths must die
  opt.margin = 0.0;
  const ScreenReport serial = screen_paths(nl, lib, paths, opt);
  EXPECT_EQ(serial.paths.size(), paths.size());
  EXPECT_EQ(serial.kept + serial.pulse_dead + serial.unjustifiable,
            paths.size());
  for (int threads : {2, 8}) {
    ScreenOptions topt = opt;
    topt.threads = threads;
    const ScreenReport r = screen_paths(nl, lib, paths, topt);
    ASSERT_EQ(r.paths.size(), serial.paths.size());
    for (std::size_t i = 0; i < r.paths.size(); ++i) {
      EXPECT_EQ(r.paths[i].verdict, serial.paths[i].verdict) << i;
      EXPECT_DOUBLE_EQ(r.paths[i].delay, serial.paths[i].delay) << i;
      EXPECT_DOUBLE_EQ(r.paths[i].w_required, serial.paths[i].w_required) << i;
    }
  }
  // kept_paths() preserves input order of the kept subset.
  const auto kept = serial.kept_paths();
  EXPECT_EQ(kept.size(), serial.kept);
}

TEST(Screen, GenerousCeilingKeepsSensitizablePaths) {
  const Netlist nl = logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = GateTimingLibrary::generic();
  std::vector<logic::Path> paths;
  for (const auto& sp : k_slackiest_paths(nl, lib, 6)) paths.push_back(sp.path);
  ScreenOptions opt;  // defaults: w_in_max = 1.2 ns, margin = 0.25
  const ScreenReport r = screen_paths(nl, lib, paths, opt);
  EXPECT_EQ(r.pulse_dead, 0u)
      << "a 1.2 ns generator must never lose these short paths";
  for (const auto& sp : r.paths)
    if (sp.verdict == Verdict::kKept) EXPECT_LT(sp.w_required, opt.w_in_max);
}

TEST(StaLint, FamilyTriggersOnAConstrainedNetlist) {
  // A generator ceiling below the sensing floor makes every site pulse-dead
  // (PPD301) and the whole netlist undetectable (PPD304); the high-slack
  // dead side branch raises PPD303 on top.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  NetId prev = a;
  for (int i = 0; i < 8; ++i)
    prev = nl.add_gate(LogicKind::kNor, "n" + std::to_string(i), {prev, prev});
  const NetId slackful = nl.add_gate(LogicKind::kNot, "slackful", {b});
  const NetId out = nl.add_gate(LogicKind::kAnd, "out", {prev, slackful});
  nl.mark_output(out);

  StaLintOptions opt;
  opt.survival.w_in_max = 40e-12;  // below the 50 ps sensing floor
  opt.survival.margin = 0.0;
  const lint::Report report = lint_sta(nl, GateTimingLibrary::generic(), opt);
  bool saw301 = false, saw303 = false, saw304 = false;
  for (const auto& d : report.diagnostics()) {
    saw301 |= d.code == "PPD301";
    saw303 |= d.code == "PPD303";
    saw304 |= d.code == "PPD304";
  }
  EXPECT_TRUE(saw301);
  EXPECT_TRUE(saw303);
  EXPECT_TRUE(saw304);
  EXPECT_GT(report.count(lint::Severity::kWarning), 0u);
}

TEST(StaLint, CleanNetlistStaysClean) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate(LogicKind::kNot, "g", {a});
  nl.mark_output(g);
  const lint::Report report = lint_sta(nl, GateTimingLibrary::generic(), {});
  EXPECT_EQ(report.diagnostics().size(), 0u) << lint::to_text(report);
}

}  // namespace
}  // namespace ppd::sta
