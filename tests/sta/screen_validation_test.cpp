// Brute-force vs screened electrical cross-validation of the static path
// screen (the PR's safety contract):
//
//  * the screened flow's kept set is a subset of the brute-force candidate
//    population, and every screened-out path is individually accounted for;
//  * zero missed detections — every path the screen rejects as pulse-dead
//    is electrically infeasible in the brute-force flow too (calibration
//    fails or nothing is detectable through it);
//  * the kept paths' electrical results are bit-identical to the
//    brute-force flow's results for the same paths;
//  * the screen saves at least 3x the SPICE transient work on the
//    constrained-generator c432-class workload.
//
// The workload constrains the on-chip generator (w_in_max = 155 ps): the
// paper's premise is a cheap local generator, and narrow ceilings are where
// static screening pays. Controls: a single-inverter path that is both
// electrically feasible and screen-kept (the screen must not kill live
// paths), and a 9-stage NAND chain that is both screen-dead and
// electrically dead (the screen must reject it).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/core/path_screen.hpp"
#include "ppd/core/pulse_test.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/logic/bench.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/util/error.hpp"

namespace ppd::sta {
namespace {

// The constrained-generator workload, shared verbatim with the
// bench_perf_engine path_screen section (keep in sync).
constexpr double kWInMax = 0.155e-9;
constexpr double kWThFloor = 50e-12;
constexpr double kMargin = 0.10;

core::CandidateSelectionOptions workload_options(bool screen) {
  core::CandidateSelectionOptions opt;
  opt.max_candidates = 12;
  opt.min_length = 3;
  opt.screen = screen;
  opt.screen_options.w_in_max = kWInMax;
  opt.screen_options.w_th_floor = kWThFloor;
  opt.screen_options.margin = kMargin;
  return opt;
}

core::PulseCalibrationOptions calibration_options() {
  core::PulseCalibrationOptions popt;
  popt.samples = 3;
  popt.seed = 2007;
  popt.variation = mc::VariationModel::uniform_sigma(0.05);
  // The electrical grid tops out exactly at the screen's generator
  // ceiling: the screen may assume no wider pulse is ever launched.
  popt.w_in_grid = core::linspace(0.07e-9, kWInMax, 7);
  popt.w_th_floor = kWThFloor;
  return popt;
}

struct ElectricalOutcome {
  bool feasible = false;
  double w_in = 0.0;
  double w_th = 0.0;
  double min_fault_free_w_out = 0.0;
};

ElectricalOutcome characterize(const core::PathCandidate& c) {
  core::PathFactory factory;
  factory.options.kinds = c.kinds;
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = c.fault_stage;
  factory.fault = fault;
  ElectricalOutcome out;
  try {
    const auto cal = core::calibrate_pulse_test(factory, calibration_options());
    out.feasible = true;
    out.w_in = cal.w_in;
    out.w_th = cal.w_th;
    out.min_fault_free_w_out = cal.min_fault_free_w_out;
  } catch (const NumericalError&) {
    // No grid point supports a zero-false-positive pulse test: the path
    // cannot detect anything under this generator.
  }
  return out;
}

std::uint64_t transient_runs() {
  return obs::counter("spice.transient.runs").value();
}

TEST(ScreenValidation, KeptIsSubsetOfBruteForcePopulation) {
  const logic::Netlist nl =
      logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = logic::GateTimingLibrary::generic();
  const auto brute = core::select_path_candidates(nl, lib, workload_options(false));
  const auto screened = core::select_path_candidates(nl, lib, workload_options(true));

  // Screening filters the identical capped population: same candidates, in
  // the same order — the kept set is a subset by construction.
  ASSERT_EQ(brute.candidates.size(), screened.candidates.size());
  for (std::size_t i = 0; i < brute.candidates.size(); ++i) {
    EXPECT_EQ(brute.candidates[i].path.nets, screened.candidates[i].path.nets);
    EXPECT_EQ(brute.candidates[i].fault_stage, screened.candidates[i].fault_stage);
  }
  EXPECT_EQ(brute.kept.size(), brute.candidates.size());
  EXPECT_EQ(brute.pulse_dead, 0u);
  ASSERT_EQ(screened.screened.size(), screened.candidates.size());
  EXPECT_EQ(screened.kept.size() + screened.pulse_dead,
            screened.candidates.size());
  for (std::size_t idx : screened.kept) {
    ASSERT_LT(idx, screened.candidates.size());
    EXPECT_EQ(screened.screened[idx].verdict, Verdict::kKept);
  }
  // The workload must actually prune hard enough to matter (>= 3x).
  EXPECT_GE(screened.candidates.size(), 3 * screened.kept.size())
      << "screen must prune >= 3x of the constrained-generator population";
}

TEST(ScreenValidation, FeasiblePathIsKept) {
  // Positive control: a single inverter is electrically calibratable under
  // the constrained grid, and the screen keeps it.
  logic::Netlist nl;
  const logic::NetId a = nl.add_input("a");
  const logic::NetId g = nl.add_gate(logic::LogicKind::kNot, "g", {a});
  nl.mark_output(g);
  logic::Path p;
  p.nets = {a, g};

  ScreenOptions sopt;
  sopt.w_in_max = kWInMax;
  sopt.w_th_floor = kWThFloor;
  sopt.margin = kMargin;
  const ScreenReport report =
      screen_paths(nl, logic::GateTimingLibrary::generic(), {p}, sopt);
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.paths[0].verdict, Verdict::kKept);

  core::PathCandidate c;
  c.path = p;
  c.kinds = {cells::GateKind::kInv};
  c.fault_stage = 0;
  const ElectricalOutcome e = characterize(c);
  EXPECT_TRUE(e.feasible)
      << "the positive control must calibrate under the constrained grid";
  EXPECT_LE(e.w_in, kWInMax);
  EXPECT_GE(e.w_th, kWThFloor);
}

TEST(ScreenValidation, DeadPathIsPrunedAndElectricallyInfeasible) {
  // Negative control: nine NAND stages block every pulse the constrained
  // generator can launch — the screen proves it, SPICE confirms it.
  logic::Netlist nl;
  const logic::NetId a = nl.add_input("a");
  logic::NetId prev = a;
  logic::Path p;
  p.nets = {a};
  for (int i = 0; i < 9; ++i) {
    prev = nl.add_gate(logic::LogicKind::kNand, "n" + std::to_string(i),
                       {prev, prev});
    p.nets.push_back(prev);
  }
  nl.mark_output(prev);

  ScreenOptions sopt;
  sopt.w_in_max = kWInMax;
  sopt.w_th_floor = kWThFloor;
  sopt.margin = kMargin;
  sopt.justify = false;
  const ScreenReport report =
      screen_paths(nl, logic::GateTimingLibrary::generic(), {p}, sopt);
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.paths[0].verdict, Verdict::kPulseDead);
  EXPECT_GT(report.paths[0].w_required, kWInMax);

  core::PathCandidate c;
  c.path = p;
  c.kinds.assign(9, cells::GateKind::kNand2);
  c.fault_stage = 4;
  const ElectricalOutcome e = characterize(c);
  EXPECT_FALSE(e.feasible)
      << "screen-dead path must be electrically infeasible: w_in = " << e.w_in;
}

TEST(ScreenValidation, ZeroMissedDetectionsAndThreeFoldSavings) {
  const logic::Netlist nl =
      logic::synthetic_benchmark(logic::SyntheticOptions{});
  const auto lib = logic::GateTimingLibrary::generic();
  const auto screened = core::select_path_candidates(nl, lib, workload_options(true));
  ASSERT_FALSE(screened.candidates.empty());

  // Brute-force flow: every candidate goes to the electrical layer.
  cache::SolveCache::global().clear();
  const std::uint64_t sims_before_brute = transient_runs();
  std::vector<ElectricalOutcome> brute;
  brute.reserve(screened.candidates.size());
  for (const auto& c : screened.candidates) brute.push_back(characterize(c));
  const std::uint64_t sims_brute = transient_runs() - sims_before_brute;

  // Screened flow: only the kept paths do.
  cache::SolveCache::global().clear();
  const std::uint64_t sims_before_screened = transient_runs();
  std::vector<ElectricalOutcome> kept_outcomes;
  for (std::size_t idx : screened.kept)
    kept_outcomes.push_back(characterize(screened.candidates[idx]));
  const std::uint64_t sims_screened = transient_runs() - sims_before_screened;

  // Zero missed detections: no screened-out path was electrically feasible
  // in the brute-force flow.
  for (std::size_t i = 0; i < screened.candidates.size(); ++i) {
    const bool kept = screened.screened[i].verdict == Verdict::kKept;
    if (kept) continue;
    EXPECT_FALSE(brute[i].feasible)
        << "missed detection: screened-out candidate " << i << " ("
        << nl.gate(screened.candidates[i].path.output()).name
        << ") calibrated at w_in = " << brute[i].w_in;
  }

  // Kept results are bit-identical between the flows (same factories, same
  // seeds, cache cleared before each flow).
  for (std::size_t k = 0; k < screened.kept.size(); ++k) {
    const std::size_t i = screened.kept[k];
    EXPECT_EQ(brute[i].feasible, kept_outcomes[k].feasible) << i;
    EXPECT_EQ(brute[i].w_in, kept_outcomes[k].w_in) << i;
    EXPECT_EQ(brute[i].w_th, kept_outcomes[k].w_th) << i;
    EXPECT_EQ(brute[i].min_fault_free_w_out,
              kept_outcomes[k].min_fault_free_w_out)
        << i;
  }

  // >= 3x fewer SPICE transients.
  ASSERT_GT(sims_brute, 0u);
  EXPECT_GE(sims_brute, 3 * sims_screened)
      << "sims_brute = " << sims_brute << ", sims_screened = " << sims_screened;
}

}  // namespace
}  // namespace ppd::sta
