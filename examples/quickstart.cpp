// Quickstart: the whole method in ~60 lines.
//
// Build a sensitized path, inject a resistive open, inject a pulse, and
// watch the defect swallow it — the observable the paper's test method is
// built on. Then apply the calibrated detection predicate.
//
//   $ ./example_quickstart
#include <iostream>

#include "ppd/core/pulse_test.hpp"
#include "ppd/faults/fault.hpp"

int main() {
  using namespace ppd;

  // 1. A five-inverter path in the generic 180nm-class process.
  core::PathFactory factory;
  factory.options.kinds.assign(5, cells::GateKind::kInv);

  // 2. Fault site: external resistive open at the output of gate 2.
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kExternalRopOutput;
  fault.stage = 1;
  factory.fault = fault;

  // 3. Calibrate the pulse test: w_in at the start of the transfer curve's
  //    asymptotic region, w_th with zero false positives over a small
  //    Monte-Carlo population (10% sensor guard band).
  core::PulseCalibrationOptions copt;
  copt.samples = 10;
  const core::PulseTestCalibration cal = core::calibrate_pulse_test(factory, copt);
  std::cout << "calibrated pulse test: w_in = " << cal.w_in * 1e12
            << " ps, sensing threshold w_th = " << cal.w_th * 1e12 << " ps\n";

  // 4. Sweep the defect resistance and test each "device".
  const core::SimSettings sim;
  for (double r : {0.0, 2e3, 8e3, 20e3, 50e3}) {
    core::PathInstance device = core::make_instance(factory, r, nullptr);
    const auto w_out =
        core::output_pulse_width(device.path, cal.kind, cal.w_in, sim);
    const bool detected = core::pulse_detects(w_out, cal.w_th);
    std::cout << "R = " << r / 1e3 << " kOhm: output pulse = ";
    if (w_out)
      std::cout << *w_out * 1e12 << " ps";
    else
      std::cout << "dampened";
    std::cout << (detected ? "  -> FAULT DETECTED\n" : "  -> passes\n");
  }
  return 0;
}
