// Test generation at the logic level (paper Sect. 5) on the authentic
// ISCAS-85 c17 benchmark:
//
//   1. pick a fault site (gate output),
//   2. enumerate the PI->PO paths through it,
//   3. sensitize each path (side inputs at non-controlling values) with the
//      line-justification ATPG,
//   4. estimate the pulse widths each path supports with the calibrated
//      attenuation model,
//   5. verify the chosen vector + pulse with the event-driven timed
//      simulator (the pulse must arrive at the path output).
//
//   $ ./example_c17_pulse_atpg [--site=16]
#include <iostream>

#include "ppd/logic/bench.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/logic/sim.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppd;
  const util::Cli cli(argc, argv, {"site"});
  const std::string site = cli.get("site", std::string("16"));

  const logic::Netlist nl = logic::c17();
  std::cout << "c17: " << nl.inputs().size() << " PIs, "
            << nl.outputs().size() << " POs, " << nl.gate_count()
            << " NAND2 gates\nfault site: output of gate " << site << "\n\n";

  const logic::NetId via = nl.find(site);
  const auto paths = logic::enumerate_paths_through(nl, via, 64);
  const auto lib = logic::GateTimingLibrary::generic();

  util::Table t({"path", "vector(1,2,3,6,7)", "w_in_ps(min)", "w_out_ps",
                 "sim_check"});
  for (const auto& p : paths) {
    std::string path_str;
    for (logic::NetId n : p.nets) {
      if (!path_str.empty()) path_str += ">";
      path_str += nl.gate(n).name;
    }
    const auto sens = logic::sensitize_path(nl, p);
    if (!sens.ok) {
      t.add_row({path_str, "not sensitizable", "-", "-", "-"});
      continue;
    }
    std::string vec;
    for (bool b : sens.pi_values) vec += b ? '1' : '0';

    // Smallest pulse the path propagates with >= 100 ps at the output,
    // according to the per-gate attenuation model.
    const auto kinds = logic::path_kinds(nl, p);
    const auto w_min = logic::required_input_width(lib, kinds, 100e-12);
    const double w_use = w_min.value_or(0.4e-9) * 1.2;
    const double w_pred = logic::chain_pulse_out(lib, kinds, w_use);

    // Event-driven verification: apply the vector, pulse the path input,
    // check a pulse arrives at the path output.
    std::vector<logic::Stimulus> stim(nl.inputs().size());
    std::size_t pi_index = 0;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      stim[i].initial = sens.pi_values[i];
      if (nl.inputs()[i] == p.input()) pi_index = i;
    }
    stim[pi_index] = logic::Stimulus::pulse(sens.pi_values[pi_index], 1e-9, w_use);
    const auto sim = logic::simulate(nl, stim);
    const bool arrived = sim.activity(p.output()) >= 2;

    t.add_row({path_str, vec,
               w_min ? util::format_double(*w_min * 1e12, 4) : ">2000",
               util::format_double(w_pred * 1e12, 4),
               arrived ? "pulse at PO" : "NO PULSE"});
  }
  t.print(std::cout);
  std::cout << "\nPaths whose pulse arrives can be tested for ROPs/bridges "
               "at this site;\ntest generation picks the one supporting the "
               "smallest w_in (Sect. 5).\n";
  return 0;
}
