// The electrical substrate as a standalone library: a 5-stage ring
// oscillator swept over supply voltage, using only the ppd::spice and
// ppd::cells layers (no test-method code). Prints frequency and per-stage
// delay per VDD point.
//
//   $ ./example_ring_oscillator [--stages=5]
#include <iostream>

#include "ppd/cells/netlist.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/table.hpp"
#include "ppd/wave/waveform.hpp"

int main(int argc, char** argv) {
  using namespace ppd;
  const util::Cli cli(argc, argv, {"stages"});
  const int stages = cli.get("stages", 5);
  if (stages < 3 || stages % 2 == 0) {
    std::cerr << "stages must be odd and >= 3\n";
    return 1;
  }

  util::Table t({"vdd_V", "freq_MHz", "stage_delay_ps"});
  for (double vdd : {1.2, 1.5, 1.8, 2.1}) {
    cells::Process proc;
    proc.vdd = vdd;
    cells::Netlist nl(proc);
    spice::Circuit& c = nl.circuit();
    for (int i = 0; i < stages; ++i) {
      nl.add_gate(cells::GateKind::kInv, "g" + std::to_string(i),
                  {c.node("r" + std::to_string(i))},
                  "r" + std::to_string((i + 1) % stages));
      nl.add_load("Cl" + std::to_string(i), c.find_node("r" + std::to_string(i)),
                  5e-15);
    }
    // Kick the loop off its metastable operating point.
    spice::Pulse kick;
    kick.v2 = 2e-4;
    kick.delay = 10e-12;
    kick.rise = kick.fall = 5e-12;
    kick.width = 50e-12;
    c.add_isource("Ikick", c.find_node("r0"), spice::kGround, kick);

    spice::TransientOptions opt;
    opt.t_stop = 8e-9;
    opt.dt = 2e-12;
    opt.adaptive = true;
    opt.dt_max = 6e-12;
    const auto res = spice::run_transient(c, opt);
    const auto& w = res.wave("r0");

    // Frequency from the last few rising crossings of VDD/2.
    const auto xs = wave::crossings(w, vdd / 2);
    std::vector<double> rises;
    for (const auto& x : xs)
      if (x.edge == wave::Edge::kRise) rises.push_back(x.t);
    if (rises.size() < 3) {
      t.add_row({util::format_double(vdd, 3), "did not oscillate", "-"});
      continue;
    }
    const double period = rises.back() - rises[rises.size() - 2];
    t.add_numeric_row({vdd, 1e-6 / period, period / (2.0 * stages) * 1e12}, 4);
  }
  t.print(std::cout);
  std::cout << "\nHigher VDD -> more drive current -> faster stages: the "
               "classic ring-oscillator curve.\n";
  return 0;
}
