// Scenario from the paper's introduction: a resistive bridge sits on a
// *non-critical* path. Reduced-clock delay-fault testing misses it once the
// extra delay falls inside the slack; the pulse method keeps catching it.
//
// This example calibrates BOTH methods on the paper's 7-gate path and tests
// a small population of "manufactured devices" carrying bridges of
// different strengths.
//
//   $ ./example_delay_vs_pulse [--samples=N]
#include <iostream>

#include "ppd/core/coverage.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppd;
  const util::Cli cli(argc, argv, {"samples"});
  const int samples = cli.get("samples", 12);

  core::PathFactory factory;
  factory.options = cells::seven_gate_path();
  faults::PathFaultSpec fault;
  fault.kind = faults::FaultKind::kBridge;
  fault.stage = 1;
  factory.fault = fault;

  // Calibrate both methods on the same Monte-Carlo population.
  core::DelayCalibrationOptions dopt;
  dopt.samples = samples;
  const auto delay_cal = core::calibrate_delay_test(factory, dopt);
  core::PulseCalibrationOptions popt;
  popt.samples = samples;
  const auto pulse_cal = core::calibrate_pulse_test(factory, popt);

  std::cout << "delay test: T0 = " << delay_cal.t_nominal * 1e12
            << " ps (reduced clock)\npulse test: w_in = "
            << pulse_cal.w_in * 1e12 << " ps, w_th = "
            << pulse_cal.w_th * 1e12 << " ps\n\n";

  // Manufactured devices: one MC instance per bridge strength.
  util::Table t({"device", "bridge_R_ohm", "delay_test", "pulse_test"});
  const core::SimSettings sim;
  int id = 0;
  for (double r : {1.5e3, 3e3, 6e3, 12e3}) {
    mc::Rng rng = core::sample_rng(77, static_cast<std::size_t>(id));
    mc::GaussianVariationSource var(mc::VariationModel{}, rng);
    core::PathInstance dev1 = core::make_instance(factory, r, &var);
    const auto d = core::path_delay(dev1.path, delay_cal.input_rising, sim);

    mc::Rng rng2 = core::sample_rng(77, static_cast<std::size_t>(id));
    mc::GaussianVariationSource var2(mc::VariationModel{}, rng2);
    core::PathInstance dev2 = core::make_instance(factory, r, &var2);
    const auto w =
        core::output_pulse_width(dev2.path, pulse_cal.kind, pulse_cal.w_in, sim);

    t.add_row({"D" + std::to_string(id++), util::format_double(r, 4),
               core::delay_detects(d, delay_cal.t_nominal, delay_cal.flip_flops)
                   ? "FAIL (detected)"
                   : "pass (escape!)",
               core::pulse_detects(w, pulse_cal.w_th) ? "FAIL (detected)"
                                                      : "pass"});
  }
  t.print(std::cout);
  std::cout << "\nWeak bridges escape the reduced-clock delay test (their "
               "extra delay\nfits the slack) but still dampen the pulse -- "
               "the paper's motivation.\n";
  return 0;
}
