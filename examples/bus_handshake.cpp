// The paper's closing remark, made concrete: "since the proposed method is
// completely independent of synchronization constraints, it can also be
// used to test bus lines using handshake protocols to transfer data."
//
// Setup: a 4-line bus whose line 0 carries the request strobe. The
// receiver side uses a transistor-level pulse catcher as its acknowledge
// generator: a request pulse wide enough to survive the wire raises ACK.
// The test procedure sends a request pulse and waits for ACK — a series
// resistive open or an inter-line bridge on the request line dampens the
// strobe, ACK never rises, and the handshake *times out*, exposing the
// defect with no clock involved at all.
//
//   $ ./example_bus_handshake
#include <iostream>

#include "ppd/cells/bus.hpp"
#include "ppd/cells/sensor.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/util/table.hpp"
#include "ppd/wave/waveform.hpp"

namespace {

using namespace ppd;

enum class BusDefect { kNone, kSeriesOpen, kBridgeToNeighbor };

/// Run one handshake attempt; returns true when ACK rises (request seen).
bool handshake(BusDefect defect, double ohms, double strobe_width) {
  cells::Process proc;
  cells::Netlist nl(proc);
  const cells::Bus bus = cells::build_bus(nl, cells::BusOptions{});

  switch (defect) {
    case BusDefect::kNone:
      break;
    case BusDefect::kSeriesOpen:
      (void)cells::inject_bus_open(nl, bus, /*line=*/0, /*segment=*/2, ohms);
      break;
    case BusDefect::kBridgeToNeighbor:
      (void)cells::inject_bus_bridge(nl, bus, 0, 1, /*segment=*/2, ohms);
      break;
  }

  // ACK generator: pulse catcher on the request line's receiver output.
  cells::PulseCatcherOptions po;
  po.delay_stages = 4;  // threshold ~ 90 ps: generous for the 350 ps strobe
  const cells::PulseCatcher ack =
      cells::add_pulse_catcher(nl, "ack", bus.outputs[0], po);

  // Data lines idle low; request strobe on line 0.
  for (std::size_t l = 1; l < bus.lines; ++l) cells::hold_bus_line(nl, bus, l, false);
  cells::drive_bus_pulse(nl, bus, 0, /*positive=*/true, strobe_width, 0.5e-9);

  spice::TransientOptions t;
  t.t_stop = 5e-9;  // the protocol's timeout window
  t.dt = 2e-12;
  t.adaptive = true;
  const auto res = spice::run_transient(nl.circuit(), t);
  return res.wave(ack.caught).at(t.t_stop) > proc.vdd / 2;
}

}  // namespace

int main() {
  const double strobe = 0.35e-9;
  std::cout << "4-line bus, request strobe " << strobe * 1e12
            << " ps on line 0, pulse-catcher ACK at the far end\n\n";
  ppd::util::Table t({"bus condition", "R_ohm", "handshake"});
  const auto verdict = [&](bool ok) {
    return ok ? "ACK (pass)" : "timeout -> DEFECT DETECTED";
  };
  t.add_row({"fault-free", "-", verdict(handshake(BusDefect::kNone, 0, strobe))});
  for (double r : {10e3, 40e3, 80e3})
    t.add_row({"series open, segment 2", ppd::util::format_double(r, 4),
               verdict(handshake(BusDefect::kSeriesOpen, r, strobe))});
  for (double r : {300.0, 2e3})
    t.add_row({"bridge to line 1", ppd::util::format_double(r, 4),
               verdict(handshake(BusDefect::kBridgeToNeighbor, r, strobe))});
  t.print(std::cout);
  std::cout << "\nNo clock anywhere in the loop: the pulse is generated,\n"
               "transported and detected locally, which is the property the\n"
               "paper highlights for handshake-based bus testing.\n";
  return 0;
}
