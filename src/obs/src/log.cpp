#include "ppd/obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>

#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += ' ';
        else
          out += c;
    }
  }
  return out;
}

/// ISO-8601 UTC with millisecond precision.
std::string timestamp_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel log_level_from_string(std::string_view s) {
  using util::iequals;
  if (iequals(s, "trace")) return LogLevel::kTrace;
  if (iequals(s, "debug")) return LogLevel::kDebug;
  if (iequals(s, "info")) return LogLevel::kInfo;
  if (iequals(s, "warn") || iequals(s, "warning")) return LogLevel::kWarn;
  if (iequals(s, "error")) return LogLevel::kError;
  if (iequals(s, "off") || iequals(s, "none")) return LogLevel::kOff;
  throw ParseError("unknown log level: " + std::string(s) +
                   " (use trace|debug|info|warn|error|off)");
}

Logger::Logger() : text_(&std::cerr) {}

Logger& Logger::global() {
  // Leaked singleton: log calls may come from worker threads during static
  // destruction of other translation units.
  static Logger* l = new Logger();
  return *l;
}

void Logger::set_text_stream(std::ostream* os) {
  const std::lock_guard<std::mutex> lock(mutex_);
  text_ = os;
}

void Logger::set_json_path(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path.empty()) {
    json_.reset();
    return;
  }
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  PPD_REQUIRE(file->good(), "cannot open log JSONL sink: " + path);
  json_ = std::move(file);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message, const std::vector<LogField>& fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  const std::string ts = timestamp_utc();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (text_ != nullptr) {
    *text_ << '[' << ts << "] " << log_level_name(level) << ' ' << component
           << ": " << message;
    for (const LogField& f : fields) *text_ << ' ' << f.key << '=' << f.value;
    *text_ << '\n';
  }
  if (json_ != nullptr) {
    *json_ << "{\"ts\":\"" << ts << "\",\"level\":\"" << log_level_name(level)
           << "\",\"component\":\"" << json_escape(component)
           << "\",\"msg\":\"" << json_escape(message) << '"';
    for (const LogField& f : fields)
      *json_ << ",\"" << json_escape(f.key) << "\":\"" << json_escape(f.value)
             << '"';
    *json_ << "}\n";
    json_->flush();
  }
}

RateLimit::RateLimit(std::uint32_t max_per_window, double window_seconds)
    : max_per_window_(max_per_window),
      window_us_(static_cast<std::int64_t>(window_seconds * 1e6)) {
  if (window_us_ < 1) window_us_ = 1;
}

bool RateLimit::allow() {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  std::int64_t start = window_start_us_.load(std::memory_order_relaxed);
  if (now - start >= window_us_) {
    // First thread to move the window resets the budget; losers just use
    // the fresh window.
    if (window_start_us_.compare_exchange_strong(start, now,
                                                 std::memory_order_relaxed))
      count_.store(0, std::memory_order_relaxed);
  }
  if (count_.fetch_add(1, std::memory_order_relaxed) < max_per_window_)
    return true;
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace ppd::obs
