#include "ppd/obs/run.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/cli.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

// Build facts are injected by src/obs/CMakeLists.txt; the fallbacks keep
// non-CMake builds (e.g. IDE single-file checks) compiling.
#ifndef PPD_OBS_COMPILER
#define PPD_OBS_COMPILER "unknown"
#endif
#ifndef PPD_OBS_BUILD_TYPE
#define PPD_OBS_BUILD_TYPE "unknown"
#endif
#ifndef PPD_OBS_CXX_FLAGS
#define PPD_OBS_CXX_FLAGS ""
#endif
#ifndef PPD_OBS_SANITIZE
#define PPD_OBS_SANITIZE ""
#endif

namespace ppd::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20)
      out += ' ';
    else
      out += c;
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{PPD_OBS_COMPILER, PPD_OBS_BUILD_TYPE,
                              PPD_OBS_CXX_FLAGS, PPD_OBS_SANITIZE};
  return info;
}

std::string iso8601_utc_now() {
  const std::time_t secs =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string run_meta_json(std::uint64_t seed, int threads,
                          const std::string& command) {
  const BuildInfo& b = build_info();
  std::string out = "{";
  out += "\"seed\": " + std::to_string(seed);
  out += ", \"threads\": " + std::to_string(threads);
  out += ", \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"compiler\": \"" + json_escape(b.compiler) + "\"";
  out += ", \"build_type\": \"" + json_escape(b.build_type) + "\"";
  out += ", \"cxx_flags\": \"" + json_escape(b.flags) + "\"";
  if (!b.sanitize.empty())
    out += ", \"sanitize\": \"" + json_escape(b.sanitize) + "\"";
  out += ", \"timestamp\": \"" + iso8601_utc_now() + "\"";
  if (!command.empty())
    out += ", \"command\": \"" + json_escape(command) + "\"";
  out += "}";
  return out;
}

bool consume_run_flag(std::string_view arg, RunOptions& opts) {
  const auto value_of = [&](std::string_view prefix) {
    return std::string(arg.substr(prefix.size()));
  };
  if (util::starts_with(arg, "--metrics=")) {
    opts.metrics_path = value_of("--metrics=");
  } else if (util::starts_with(arg, "--metrics-format=")) {
    opts.metrics_format = value_of("--metrics-format=");
  } else if (util::starts_with(arg, "--trace=")) {
    opts.trace_path = value_of("--trace=");
  } else if (util::starts_with(arg, "--log-level=")) {
    opts.log_level = value_of("--log-level=");
  } else if (util::starts_with(arg, "--log-json=")) {
    opts.log_json_path = value_of("--log-json=");
  } else {
    return false;
  }
  return true;
}

RunOptions extract_run_options(int& argc, char** argv) {
  RunOptions opts;
  opts.command = util::command_line(argc, argv);
  util::strip_args(argc, argv, [&opts](std::string_view arg) {
    return consume_run_flag(arg, opts);
  });
  return opts;
}

ScopedRun::ScopedRun(RunOptions options) : options_(std::move(options)) {
  if (!options_.log_level.empty())
    Logger::global().set_level(log_level_from_string(options_.log_level));
  if (!options_.log_json_path.empty())
    Logger::global().set_json_path(options_.log_json_path);
  if (!options_.metrics_format.empty())
    PPD_REQUIRE(options_.metrics_format == "json" ||
                    options_.metrics_format == "text",
                "--metrics-format must be json or text");
  if (!options_.trace_path.empty()) TraceSession::global().start();
}

void ScopedRun::finish() {
  if (finished_) return;
  finished_ = true;
  if (!options_.trace_path.empty()) {
    TraceSession& session = TraceSession::global();
    session.stop();
    std::ofstream os(options_.trace_path, std::ios::trunc);
    if (os.good()) {
      session.write_chrome_trace(os);
    } else {
      log_error("obs", "cannot write trace file",
                {{"path", options_.trace_path}});
    }
  }
  if (!options_.metrics_path.empty()) {
    const MetricsSnapshot snap = Registry::global().snapshot();
    const std::string meta =
        run_meta_json(seed_, threads_, options_.command);
    const auto write = [&](std::ostream& os) {
      if (options_.metrics_format == "text")
        write_metrics_text(os, snap);
      else
        write_metrics_json(os, snap, meta);
    };
    if (options_.metrics_path == "-") {
      write(std::cout);
    } else {
      std::ofstream os(options_.metrics_path, std::ios::trunc);
      if (os.good()) {
        write(os);
      } else {
        log_error("obs", "cannot write metrics file",
                  {{"path", options_.metrics_path}});
      }
    }
  }
}

ScopedRun::~ScopedRun() { finish(); }

}  // namespace ppd::obs
