#include "ppd/obs/trace.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>

namespace ppd::obs {

namespace {

/// CPU time of the calling thread, in microseconds.
double thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
#endif
  return 0.0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

TraceSession& TraceSession::global() {
  // Leaked singleton: worker threads hold thread_local pointers into the
  // session's buffers until process exit.
  static TraceSession* s = new TraceSession();
  return *s;
}

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
    t_buffer = buffer.get();
  }
  return *t_buffer;
}

void TraceSession::start() {
  clear();
  epoch_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() { active_.store(false, std::memory_order_relaxed); }

void TraceSession::set_thread_name(std::string name) {
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lock(b.mutex);
  b.name = std::move(name);
}

void TraceSession::record(std::string name, char phase, double cpu_us) {
  const double ts = now_us();
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lock(b.mutex);
  Event e;
  e.name = std::move(name);
  e.phase = phase;
  e.ts_us = ts;
  e.cpu_us = cpu_us;
  e.tid = b.tid;
  b.events.push_back(std::move(e));
}

std::vector<TraceSession::Event> TraceSession::events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<Event> out;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

void TraceSession::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
  }
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  char buf[64];
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    if (!b->name.empty()) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
         << b->tid << ",\"args\":{\"name\":\"" << json_escape(b->name)
         << "\"}}";
    }
    for (const Event& e : b->events) {
      if (!first) os << ',';
      first = false;
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      os << "\n{\"ph\":\"" << e.phase << "\",\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"ppd\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
         << buf;
      if (e.phase == 'E' && e.cpu_us > 0.0) {
        std::snprintf(buf, sizeof(buf), "%.3f", e.cpu_us);
        os << ",\"args\":{\"cpu_us\":" << buf << '}';
      }
      os << '}';
    }
  }
  os << "\n]}\n";
}

Span::Span(std::string_view name) {
  TraceSession& session = TraceSession::global();
  if (!session.active()) return;
  recording_ = true;
  name_.assign(name);
  cpu_start_us_ = thread_cpu_us();
  session.record(name_, 'B', 0.0);
}

Span::~Span() {
  if (!recording_) return;
  // Record the end unconditionally (even if the session stopped meanwhile)
  // so every exported 'B' has its matching 'E'.
  TraceSession::global().record(std::move(name_), 'E',
                                thread_cpu_us() - cpu_start_us_);
}

}  // namespace ppd::obs
