#include "ppd/obs/trace.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>

namespace ppd::obs {

namespace {

/// CPU time of the calling thread, in microseconds.
double thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
#endif
  return 0.0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

thread_local std::uint64_t t_query_context = 0;

}  // namespace

std::uint64_t query_context() { return t_query_context; }

void set_query_context(std::uint64_t qid) { t_query_context = qid; }

ScopedQueryContext::ScopedQueryContext(std::uint64_t qid)
    : saved_(t_query_context) {
  t_query_context = qid;
}

ScopedQueryContext::~ScopedQueryContext() { t_query_context = saved_; }

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

TraceSession& TraceSession::global() {
  // Leaked singleton: worker threads hold thread_local pointers into the
  // session's buffers until process exit.
  static TraceSession* s = new TraceSession();
  return *s;
}

TraceSession::ThreadBuffer& TraceSession::local_buffer() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
    t_buffer = buffer.get();
  }
  return *t_buffer;
}

void TraceSession::start() {
  clear();
  epoch_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void TraceSession::stop() { active_.store(false, std::memory_order_relaxed); }

void TraceSession::set_thread_name(std::string name) {
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lock(b.mutex);
  b.name = std::move(name);
}

void TraceSession::set_ring_limit(std::size_t max_events_per_thread) {
  ring_limit_.store(max_events_per_thread, std::memory_order_relaxed);
}

void TraceSession::record(std::string name, char phase, double cpu_us) {
  const double ts = now_us();
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lock(b.mutex);
  Event e;
  e.name = std::move(name);
  e.phase = phase;
  e.ts_us = ts;
  e.cpu_us = cpu_us;
  e.tid = b.tid;
  e.ctx = t_query_context;
  b.events.push_back(std::move(e));
  const std::size_t limit = ring_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && b.events.size() > limit) {
    // Evict the oldest quarter in one move, so the amortized per-record
    // cost stays O(1) instead of O(limit) for an erase-one-front ring.
    const auto drop =
        static_cast<std::vector<Event>::difference_type>(limit / 4 + 1);
    b.events.erase(b.events.begin(), b.events.begin() + drop);
  }
}

std::vector<TraceSession::Event> TraceSession::events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<Event> out;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

void TraceSession::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
  }
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  char buf[64];
  std::vector<char> keep;
  std::vector<std::size_t> open;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    if (!b->name.empty()) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
         << b->tid << ",\"args\":{\"name\":\"" << json_escape(b->name)
         << "\"}}";
    }
    // Emit only matched B/E pairs: ring eviction (or an export taken while
    // spans are open) can leave an E whose B was dropped, or a B whose E
    // has not been recorded yet — the exported stream stays balanced.
    keep.assign(b->events.size(), 0);
    open.clear();
    for (std::size_t i = 0; i < b->events.size(); ++i) {
      if (b->events[i].phase == 'B') {
        open.push_back(i);
      } else if (!open.empty()) {
        keep[open.back()] = 1;
        keep[i] = 1;
        open.pop_back();
      }
    }
    for (std::size_t i = 0; i < b->events.size(); ++i) {
      if (keep[i] == 0) continue;
      const Event& e = b->events[i];
      if (!first) os << ',';
      first = false;
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      os << "\n{\"ph\":\"" << e.phase << "\",\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"ppd\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
         << buf;
      if (e.phase == 'B' && e.ctx != 0) {
        os << ",\"args\":{\"qid\":" << e.ctx << '}';
      } else if (e.phase == 'E' && e.cpu_us > 0.0) {
        std::snprintf(buf, sizeof(buf), "%.3f", e.cpu_us);
        os << ",\"args\":{\"cpu_us\":" << buf << '}';
      }
      os << '}';
    }
  }
  os << "\n]}\n";
}

Span::Span(std::string_view name) {
  TraceSession& session = TraceSession::global();
  if (!session.active()) return;
  recording_ = true;
  name_.assign(name);
  cpu_start_us_ = thread_cpu_us();
  session.record(name_, 'B', 0.0);
}

Span::~Span() {
  if (!recording_) return;
  // Record the end unconditionally (even if the session stopped meanwhile)
  // so every exported 'B' has its matching 'E'.
  TraceSession::global().record(std::move(name_), 'E',
                                thread_cpu_us() - cpu_start_us_);
}

}  // namespace ppd::obs
