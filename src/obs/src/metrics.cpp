#include "ppd/obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "ppd/util/error.hpp"
#include "ppd/util/table.hpp"

namespace ppd::obs {

namespace {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("PPD_OBS_METRICS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

/// Minimal JSON string escaping (metric names are plain identifiers, but
/// the writer must never emit malformed output regardless).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips doubles; JSON has no Inf/NaN, clamp those to null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  PPD_REQUIRE(spec_.lo > 0.0 && spec_.hi > spec_.lo,
              "histogram needs 0 < lo < hi (bins are log-spaced)");
  PPD_REQUIRE(spec_.bins > 0, "histogram needs at least one bin");
  log_lo_ = std::log(spec_.lo);
  scale_ = static_cast<double>(spec_.bins) / (std::log(spec_.hi) - log_lo_);
  for (auto& shard : shards_) {
    shard.bins =
        std::make_unique<std::atomic<std::uint64_t>[]>(spec_.bins + 2);
    for (std::size_t i = 0; i < spec_.bins + 2; ++i)
      shard.bins[i].store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::bin_lower(std::size_t i) const {
  return spec_.lo * std::pow(spec_.hi / spec_.lo,
                             static_cast<double>(i) /
                                 static_cast<double>(spec_.bins));
}

double Histogram::bin_upper(std::size_t i) const { return bin_lower(i + 1); }

void Histogram::record(double v) {
  if (!metrics_enabled()) return;
  // Slot layout per shard: [0, bins) the log-spaced bins, then underflow,
  // then overflow.
  std::size_t slot;
  if (!(v >= spec_.lo)) {  // also catches NaN
    slot = spec_.bins;     // underflow
  } else if (v >= spec_.hi) {
    slot = spec_.bins + 1;  // overflow
  } else {
    const auto idx =
        static_cast<std::size_t>((std::log(v) - log_lo_) * scale_);
    slot = idx < spec_.bins ? idx : spec_.bins - 1;  // guard FP edge cases
  }
  Shard& shard = shards_[detail::shard_index()];
  shard.bins[slot].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    detail::atomic_add(shard.sum, v);
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  // Leaked singleton: metric handles are cached in function-local statics
  // across every library, so the registry must survive until process exit.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  PPD_REQUIRE(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  PPD_REQUIRE(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramSpec& spec) {
  PPD_REQUIRE(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(spec));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.spec = h->spec();
    std::vector<std::uint64_t> bins(h->spec().bins + 2, 0);
    for (const auto& shard : h->shards_) {
      for (std::size_t i = 0; i < bins.size(); ++i)
        bins[i] += shard.bins[i].load(std::memory_order_relaxed);
      hs.count += shard.count.load(std::memory_order_relaxed);
      hs.sum += shard.sum.load(std::memory_order_relaxed);
    }
    hs.underflow = bins[h->spec().bins];
    hs.overflow = bins[h->spec().bins + 1];
    const double mn = h->min_.load(std::memory_order_relaxed);
    const double mx = h->max_.load(std::memory_order_relaxed);
    hs.min = std::isfinite(mn) ? mn : 0.0;
    hs.max = std::isfinite(mx) ? mx : 0.0;
    for (std::size_t i = 0; i < h->spec().bins; ++i) {
      if (bins[i] == 0) continue;
      hs.bins.push_back({h->bin_lower(i), h->bin_upper(i), bins[i]});
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_)
    for (auto& s : c->shards_) s.value.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g->value_.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (auto& shard : h->shards_) {
      for (std::size_t i = 0; i < h->spec().bins + 2; ++i)
        shard.bins[i].store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
    h->min_.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
    h->max_.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count);
  double seen = static_cast<double>(underflow);
  if (target <= seen && underflow > 0) return min != 0.0 ? min : spec.lo;
  for (const HistogramBinSnapshot& b : bins) {
    const double next = seen + static_cast<double>(b.count);
    if (target <= next) {
      const double frac =
          b.count == 0 ? 0.0 : (target - seen) / static_cast<double>(b.count);
      return b.lo + (b.hi - b.lo) * frac;
    }
    seen = next;
  }
  return max != 0.0 ? max : spec.hi;  // lands in overflow
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& older,
                               const MetricsSnapshot& newer) {
  MetricsSnapshot out;
  std::map<std::string, std::uint64_t> old_counters(older.counters.begin(),
                                                    older.counters.end());
  out.counters.reserve(newer.counters.size());
  for (const auto& [name, value] : newer.counters) {
    const auto it = old_counters.find(name);
    const std::uint64_t base = it == old_counters.end() ? 0 : it->second;
    out.counters.emplace_back(name, value >= base ? value - base : 0);
  }
  out.gauges = newer.gauges;
  std::map<std::string, const HistogramSnapshot*> old_hists;
  for (const HistogramSnapshot& h : older.histograms) old_hists[h.name] = &h;
  out.histograms.reserve(newer.histograms.size());
  for (const HistogramSnapshot& h : newer.histograms) {
    HistogramSnapshot d = h;  // spec/min/max/name from the newer snapshot
    const auto it = old_hists.find(h.name);
    if (it != old_hists.end()) {
      const HistogramSnapshot& o = *it->second;
      d.count = h.count >= o.count ? h.count - o.count : 0;
      d.underflow = h.underflow >= o.underflow ? h.underflow - o.underflow : 0;
      d.overflow = h.overflow >= o.overflow ? h.overflow - o.overflow : 0;
      d.sum = h.sum - o.sum;
      std::map<double, std::uint64_t> old_bins;
      for (const HistogramBinSnapshot& b : o.bins) old_bins[b.lo] = b.count;
      d.bins.clear();
      for (const HistogramBinSnapshot& b : h.bins) {
        const auto ob = old_bins.find(b.lo);
        const std::uint64_t base = ob == old_bins.end() ? 0 : ob->second;
        if (b.count > base) d.bins.push_back({b.lo, b.hi, b.count - base});
      }
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

void write_histogram_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
     << ",\"mean\":" << json_number(h.mean())
     << ",\"min\":" << json_number(h.min) << ",\"max\":" << json_number(h.max)
     << ",\"p50\":" << json_number(h.quantile(0.50))
     << ",\"p99\":" << json_number(h.quantile(0.99))
     << ",\"underflow\":" << h.underflow << ",\"overflow\":" << h.overflow
     << ",\"bins\":[";
  for (std::size_t b = 0; b < h.bins.size(); ++b) {
    if (b != 0) os << ',';
    os << '[' << json_number(h.bins[b].lo) << ',' << json_number(h.bins[b].hi)
       << ',' << h.bins[b].count << ']';
  }
  os << "]}";
}

Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}

Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }

Histogram& histogram(const std::string& name, const HistogramSpec& spec) {
  return Registry::global().histogram(name, spec);
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot,
                        const std::string& meta_json) {
  os << "{\n";
  if (!meta_json.empty()) os << "  \"meta\": " << meta_json << ",\n";
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) os << ',';
    os << "\n    \"" << json_escape(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) os << ',';
    os << "\n    \"" << json_escape(snapshot.gauges[i].first)
       << "\": " << json_number(snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i != 0) os << ',';
    os << "\n    \"" << json_escape(h.name) << "\": {"
       << "\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
       << ", \"mean\": " << json_number(h.mean())
       << ", \"min\": " << json_number(h.min)
       << ", \"max\": " << json_number(h.max)
       << ", \"underflow\": " << h.underflow
       << ", \"overflow\": " << h.overflow << ", \"lo\": "
       << json_number(h.spec.lo) << ", \"hi\": " << json_number(h.spec.hi)
       << ", \"bins\": [";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"lo\": " << json_number(h.bins[b].lo)
         << ", \"hi\": " << json_number(h.bins[b].hi)
         << ", \"count\": " << h.bins[b].count << '}';
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

void write_metrics_text(std::ostream& os, const MetricsSnapshot& snapshot) {
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::Table t({"metric", "type", "value"});
    for (const auto& [name, v] : snapshot.counters)
      t.add_row({name, "counter", std::to_string(v)});
    for (const auto& [name, v] : snapshot.gauges)
      t.add_row({name, "gauge", util::format_double(v, 6)});
    t.print(os);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    os << "\nhistogram " << h.name << ": count " << h.count << ", mean "
       << util::format_double(h.mean(), 5) << ", min "
       << util::format_double(h.min, 5) << ", max "
       << util::format_double(h.max, 5) << ", underflow " << h.underflow
       << ", overflow " << h.overflow << "\n";
    if (h.bins.empty()) continue;
    util::Table t({"bin_lo", "bin_hi", "count"});
    for (const HistogramBinSnapshot& b : h.bins)
      t.add_row({util::format_double(b.lo, 5), util::format_double(b.hi, 5),
                 std::to_string(b.count)});
    t.print(os);
  }
}

}  // namespace ppd::obs
