// Leveled structured logging with text and JSONL sinks.
//
// Every event carries a severity, a component ("exec", "spice", ...), a
// message and optional key=value fields. The text sink (stderr by default)
// is for humans; the JSONL sink (one JSON object per line, enabled with
// set_json_path / --log-json) is for machines. The level check is a single
// relaxed atomic load, so disabled levels cost nothing on hot paths; sink
// writes are serialized under one mutex so concurrent lines never
// interleave.
//
// Per-sample events (one per Monte-Carlo solve) must go through a RateLimit
// so a pathological sweep cannot flood the sink:
//
//   static obs::RateLimit rl(5);  // 5 lines per second
//   if (rl.allow()) obs::log_warn("spice", "gmin fallback", {{"t", "1e-9"}});
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ppd::obs {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* log_level_name(LogLevel level);
/// Parses "trace|debug|info|warn|error|off" (case-insensitive); throws
/// ParseError on anything else.
[[nodiscard]] LogLevel log_level_from_string(std::string_view s);

struct LogField {
  std::string key;
  std::string value;  ///< pre-formatted by the caller
};

class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Text sink (nullptr disables; default &std::cerr).
  void set_text_stream(std::ostream* os);
  /// JSONL sink file; empty path closes it.
  void set_json_path(const std::string& path);

  void log(LogLevel level, std::string_view component, std::string_view message,
           const std::vector<LogField>& fields = {});

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mutex_;
  std::ostream* text_;
  std::unique_ptr<std::ostream> json_;
};

inline void log_debug(std::string_view component, std::string_view message,
                      const std::vector<LogField>& fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::kDebug)) l.log(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     const std::vector<LogField>& fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::kInfo)) l.log(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     const std::vector<LogField>& fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::kWarn)) l.log(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      const std::vector<LogField>& fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::kError)) l.log(LogLevel::kError, component, message, fields);
}

/// Token bucket over fixed windows: at most `max_per_window` allows per
/// `window_seconds`, counting (and exposing) what was suppressed. All
/// operations are lock-free; a race at a window boundary can at worst let a
/// couple of extra events through, never lose the suppressed count.
class RateLimit {
 public:
  explicit RateLimit(std::uint32_t max_per_window, double window_seconds = 1.0);
  [[nodiscard]] bool allow();
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t max_per_window_;
  std::int64_t window_us_;
  std::atomic<std::int64_t> window_start_us_{0};
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace ppd::obs
