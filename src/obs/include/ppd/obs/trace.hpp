// Scoped spans exported as Chrome trace-event JSON.
//
// A Span is an RAII brace around a region of work: its constructor records
// a "B" (begin) event and its destructor the matching "E" (end) event, with
// wall time from a process-wide steady epoch and the span's thread-CPU time
// attached to the end event. Events go into per-thread buffers (one lane
// per thread in the viewer), so recording never contends across threads and
// timestamps within a lane are monotonic by construction. exec::ThreadPool
// names its workers' lanes ("ppd-worker-N"), so a Monte-Carlo sweep renders
// as one lane per worker with the individual solves visible.
//
// The session is off by default; an inactive Span costs one relaxed atomic
// load. Load the exported file in chrome://tracing or https://ui.perfetto.dev.
//
// Query context: a served query carries a process-unique id (minted by the
// ppdd service at admission). set_query_context / ScopedQueryContext bind
// that id to the calling thread; every event recorded while the context is
// set is tagged with it (exported as args.qid on the begin event), and
// exec::ThreadPool::submit captures the submitter's context so spans on
// pool workers attribute to the query that spawned them.
//
// Ring mode (set_ring_limit) bounds each lane to the most recent N events —
// the long-running daemon keeps a sliding window of served-query spans that
// `ppdctl trace` can dump at any time without unbounded growth. Exports
// drop unmatched begin/end events at the window edges so the emitted JSON
// always keeps B/E balanced per lane.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ppd::obs {

class TraceSession {
 public:
  struct Event {
    std::string name;
    char phase = 'B';      ///< 'B' or 'E'
    double ts_us = 0.0;    ///< steady time since session epoch
    double cpu_us = 0.0;   ///< thread-CPU duration ('E' events only)
    std::uint32_t tid = 0; ///< lane (one per recording thread)
    std::uint64_t ctx = 0; ///< query context at record time (0 = none)
  };

  static TraceSession& global();

  /// Clear old events and start recording.
  void start();
  void stop();
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Label the calling thread's lane in the viewer (sticky across
  /// start/stop, safe to call whether or not the session is active).
  void set_thread_name(std::string name);

  /// Keep only the most recent ~`max_events_per_thread` events per lane
  /// (0 = unbounded, the default). Lets a long-running daemon record
  /// continuously: old events are evicted in recording order, and exports
  /// re-balance B/E pairs around the evicted edge.
  void set_ring_limit(std::size_t max_events_per_thread);
  [[nodiscard]] std::size_t ring_limit() const {
    return ring_limit_.load(std::memory_order_relaxed);
  }

  void record(std::string name, char phase, double cpu_us);

  /// All recorded events, lane by lane (test/inspection API).
  [[nodiscard]] std::vector<Event> events() const;
  void clear();

  /// Chrome trace-event JSON: thread_name metadata plus the B/E events.
  void write_chrome_trace(std::ostream& os) const;

  /// Microseconds on the steady clock since the session epoch.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  struct ThreadBuffer {
    std::mutex mutex;  ///< uncontended in steady state; guards export races
    std::vector<Event> events;
    std::string name;
    std::uint32_t tid = 0;
  };

  TraceSession();
  ThreadBuffer& local_buffer();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<bool> active_{false};
  std::atomic<std::size_t> ring_limit_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// The calling thread's query context (0 = none). Tagging is cooperative:
/// the service sets the context around a query's execution, and the exec
/// pool forwards the submitter's context to the worker running the task.
[[nodiscard]] std::uint64_t query_context();
void set_query_context(std::uint64_t qid);

/// RAII binding of a query context to the current thread; restores the
/// previous context on destruction (nesting-safe).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(std::uint64_t qid);
  ~ScopedQueryContext();
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// RAII span on the global session. Records nothing when the session is
/// inactive at construction; the end event is always written when the begin
/// event was (the exported stream keeps B/E balanced).
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  double cpu_start_us_ = 0.0;
  bool recording_ = false;
};

}  // namespace ppd::obs
