// Lock-cheap metrics registry: named counters, gauges and histograms with
// fixed log-spaced bins, recorded from any thread and merged on snapshot.
//
// Recording is wait-free on the hot path: every metric spreads its state
// over a fixed set of cache-line-padded shards, each thread is pinned to
// one shard (round-robin at first touch), and a record is a single relaxed
// atomic add into the thread's own shard. Snapshots merge the shards in a
// fixed order under the registry mutex, so two quiescent snapshots of the
// same state are identical — the ppd::exec determinism contract (outputs
// bit-identical at any thread count) is untouched because experiment
// results never read metrics, and metric totals are exact integer sums.
//
// Handles returned by the registry live as long as the process; hot loops
// cache them in function-local statics:
//
//   static obs::Counter& solves = obs::counter("spice.op.solves");
//   solves.add();
//
// Export: JSON (write_metrics_json) for machines, text tables rendered via
// ppd::util::table (write_metrics_text) for humans.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppd::obs {

/// Runtime kill switch (default on; also settable via the environment
/// variable PPD_OBS_METRICS=0). Disabled metrics skip the shard write, so
/// the per-record cost drops to one relaxed load + branch.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace detail {
constexpr std::size_t kShards = 16;
/// Stable per-thread shard slot (round-robin over kShards).
[[nodiscard]] std::size_t shard_index();
/// Relaxed add for atomic<double> (portable pre-fetch_add-for-floats).
void atomic_add(std::atomic<double>& a, double v);
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  /// Merged total (shards summed in fixed order).
  [[nodiscard]] std::uint64_t value() const;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  Counter() = default;
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed log-spaced binning over [lo, hi): bin i spans
/// [lo * (hi/lo)^(i/bins), lo * (hi/lo)^((i+1)/bins)). Values below lo (or
/// non-positive / non-finite) land in the underflow bucket, values >= hi in
/// the overflow bucket, so no observation is ever dropped.
struct HistogramSpec {
  double lo = 1.0;
  double hi = 1e6;
  std::size_t bins = 24;
};

class Histogram {
 public:
  void record(double v);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  /// Lower/upper edge of bin i (log-spaced).
  [[nodiscard]] double bin_lower(std::size_t i) const;
  [[nodiscard]] double bin_upper(std::size_t i) const;

 private:
  friend class Registry;
  explicit Histogram(const HistogramSpec& spec);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> bins;  // bins + under + over
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  HistogramSpec spec_;
  double log_lo_ = 0.0;
  double scale_ = 0.0;  ///< bins / (log hi - log lo)
  std::array<Shard, detail::kShards> shards_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

struct HistogramBinSnapshot {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

struct HistogramSnapshot {
  std::string name;
  HistogramSpec spec;
  std::uint64_t count = 0;      ///< total observations (incl. under/overflow)
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  double sum = 0.0;
  double min = 0.0;             ///< 0 when count == 0
  double max = 0.0;
  std::vector<HistogramBinSnapshot> bins;  ///< only non-empty bins
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Estimate the p-quantile (p in [0,1]) from the binned counts, linearly
  /// interpolated within the containing bin. Underflow observations resolve
  /// to min (or spec.lo), overflow to max (or spec.hi). 0 when empty.
  [[nodiscard]] double quantile(double p) const;
};

/// Name-sorted, merged view of every metric at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// What happened between two snapshots of the same registry: counters and
/// histogram bins/counts/sums are subtracted (metrics absent from `older`
/// count from zero), gauges are taken from `newer` (instantaneous values
/// have no meaningful difference). min/max also come from `newer` — a
/// window-local extremum is not recoverable from totals. Because snapshot
/// totals are exact merged sums (the PR 3 contract), the delta of two
/// quiescent snapshots is exact too. Feeds the service's SUBSCRIBE stream:
/// the pushed `interval` block is a snapshot delta.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& older,
                                             const MetricsSnapshot& newer);

/// One-line JSON summary of a histogram: count/sum/mean/min/max, p50/p99
/// quantile estimates, and the non-empty bins as [lo,hi,count] triples.
/// Compact enough to embed per query kind in the service STATS reply.
void write_histogram_json(std::ostream& os, const HistogramSnapshot& h);

/// Process-wide metric store. Metrics are created on first use and never
/// removed; lookup takes the registry mutex, so hot paths should cache the
/// returned reference (it stays valid for the life of the process).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the spec; later calls with the same name
  /// return the existing histogram regardless of the spec argument.
  Histogram& histogram(const std::string& name, const HistogramSpec& spec = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (tests and bench A/B runs).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands on the global registry.
[[nodiscard]] Counter& counter(const std::string& name);
[[nodiscard]] Gauge& gauge(const std::string& name);
[[nodiscard]] Histogram& histogram(const std::string& name,
                                   const HistogramSpec& spec = {});

/// JSON export. When `meta_json` is non-empty it must be a complete JSON
/// object; it is embedded verbatim as the "meta" member.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot,
                        const std::string& meta_json = std::string());

/// Human-readable export: one counters/gauges table plus one summary row
/// and bin table per histogram, rendered with ppd::util::Table.
void write_metrics_text(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace ppd::obs
