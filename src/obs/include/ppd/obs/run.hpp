// Per-run observability wiring shared by ppdtool, the figure benches and
// perf_engine: the --metrics= / --trace= / --log-level= / --log-json= flags,
// the standard run `meta` block (seed, thread count, build flags, ISO-8601
// timestamp, command line), and a ScopedRun RAII that enables the requested
// sinks at startup and writes the files when the run ends.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ppd::obs {

/// Compile-time facts of this binary, for the meta block.
struct BuildInfo {
  std::string compiler;    ///< e.g. "GNU 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string flags;       ///< CMAKE_CXX_FLAGS
  std::string sanitize;    ///< PPD_SANITIZE ("" = none)
};
[[nodiscard]] const BuildInfo& build_info();

/// Current wall time as ISO-8601 UTC ("2007-04-16T12:34:56Z").
[[nodiscard]] std::string iso8601_utc_now();

/// The standard meta block as one JSON object: seed, threads, build info,
/// timestamp and (when known) the command line. Embedded in metrics
/// snapshots and emitted as its own row in bench JSON streams.
[[nodiscard]] std::string run_meta_json(std::uint64_t seed, int threads,
                                        const std::string& command = {});

struct RunOptions {
  std::string metrics_path;    ///< --metrics=FILE; "-" = stdout, "" = off
  std::string metrics_format;  ///< --metrics-format=json|text (default json)
  std::string trace_path;      ///< --trace=FILE; "" = off
  std::string log_level;       ///< --log-level=trace..error; "" = keep default
  std::string log_json_path;   ///< --log-json=FILE (JSONL sink); "" = off
  std::string command;         ///< original command line, for the meta block

  [[nodiscard]] bool any_sink() const {
    return !metrics_path.empty() || !trace_path.empty();
  }
};

/// If `arg` is one of the obs flags, record it into `opts` and return true;
/// otherwise leave `opts` alone and return false. Lets callers with
/// const/immutable argv (e.g. the bench ExperimentCli) filter the flags
/// without the in-place compaction extract_run_options does.
bool consume_run_flag(std::string_view arg, RunOptions& opts);

/// Remove the obs flags from argv (compacting it in place) and return them.
/// Everything else — including unknown flags — is left for the caller's own
/// parser. Also captures the full original command line into `command`.
[[nodiscard]] RunOptions extract_run_options(int& argc, char** argv);

/// RAII for one observed run: the constructor applies the log level, opens
/// the JSONL sink and starts tracing; the destructor (or an explicit
/// finish()) stops tracing and writes the metrics snapshot and Chrome trace
/// to the requested files. Seed/threads can be set after construction, once
/// the caller has parsed its own flags.
class ScopedRun {
 public:
  explicit ScopedRun(RunOptions options);
  ~ScopedRun();
  ScopedRun(const ScopedRun&) = delete;
  ScopedRun& operator=(const ScopedRun&) = delete;

  void set_meta(std::uint64_t seed, int threads) {
    seed_ = seed;
    threads_ = threads;
  }

  /// Write the sinks now (idempotent; the destructor then does nothing).
  void finish();

 private:
  RunOptions options_;
  std::uint64_t seed_ = 0;
  int threads_ = 0;
  bool finished_ = false;
};

}  // namespace ppd::obs
