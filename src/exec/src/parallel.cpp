#include "ppd/exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <latch>
#include <mutex>

#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"

namespace ppd::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Debug-log a finished sweep, rate-limited so nested per-item sweeps (a
/// faultsim inside an MC sample) cannot flood the sink.
void log_sweep(const SweepStats& stats, const ParallelOptions& options) {
  obs::Logger& logger = obs::Logger::global();
  if (!logger.enabled(obs::LogLevel::kDebug)) return;
  static obs::RateLimit rate(10);
  if (!rate.allow()) return;
  logger.log(obs::LogLevel::kDebug, "exec", "sweep finished",
             {{"items", std::to_string(stats.items)},
              {"lanes", std::to_string(stats.lanes)},
              {"wall_s", std::to_string(stats.wall_seconds)},
              {"busy_s", std::to_string(stats.busy_seconds)},
              {"context", options.context.empty() ? "-" : options.context}});
}

/// Rethrow `error` (thrown by item `index` of `n`) with the sweep location
/// appended. The ppd exception types are rebuilt with the augmented message
/// so catch sites keyed on the type keep working; anything else — including
/// CancelledError, which already carries its position — passes through
/// unchanged.
[[noreturn]] void rethrow_with_context(std::exception_ptr error,
                                       std::size_t index, std::size_t n,
                                       const ParallelOptions& options) {
  const auto annotate = [&](const char* what) {
    std::string msg(what);
    msg += " [sweep item " + std::to_string(index) + " of " +
           std::to_string(n);
    if (!options.context.empty()) msg += ", " + options.context;
    msg += ']';
    return msg;
  };
  try {
    std::rethrow_exception(error);
  } catch (const CancelledError&) {
    throw;
  } catch (const PreconditionError& e) {
    throw PreconditionError(annotate(e.what()));
  } catch (const TimeoutError& e) {  // before its base, NumericalError
    throw TimeoutError(annotate(e.what()));
  } catch (const NumericalError& e) {
    throw NumericalError(annotate(e.what()));
  } catch (const ParseError& e) {
    throw ParseError(annotate(e.what()));
  } catch (...) {
    std::rethrow_exception(error);
  }
}

/// True when the sweep's on_item_error hook claims this failure: the item
/// is quarantined and the sweep keeps going. CancelledError is never
/// offered to the hook — cancellation is a sweep-level outcome, not an item
/// failure.
bool quarantined(const ParallelOptions& options, std::size_t index,
                 const std::exception_ptr& error) {
  if (options.on_item_error == nullptr) return false;
  try {
    std::rethrow_exception(error);
  } catch (const CancelledError&) {
    return false;
  } catch (...) {
  }
  return options.on_item_error(index, error);
}

void serial_for(std::size_t n, const std::function<void(std::size_t)>& body,
                const ParallelOptions& options, SweepStats* stats) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (options.cancel.cancelled())
      throw CancelledError("sweep cancelled at item " + std::to_string(i) +
                           " of " + std::to_string(n));
    try {
      body(i);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      if (quarantined(options, i, error)) continue;
      rethrow_with_context(error, i, n, options);
    }
  }
  SweepStats local;
  local.items = n;
  local.lanes = 1;
  local.wall_seconds = seconds_since(start);
  local.busy_seconds = local.wall_seconds;
  record_sweep("exec.sweep", local);
  log_sweep(local, options);
  if (stats != nullptr) *stats = local;
}

}  // namespace

void record_sweep(const std::string& domain, const SweepStats& stats) {
  if (!obs::metrics_enabled()) return;
  obs::counter(domain + ".sweeps").add();
  obs::counter(domain + ".items").add(stats.items);
  obs::histogram(domain + ".wall_seconds", {1e-6, 1e4, 50})
      .record(stats.wall_seconds);
  if (stats.wall_seconds > 0.0) {
    obs::histogram(domain + ".items_per_second", {1e-2, 1e8, 50})
        .record(static_cast<double>(stats.items) / stats.wall_seconds);
    if (stats.lanes > 0)
      // Fraction of the lanes' wall budget spent inside item bodies; log
      // bins down to 1% resolve badly-scaling sweeps.
      obs::histogram(domain + ".occupancy", {0.01, 1.3, 26})
          .record(stats.busy_seconds /
                  (stats.wall_seconds * static_cast<double>(stats.lanes)));
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options, SweepStats* stats) {
  PPD_REQUIRE(body != nullptr, "parallel_for needs a body");
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t max_lanes = (n + grain - 1) / grain;
  // Nested sweeps run serially: pool tasks must never block on other pool
  // tasks, and the outer sweep already owns the hardware.
  const int lanes =
      on_pool_worker()
          ? 1
          : static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(resolve_threads(options.threads)),
                max_lanes));
  if (lanes <= 1 || n <= 1) {
    serial_for(n, body, options, stats);
    return;
  }

  ThreadPool& pool = ThreadPool::global();
  const auto start = Clock::now();
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
  std::mutex error_mutex;
  std::vector<double> busy(static_cast<std::size_t>(lanes), 0.0);

  auto runner = [&, grain, n](std::size_t lane) {
    // One span per lane: a traced MC sweep renders as one busy strip per
    // worker, with the per-item solver spans nested inside.
    const obs::Span lane_span("exec.lane");
    const auto lane_start = Clock::now();
    while (!failed.load(std::memory_order_relaxed) &&
           !options.cancel.cancelled()) {
      const std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          const std::exception_ptr error = std::current_exception();
          if (quarantined(options, i, error)) continue;
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = error;
            first_error_index = i;
          }
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    busy[lane] = seconds_since(lane_start);
  };

  std::latch helpers_done(lanes - 1);
  for (int k = 1; k < lanes; ++k) {
    pool.submit([&runner, &helpers_done, k] {
      runner(static_cast<std::size_t>(k));
      helpers_done.count_down();
    });
  }
  runner(0);  // the caller is always a lane: progress even on a busy pool
  helpers_done.wait();

  if (first_error != nullptr) {
    obs::log_error("exec", "sweep item failed",
                   {{"item", std::to_string(first_error_index)},
                    {"items", std::to_string(n)},
                    {"context", options.context.empty() ? "-" : options.context}});
    rethrow_with_context(first_error, first_error_index, n, options);
  }
  if (options.cancel.cancelled())
    throw CancelledError("sweep cancelled after " +
                         std::to_string(std::min(n, cursor.load())) + " of " +
                         std::to_string(n) + " items claimed");

  SweepStats local;
  local.items = n;
  local.lanes = lanes;
  local.wall_seconds = seconds_since(start);
  local.busy_seconds = 0.0;
  for (double b : busy) local.busy_seconds += b;
  record_sweep("exec.sweep", local);
  log_sweep(local, options);
  const PoolStats pool_stats = pool.stats();
  obs::gauge("exec.pool.tasks_executed")
      .set(static_cast<double>(pool_stats.tasks_executed));
  obs::gauge("exec.pool.steals").set(static_cast<double>(pool_stats.steals));
  obs::gauge("exec.pool.workers").set(pool.size());
  if (stats != nullptr) *stats = local;
}

}  // namespace ppd::exec
