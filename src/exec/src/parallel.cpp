#include "ppd/exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <latch>
#include <mutex>

#include "ppd/util/error.hpp"

namespace ppd::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rethrow `error` (thrown by item `index` of `n`) with the sweep location
/// appended. The ppd exception types are rebuilt with the augmented message
/// so catch sites keyed on the type keep working; anything else — including
/// CancelledError, which already carries its position — passes through
/// unchanged.
[[noreturn]] void rethrow_with_context(std::exception_ptr error,
                                       std::size_t index, std::size_t n,
                                       const ParallelOptions& options) {
  const auto annotate = [&](const char* what) {
    std::string msg(what);
    msg += " [sweep item " + std::to_string(index) + " of " +
           std::to_string(n);
    if (!options.context.empty()) msg += ", " + options.context;
    msg += ']';
    return msg;
  };
  try {
    std::rethrow_exception(error);
  } catch (const CancelledError&) {
    throw;
  } catch (const PreconditionError& e) {
    throw PreconditionError(annotate(e.what()));
  } catch (const NumericalError& e) {
    throw NumericalError(annotate(e.what()));
  } catch (const ParseError& e) {
    throw ParseError(annotate(e.what()));
  } catch (...) {
    std::rethrow_exception(error);
  }
}

void serial_for(std::size_t n, const std::function<void(std::size_t)>& body,
                const ParallelOptions& options, SweepStats* stats) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (options.cancel.cancelled())
      throw CancelledError("sweep cancelled at item " + std::to_string(i) +
                           " of " + std::to_string(n));
    try {
      body(i);
    } catch (...) {
      rethrow_with_context(std::current_exception(), i, n, options);
    }
  }
  if (stats != nullptr) {
    stats->items = n;
    stats->lanes = 1;
    stats->wall_seconds = seconds_since(start);
    stats->busy_seconds = stats->wall_seconds;
  }
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options, SweepStats* stats) {
  PPD_REQUIRE(body != nullptr, "parallel_for needs a body");
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t max_lanes = (n + grain - 1) / grain;
  // Nested sweeps run serially: pool tasks must never block on other pool
  // tasks, and the outer sweep already owns the hardware.
  const int lanes =
      on_pool_worker()
          ? 1
          : static_cast<int>(std::min<std::size_t>(
                static_cast<std::size_t>(resolve_threads(options.threads)),
                max_lanes));
  if (lanes <= 1 || n <= 1) {
    serial_for(n, body, options, stats);
    return;
  }

  ThreadPool& pool = ThreadPool::global();
  const auto start = Clock::now();
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
  std::mutex error_mutex;
  std::vector<double> busy(static_cast<std::size_t>(lanes), 0.0);

  auto runner = [&, grain, n](std::size_t lane) {
    const auto lane_start = Clock::now();
    while (!failed.load(std::memory_order_relaxed) &&
           !options.cancel.cancelled()) {
      const std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) {
            first_error = std::current_exception();
            first_error_index = i;
          }
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    busy[lane] = seconds_since(lane_start);
  };

  std::latch helpers_done(lanes - 1);
  for (int k = 1; k < lanes; ++k) {
    pool.submit([&runner, &helpers_done, k] {
      runner(static_cast<std::size_t>(k));
      helpers_done.count_down();
    });
  }
  runner(0);  // the caller is always a lane: progress even on a busy pool
  helpers_done.wait();

  if (first_error != nullptr)
    rethrow_with_context(first_error, first_error_index, n, options);
  if (options.cancel.cancelled())
    throw CancelledError("sweep cancelled after " +
                         std::to_string(std::min(n, cursor.load())) + " of " +
                         std::to_string(n) + " items claimed");

  if (stats != nullptr) {
    stats->items = n;
    stats->lanes = lanes;
    stats->wall_seconds = seconds_since(start);
    stats->busy_seconds = 0.0;
    for (double b : busy) stats->busy_seconds += b;
  }
}

}  // namespace ppd::exec
