#include "ppd/exec/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"

namespace ppd::exec {

namespace {
thread_local bool t_on_pool_worker = false;
}  // namespace

int resolve_threads(int threads) {
  PPD_REQUIRE(threads >= 0, "threads knob must be >= 0 (0 = hardware)");
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1, static_cast<int>(hw));
  }
  return threads;
}

bool on_pool_worker() { return t_on_pool_worker; }

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PPD_REQUIRE(task != nullptr, "cannot submit an empty task");
  // Forward the submitter's query context to whichever worker runs the
  // task, so spans/metrics recorded inside attribute to the served query
  // that spawned the work (nested parallel_for fan-out included).
  if (const std::uint64_t ctx = obs::query_context(); ctx != 0) {
    task = [ctx, inner = std::move(task)] {
      const obs::ScopedQueryContext scope(ctx);
      inner();
    };
  }
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    const std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->queue.push_back(std::move(task));
  }
  {
    // pending_ is bumped under sleep_mutex_ so a sleeping worker's predicate
    // re-check cannot miss it.
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

bool ThreadPool::try_claim(std::size_t self, std::function<void()>& task,
                           bool& stolen) {
  // Own deque first, newest task (LIFO keeps the working set warm) ...
  {
    Worker& w = *workers_[self];
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) {
      task = std::move(w.queue.back());
      w.queue.pop_back();
      stolen = false;
      return true;
    }
  }
  // ... then steal the oldest task from a neighbour (FIFO minimizes contention
  // with the victim's own LIFO end).
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& w = *workers_[(self + k) % workers_.size()];
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) {
      task = std::move(w.queue.front());
      w.queue.pop_front();
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_on_pool_worker = true;
  // Names the worker's lane in Chrome trace exports ("ppd-worker-3").
  obs::TraceSession::global().set_thread_name("ppd-worker-" +
                                              std::to_string(self));
  std::function<void()> task;
  for (;;) {
    bool stolen = false;
    if (try_claim(self, task, stolen)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
      task();
      task = nullptr;
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_relaxed) == 0)
      return;
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace ppd::exec
