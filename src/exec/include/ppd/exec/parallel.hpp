// Deterministic data-parallel primitives over an index space [0, n).
//
// Contract: parallel_for(n, body) calls body(i) exactly once for every i,
// with no ordering guarantee between distinct i. Callers that (a) make each
// item depend only on its index — e.g. derive the item's RNG via
// mc::derive_rng(seed, i) — and (b) write only to the item's own output
// slot, get results bit-identical to the serial loop at ANY thread count,
// including 1 and 0 (= hardware concurrency). Every Monte-Carlo sweep in
// ppd::core and fault-list evaluation in ppd::logic is written this way.
//
// Scheduling is dynamic (an atomic cursor claims `grain` indices at a time)
// on the shared work-stealing pool; the calling thread always runs one of
// the lanes itself, so a sweep makes progress even when the pool is
// saturated by other sweeps. The first exception thrown by a body is
// captured, remaining items are abandoned, and the exception is rethrown on
// the calling thread — with the failing item index (and the sweep's
// `context` string, when set) appended to the message of the ppd exception
// types, so a lint-style diagnostic thrown deep inside item 37 of a
// Monte-Carlo sweep still names the item and netlist/file it came from.
// Unknown exception types are rethrown unchanged. A fired CancelToken stops
// lanes claiming work and surfaces as CancelledError.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ppd/exec/cancel.hpp"
#include "ppd/exec/thread_pool.hpp"

namespace ppd::exec {

struct ParallelOptions {
  /// Parallel lanes: 0 = hardware concurrency, 1 = serial on the calling
  /// thread (no pool involvement), N = at most N lanes.
  int threads = 1;
  /// Indices claimed per cursor fetch. Raise above 1 only when items are so
  /// cheap that the atomic claim dominates (the electrical sweeps are
  /// milliseconds per item — leave it at 1 for those).
  std::size_t grain = 1;
  CancelToken cancel;
  /// What this sweep is doing, for error messages — e.g. the netlist/file
  /// being swept ("faultsim over data/c432_class.bench"). Appended, with
  /// the failing item index, to exceptions escaping a body.
  std::string context;
  /// Item-failure hook, called with (item index, the exception) when a body
  /// throws anything but CancelledError. Return true to quarantine the item
  /// — the sweep continues as if it had succeeded — or false to fail fast
  /// (the default when unset). Called from worker threads, so it must be
  /// thread-safe; ppd::resil::SweepGuard is the standard installer.
  std::function<bool(std::size_t, const std::exception_ptr&)> on_item_error;
};

/// Per-sweep timing/counters, filled when a non-null pointer is passed.
struct SweepStats {
  std::uint64_t items = 0;
  int lanes = 0;             ///< parallel lanes actually used
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;  ///< summed per-lane body time (>= wall when scaling)
};

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  const ParallelOptions& options = {},
                  SweepStats* stats = nullptr);

/// Fold a finished sweep's stats into the ppd::obs metrics registry under
/// `domain` (counters `<domain>.sweeps`/`<domain>.items`, histograms
/// `<domain>.items_per_second`, `<domain>.occupancy` and
/// `<domain>.wall_seconds`). parallel_for records the same series under
/// "exec.sweep" for every sweep; call sites use this to file their stats
/// under a workload-specific prefix instead of discarding them.
void record_sweep(const std::string& domain, const SweepStats& stats);

/// Map [0, n) through `fn` into a pre-sized vector, one slot per index.
/// The result type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, const ParallelOptions& options = {},
                  SweepStats* stats = nullptr) {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<T>,
                "parallel_map results are written into a pre-sized vector");
  std::vector<T> out(n);
  parallel_for(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, options, stats);
  return out;
}

}  // namespace ppd::exec
