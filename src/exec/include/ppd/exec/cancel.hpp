// Cooperative cancellation for long-running sweeps. A CancelToken is a
// copyable handle to a shared flag: hand copies to the producer (e.g. a
// CoverageOptions) and the controller (a UI thread, a timeout watchdog);
// firing it makes every parallel_for holding a copy stop claiming work and
// raise CancelledError on the calling thread.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace ppd::exec {

/// Thrown by parallel_for / parallel_map when their CancelToken fires
/// before the sweep completes. Distinct from the error hierarchy in
/// ppd/util/error.hpp because cancellation is a *requested* outcome, not a
/// failure — callers typically catch it and discard the partial sweep.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Request cancellation. Safe from any thread, including a sweep's own
  /// worker bodies. Idempotent.
  void cancel() noexcept { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ppd::exec
