// Work-stealing thread pool behind every parallel Monte-Carlo sweep in this
// repository. Each worker owns a deque: it pushes/pops its own back (LIFO,
// cache-warm) and steals from other workers' fronts (FIFO, oldest first)
// when its deque runs dry. Tasks submitted from outside the pool are
// distributed round-robin.
//
// The pool is a *scheduler only* — determinism of the experiments never
// depends on it. parallel_for (parallel.hpp) assigns work by item index and
// each item derives its own RNG stream from (seed, index), so any
// interleaving produces bit-identical results.
//
// Submitted tasks must not block on other pool tasks (parallel_for's
// runners never do; nested parallel_for calls detect that they are already
// on a worker and degrade to serial), which keeps the pool deadlock-free by
// construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ppd::exec {

/// Resolve a `threads` knob: 0 = std::thread::hardware_concurrency (min 1),
/// otherwise the requested count (min 1).
[[nodiscard]] int resolve_threads(int threads);

/// True on a pool worker thread (used to serialize nested parallelism).
[[nodiscard]] bool on_pool_worker();

/// Scheduler counters for observability; monotonically increasing over the
/// pool's lifetime.
struct PoolStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;  ///< tasks taken from another worker's deque
};

class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads)` workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not block on other pool tasks. The
  /// submitter's obs query context (if any) is captured and re-bound on the
  /// worker for the task's duration, so tracing stays query-attributable
  /// across the pool boundary.
  void submit(std::function<void()> task);

  [[nodiscard]] PoolStats stats() const;

  /// Process-wide pool sized to the hardware, created on first use.
  /// parallel_for throttles below the hardware width by bounding how many
  /// runner tasks it submits, so one shared pool serves every `threads`
  /// setting without re-spawning OS threads.
  static ThreadPool& global();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(std::size_t self);
  bool try_claim(std::size_t self, std::function<void()>& task, bool& stolen);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake machinery: pending_ counts queued-but-unclaimed tasks; a
  // worker only sleeps when the predicate (stop_ || pending_ > 0) is false,
  // re-checked under sleep_mutex_, so a submit between "queues look empty"
  // and the wait cannot be lost.
  std::mutex sleep_mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_queue_{0};

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace ppd::exec
