// Bridge between the logic-level tool and the electrical substrate:
//
//  * extract the cell kinds along a logic path so the same path can be
//    rebuilt transistor-level (cells::build_path) for precise analysis —
//    the Fig. 11 flow screens paths at logic level, then characterizes the
//    survivors electrically;
//  * calibrate the logic-level pulse-attenuation library (GateTiming) from
//    electrical single-gate measurements, the reproducible procedure behind
//    GateTimingLibrary::generic().
#pragma once

#include "ppd/cells/netlist.hpp"
#include "ppd/core/measure.hpp"
#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/paths.hpp"

namespace ppd::core {

/// Map the gates along a logic path to electrical cell kinds. AND/OR expand
/// to NAND+INV / NOR+INV. Throws PreconditionError for kinds without a
/// transistor-level realization here (XOR/XNOR).
[[nodiscard]] std::vector<cells::GateKind> to_cell_kinds(
    const logic::Netlist& netlist, const logic::Path& path);

struct TimingCalibrationOptions {
  SimSettings sim;
  double stage_load = 10e-15;   ///< load used for the single-gate fixture
  /// Width grid for the per-gate w_out(w_in) fit.
  std::vector<double> w_grid;   ///< default: 20 ps .. 400 ps, 20 pts
};

/// Measure GateTiming for one primitive kind with the electrical simulator:
/// rise/fall delays from step stimuli, (w_block, w_pass, shrink) from a
/// pulse-width sweep through a single gate.
[[nodiscard]] logic::GateTiming calibrate_gate_timing(
    const cells::Process& process, cells::GateKind kind,
    const TimingCalibrationOptions& options = {});

/// Calibrate INV/NAND2/NOR2 and populate a library (NOT/NAND/AND and
/// NOR/OR share entries; the default falls back to the inverter).
[[nodiscard]] logic::GateTimingLibrary calibrate_timing_library(
    const cells::Process& process, const TimingCalibrationOptions& options = {});

}  // namespace ppd::core
