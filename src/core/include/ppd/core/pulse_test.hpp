// The paper's proposed method: pulse-propagation testing (Sects. 3-5).
//
// A pulse of nominal width w_in is injected at the path input by a local
// generator; a transition-sensing circuit at the output detects pulses of
// width >= w_th. A fault is detected when the output pulse is dampened
// below the sensing threshold:  f_p^s(w_in, R) < w_th'.
//
// Calibration follows Sect. 5: characterize w_out = f_p(w_in) (three
// regions: dampened / attenuation / asymptotic-linear), put w_in at the
// *beginning of the asymptotic region* — the attenuation region is too
// sensitive to parameter fluctuations — then set w_th so that no fault-free
// Monte-Carlo instance is rejected even for a 10% worst-case sensing
// variation (yield-first, like the baseline).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppd/core/measure.hpp"

namespace ppd::core {

struct PulseTestCalibration {
  double w_in = 0.0;     ///< nominal injected pulse width [s]
  double w_th = 0.0;     ///< nominal sensing threshold [s]
  PulseKind kind = PulseKind::kH;
  /// Worst-case (smallest) fault-free output width at w_in over the MC set.
  double min_fault_free_w_out = 0.0;
  /// Nominal transfer curve used during calibration (Fig. 10 raw data).
  TransferCurve nominal_curve;
};

struct PulseCalibrationOptions {
  int samples = 50;
  std::uint64_t seed = 1;
  mc::VariationModel variation;
  SimSettings sim;
  PulseKind kind = PulseKind::kH;
  /// Candidate w_in grid; the calibrated w_in is the smallest grid value in
  /// the asymptotic region whose MC-minimum output width clears the sensor
  /// floor with the guard margin.
  std::vector<double> w_in_grid;        ///< default: 0.1 ns .. 0.8 ns, 15 pts
  /// The asymptotic ("region 3") test: the local slope of the nominal curve
  /// must sit within this band around the ideal slope 1 (the attenuation
  /// region approaches the asymptote from above, with slopes > 1).
  double slope_tolerance = 0.12;
  /// Sensing-circuit uncertainty guard: no false positive allowed when the
  /// actual threshold is (1+guard)*w_th (paper: 10%).
  double sensor_guard = 0.10;
  /// Smallest pulse the sensing circuit can be built to detect.
  double w_th_floor = 50e-12;
  /// Relative sigma of the on-chip pulse generator's width (Sect. 3's
  /// uncertainty (a)); the calibration evaluates the fault-free minimum at
  /// the generator's low tail, w_in * (1 - generator_guard_sigmas * sigma).
  double generator_sigma = 0.03;
  double generator_guard_sigmas = 3.0;
};

/// Monte-Carlo calibration for `factory`'s path (built fault-free).
/// Throws NumericalError when no grid point satisfies the constraints.
[[nodiscard]] PulseTestCalibration calibrate_pulse_test(
    const PathFactory& factory, const PulseCalibrationOptions& options);

/// Detection predicate: a dampened (nullopt) or under-threshold output
/// pulse flags the fault.
[[nodiscard]] bool pulse_detects(std::optional<double> measured_w_out,
                                 double w_th_applied);

/// Classify the regions of a transfer curve (Fig. 10): returns the index of
/// the first grid point from which every local slope stays within
/// `slope_tolerance` of the ideal slope 1 (the attenuation region has
/// slopes > 1), or nullopt when the curve never straightens.
[[nodiscard]] std::optional<std::size_t> asymptotic_onset(
    const TransferCurve& curve, double slope_tolerance);

}  // namespace ppd::core
