// Minimal detectable resistance (paper Sect. 5, Fig. 11): for a calibrated
// (w_in, w_th) pair and a fault site, the smallest defect resistance the
// pulse method detects across the whole Monte-Carlo population.
#pragma once

#include <cstdint>

#include "ppd/core/pulse_test.hpp"
#include "ppd/exec/cancel.hpp"
#include "ppd/resil/sweep_guard.hpp"

namespace ppd::core {

struct RminOptions {
  int samples = 20;
  std::uint64_t seed = 1;
  mc::VariationModel variation;
  SimSettings sim;
  double r_lo = 100.0;       ///< search bracket [ohm]
  double r_hi = 100e3;
  int bisection_steps = 10;  ///< ~3 decades / 2^10 => <1% resolution
  /// Required detected fraction of the MC population (1.0 = every instance).
  double target_coverage = 1.0;
  /// Parallel lanes for each bisection step's MC population (0 = hardware
  /// concurrency, 1 = serial); bit-identical at any setting. The bisection
  /// itself stays sequential — each step depends on the previous verdict.
  int threads = 1;
  /// Batched electrical kernel: each bisection step's MC population advances
  /// through one factor-once/solve-many spice::BatchTransient (lock-step,
  /// single-threaded) instead of per-sample scalar transients. Bit-identical
  /// results; ignored while fault injection is active.
  bool batch = false;
  /// Fire to abandon the search mid-flight (raises exec::CancelledError).
  exec::CancelToken cancel;
  /// Resilience policy for each bisection step's MC sweep. Checkpointing is
  /// ignored here (every step is its own short sweep); quarantine, the
  /// per-solve budget and fault injection apply.
  resil::SweepPolicy resil;
};

struct RminResult {
  bool detectable = false;  ///< false when even r_hi is not detected
  double r_min = 0.0;       ///< valid when detectable
  std::size_t simulations = 0;
  /// Samples quarantined across every bisection step (0 in strict mode).
  std::size_t n_quarantined = 0;
};

/// Bisection over R assuming detection is monotone in R (true for ROPs: a
/// larger series resistance dampens the pulse more). The factory's fault
/// spec must be set.
[[nodiscard]] RminResult find_r_min(const PathFactory& factory,
                                    const PulseTestCalibration& cal,
                                    const RminOptions& options);

}  // namespace ppd::core
