// Electrical-level measurements underlying both test methods:
// path propagation delay (DF testing) and the pulse transfer function
// w_out = f_p(w_in) (the proposed method), evaluated on freshly built
// Monte-Carlo instances of a sensitized path with an optional injected
// defect.
#pragma once

#include <optional>
#include <vector>

#include "ppd/cells/path.hpp"
#include "ppd/faults/fault.hpp"
#include "ppd/mc/variation.hpp"
#include "ppd/spice/analysis.hpp"

namespace ppd::core {

/// Pulse polarity at the path input (paper Sect. 4: kinds h and l).
enum class PulseKind { kH, kL };  // h: low-high-low, l: high-low-high

/// Transient settings shared by all measurements.
struct SimSettings {
  double dt = 2e-12;
  double t_launch = 0.3e-9;      ///< stimulus launch time
  double t_tail = 2.5e-9;        ///< settle window after the stimulus
  spice::Integrator integrator = spice::Integrator::kTrapezoidal;
  /// Iteration-count step control, validated against fixed stepping in the
  /// test suite; the default favours Monte-Carlo throughput.
  bool adaptive = true;
  double dt_max = 8e-12;
  /// Adaptive rejection floor; the defaults match spice::TransientOptions.
  double dt_min = 1e-15;
  /// Newton voltage tolerances, applied to every solve in the measurement
  /// (operating point and transient alike).
  double newton_abstol = 1e-6;
  double newton_reltol = 1e-4;
  /// Wall-clock budget per electrical measurement [s]; <= 0 = unlimited.
  /// ONE deadline of this length covers the whole analysis — operating
  /// point and transient integration spend from the same budget — and
  /// expiry raises ppd::TimeoutError (see ppd::resil) instead of spinning
  /// unbounded.
  double budget_seconds = 0.0;
};

/// SPICE options for one measurement transient: integration settings from
/// `sim`, probes restricted to the path terminals, and the single shared
/// wall-clock budget (op.budget_seconds stays 0 — the OP draws from the
/// transient's own deadline, so a budgeted measurement cannot run for twice
/// its budget). Public so tests can pin the budget wiring.
[[nodiscard]] spice::TransientOptions make_transient_options(
    const SimSettings& sim, double t_stop, const cells::Path& path);

/// Recipe for building path instances: the experiment framework rebuilds a
/// fresh transistor-level circuit per Monte-Carlo sample, with the same
/// fault site spliced in each time.
struct PathFactory {
  cells::Process process;
  cells::PathOptions options;
  std::optional<faults::PathFaultSpec> fault;
};

/// A built instance: the path plus its injected defect handle (present only
/// when the factory has a fault and resistance > 0).
struct PathInstance {
  PathInstance(cells::Path p, std::optional<faults::InjectedFault> f)
      : path(std::move(p)), fault(std::move(f)) {}
  cells::Path path;
  std::optional<faults::InjectedFault> fault;
};

/// Build one instance; `fault_ohms <= 0` builds fault-free.
[[nodiscard]] PathInstance make_instance(const PathFactory& factory,
                                         double fault_ohms,
                                         cells::VariationSource* variation);

/// Deterministic per-sample RNG derivation (same sample index -> same
/// circuit instance, regardless of evaluation order).
[[nodiscard]] mc::Rng sample_rng(std::uint64_t seed, std::size_t sample);

/// 50%-to-50% propagation delay of a single input transition through the
/// path. Returns nullopt when the output never switches within the window
/// (an unbounded delay defect).
[[nodiscard]] std::optional<double> path_delay(cells::Path& path,
                                               bool input_rising,
                                               const SimSettings& sim);

/// Output pulse width at 50% VDD for an injected input pulse of 50%-width
/// `w_in`. Returns nullopt when the pulse is dampened (never completes at
/// the output). The polarity observed at the output accounts for the path's
/// inversion parity.
[[nodiscard]] std::optional<double> output_pulse_width(cells::Path& path,
                                                       PulseKind kind,
                                                       double w_in,
                                                       const SimSettings& sim);

/// One sample's outcome from a batched measurement: either a measurement
/// (nullopt value = "no edge/pulse at the output", same meaning as the
/// scalar functions) or a captured per-sample solver failure — a diverged
/// sample drops out of the batch, it does not take the batch down.
struct BatchOutcome {
  std::optional<double> value;
  bool failed = false;
  std::string error;
};

/// Batched counterpart of path_delay(): all instances advance through ONE
/// factor-once/solve-many spice::BatchTransient in lock-step. The paths
/// must share one topology (same builder, different parameter draws) and
/// must already carry any injected fault. Results are bit-identical to
/// calling path_delay() per path, and the same measurement memoization
/// applies (cache hits skip the batch entirely).
[[nodiscard]] std::vector<BatchOutcome> batch_path_delay(
    const std::vector<cells::Path*>& paths, bool input_rising,
    const SimSettings& sim);

/// Batched counterpart of output_pulse_width(); `w_in[i]` drives path i.
[[nodiscard]] std::vector<BatchOutcome> batch_output_pulse_width(
    const std::vector<cells::Path*>& paths, PulseKind kind,
    const std::vector<double>& w_in, const SimSettings& sim);

/// Sampled pulse transfer function of one circuit instance (Fig. 10): pairs
/// (w_in, w_out) over a width grid, with 0 recorded for dampened pulses.
/// A dampened pulse (w_out = 0) is a *measurement*; a solver failure is
/// not — failed points carry w_out = NaN and failed[i] != 0 so downstream
/// consumers cannot mistake a diverged solve for perfect attenuation.
struct TransferCurve {
  std::vector<double> w_in;
  std::vector<double> w_out;   ///< 0 when dampened, NaN when the solve failed
  std::vector<char> failed;    ///< per-point solver-failure flag
  std::size_t n_failed = 0;    ///< number of failed points
};

[[nodiscard]] TransferCurve transfer_function(cells::Path& path, PulseKind kind,
                                              const std::vector<double>& w_in_grid,
                                              const SimSettings& sim);

/// Uniformly spaced grid helper [lo, hi] with n points (n >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Log-spaced grid helper [lo, hi] with n points (n >= 2, lo > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t n);

}  // namespace ppd::core
