// Fault-coverage experiments (paper Sect. 4, Figs. 6-9): Monte-Carlo
// populations of faulty path instances evaluated against both test methods
// over a defect-resistance sweep.
//
// C_del(R; T')   — fraction of instances failing DF testing at clock T'
// C_pulse(R; w') — fraction of instances whose output pulse drops below w'
//
// One electrical measurement per (sample, R) serves every multiplier of the
// swept test parameter, exactly as one fabricated die would be re-tested at
// several clock periods / sensing thresholds.
#pragma once

#include <cstdint>
#include <vector>

#include "ppd/core/delay_test.hpp"
#include "ppd/core/pulse_test.hpp"
#include "ppd/exec/cancel.hpp"
#include "ppd/resil/quarantine.hpp"
#include "ppd/resil/sweep_guard.hpp"

namespace ppd::core {

struct CoverageOptions {
  int samples = 50;
  std::uint64_t seed = 1;
  mc::VariationModel variation;
  SimSettings sim;
  std::vector<double> resistances;  ///< defect sweep [ohm]
  /// Multipliers applied to the calibrated test parameter (paper: 0.9/1/1.1).
  std::vector<double> multipliers{0.9, 1.0, 1.1};
  /// Per-instance jitter of the on-chip pulse generator's width (relative
  /// sigma; pulse coverage only). The calibration already guards against
  /// the same uncertainty (PulseCalibrationOptions::generator_sigma).
  double generator_sigma = 0.03;
  /// Parallel lanes for the MC population (0 = hardware concurrency,
  /// 1 = serial). Every sample derives its RNG from (seed, sample), so the
  /// result is bit-identical at any setting.
  int threads = 1;
  /// Batched electrical kernel: every resistance column's MC samples advance
  /// through ONE factor-once/solve-many spice::BatchTransient (parallelism
  /// moves from items to columns; `threads` still applies). Results are
  /// bit-identical to the scalar path at every setting. Ignored while fault
  /// injection is active — the chaos seams fire per item, which only the
  /// scalar path routes through.
  bool batch = false;
  /// Fire to abandon the sweep mid-flight (raises exec::CancelledError).
  exec::CancelToken cancel;
  /// Resilience policy: quarantine, budgets, checkpoint/resume, fault
  /// injection. The default is a no-op (fail-fast, pre-resil behaviour).
  resil::SweepPolicy resil;
};

/// One coverage curve per multiplier over the resistance sweep.
struct CoverageResult {
  std::vector<double> resistances;
  std::vector<double> multipliers;
  /// coverage[m][r]: fraction detected for multiplier m at resistance r.
  /// With quarantine on, each column's denominator is the number of VALID
  /// samples at that resistance (samples minus quarantined).
  std::vector<std::vector<double>> coverage;
  std::size_t simulations = 0;  ///< valid electrical measurements
  /// Samples dropped by quarantine (empty in strict mode). Deterministic:
  /// the same seed and fault plan yield the same report at any thread count.
  resil::QuarantineReport quarantine;
  [[nodiscard]] std::size_t n_quarantined() const { return quarantine.size(); }
};

/// DF-testing coverage: the applied clock is multiplier * T0.
[[nodiscard]] CoverageResult run_delay_coverage(const PathFactory& factory,
                                                const DelayTestCalibration& cal,
                                                const CoverageOptions& options);

/// Pulse-testing coverage: the applied sensing threshold is
/// multiplier * w_th, with the calibrated w_in injected.
[[nodiscard]] CoverageResult run_pulse_coverage(const PathFactory& factory,
                                                const PulseTestCalibration& cal,
                                                const CoverageOptions& options);

}  // namespace ppd::core
