// Reduced-clock-period delay-fault testing — the baseline the paper
// compares against (Sect. 4).
//
// A path p tested between launch flip-flop FF0 and capture flip-flop FF1 is
// detected faulty in instance s when
//     T' < d_p^s(R) + tau_CQ + tau_DC
// where T' is the applied (uncertain) clock period. The nominal test period
// T0 is calibrated by Monte-Carlo so that *no fault-free instance fails even
// when T' drops 10% below nominal* — the paper's yield-first rule.
#pragma once

#include <cstdint>
#include <optional>

#include "ppd/core/measure.hpp"

namespace ppd::core {

/// Flip-flop timing budget of the test loop. The defaults match the
/// transistor-level transmission-gate DFF of this repository within a few
/// ps (cells::measure_ff_timing; see measured_flip_flop_timing below).
struct FlipFlopTiming {
  double tau_cq = 60e-12;  ///< launch clock-to-Q
  double tau_dc = 40e-12;  ///< capture setup time

  [[nodiscard]] double overhead() const { return tau_cq + tau_dc; }
};

/// Characterize the repository's transistor-level DFF electrically and
/// return its timing as a test budget. Throws NumericalError when the cell
/// fails to latch (e.g. under an absurd process).
[[nodiscard]] FlipFlopTiming measured_flip_flop_timing(
    const cells::Process& process);

struct DelayTestCalibration {
  double t_nominal = 0.0;       ///< calibrated nominal test period T0 [s]
  FlipFlopTiming flip_flops;
  bool input_rising = true;     ///< launched transition polarity
  double worst_fault_free_delay = 0.0;  ///< max d_p over the MC sample
};

struct DelayCalibrationOptions {
  int samples = 50;
  std::uint64_t seed = 1;
  mc::VariationModel variation;
  SimSettings sim;
  FlipFlopTiming flip_flops;
  /// Clock-uncertainty guard band: T0 is chosen so T' = (1-guard)*T0 still
  /// passes every fault-free instance (paper: 10%).
  double clock_guard = 0.10;
  bool input_rising = true;
};

/// Monte-Carlo calibration of the nominal test period for `factory`'s path
/// (built fault-free regardless of the factory's fault spec).
[[nodiscard]] DelayTestCalibration calibrate_delay_test(
    const PathFactory& factory, const DelayCalibrationOptions& options);

/// Detection predicate: does this measured delay fail a test clock of
/// `t_applied`? A missing delay (no output transition) always fails.
[[nodiscard]] bool delay_detects(std::optional<double> measured_delay,
                                 double t_applied, const FlipFlopTiming& ff);

}  // namespace ppd::core
