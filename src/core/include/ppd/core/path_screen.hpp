// Candidate-path selection for coverage / R_min sweeps — the shared
// front end of the Fig. 11 flow, now with the ppd::sta static screen in
// the loop:
//
//   enumerate paths through strided fault sites
//     -> length window -> sensitization ATPG -> electrical-case dedup
//     -> cap                                  (the brute-force population)
//     -> static pulse-survival screen         (optional, ppd::sta)
//
// The screen filters the *same* capped population the brute-force sweep
// would hand to SPICE, so the kept set is always a subset of it and every
// screened-out path is individually accounted for — counted and verdicted,
// never silently dropped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ppd/cells/netlist.hpp"
#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/netlist.hpp"
#include "ppd/logic/paths.hpp"
#include "ppd/sta/screen.hpp"

namespace ppd::core {

struct CandidateSelectionOptions {
  std::size_t max_candidates = 10;   ///< cap on the brute-force population
  std::size_t site_stride = 7;      ///< every Nth "G<i>" gate is a fault site
  std::size_t site_limit = 160;     ///< scan G0 .. G<site_limit-1>
  std::size_t paths_per_site = 48;  ///< enumeration cap per site
  std::size_t min_length = 4;       ///< path-length window (nets)
  std::size_t max_length = 9;
  /// Run the static screen over the capped population. Off = the exact
  /// pre-screen brute-force behaviour (every candidate goes to SPICE).
  bool screen = true;
  /// Screen knobs; `justify` is ignored here (candidates are already
  /// sensitized by construction).
  sta::ScreenOptions screen_options;
};

/// One electrically distinct candidate: a sensitizable path plus the cell
/// realization and the fault-stage index of its site.
struct PathCandidate {
  std::string site;                    ///< fault-site gate name
  logic::Path path;
  std::vector<cells::GateKind> kinds;  ///< transistor-level realization
  std::size_t fault_stage = 0;         ///< site index along `kinds`
};

struct CandidateSelection {
  /// The brute-force population: capped, deduplicated, sensitizable.
  std::vector<PathCandidate> candidates;
  /// Indices into `candidates` surviving the screen, in order. All of them
  /// when screening is off.
  std::vector<std::size_t> kept;
  /// Per-candidate screen verdicts (parallel to `candidates`; empty when
  /// screening is off).
  std::vector<sta::ScreenedPath> screened;
  // Funnel accounting.
  std::size_t enumerated = 0;       ///< paths produced by enumeration
  std::size_t length_rejected = 0;
  std::size_t unsensitizable = 0;
  std::size_t duplicates = 0;
  std::size_t pulse_dead = 0;       ///< screened out as provably dead

  [[nodiscard]] std::vector<PathCandidate> kept_candidates() const;
};

/// Deterministic (site order, enumeration order and the screen are all
/// deterministic at any thread count).
[[nodiscard]] CandidateSelection select_path_candidates(
    const logic::Netlist& netlist, const logic::GateTimingLibrary& library,
    const CandidateSelectionOptions& options = {});

}  // namespace ppd::core
