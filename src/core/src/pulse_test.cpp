#include "ppd/core/pulse_test.hpp"

#include <algorithm>
#include <limits>

#include "ppd/util/error.hpp"

namespace ppd::core {

std::optional<std::size_t> asymptotic_onset(const TransferCurve& curve,
                                            double slope_tolerance) {
  PPD_REQUIRE(curve.w_in.size() == curve.w_out.size(), "malformed curve");
  PPD_REQUIRE(slope_tolerance > 0.0 && slope_tolerance < 1.0,
              "slope tolerance must be in (0, 1)");
  const std::size_t n = curve.w_in.size();
  if (n < 2) return std::nullopt;
  // Slope between consecutive grid points; segment i covers [i, i+1].
  // The attenuation region approaches the asymptote from *above* (slope > 1
  // while the curve catches up), so "asymptotic" means the slope sits in a
  // band around the ideal 1, not merely above a floor. The onset is the
  // first point from which every later segment stays inside the band (and
  // the pulse actually propagates there).
  std::vector<double> slope(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dw = curve.w_in[i + 1] - curve.w_in[i];
    PPD_REQUIRE(dw > 0.0, "w_in grid must be increasing");
    slope[i] = (curve.w_out[i + 1] - curve.w_out[i]) / dw;
  }
  std::optional<std::size_t> onset;
  for (std::size_t i = n - 1; i-- > 0;) {
    const bool in_band = std::abs(slope[i] - 1.0) <= slope_tolerance;
    if (in_band && curve.w_out[i] > 0.0)
      onset = i;
    else
      break;
  }
  return onset;
}

PulseTestCalibration calibrate_pulse_test(const PathFactory& factory,
                                          const PulseCalibrationOptions& options) {
  PPD_REQUIRE(options.samples > 0, "need at least one MC sample");
  PPD_REQUIRE(options.sensor_guard >= 0.0 && options.sensor_guard < 1.0,
              "sensor guard must be in [0, 1)");

  std::vector<double> grid = options.w_in_grid;
  if (grid.empty()) grid = linspace(0.10e-9, 0.80e-9, 15);

  // Nominal characterization of f_p (Sect. 5 / Fig. 10).
  PathInstance nominal = make_instance(factory, 0.0, nullptr);
  const TransferCurve curve =
      transfer_function(nominal.path, options.kind, grid, options.sim);
  const auto onset = asymptotic_onset(curve, options.slope_tolerance);
  if (!onset.has_value())
    throw NumericalError(
        "pulse calibration: transfer curve never reaches the asymptotic "
        "region on the supplied w_in grid");

  // Walk the asymptotic region from its onset upward; stop at the first
  // candidate whose Monte-Carlo minimum output width supports a feasible
  // sensing threshold under worst-case sensor variation.
  // Generator tail: the injected width itself fluctuates (uncertainty (a)
  // of Sect. 3); calibrate against the slow generator's narrowest pulse.
  const double generator_derate =
      1.0 - options.generator_guard_sigmas * options.generator_sigma;
  PPD_REQUIRE(generator_derate > 0.0, "generator sigma too large");

  for (std::size_t c = *onset; c < grid.size(); ++c) {
    const double w_in = grid[c];
    const double w_in_worst = w_in * generator_derate;
    double min_w_out = std::numeric_limits<double>::infinity();
    bool all_propagate = true;
    for (int s = 0; s < options.samples && all_propagate; ++s) {
      mc::Rng rng = sample_rng(options.seed, static_cast<std::size_t>(s));
      mc::GaussianVariationSource var(options.variation, rng);
      PathInstance inst = make_instance(factory, 0.0, &var);
      const auto w_out =
          output_pulse_width(inst.path, options.kind, w_in_worst, options.sim);
      if (!w_out.has_value()) {
        all_propagate = false;
        break;
      }
      min_w_out = std::min(min_w_out, *w_out);
    }
    if (!all_propagate) continue;
    // No false positive even when the sensor threshold runs high by the
    // guard factor: (1+guard) * w_th <= min fault-free w_out.
    const double w_th = min_w_out / (1.0 + options.sensor_guard);
    if (w_th < options.w_th_floor) continue;

    PulseTestCalibration cal;
    cal.w_in = w_in;
    cal.w_th = w_th;
    cal.kind = options.kind;
    cal.min_fault_free_w_out = min_w_out;
    cal.nominal_curve = curve;
    return cal;
  }
  throw NumericalError(
      "pulse calibration: no w_in candidate satisfies the zero-false-positive "
      "constraints");
}

bool pulse_detects(std::optional<double> measured_w_out, double w_th_applied) {
  if (!measured_w_out.has_value()) return true;  // pulse fully dampened
  return *measured_w_out < w_th_applied;
}

}  // namespace ppd::core
