#include "ppd/core/logic_bridge.hpp"

#include "ppd/core/pulse_test.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

std::vector<cells::GateKind> to_cell_kinds(const logic::Netlist& netlist,
                                           const logic::Path& path) {
  std::vector<cells::GateKind> kinds;
  for (logic::NetId id : path.nets) {
    const logic::Gate& g = netlist.gate(id);
    const std::size_t fanin = g.fanin.size();
    switch (g.kind) {
      case logic::LogicKind::kInput:
        break;
      case logic::LogicKind::kNot:
        kinds.push_back(cells::GateKind::kInv);
        break;
      case logic::LogicKind::kBuf:
        kinds.push_back(cells::GateKind::kInv);
        kinds.push_back(cells::GateKind::kInv);
        break;
      case logic::LogicKind::kNand:
        PPD_REQUIRE(fanin == 2 || fanin == 3, "NAND fanin must be 2 or 3");
        kinds.push_back(fanin == 2 ? cells::GateKind::kNand2
                                   : cells::GateKind::kNand3);
        break;
      case logic::LogicKind::kNor:
        PPD_REQUIRE(fanin == 2 || fanin == 3, "NOR fanin must be 2 or 3");
        kinds.push_back(fanin == 2 ? cells::GateKind::kNor2
                                   : cells::GateKind::kNor3);
        break;
      case logic::LogicKind::kAnd:
        PPD_REQUIRE(fanin == 2, "AND fanin must be 2 for extraction");
        kinds.push_back(cells::GateKind::kNand2);
        kinds.push_back(cells::GateKind::kInv);
        break;
      case logic::LogicKind::kOr:
        PPD_REQUIRE(fanin == 2, "OR fanin must be 2 for extraction");
        kinds.push_back(cells::GateKind::kNor2);
        kinds.push_back(cells::GateKind::kInv);
        break;
      case logic::LogicKind::kXor:
      case logic::LogicKind::kXnor:
        throw PreconditionError(
            "XOR/XNOR gates have no transistor-level cell in this library");
    }
  }
  PPD_REQUIRE(!kinds.empty(), "path has no gates to extract");
  return kinds;
}

logic::GateTiming calibrate_gate_timing(const cells::Process& process,
                                        cells::GateKind kind,
                                        const TimingCalibrationOptions& options) {
  cells::PathOptions po;
  po.kinds = {kind};
  po.stage_load = options.stage_load;
  po.extra_fanout = 1;
  // Fast source edges so the narrowest grid pulses remain realizable.
  po.input_transition = 10e-12;

  const bool inverting = cells::gate_inverting(kind);
  logic::GateTiming t;

  // Delays: a rising output comes from a falling input on inverting gates.
  {
    cells::Path p = cells::build_path(process, po);
    const auto d = path_delay(p, /*input_rising=*/!inverting, options.sim);
    PPD_REQUIRE(d.has_value(), "gate produced no rising output transition");
    t.delay_rise = *d;
  }
  {
    cells::Path p = cells::build_path(process, po);
    const auto d = path_delay(p, /*input_rising=*/inverting, options.sim);
    PPD_REQUIRE(d.has_value(), "gate produced no falling output transition");
    t.delay_fall = *d;
  }

  // Width map from a pulse sweep through the single gate.
  std::vector<double> grid = options.w_grid;
  if (grid.empty()) grid = linspace(20e-12, 400e-12, 20);
  cells::Path p = cells::build_path(process, po);
  const TransferCurve curve =
      transfer_function(p, PulseKind::kH, grid, options.sim);

  // w_block: interpolated onset of propagation.
  std::size_t first_alive = grid.size();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (curve.w_out[i] > 0.0) {
      first_alive = i;
      break;
    }
  }
  PPD_REQUIRE(first_alive < grid.size(),
              "gate dampened every pulse in the calibration grid");
  t.w_block = first_alive == 0 ? 0.5 * grid.front() : grid[first_alive - 1];

  // w_pass: onset of the asymptotic (slope ~ 1) region.
  const auto onset = asymptotic_onset(curve, 0.15);
  t.w_pass = onset.has_value() ? grid[*onset] : 3.0 * t.w_block;
  if (t.w_pass <= t.w_block) t.w_pass = t.w_block * 1.5 + 1e-12;

  // shrink: width loss deep in the asymptotic region.
  t.shrink = grid.back() - curve.w_out.back();
  return t;
}

logic::GateTimingLibrary calibrate_timing_library(
    const cells::Process& process, const TimingCalibrationOptions& options) {
  logic::GateTimingLibrary lib;
  const logic::GateTiming inv =
      calibrate_gate_timing(process, cells::GateKind::kInv, options);
  lib.set(logic::LogicKind::kNot, inv);
  lib.set_default(inv);

  const logic::GateTiming nand2 =
      calibrate_gate_timing(process, cells::GateKind::kNand2, options);
  lib.set(logic::LogicKind::kNand, nand2);
  lib.set(logic::LogicKind::kAnd, nand2);

  const logic::GateTiming nor2 =
      calibrate_gate_timing(process, cells::GateKind::kNor2, options);
  lib.set(logic::LogicKind::kNor, nor2);
  lib.set(logic::LogicKind::kOr, nor2);
  return lib;
}

}  // namespace ppd::core
