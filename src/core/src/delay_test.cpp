#include "ppd/core/delay_test.hpp"

#include <algorithm>

#include "ppd/cells/dff.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

FlipFlopTiming measured_flip_flop_timing(const cells::Process& process) {
  const cells::MeasuredFfTiming m = cells::measure_ff_timing(process);
  if (!m.valid)
    throw NumericalError("flip-flop characterization failed to latch");
  FlipFlopTiming t;
  t.tau_cq = m.clk_to_q;
  t.tau_dc = m.setup;
  return t;
}

DelayTestCalibration calibrate_delay_test(const PathFactory& factory,
                                          const DelayCalibrationOptions& options) {
  PPD_REQUIRE(options.samples > 0, "need at least one MC sample");
  PPD_REQUIRE(options.clock_guard >= 0.0 && options.clock_guard < 1.0,
              "clock guard must be in [0, 1)");

  double worst = 0.0;
  for (int s = 0; s < options.samples; ++s) {
    mc::Rng rng = sample_rng(options.seed, static_cast<std::size_t>(s));
    mc::GaussianVariationSource var(options.variation, rng);
    PathInstance inst = make_instance(factory, /*fault_ohms=*/0.0, &var);
    const auto d = path_delay(inst.path, options.input_rising, options.sim);
    if (!d.has_value())
      throw NumericalError(
          "fault-free instance produced no output transition during delay "
          "calibration");
    worst = std::max(worst, *d);
  }

  DelayTestCalibration cal;
  cal.flip_flops = options.flip_flops;
  cal.input_rising = options.input_rising;
  cal.worst_fault_free_delay = worst;
  // Yield-first rule: even the slowest fault-free instance passes when the
  // applied clock is (1-guard) of nominal.
  cal.t_nominal =
      (worst + options.flip_flops.overhead()) / (1.0 - options.clock_guard);
  return cal;
}

bool delay_detects(std::optional<double> measured_delay, double t_applied,
                   const FlipFlopTiming& ff) {
  if (!measured_delay.has_value()) return true;  // output never switched
  return t_applied < *measured_delay + ff.overhead();
}

}  // namespace ppd::core
