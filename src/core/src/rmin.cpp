#include "ppd/core/rmin.hpp"

#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

namespace {

/// Fraction of the MC population detected at resistance r. Samples run in
/// parallel (options.threads); each derives its RNG from (seed, sample), so
/// the fraction is bit-identical to the serial loop.
double detected_fraction(const PathFactory& factory,
                         const PulseTestCalibration& cal,
                         const RminOptions& options, double r,
                         std::size_t& simulations) {
  exec::ParallelOptions par;
  par.threads = options.threads;
  par.cancel = options.cancel;
  par.context = "r_min MC sweep at R = " + std::to_string(r) + " ohm";
  exec::SweepStats stats;
  const auto hits = exec::parallel_map(
      static_cast<std::size_t>(options.samples),
      [&](std::size_t s) {
        mc::Rng rng = sample_rng(options.seed, s);
        mc::GaussianVariationSource var(options.variation, rng);
        PathInstance inst = make_instance(factory, r, &var);
        const auto w_out =
            output_pulse_width(inst.path, cal.kind, cal.w_in, options.sim);
        return static_cast<char>(pulse_detects(w_out, cal.w_th) ? 1 : 0);
      },
      par, &stats);
  exec::record_sweep("core.rmin", stats);
  simulations += hits.size();
  int detected = 0;
  for (char h : hits) detected += h;
  return static_cast<double>(detected) / static_cast<double>(options.samples);
}

}  // namespace

RminResult find_r_min(const PathFactory& factory, const PulseTestCalibration& cal,
                      const RminOptions& options) {
  const obs::Span span("core.find_r_min");
  PPD_REQUIRE(factory.fault.has_value(), "r_min needs a fault site");
  PPD_REQUIRE(options.r_hi > options.r_lo && options.r_lo > 0.0,
              "invalid resistance bracket");
  PPD_REQUIRE(options.target_coverage > 0.0 && options.target_coverage <= 1.0,
              "target coverage must be in (0, 1]");

  RminResult res;
  // Bracket check: detected at r_hi, undetected at r_lo.
  if (detected_fraction(factory, cal, options, options.r_hi, res.simulations) <
      options.target_coverage) {
    res.detectable = false;
    return res;
  }
  res.detectable = true;
  double lo = options.r_lo;
  double hi = options.r_hi;
  if (detected_fraction(factory, cal, options, lo, res.simulations) >=
      options.target_coverage) {
    res.r_min = lo;  // detected across the whole bracket
    return res;
  }
  for (int i = 0; i < options.bisection_steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (detected_fraction(factory, cal, options, mid, res.simulations) >=
        options.target_coverage)
      hi = mid;
    else
      lo = mid;
  }
  res.r_min = hi;
  return res;
}

}  // namespace ppd::core
