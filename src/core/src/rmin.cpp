#include "ppd/core/rmin.hpp"

#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

namespace {

/// Fraction of the MC population detected at resistance r. Samples run in
/// parallel (options.threads); each derives its RNG from (seed, sample), so
/// the fraction is bit-identical to the serial loop. Quarantined samples
/// drop from both numerator and denominator (fraction 0 when every sample
/// is quarantined).
double detected_fraction(const PathFactory& factory,
                         const PulseTestCalibration& cal,
                         const RminOptions& options, double r,
                         std::size_t& simulations, std::size_t& quarantined) {
  // Each bisection step is its own short sweep; checkpointing would clash
  // across steps, so only quarantine/budget/injection carry over.
  resil::SweepPolicy policy = options.resil;
  policy.checkpoint_path.clear();
  policy.resume = false;
  resil::SweepGuard guard(policy, static_cast<std::size_t>(options.samples),
                          options.seed,
                          "r_min MC sweep at R = " + std::to_string(r) + " ohm");
  exec::ParallelOptions par;
  par.threads = options.threads;
  par.cancel = options.cancel;
  par.context = "r_min MC sweep at R = " + std::to_string(r) + " ohm";
  guard.arm(par);
  SimSettings sim = options.sim;
  if (guard.solve_budget_seconds() > 0.0)
    sim.budget_seconds = guard.solve_budget_seconds();
  exec::SweepStats stats;
  // Batch mode: the whole population advances through one lock-step
  // factor-once/solve-many kernel up front; the item loop below then only
  // classifies (and re-throws per-sample failures so quarantine sees them
  // on the right item).
  const bool use_batch = options.batch && !resil::fault_injection_active();
  std::vector<BatchOutcome> pre;
  std::vector<char> hits;
  try {
    if (use_batch) {
      std::vector<PathInstance> insts;
      insts.reserve(static_cast<std::size_t>(options.samples));
      for (std::size_t s = 0; s < static_cast<std::size_t>(options.samples); ++s) {
        mc::Rng rng = sample_rng(options.seed, s);
        mc::GaussianVariationSource var(options.variation, rng);
        insts.push_back(make_instance(factory, r, &var));
      }
      std::vector<cells::Path*> paths;
      paths.reserve(insts.size());
      for (auto& inst : insts) paths.push_back(&inst.path);
      pre = batch_output_pulse_width(
          paths, cal.kind, std::vector<double>(paths.size(), cal.w_in), sim);
    }
    hits = exec::parallel_map(
        static_cast<std::size_t>(options.samples),
        [&](std::size_t s) {
          const resil::FaultScope inject(guard.plan(), s);
          resil::inject_item_delay();
          resil::inject_item_failure();
          std::optional<double> w_out;
          if (use_batch) {
            if (pre[s].failed) throw NumericalError(pre[s].error);
            w_out = pre[s].value;
          } else {
            mc::Rng rng = sample_rng(options.seed, s);
            mc::GaussianVariationSource var(options.variation, rng);
            PathInstance inst = make_instance(factory, r, &var);
            w_out = output_pulse_width(inst.path, cal.kind, cal.w_in, sim);
          }
          const auto hit = static_cast<char>(pulse_detects(w_out, cal.w_th) ? 1 : 0);
          guard.complete(s, std::string(1, hit ? '1' : '0'));
          return hit;
        },
        par, &stats);
  } catch (const exec::CancelledError& e) {
    guard.cancelled(e);
  }
  exec::record_sweep("core.rmin", stats);
  const resil::QuarantineReport report = guard.finish();
  quarantined += report.size();
  // Count valid samples by walking the results, never as hits.size() -
  // report.size(): size_t subtraction wraps when the report outnumbers the
  // collected hits (e.g. a cancelled sweep that returned early), turning an
  // empty population into ~2^64 "valid" samples.
  std::size_t valid = 0;
  int detected = 0;
  for (std::size_t s = 0; s < hits.size(); ++s) {
    if (report.contains(s)) continue;
    ++valid;
    detected += hits[s];
  }
  simulations += valid;
  return valid == 0 ? 0.0
                    : static_cast<double>(detected) / static_cast<double>(valid);
}

}  // namespace

RminResult find_r_min(const PathFactory& factory, const PulseTestCalibration& cal,
                      const RminOptions& options) {
  const obs::Span span("core.find_r_min");
  PPD_REQUIRE(factory.fault.has_value(), "r_min needs a fault site");
  PPD_REQUIRE(options.r_hi > options.r_lo && options.r_lo > 0.0,
              "invalid resistance bracket");
  PPD_REQUIRE(options.target_coverage > 0.0 && options.target_coverage <= 1.0,
              "target coverage must be in (0, 1]");

  RminResult res;
  // Bracket check: detected at r_hi, undetected at r_lo.
  if (detected_fraction(factory, cal, options, options.r_hi, res.simulations, res.n_quarantined) <
      options.target_coverage) {
    res.detectable = false;
    return res;
  }
  res.detectable = true;
  double lo = options.r_lo;
  double hi = options.r_hi;
  if (detected_fraction(factory, cal, options, lo, res.simulations, res.n_quarantined) >=
      options.target_coverage) {
    res.r_min = lo;  // detected across the whole bracket
    return res;
  }
  for (int i = 0; i < options.bisection_steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (detected_fraction(factory, cal, options, mid, res.simulations, res.n_quarantined) >=
        options.target_coverage)
      hi = mid;
    else
      lo = mid;
  }
  res.r_min = hi;
  return res;
}

}  // namespace ppd::core
