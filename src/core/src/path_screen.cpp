#include "ppd/core/path_screen.hpp"

#include <string>

#include "ppd/core/logic_bridge.hpp"
#include "ppd/logic/sensitize.hpp"

namespace ppd::core {

std::vector<PathCandidate> CandidateSelection::kept_candidates() const {
  std::vector<PathCandidate> out;
  out.reserve(kept.size());
  for (std::size_t i : kept) out.push_back(candidates[i]);
  return out;
}

CandidateSelection select_path_candidates(
    const logic::Netlist& netlist, const logic::GateTimingLibrary& library,
    const CandidateSelectionOptions& options) {
  CandidateSelection sel;
  std::vector<std::string> seen_signatures;
  for (std::size_t gi = 0;
       gi < options.site_limit && sel.candidates.size() < options.max_candidates;
       gi += options.site_stride) {
    const std::string site = "G" + std::to_string(gi);
    if (!netlist.has(site)) continue;
    const logic::NetId via = netlist.find(site);
    for (const auto& path :
         logic::enumerate_paths_through(netlist, via, options.paths_per_site)) {
      if (sel.candidates.size() >= options.max_candidates) break;
      ++sel.enumerated;
      if (path.length() < options.min_length ||
          path.length() > options.max_length) {
        ++sel.length_rejected;
        continue;
      }
      if (!logic::sensitize_path(netlist, path,
                                 options.screen_options.sensitize)
               .ok) {
        ++sel.unsensitizable;
        continue;
      }
      PathCandidate c;
      c.site = site;
      c.path = path;
      c.kinds = to_cell_kinds(netlist, path);
      c.fault_stage = 0;
      for (std::size_t i = 1; i < path.nets.size(); ++i) {
        if (path.nets[i] == via) break;
        ++c.fault_stage;
      }
      // Deduplicate identical kind sequences + stage (same electrical case).
      std::string sig = std::to_string(c.fault_stage) + ":";
      for (auto k : c.kinds) {
        sig += cells::gate_kind_name(k);
        sig += ',';
      }
      bool dup = false;
      for (const auto& s : seen_signatures) dup = dup || s == sig;
      if (dup) {
        ++sel.duplicates;
        continue;
      }
      seen_signatures.push_back(sig);
      sel.candidates.push_back(std::move(c));
    }
  }

  if (!options.screen) {
    sel.kept.reserve(sel.candidates.size());
    for (std::size_t i = 0; i < sel.candidates.size(); ++i)
      sel.kept.push_back(i);
    return sel;
  }

  std::vector<logic::Path> paths;
  paths.reserve(sel.candidates.size());
  for (const PathCandidate& c : sel.candidates) paths.push_back(c.path);
  sta::ScreenOptions sopt = options.screen_options;
  sopt.justify = false;  // candidates are sensitizable by construction
  const sta::ScreenReport screen =
      sta::screen_paths(netlist, library, paths, sopt);
  sel.screened = screen.paths;
  for (std::size_t i = 0; i < sel.screened.size(); ++i) {
    if (sel.screened[i].verdict == sta::Verdict::kKept)
      sel.kept.push_back(i);
    else
      ++sel.pulse_dead;
  }
  return sel;
}

}  // namespace ppd::core
