#include "ppd/core/measure.hpp"

#include <cmath>

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::core {

PathInstance make_instance(const PathFactory& factory, double fault_ohms,
                           cells::VariationSource* variation) {
  cells::Path path = cells::build_path(factory.process, factory.options, variation);
  std::optional<faults::InjectedFault> injected;
  if (factory.fault.has_value() && fault_ohms > 0.0)
    injected = faults::inject_on_path(path, *factory.fault, fault_ohms);
  return PathInstance(std::move(path), std::move(injected));
}

mc::Rng sample_rng(std::uint64_t seed, std::size_t sample) {
  // Distinct, well-mixed stream per (seed, sample) — the exec-parallel
  // seeding contract (mc::derive_rng), so sweeps parallelized over samples
  // reproduce the serial population bit-for-bit.
  return mc::derive_rng(seed, sample);
}

namespace {

spice::TransientOptions transient_options(const SimSettings& sim, double t_stop,
                                          const cells::Path& path) {
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = sim.dt;
  opt.integrator = sim.integrator;
  opt.adaptive = sim.adaptive;
  opt.dt_max = sim.dt_max;
  // One budget covers both phases: a hung OP and a hung integration loop
  // surface as the same per-solve TimeoutError.
  opt.budget_seconds = sim.budget_seconds;
  opt.op.budget_seconds = sim.budget_seconds;
  // The measurements only look at the path terminals.
  opt.probe = {path.input(), path.output()};
  return opt;
}

}  // namespace

std::optional<double> path_delay(cells::Path& path, bool input_rising,
                                 const SimSettings& sim) {
  path.drive_transition(input_rising, sim.t_launch);
  const double t_stop = sim.t_launch + sim.t_tail;
  const auto res =
      spice::run_transient(path.netlist().circuit(),
                           transient_options(sim, t_stop, path));
  const double half = path.netlist().process().vdd / 2.0;
  const bool out_rising = path.same_polarity() == input_rising;
  return wave::propagation_delay(
      res.wave(path.input()), res.wave(path.output()), half,
      input_rising ? wave::Edge::kRise : wave::Edge::kFall,
      out_rising ? wave::Edge::kRise : wave::Edge::kFall);
}

std::optional<double> output_pulse_width(cells::Path& path, PulseKind kind,
                                         double w_in, const SimSettings& sim) {
  const bool positive_in = kind == PulseKind::kH;
  path.drive_pulse(positive_in, w_in, sim.t_launch);
  const double t_stop = sim.t_launch + w_in + sim.t_tail;
  const auto res =
      spice::run_transient(path.netlist().circuit(),
                           transient_options(sim, t_stop, path));
  const double half = path.netlist().process().vdd / 2.0;
  const bool positive_out = path.same_polarity() == positive_in;
  return wave::pulse_width(res.wave(path.output()), half, positive_out);
}

TransferCurve transfer_function(cells::Path& path, PulseKind kind,
                                const std::vector<double>& w_in_grid,
                                const SimSettings& sim) {
  TransferCurve curve;
  curve.w_in = w_in_grid;
  curve.w_out.reserve(w_in_grid.size());
  for (double w : w_in_grid) {
    const auto out = output_pulse_width(path, kind, w, sim);
    curve.w_out.push_back(out.value_or(0.0));
  }
  return curve;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PPD_REQUIRE(n >= 2, "linspace needs at least 2 points");
  PPD_REQUIRE(hi > lo, "linspace needs hi > lo");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return v;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  PPD_REQUIRE(lo > 0.0, "logspace needs lo > 0");
  PPD_REQUIRE(n >= 2, "logspace needs at least 2 points");
  PPD_REQUIRE(hi > lo, "logspace needs hi > lo");
  std::vector<double> v(n);
  const double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                              static_cast<double>(n - 1));
  return v;
}

}  // namespace ppd::core
