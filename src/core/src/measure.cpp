#include "ppd/core/measure.hpp"

#include <cmath>
#include <limits>

#include "ppd/cache/solve_cache.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/spice/analysis.hpp"
#include "ppd/spice/batch.hpp"
#include "ppd/spice/hash.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::core {

PathInstance make_instance(const PathFactory& factory, double fault_ohms,
                           cells::VariationSource* variation) {
  cells::Path path = cells::build_path(factory.process, factory.options, variation);
  std::optional<faults::InjectedFault> injected;
  if (factory.fault.has_value() && fault_ohms > 0.0)
    injected = faults::inject_on_path(path, *factory.fault, fault_ohms);
  return PathInstance(std::move(path), std::move(injected));
}

mc::Rng sample_rng(std::uint64_t seed, std::size_t sample) {
  // Distinct, well-mixed stream per (seed, sample) — the exec-parallel
  // seeding contract (mc::derive_rng), so sweeps parallelized over samples
  // reproduce the serial population bit-for-bit.
  return mc::derive_rng(seed, sample);
}

spice::TransientOptions make_transient_options(const SimSettings& sim,
                                               double t_stop,
                                               const cells::Path& path) {
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = sim.dt;
  opt.integrator = sim.integrator;
  opt.adaptive = sim.adaptive;
  opt.dt_max = sim.dt_max;
  opt.dt_min = sim.dt_min;
  // Tolerances steer BOTH Newton loops — the transient's and the operating
  // point's — so a loosened measurement is loose end to end.
  opt.newton.abstol = sim.newton_abstol;
  opt.newton.reltol = sim.newton_reltol;
  opt.op.newton.abstol = sim.newton_abstol;
  opt.op.newton.reltol = sim.newton_reltol;
  // One budget covers both phases: the transient's deadline is shared with
  // its initial operating point, so a hung OP and a hung integration loop
  // surface as the same TimeoutError within ~1x the budget. op.budget_seconds
  // stays 0 — setting both here used to grant each phase a full budget,
  // letting a "budgeted" measurement run for twice what it was given.
  opt.budget_seconds = sim.budget_seconds;
  // The measurements only look at the path terminals.
  opt.probe = {path.input(), path.output()};
  // Seed the operating point with every stage's DC logic level. A sensitized
  // path is a chain of primitives with side inputs at non-controlling
  // values, so each stage resolves to an inverter of the previous level and
  // the ladder is known in closed form from the input's rest level. A
  // flat-zero Newton start loses the operating point beyond ~60 stages
  // (every homotopy rung exhausted); the seeded start converges in a few
  // iterations at any chain length.
  const double vdd = path.netlist().process().vdd;
  bool high = path.rest_level() > 0.5 * vdd;
  opt.op.nodesets.reserve(path.length() + 1);
  opt.op.nodesets.emplace_back(path.input(), high ? vdd : 0.0);
  const auto& stages = path.stages();
  const auto& outputs = path.stage_outputs();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (cells::gate_inverting(path.netlist().gate(stages[i]).kind)) high = !high;
    opt.op.nodesets.emplace_back(outputs[i], high ? vdd : 0.0);
  }
  return opt;
}

namespace {

/// Content key for one scalar measurement. The circuit hash embeds the
/// process corner, the per-sample variation draw, the injected fault
/// resistance AND the already-driven stimulus spec (drive_pulse /
/// drive_transition rewrite the input source before we are called), so two
/// keys collide only for electrically identical measurements. Simulator
/// settings that shape the integration ride along; budget_seconds stays out
/// (timeouts throw and are never cached).
std::uint64_t measure_cache_key(const std::string& domain,
                                const cells::Path& path,
                                const SimSettings& sim, double t_stop) {
  cache::Hasher h;
  h.str(domain);
  spice::hash_circuit(h, path.netlist().circuit());
  h.f64(sim.dt);
  h.u8(sim.integrator == spice::Integrator::kTrapezoidal ? 0 : 1);
  h.boolean(sim.adaptive);
  h.f64(sim.dt_max);
  // Every solver knob that changes the computed waveform must land in the
  // key: dt_min moves the adaptive rejection floor and the Newton tolerances
  // move every iterate, so two measurements differing only here are NOT the
  // same measurement (omitting them let a run with loose tolerances poison
  // the cache for a later strict run).
  h.f64(sim.dt_min);
  h.f64(sim.newton_abstol);
  h.f64(sim.newton_reltol);
  h.f64(t_stop);
  h.i64(path.input());
  h.i64(path.output());
  h.boolean(path.same_polarity());
  return h.value();
}

/// Measurement results are optional<double> (nullopt = "no edge/pulse at
/// the output", a legitimate physical answer); encode as {flag, value} so
/// a cached dampened pulse round-trips distinct from a cached 0-width one.
std::vector<double> encode_measurement(const std::optional<double>& v) {
  return {v.has_value() ? 1.0 : 0.0, v.value_or(0.0)};
}

std::optional<double> decode_measurement(const std::vector<double>& enc) {
  if (enc[0] != 0.0) return enc[1];
  return std::nullopt;
}

/// Cache gate shared by the scalar measurements: off when the user disabled
/// reuse and under fault injection (a replayed result would mask the very
/// failures a chaos plan injects).
bool measurement_cache_usable() {
  return cache::cache_enabled() && !resil::fault_injection_active();
}

}  // namespace

std::optional<double> path_delay(cells::Path& path, bool input_rising,
                                 const SimSettings& sim) {
  path.drive_transition(input_rising, sim.t_launch);
  const double t_stop = sim.t_launch + sim.t_tail;
  const bool use_cache = measurement_cache_usable();
  const std::uint64_t key =
      use_cache ? measure_cache_key("core.path_delay", path, sim, t_stop) : 0;
  if (use_cache) {
    if (const auto cached = cache::solve_cache().get(key);
        cached.has_value() && cached->size() == 2)
      return decode_measurement(*cached);
  }
  const auto res =
      spice::run_transient(path.netlist().circuit(),
                           make_transient_options(sim, t_stop, path));
  const double half = path.netlist().process().vdd / 2.0;
  const bool out_rising = path.same_polarity() == input_rising;
  const auto delay = wave::propagation_delay(
      res.wave(path.input()), res.wave(path.output()), half,
      input_rising ? wave::Edge::kRise : wave::Edge::kFall,
      out_rising ? wave::Edge::kRise : wave::Edge::kFall);
  if (use_cache) cache::solve_cache().put(key, encode_measurement(delay));
  return delay;
}

std::optional<double> output_pulse_width(cells::Path& path, PulseKind kind,
                                         double w_in, const SimSettings& sim) {
  const bool positive_in = kind == PulseKind::kH;
  path.drive_pulse(positive_in, w_in, sim.t_launch);
  const double t_stop = sim.t_launch + w_in + sim.t_tail;
  // Memoized on the full measurement content: find_r_min re-measures the
  // same (sample, R) pair at every bisection step, and the coverage R-grid
  // re-builds identical fault-free instances per sample — those repeats hit
  // here instead of re-running the transient.
  const bool use_cache = measurement_cache_usable();
  const std::uint64_t key =
      use_cache ? measure_cache_key("core.pulse_width", path, sim, t_stop) : 0;
  if (use_cache) {
    if (const auto cached = cache::solve_cache().get(key);
        cached.has_value() && cached->size() == 2)
      return decode_measurement(*cached);
  }
  const auto res =
      spice::run_transient(path.netlist().circuit(),
                           make_transient_options(sim, t_stop, path));
  const double half = path.netlist().process().vdd / 2.0;
  const bool positive_out = path.same_polarity() == positive_in;
  const auto width = wave::pulse_width(res.wave(path.output()), half, positive_out);
  if (use_cache) cache::solve_cache().put(key, encode_measurement(width));
  return width;
}

std::vector<BatchOutcome> batch_path_delay(
    const std::vector<cells::Path*>& paths, bool input_rising,
    const SimSettings& sim) {
  std::vector<BatchOutcome> out(paths.size());
  if (paths.empty()) return out;
  const bool use_cache = measurement_cache_usable();
  const double t_stop = sim.t_launch + sim.t_tail;
  // Resolve cache hits up front; only the misses enter the batch.
  std::vector<std::size_t> pending;
  std::vector<std::uint64_t> keys(paths.size(), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    PPD_REQUIRE(paths[i]->input() == paths[0]->input() &&
                    paths[i]->output() == paths[0]->output(),
                "batched paths must share their terminal nodes");
    paths[i]->drive_transition(input_rising, sim.t_launch);
    if (use_cache) {
      keys[i] = measure_cache_key("core.path_delay", *paths[i], sim, t_stop);
      if (const auto cached = cache::solve_cache().get(keys[i]);
          cached.has_value() && cached->size() == 2) {
        out[i].value = decode_measurement(*cached);
        continue;
      }
    }
    pending.push_back(i);
  }
  if (pending.empty()) return out;

  spice::BatchOptions bopt;
  bopt.base = make_transient_options(sim, t_stop, *paths[pending.front()]);
  spice::BatchTransient batch(bopt);
  for (const std::size_t i : pending)
    batch.add(paths[i]->netlist().circuit(), t_stop);
  const auto results = batch.run();

  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::size_t i = pending[k];
    const spice::BatchSampleResult& r = results[k];
    if (r.failed) {
      out[i].failed = true;
      out[i].error = r.error;
      continue;
    }
    const double half = paths[i]->netlist().process().vdd / 2.0;
    const bool out_rising = paths[i]->same_polarity() == input_rising;
    out[i].value = wave::propagation_delay(
        r.result.wave(paths[i]->input()), r.result.wave(paths[i]->output()),
        half, input_rising ? wave::Edge::kRise : wave::Edge::kFall,
        out_rising ? wave::Edge::kRise : wave::Edge::kFall);
    if (use_cache)
      cache::solve_cache().put(keys[i], encode_measurement(out[i].value));
  }
  return out;
}

std::vector<BatchOutcome> batch_output_pulse_width(
    const std::vector<cells::Path*>& paths, PulseKind kind,
    const std::vector<double>& w_in, const SimSettings& sim) {
  PPD_REQUIRE(w_in.size() == paths.size(),
              "need one input width per batched path");
  std::vector<BatchOutcome> out(paths.size());
  if (paths.empty()) return out;
  const bool use_cache = measurement_cache_usable();
  const bool positive_in = kind == PulseKind::kH;
  std::vector<std::size_t> pending;
  std::vector<std::uint64_t> keys(paths.size(), 0);
  std::vector<double> t_stops(paths.size(), 0.0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    PPD_REQUIRE(paths[i]->input() == paths[0]->input() &&
                    paths[i]->output() == paths[0]->output(),
                "batched paths must share their terminal nodes");
    paths[i]->drive_pulse(positive_in, w_in[i], sim.t_launch);
    t_stops[i] = sim.t_launch + w_in[i] + sim.t_tail;
    if (use_cache) {
      keys[i] =
          measure_cache_key("core.pulse_width", *paths[i], sim, t_stops[i]);
      if (const auto cached = cache::solve_cache().get(keys[i]);
          cached.has_value() && cached->size() == 2) {
        out[i].value = decode_measurement(*cached);
        continue;
      }
    }
    pending.push_back(i);
  }
  if (pending.empty()) return out;

  spice::BatchOptions bopt;
  bopt.base = make_transient_options(sim, t_stops[pending.front()],
                                     *paths[pending.front()]);
  spice::BatchTransient batch(bopt);
  for (const std::size_t i : pending)
    batch.add(paths[i]->netlist().circuit(), t_stops[i]);
  const auto results = batch.run();

  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::size_t i = pending[k];
    const spice::BatchSampleResult& r = results[k];
    if (r.failed) {
      out[i].failed = true;
      out[i].error = r.error;
      continue;
    }
    const double half = paths[i]->netlist().process().vdd / 2.0;
    const bool positive_out = paths[i]->same_polarity() == positive_in;
    out[i].value =
        wave::pulse_width(r.result.wave(paths[i]->output()), half, positive_out);
    if (use_cache)
      cache::solve_cache().put(keys[i], encode_measurement(out[i].value));
  }
  return out;
}

TransferCurve transfer_function(cells::Path& path, PulseKind kind,
                                const std::vector<double>& w_in_grid,
                                const SimSettings& sim) {
  TransferCurve curve;
  curve.w_in = w_in_grid;
  curve.w_out.reserve(w_in_grid.size());
  curve.failed.reserve(w_in_grid.size());
  for (double w : w_in_grid) {
    // A dampened pulse (nullopt -> 0) is a physical result; a solver
    // failure is not. Conflating them used to record a diverged solve as
    // w_out = 0 — indistinguishable from perfect attenuation — so failures
    // now carry NaN plus an explicit flag and the curve stays usable for
    // the surviving points.
    try {
      const auto out = output_pulse_width(path, kind, w, sim);
      curve.w_out.push_back(out.value_or(0.0));
      curve.failed.push_back(0);
    } catch (const NumericalError&) {
      curve.w_out.push_back(std::numeric_limits<double>::quiet_NaN());
      curve.failed.push_back(1);
      ++curve.n_failed;
      obs::counter("core.transfer.failures").add();
    }
  }
  return curve;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  PPD_REQUIRE(n >= 2, "linspace needs at least 2 points");
  PPD_REQUIRE(hi > lo, "linspace needs hi > lo");
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return v;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  PPD_REQUIRE(lo > 0.0, "logspace needs lo > 0");
  PPD_REQUIRE(n >= 2, "logspace needs at least 2 points");
  PPD_REQUIRE(hi > lo, "logspace needs hi > lo");
  std::vector<double> v(n);
  const double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                              static_cast<double>(n - 1));
  return v;
}

}  // namespace ppd::core
