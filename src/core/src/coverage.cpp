#include "ppd/core/coverage.hpp"

#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

namespace {

void validate(const CoverageOptions& options) {
  PPD_REQUIRE(options.samples > 0, "need at least one MC sample");
  PPD_REQUIRE(!options.resistances.empty(), "need a resistance sweep");
  PPD_REQUIRE(!options.multipliers.empty(), "need at least one multiplier");
}

CoverageResult make_result(const CoverageOptions& options) {
  CoverageResult res;
  res.resistances = options.resistances;
  res.multipliers = options.multipliers;
  res.coverage.assign(options.multipliers.size(),
                      std::vector<double>(options.resistances.size(), 0.0));
  return res;
}

exec::ParallelOptions parallel_options(const CoverageOptions& options,
                                       const char* what) {
  exec::ParallelOptions par;
  par.threads = options.threads;
  par.cancel = options.cancel;
  // Item i = (resistance r, MC sample s); name the sweep so an electrical
  // failure deep inside one sample still says which experiment it broke.
  par.context = what;
  return par;
}

/// Fold per-item detection verdicts into the coverage matrix and normalize.
/// Detections are 0/1 counts, so the sum is exact in double arithmetic and
/// the parallel result matches the historical serial accumulation bit for
/// bit; the reduction still runs in item order for good measure.
/// Quarantined items are excluded from both numerator and denominator: each
/// resistance column divides by its own count of valid samples (0 valid ->
/// coverage 0). With an empty report this is exactly the historical
/// divide-by-samples.
CoverageResult reduce_verdicts(const CoverageOptions& options,
                               const std::vector<std::vector<char>>& verdicts,
                               resil::QuarantineReport quarantine) {
  CoverageResult res = make_result(options);
  const auto samples = static_cast<std::size_t>(options.samples);
  std::vector<std::size_t> valid(options.resistances.size(), 0);
  for (std::size_t item = 0; item < verdicts.size(); ++item) {
    const std::size_t r = item / samples;
    if (quarantine.contains(item)) continue;
    ++valid[r];
    for (std::size_t m = 0; m < options.multipliers.size(); ++m)
      if (verdicts[item][m]) res.coverage[m][r] += 1.0;
  }
  // Sum the per-resistance valid counts instead of verdicts.size() -
  // quarantine.size(): the size_t difference wraps to ~2^64 whenever the
  // report outnumbers the collected verdicts, and the per-column counts are
  // what the coverage rows were actually normalized by.
  res.simulations = 0;
  for (const std::size_t v : valid) res.simulations += v;
  for (auto& row : res.coverage)
    for (std::size_t r = 0; r < row.size(); ++r)
      row[r] = valid[r] == 0 ? 0.0 : row[r] / static_cast<double>(valid[r]);
  res.quarantine = std::move(quarantine);
  return res;
}

/// Build every MC instance of one resistance column — the same (seed,
/// sample) draws the scalar item path makes — and hand them to `measure` as
/// one batch. Parallelism in batch mode runs over columns, so each column's
/// instances are built on the thread that will integrate them.
template <typename MeasureFn>
std::vector<BatchOutcome> batch_column(const PathFactory& factory,
                                       const CoverageOptions& options,
                                       double resistance, MeasureFn&& measure) {
  const auto samples = static_cast<std::size_t>(options.samples);
  std::vector<PathInstance> insts;
  insts.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    mc::Rng rng = sample_rng(options.seed, s);
    mc::GaussianVariationSource var(options.variation, rng);
    insts.push_back(make_instance(factory, resistance, &var));
  }
  std::vector<cells::Path*> paths;
  paths.reserve(samples);
  for (auto& inst : insts) paths.push_back(&inst.path);
  return measure(paths);
}

/// Verdict row <-> checkpoint payload ('0'/'1' per multiplier). The payload
/// IS the item's full result, which is what makes a resumed sweep
/// bit-identical to an uninterrupted one.
std::string encode_verdicts(const std::vector<char>& hit) {
  std::string s(hit.size(), '0');
  for (std::size_t i = 0; i < hit.size(); ++i)
    if (hit[i]) s[i] = '1';
  return s;
}

std::vector<char> decode_verdicts(const std::string& payload) {
  std::vector<char> hit(payload.size(), 0);
  for (std::size_t i = 0; i < payload.size(); ++i)
    hit[i] = payload[i] == '1' ? 1 : 0;
  return hit;
}

}  // namespace

CoverageResult run_delay_coverage(const PathFactory& factory,
                                  const DelayTestCalibration& cal,
                                  const CoverageOptions& options) {
  const obs::Span span("core.delay_coverage");
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  const auto samples = static_cast<std::size_t>(options.samples);
  const std::size_t items = options.resistances.size() * samples;
  exec::SweepStats stats;

  resil::SweepGuard guard(
      options.resil, items, options.seed, "delay-test coverage MC sweep",
      [samples](std::size_t item) { return static_cast<std::uint64_t>(item % samples); });
  exec::ParallelOptions par =
      parallel_options(options, "delay-test coverage MC sweep");
  guard.arm(par);
  SimSettings sim = options.sim;
  if (guard.solve_budget_seconds() > 0.0)
    sim.budget_seconds = guard.solve_budget_seconds();

  // One item = one electrical transient = (resistance r, MC sample s); its
  // verdict row holds the detection flag per clock multiplier.
  const bool use_batch = options.batch && !resil::fault_injection_active();
  std::vector<std::vector<BatchOutcome>> pre;
  std::vector<std::vector<char>> verdicts;
  try {
    if (use_batch)
      pre = exec::parallel_map(
          options.resistances.size(),
          [&](std::size_t r) {
            return batch_column(factory, options, options.resistances[r],
                                [&](std::vector<cells::Path*>& paths) {
                                  return batch_path_delay(
                                      paths, cal.input_rising, sim);
                                });
          },
          parallel_options(options, "delay-test coverage batch sweep"));
    verdicts = exec::parallel_map(
        items,
        [&](std::size_t item) -> std::vector<char> {
          if (const auto saved = guard.cached(item)) return decode_verdicts(*saved);
          const resil::FaultScope inject(guard.plan(), item);
          resil::inject_item_delay();
          resil::inject_item_failure();
          const std::size_t r = item / samples;
          const std::size_t s = item % samples;
          std::optional<double> d;
          if (use_batch) {
            // Phase 2 consumes the precomputed electrical results; a failed
            // sample re-throws HERE so quarantine/strict semantics see the
            // failure on its own item, exactly like the scalar path.
            const BatchOutcome& mo = pre[r][s];
            if (mo.failed) throw NumericalError(mo.error);
            d = mo.value;
          } else {
            mc::Rng rng = sample_rng(options.seed, s);
            mc::GaussianVariationSource var(options.variation, rng);
            PathInstance inst =
                make_instance(factory, options.resistances[r], &var);
            d = path_delay(inst.path, cal.input_rising, sim);
          }
          std::vector<char> hit(options.multipliers.size(), 0);
          for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
            const double t_applied = options.multipliers[m] * cal.t_nominal;
            hit[m] = delay_detects(d, t_applied, cal.flip_flops) ? 1 : 0;
          }
          guard.complete(item, encode_verdicts(hit));
          return hit;
        },
        par, &stats);
  } catch (const exec::CancelledError& e) {
    guard.cancelled(e);
  }
  exec::record_sweep("core.coverage", stats);
  return reduce_verdicts(options, verdicts, guard.finish());
}

CoverageResult run_pulse_coverage(const PathFactory& factory,
                                  const PulseTestCalibration& cal,
                                  const CoverageOptions& options) {
  const obs::Span span("core.pulse_coverage");
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  const auto samples = static_cast<std::size_t>(options.samples);
  const std::size_t items = options.resistances.size() * samples;
  exec::SweepStats stats;

  resil::SweepGuard guard(
      options.resil, items, options.seed, "pulse-test coverage MC sweep",
      [samples](std::size_t item) { return static_cast<std::uint64_t>(item % samples); });
  exec::ParallelOptions par =
      parallel_options(options, "pulse-test coverage MC sweep");
  guard.arm(par);
  SimSettings sim = options.sim;
  if (guard.solve_budget_seconds() > 0.0)
    sim.budget_seconds = guard.solve_budget_seconds();

  // This die's generator produces its own width (uncertainty (a)).
  const auto applied_width = [&](std::size_t s) {
    mc::Rng gen_rng = sample_rng(options.seed ^ 0xABCDull, s);
    return cal.w_in *
           gen_rng.normal_clipped(1.0, options.generator_sigma, 4.0);
  };
  const bool use_batch = options.batch && !resil::fault_injection_active();
  std::vector<std::vector<BatchOutcome>> pre;
  std::vector<std::vector<char>> verdicts;
  try {
    if (use_batch)
      pre = exec::parallel_map(
          options.resistances.size(),
          [&](std::size_t r) {
            return batch_column(
                factory, options, options.resistances[r],
                [&](std::vector<cells::Path*>& paths) {
                  std::vector<double> w_applied(paths.size());
                  for (std::size_t s = 0; s < paths.size(); ++s)
                    w_applied[s] = applied_width(s);
                  return batch_output_pulse_width(paths, cal.kind, w_applied,
                                                  sim);
                });
          },
          parallel_options(options, "pulse-test coverage batch sweep"));
    verdicts = exec::parallel_map(
        items,
        [&](std::size_t item) -> std::vector<char> {
          if (const auto saved = guard.cached(item)) return decode_verdicts(*saved);
          const resil::FaultScope inject(guard.plan(), item);
          resil::inject_item_delay();
          resil::inject_item_failure();
          const std::size_t r = item / samples;
          const std::size_t s = item % samples;
          std::optional<double> w_out;
          if (use_batch) {
            const BatchOutcome& mo = pre[r][s];
            if (mo.failed) throw NumericalError(mo.error);
            w_out = mo.value;
          } else {
            mc::Rng rng = sample_rng(options.seed, s);
            mc::GaussianVariationSource var(options.variation, rng);
            PathInstance inst =
                make_instance(factory, options.resistances[r], &var);
            w_out = output_pulse_width(inst.path, cal.kind, applied_width(s),
                                       sim);
          }
          std::vector<char> hit(options.multipliers.size(), 0);
          for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
            const double w_th_applied = options.multipliers[m] * cal.w_th;
            hit[m] = pulse_detects(w_out, w_th_applied) ? 1 : 0;
          }
          guard.complete(item, encode_verdicts(hit));
          return hit;
        },
        par, &stats);
  } catch (const exec::CancelledError& e) {
    guard.cancelled(e);
  }
  exec::record_sweep("core.coverage", stats);
  return reduce_verdicts(options, verdicts, guard.finish());
}

}  // namespace ppd::core
