#include "ppd/core/coverage.hpp"

#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/util/error.hpp"

namespace ppd::core {

namespace {

void validate(const CoverageOptions& options) {
  PPD_REQUIRE(options.samples > 0, "need at least one MC sample");
  PPD_REQUIRE(!options.resistances.empty(), "need a resistance sweep");
  PPD_REQUIRE(!options.multipliers.empty(), "need at least one multiplier");
}

CoverageResult make_result(const CoverageOptions& options) {
  CoverageResult res;
  res.resistances = options.resistances;
  res.multipliers = options.multipliers;
  res.coverage.assign(options.multipliers.size(),
                      std::vector<double>(options.resistances.size(), 0.0));
  return res;
}

exec::ParallelOptions parallel_options(const CoverageOptions& options,
                                       const char* what) {
  exec::ParallelOptions par;
  par.threads = options.threads;
  par.cancel = options.cancel;
  // Item i = (resistance r, MC sample s); name the sweep so an electrical
  // failure deep inside one sample still says which experiment it broke.
  par.context = what;
  return par;
}

/// Fold per-item detection verdicts into the coverage matrix and normalize.
/// Detections are 0/1 counts, so the sum is exact in double arithmetic and
/// the parallel result matches the historical serial accumulation bit for
/// bit; the reduction still runs in item order for good measure.
CoverageResult reduce_verdicts(const CoverageOptions& options,
                               const std::vector<std::vector<char>>& verdicts) {
  CoverageResult res = make_result(options);
  const auto samples = static_cast<std::size_t>(options.samples);
  for (std::size_t item = 0; item < verdicts.size(); ++item) {
    const std::size_t r = item / samples;
    for (std::size_t m = 0; m < options.multipliers.size(); ++m)
      if (verdicts[item][m]) res.coverage[m][r] += 1.0;
  }
  res.simulations = verdicts.size();
  for (auto& row : res.coverage)
    for (double& c : row) c /= static_cast<double>(options.samples);
  return res;
}

}  // namespace

CoverageResult run_delay_coverage(const PathFactory& factory,
                                  const DelayTestCalibration& cal,
                                  const CoverageOptions& options) {
  const obs::Span span("core.delay_coverage");
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  const auto samples = static_cast<std::size_t>(options.samples);
  const std::size_t items = options.resistances.size() * samples;
  exec::SweepStats stats;

  // One item = one electrical transient = (resistance r, MC sample s); its
  // verdict row holds the detection flag per clock multiplier.
  const auto verdicts = exec::parallel_map(
      items,
      [&](std::size_t item) {
        const std::size_t r = item / samples;
        const std::size_t s = item % samples;
        mc::Rng rng = sample_rng(options.seed, s);
        mc::GaussianVariationSource var(options.variation, rng);
        PathInstance inst =
            make_instance(factory, options.resistances[r], &var);
        const auto d = path_delay(inst.path, cal.input_rising, options.sim);
        std::vector<char> hit(options.multipliers.size(), 0);
        for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
          const double t_applied = options.multipliers[m] * cal.t_nominal;
          hit[m] = delay_detects(d, t_applied, cal.flip_flops) ? 1 : 0;
        }
        return hit;
      },
      parallel_options(options, "delay-test coverage MC sweep"), &stats);
  exec::record_sweep("core.coverage", stats);
  return reduce_verdicts(options, verdicts);
}

CoverageResult run_pulse_coverage(const PathFactory& factory,
                                  const PulseTestCalibration& cal,
                                  const CoverageOptions& options) {
  const obs::Span span("core.pulse_coverage");
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  const auto samples = static_cast<std::size_t>(options.samples);
  const std::size_t items = options.resistances.size() * samples;
  exec::SweepStats stats;

  const auto verdicts = exec::parallel_map(
      items,
      [&](std::size_t item) {
        const std::size_t r = item / samples;
        const std::size_t s = item % samples;
        mc::Rng rng = sample_rng(options.seed, s);
        mc::GaussianVariationSource var(options.variation, rng);
        PathInstance inst =
            make_instance(factory, options.resistances[r], &var);
        // This die's generator produces its own width (uncertainty (a)).
        mc::Rng gen_rng = sample_rng(options.seed ^ 0xABCDull, s);
        const double w_applied =
            cal.w_in *
            gen_rng.normal_clipped(1.0, options.generator_sigma, 4.0);
        const auto w_out =
            output_pulse_width(inst.path, cal.kind, w_applied, options.sim);
        std::vector<char> hit(options.multipliers.size(), 0);
        for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
          const double w_th_applied = options.multipliers[m] * cal.w_th;
          hit[m] = pulse_detects(w_out, w_th_applied) ? 1 : 0;
        }
        return hit;
      },
      parallel_options(options, "pulse-test coverage MC sweep"), &stats);
  exec::record_sweep("core.coverage", stats);
  return reduce_verdicts(options, verdicts);
}

}  // namespace ppd::core
