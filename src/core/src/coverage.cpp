#include "ppd/core/coverage.hpp"

#include "ppd/util/error.hpp"

namespace ppd::core {

namespace {

void validate(const CoverageOptions& options) {
  PPD_REQUIRE(options.samples > 0, "need at least one MC sample");
  PPD_REQUIRE(!options.resistances.empty(), "need a resistance sweep");
  PPD_REQUIRE(!options.multipliers.empty(), "need at least one multiplier");
}

CoverageResult make_result(const CoverageOptions& options) {
  CoverageResult res;
  res.resistances = options.resistances;
  res.multipliers = options.multipliers;
  res.coverage.assign(options.multipliers.size(),
                      std::vector<double>(options.resistances.size(), 0.0));
  return res;
}

}  // namespace

CoverageResult run_delay_coverage(const PathFactory& factory,
                                  const DelayTestCalibration& cal,
                                  const CoverageOptions& options) {
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  CoverageResult res = make_result(options);

  for (std::size_t r = 0; r < options.resistances.size(); ++r) {
    for (int s = 0; s < options.samples; ++s) {
      mc::Rng rng = sample_rng(options.seed, static_cast<std::size_t>(s));
      mc::GaussianVariationSource var(options.variation, rng);
      PathInstance inst =
          make_instance(factory, options.resistances[r], &var);
      const auto d = path_delay(inst.path, cal.input_rising, options.sim);
      ++res.simulations;
      for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
        const double t_applied = options.multipliers[m] * cal.t_nominal;
        if (delay_detects(d, t_applied, cal.flip_flops))
          res.coverage[m][r] += 1.0;
      }
    }
    for (auto& row : res.coverage)
      row[r] /= static_cast<double>(options.samples);
  }
  return res;
}

CoverageResult run_pulse_coverage(const PathFactory& factory,
                                  const PulseTestCalibration& cal,
                                  const CoverageOptions& options) {
  validate(options);
  PPD_REQUIRE(factory.fault.has_value(), "coverage needs a fault site");
  CoverageResult res = make_result(options);

  for (std::size_t r = 0; r < options.resistances.size(); ++r) {
    for (int s = 0; s < options.samples; ++s) {
      mc::Rng rng = sample_rng(options.seed, static_cast<std::size_t>(s));
      mc::GaussianVariationSource var(options.variation, rng);
      PathInstance inst =
          make_instance(factory, options.resistances[r], &var);
      // This die's generator produces its own width (uncertainty (a)).
      mc::Rng gen_rng = sample_rng(options.seed ^ 0xABCDull,
                                   static_cast<std::size_t>(s));
      const double w_applied =
          cal.w_in * gen_rng.normal_clipped(1.0, options.generator_sigma, 4.0);
      const auto w_out =
          output_pulse_width(inst.path, cal.kind, w_applied, options.sim);
      ++res.simulations;
      for (std::size_t m = 0; m < options.multipliers.size(); ++m) {
        const double w_th_applied = options.multipliers[m] * cal.w_th;
        if (pulse_detects(w_out, w_th_applied)) res.coverage[m][r] += 1.0;
      }
    }
    for (auto& row : res.coverage)
      row[r] /= static_cast<double>(options.samples);
  }
  return res;
}

}  // namespace ppd::core
