// Deterministic, seedable random number generation (xoshiro256++ with a
// splitmix64 seeder). Self-implemented so Monte-Carlo populations are
// bit-reproducible across standard libraries and platforms.
#pragma once

#include <cstdint>

namespace ppd::mc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Normal truncated to +/- `clip` sigmas (keeps multiplicative parameter
  /// perturbations physical, e.g. widths strictly positive).
  double normal_clipped(double mean, double sigma, double clip = 4.0);

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Derive an independent stream (for per-sample sub-generators).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

/// Deterministic per-item stream derivation for parallel Monte-Carlo: item
/// `index` of a sweep seeded with `seed` always gets the same generator, no
/// matter which thread (or how many) executes it. The (seed, index) pair is
/// mixed into a distinct splitmix64 seeding of the xoshiro state, so
/// neighbouring indices share no correlation.
///
/// This is THE seeding contract of ppd::exec-parallelized sweeps: results
/// are bit-identical to the serial loop at any thread count.
[[nodiscard]] Rng derive_rng(std::uint64_t seed, std::uint64_t index);

}  // namespace ppd::mc
