// Monte-Carlo implementation of the cell library's VariationSource:
// independent Gaussian multiplicative perturbations per transistor /
// capacitor, reproducing the paper's "sample S of circuit instances
// generated according to a normal distribution of main circuit parameters".
#pragma once

#include <vector>

#include "ppd/cells/variation.hpp"
#include "ppd/mc/rng.hpp"

namespace ppd::mc {

/// Relative standard deviations (fraction of nominal). The paper's OCR lost
/// the exact figure; 5% is the documented default (see DESIGN.md) and every
/// experiment exposes it as a knob.
struct VariationModel {
  double sigma_vt = 0.05;
  double sigma_kp = 0.05;
  double sigma_w = 0.05;
  double sigma_cap = 0.05;
  double clip_sigmas = 4.0;  ///< truncation to keep multipliers positive

  /// Uniform helper: set all four sigmas at once.
  static VariationModel uniform_sigma(double sigma) {
    VariationModel m;
    m.sigma_vt = m.sigma_kp = m.sigma_w = m.sigma_cap = sigma;
    return m;
  }
};

class GaussianVariationSource final : public cells::VariationSource {
 public:
  GaussianVariationSource(const VariationModel& model, Rng rng)
      : model_(model), rng_(rng) {}

  cells::TransistorVariation transistor() override;
  double cap_mult() override;

 private:
  VariationModel model_;
  Rng rng_;
};

/// Basic sample statistics used by the calibration procedures.
struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Stats compute_stats(const std::vector<double>& values);

/// Empirical quantile (linear interpolation, q in [0, 1]).
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace ppd::mc
