#include "ppd/mc/variation.hpp"

#include <algorithm>
#include <cmath>

#include "ppd/util/error.hpp"

namespace ppd::mc {

cells::TransistorVariation GaussianVariationSource::transistor() {
  cells::TransistorVariation v;
  v.vt_mult = rng_.normal_clipped(1.0, model_.sigma_vt, model_.clip_sigmas);
  v.kp_mult = rng_.normal_clipped(1.0, model_.sigma_kp, model_.clip_sigmas);
  v.w_mult = rng_.normal_clipped(1.0, model_.sigma_w, model_.clip_sigmas);
  return v;
}

double GaussianVariationSource::cap_mult() {
  return rng_.normal_clipped(1.0, model_.sigma_cap, model_.clip_sigmas);
}

Stats compute_stats(const std::vector<double>& values) {
  Stats s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double quantile(std::vector<double> values, double q) {
  PPD_REQUIRE(!values.empty(), "quantile of empty sample");
  PPD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double f = pos - static_cast<double>(lo);
  return values[lo] + f * (values[hi] - values[lo]);
}

}  // namespace ppd::mc
