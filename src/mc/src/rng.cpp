#include "ppd/mc/rng.hpp"

#include <cmath>
#include <numbers>

#include "ppd/util/error.hpp"

namespace ppd::mc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PPD_REQUIRE(hi > lo, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box-Muller; u1 strictly positive.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::normal_clipped(double mean, double sigma, double clip) {
  PPD_REQUIRE(clip > 0.0, "clip must be positive");
  double z = normal();
  if (z > clip) z = clip;
  if (z < -clip) z = -clip;
  return mean + sigma * z;
}

std::uint64_t Rng::below(std::uint64_t n) {
  PPD_REQUIRE(n > 0, "below(0) is empty");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = 0;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

Rng Rng::split() { return Rng(next_u64()); }

Rng derive_rng(std::uint64_t seed, std::uint64_t index) {
  // Golden-ratio spacing keeps distinct (seed, index) pairs on distinct
  // splitmix64 trajectories; the Rng constructor then runs the full
  // splitmix64 mix over the combined value. Matches the historical
  // core::sample_rng formula so pinned experiment outputs are unchanged.
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
}

}  // namespace ppd::mc
