// Sampled voltage waveform and the timing measurements the paper's
// evaluation is built on: 50%-VDD propagation delay, pulse width measured at
// a voltage threshold, slew, and peak excursion.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ppd::wave {

/// A uniformly- or non-uniformly-sampled scalar signal v(t).
/// Time is strictly increasing; linear interpolation between samples.
class Waveform {
 public:
  Waveform() = default;
  Waveform(std::vector<double> time, std::vector<double> value);

  void append(double t, double v);
  void clear();

  [[nodiscard]] std::size_t size() const { return time_.size(); }
  [[nodiscard]] bool empty() const { return time_.empty(); }
  [[nodiscard]] double time(std::size_t i) const { return time_[i]; }
  [[nodiscard]] double value(std::size_t i) const { return value_[i]; }
  [[nodiscard]] const std::vector<double>& times() const { return time_; }
  [[nodiscard]] const std::vector<double>& values() const { return value_; }

  [[nodiscard]] double t_begin() const;
  [[nodiscard]] double t_end() const;

  /// Linear interpolation; clamps outside the sampled range.
  [[nodiscard]] double at(double t) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::vector<double> time_;
  std::vector<double> value_;
};

/// Direction of a threshold crossing.
enum class Edge { kRise, kFall };

/// Time of the first crossing of `level` with direction `edge` at or after
/// `t_from`. Uses linear interpolation between samples.
[[nodiscard]] std::optional<double> first_crossing(const Waveform& w, double level,
                                                   Edge edge, double t_from = 0.0);

/// All crossings of `level` (both directions), each tagged with its edge.
struct Crossing {
  double t;
  Edge edge;
};
[[nodiscard]] std::vector<Crossing> crossings(const Waveform& w, double level);

/// 50%-to-50% propagation delay between an input and an output waveform:
/// time from the input's crossing of `level` (direction `in_edge`) to the
/// output's next crossing of `level` in direction `out_edge`.
[[nodiscard]] std::optional<double> propagation_delay(const Waveform& in,
                                                      const Waveform& out,
                                                      double level, Edge in_edge,
                                                      Edge out_edge,
                                                      double t_from = 0.0);

/// Width of the first complete pulse in `w` measured at `level`:
/// for a positive pulse (rest low) the rise->fall interval, for a negative
/// pulse (rest high) the fall->rise interval. Returns nullopt when the signal
/// never produces both edges, i.e. the pulse was fully dampened.
[[nodiscard]] std::optional<double> pulse_width(const Waveform& w, double level,
                                                bool positive_pulse,
                                                double t_from = 0.0);

/// Maximum excursion from the waveform's initial value (a dampened pulse has
/// a small excursion; a propagated one swings ~VDD).
[[nodiscard]] double peak_excursion(const Waveform& w);

/// 10%-90% transition time of the first edge after `t_from` in the given
/// direction, thresholds computed against `v_low`/`v_high` rails.
[[nodiscard]] std::optional<double> slew_time(const Waveform& w, Edge edge,
                                              double v_low, double v_high,
                                              double t_from = 0.0);

/// True when the signal keeps toggling through `level` after `t_from`
/// (at least `min_crossings` crossings) — the oscillation symptom of
/// low-resistance bridges closing inverting feedback loops.
[[nodiscard]] bool is_oscillating(const Waveform& w, double level, double t_from,
                                  std::size_t min_crossings = 6);

/// Write a set of named waveforms as CSV (shared, merged time axis).
void write_csv(std::ostream& os, const std::vector<std::string>& names,
               const std::vector<const Waveform*>& waves);

/// Render a waveform as a small ASCII strip chart (for bench/example output,
/// mirroring the paper's stacked waveform figures).
[[nodiscard]] std::string ascii_plot(const Waveform& w, double v_min, double v_max,
                                     std::size_t width = 72, std::size_t height = 8);

}  // namespace ppd::wave
