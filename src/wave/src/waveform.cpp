#include "ppd/wave/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>

#include "ppd/util/error.hpp"

namespace ppd::wave {

Waveform::Waveform(std::vector<double> time, std::vector<double> value)
    : time_(std::move(time)), value_(std::move(value)) {
  PPD_REQUIRE(time_.size() == value_.size(), "time/value size mismatch");
  for (std::size_t i = 1; i < time_.size(); ++i)
    PPD_REQUIRE(time_[i] > time_[i - 1], "time axis must be strictly increasing");
}

void Waveform::append(double t, double v) {
  PPD_REQUIRE(time_.empty() || t > time_.back(),
              "time axis must be strictly increasing");
  time_.push_back(t);
  value_.push_back(v);
}

void Waveform::clear() {
  time_.clear();
  value_.clear();
}

double Waveform::t_begin() const {
  PPD_REQUIRE(!empty(), "empty waveform");
  return time_.front();
}

double Waveform::t_end() const {
  PPD_REQUIRE(!empty(), "empty waveform");
  return time_.back();
}

double Waveform::at(double t) const {
  PPD_REQUIRE(!empty(), "empty waveform");
  if (t <= time_.front()) return value_.front();
  if (t >= time_.back()) return value_.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - time_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - time_[lo]) / (time_[hi] - time_[lo]);
  return value_[lo] + f * (value_[hi] - value_[lo]);
}

double Waveform::min_value() const {
  PPD_REQUIRE(!empty(), "empty waveform");
  return *std::min_element(value_.begin(), value_.end());
}

double Waveform::max_value() const {
  PPD_REQUIRE(!empty(), "empty waveform");
  return *std::max_element(value_.begin(), value_.end());
}

namespace {

/// Interpolated crossing time between samples i-1 and i.
double interp_crossing(const Waveform& w, std::size_t i, double level) {
  const double t0 = w.time(i - 1), t1 = w.time(i);
  const double v0 = w.value(i - 1), v1 = w.value(i);
  if (v1 == v0) return t0;
  return t0 + (level - v0) / (v1 - v0) * (t1 - t0);
}

}  // namespace

std::optional<double> first_crossing(const Waveform& w, double level, Edge edge,
                                     double t_from) {
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w.time(i) < t_from) continue;
    const double v0 = w.value(i - 1), v1 = w.value(i);
    const bool rise = v0 < level && v1 >= level;
    const bool fall = v0 > level && v1 <= level;
    if ((edge == Edge::kRise && rise) || (edge == Edge::kFall && fall)) {
      const double t = interp_crossing(w, i, level);
      if (t >= t_from) return t;
    }
  }
  return std::nullopt;
}

std::vector<Crossing> crossings(const Waveform& w, double level) {
  std::vector<Crossing> out;
  for (std::size_t i = 1; i < w.size(); ++i) {
    const double v0 = w.value(i - 1), v1 = w.value(i);
    if (v0 < level && v1 >= level)
      out.push_back({interp_crossing(w, i, level), Edge::kRise});
    else if (v0 > level && v1 <= level)
      out.push_back({interp_crossing(w, i, level), Edge::kFall});
  }
  return out;
}

std::optional<double> propagation_delay(const Waveform& in, const Waveform& out,
                                        double level, Edge in_edge, Edge out_edge,
                                        double t_from) {
  const auto t_in = first_crossing(in, level, in_edge, t_from);
  if (!t_in) return std::nullopt;
  const auto t_out = first_crossing(out, level, out_edge, *t_in);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

std::optional<double> pulse_width(const Waveform& w, double level,
                                  bool positive_pulse, double t_from) {
  const Edge lead = positive_pulse ? Edge::kRise : Edge::kFall;
  const Edge trail = positive_pulse ? Edge::kFall : Edge::kRise;
  const auto t_lead = first_crossing(w, level, lead, t_from);
  if (!t_lead) return std::nullopt;
  const auto t_trail = first_crossing(w, level, trail, *t_lead);
  if (!t_trail) return std::nullopt;
  return *t_trail - *t_lead;
}

double peak_excursion(const Waveform& w) {
  PPD_REQUIRE(!w.empty(), "empty waveform");
  const double v0 = w.value(0);
  double peak = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i)
    peak = std::max(peak, std::abs(w.value(i) - v0));
  return peak;
}

std::optional<double> slew_time(const Waveform& w, Edge edge, double v_low,
                                double v_high, double t_from) {
  const double lo = v_low + 0.1 * (v_high - v_low);
  const double hi = v_low + 0.9 * (v_high - v_low);
  if (edge == Edge::kRise) {
    const auto t0 = first_crossing(w, lo, Edge::kRise, t_from);
    if (!t0) return std::nullopt;
    const auto t1 = first_crossing(w, hi, Edge::kRise, *t0);
    if (!t1) return std::nullopt;
    return *t1 - *t0;
  }
  const auto t0 = first_crossing(w, hi, Edge::kFall, t_from);
  if (!t0) return std::nullopt;
  const auto t1 = first_crossing(w, lo, Edge::kFall, *t0);
  if (!t1) return std::nullopt;
  return *t1 - *t0;
}

bool is_oscillating(const Waveform& w, double level, double t_from,
                    std::size_t min_crossings) {
  std::size_t late = 0;
  for (const Crossing& x : crossings(w, level))
    if (x.t >= t_from) ++late;
  return late >= min_crossings;
}

void write_csv(std::ostream& os, const std::vector<std::string>& names,
               const std::vector<const Waveform*>& waves) {
  PPD_REQUIRE(names.size() == waves.size(), "names/waves size mismatch");
  std::set<double> grid;
  for (const Waveform* w : waves) {
    PPD_REQUIRE(w != nullptr && !w->empty(), "null or empty waveform");
    grid.insert(w->times().begin(), w->times().end());
  }
  os << "t";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  for (double t : grid) {
    os << t;
    for (const Waveform* w : waves) os << ',' << w->at(t);
    os << '\n';
  }
}

std::string ascii_plot(const Waveform& w, double v_min, double v_max,
                       std::size_t width, std::size_t height) {
  PPD_REQUIRE(!w.empty(), "empty waveform");
  PPD_REQUIRE(v_max > v_min, "v_max must exceed v_min");
  PPD_REQUIRE(width >= 2 && height >= 2, "plot too small");
  std::vector<std::string> rows(height, std::string(width, ' '));
  const double t0 = w.t_begin();
  const double t1 = w.t_end();
  const double dt = (t1 - t0) / static_cast<double>(width - 1);
  for (std::size_t c = 0; c < width; ++c) {
    const double v = w.at(t0 + dt * static_cast<double>(c));
    double f = (v - v_min) / (v_max - v_min);
    f = std::clamp(f, 0.0, 1.0);
    const std::size_t r =
        height - 1 - static_cast<std::size_t>(std::lround(f * (height - 1)));
    rows[r][c] = '*';
  }
  std::string out;
  for (const auto& row : rows) {
    out += '|';
    out += row;
    out += '\n';
  }
  out += '+';
  out += std::string(width, '-');
  out += '\n';
  return out;
}

}  // namespace ppd::wave
