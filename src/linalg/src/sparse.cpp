#include "ppd/linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ppd/util/error.hpp"

namespace ppd::linalg {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseBuilder::add(std::size_t row, std::size_t col, double value) {
  PPD_REQUIRE(row < rows_ && col < cols_, "sparse entry out of range");
  row_.push_back(row);
  col_.push_back(col);
  val_.push_back(value);
}

SparseMatrix::SparseMatrix(const SparseBuilder& b)
    : rows_(b.rows_), cols_(b.cols_) {
  // Count entries per column, then bucket, then sort+compress each column
  // summing duplicates.
  std::vector<std::size_t> count(cols_ + 1, 0);
  for (std::size_t c : b.col_) ++count[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) count[c + 1] += count[c];

  std::vector<std::size_t> rows(b.entries());
  std::vector<double> vals(b.entries());
  std::vector<std::size_t> cursor(count.begin(), count.end() - 1);
  for (std::size_t k = 0; k < b.entries(); ++k) {
    const std::size_t pos = cursor[b.col_[k]]++;
    rows[pos] = b.row_[k];
    vals[pos] = b.val_[k];
  }

  ptr_.assign(cols_ + 1, 0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t lo = count[c];
    const std::size_t hi = count[c + 1];
    // Sort this column's slice by row index.
    std::vector<std::size_t> order(hi - lo);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = lo + i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b2) { return rows[a] < rows[b2]; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::size_t src = order[i];
      if (!idx_.empty() && ptr_[c] < idx_.size() && idx_.back() == rows[src] &&
          idx_.size() > ptr_[c]) {
        val_.back() += vals[src];
      } else {
        idx_.push_back(rows[src]);
        val_.push_back(vals[src]);
      }
    }
    ptr_[c + 1] = idx_.size();
  }
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  PPD_REQUIRE(x.size() == cols_, "dimension mismatch in multiply");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (std::size_t k = ptr_[c]; k < ptr_[c + 1]; ++k) y[idx_[k]] += val_[k] * xc;
  }
  return y;
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  PPD_REQUIRE(row < rows_ && col < cols_, "sparse index out of range");
  const auto first = idx_.begin() + static_cast<std::ptrdiff_t>(ptr_[col]);
  const auto last = idx_.begin() + static_cast<std::ptrdiff_t>(ptr_[col + 1]);
  const auto it = std::lower_bound(first, last, row);
  if (it == last || *it != row) return 0.0;
  return val_[static_cast<std::size_t>(it - idx_.begin())];
}

SparseLu::SparseLu(const SparseMatrix& a, double pivot_tol) {
  factor(a, pivot_tol);
}

void SparseLu::factor(const SparseMatrix& a, double pivot_tol) {
  PPD_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  n_ = a.rows();
  a_nnz_ = a.nonzeros();
  pinv_.assign(n_, kNone);

  l_ptr_.assign(n_ + 1, 0);
  u_ptr_.assign(n_ + 1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_idx_.clear();
  u_val_.clear();
  pat_ptr_.assign(n_ + 1, 0);
  pat_rows_.clear();

  // Workspaces for the per-column sparse triangular solve.
  std::vector<double>& x = x_work_;
  x.assign(n_, 0.0);
  std::vector<char> mark(n_, 0);
  std::vector<std::size_t> pattern;        // nonzero rows of x (original indices)
  std::vector<std::size_t> dfs_stack, dfs_pos;

  const auto& ap = a.col_ptr();
  const auto& ai = a.row_idx();
  const auto& av = a.values();

  for (std::size_t j = 0; j < n_; ++j) {
    // --- Symbolic step: pattern of x = L \ A(:, j) via DFS over L. ---
    // Edges run from a pivotal row r to the rows its L column updates, so a
    // post-order DFS appends r after everything it feeds; traversing the
    // resulting `pattern` back-to-front gives a valid update order.
    pattern.clear();
    for (std::size_t k = ap[j]; k < ap[j + 1]; ++k) {
      const std::size_t row = ai[k];
      if (mark[row]) continue;
      dfs_stack.assign(1, row);
      dfs_pos.assign(1, 0);
      mark[row] = 1;
      while (!dfs_stack.empty()) {
        const std::size_t r = dfs_stack.back();
        const std::size_t piv = pinv_[r];
        const std::size_t degree = piv == kNone ? 0 : l_ptr_[piv + 1] - l_ptr_[piv];
        if (dfs_pos.back() < degree) {
          const std::size_t child = l_idx_[l_ptr_[piv] + dfs_pos.back()];
          ++dfs_pos.back();
          if (!mark[child]) {
            mark[child] = 1;
            dfs_stack.push_back(child);
            dfs_pos.push_back(0);
          }
        } else {
          pattern.push_back(r);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    }

    // --- Numeric step: sparse solve. ---
    for (std::size_t r : pattern) x[r] = 0.0;
    for (std::size_t k = ap[j]; k < ap[j + 1]; ++k) x[ai[k]] = av[k];

    for (std::size_t t = pattern.size(); t-- > 0;) {
      const std::size_t r = pattern[t];
      const std::size_t piv = pinv_[r];
      if (piv == kNone) continue;  // not yet pivotal; below the diagonal
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t k = l_ptr_[piv]; k < l_ptr_[piv + 1]; ++k)
        x[l_idx_[k]] -= l_val_[k] * xr;
    }

    // --- Pivot selection among rows that are not yet pivotal. ---
    std::size_t best = kNone;
    double best_mag = 0.0;
    for (std::size_t r : pattern) {
      if (pinv_[r] != kNone) continue;
      const double mag = std::abs(x[r]);
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    if (best == kNone || !(best_mag > pivot_tol)) {
      throw NumericalError("SparseLu: matrix is numerically singular at column " +
                           std::to_string(j));
    }
    const double pivot = x[best];
    pinv_[best] = j;

    // --- Scatter into U (rows already pivotal) and L (rest / pivot). ---
    // U column j: entries at pivot positions < j, plus the pivot itself.
    for (std::size_t r : pattern) {
      if (pinv_[r] != kNone && pinv_[r] < j && x[r] != 0.0) {
        u_idx_.push_back(pinv_[r]);
        u_val_.push_back(x[r]);
      }
    }
    u_idx_.push_back(j);
    u_val_.push_back(pivot);
    u_ptr_[j + 1] = u_idx_.size();

    for (std::size_t r : pattern) {
      if (pinv_[r] == kNone && x[r] != 0.0) {
        l_idx_.push_back(r);  // original row index; remapped on solve
        l_val_.push_back(x[r] / pivot);
      }
      mark[r] = 0;
      x[r] = 0.0;
    }
    l_ptr_[j + 1] = l_idx_.size();

    // Freeze this column's traversal order for refactor().
    pat_rows_.insert(pat_rows_.end(), pattern.begin(), pattern.end());
    pat_ptr_[j + 1] = pat_rows_.size();
  }
}

bool SparseLu::refactor(const SparseMatrix& a, double pivot_tol) {
  // Precondition: same sparsity pattern as the matrix passed to factor().
  // (Cheap guards only; the per-column walk below catches every numeric
  // divergence from the frozen structure and bails to a full factor.)
  if (n_ == 0 || a.rows() != n_ || a.cols() != n_ || a.nonzeros() != a_nnz_)
    return false;

  const auto& ap = a.col_ptr();
  const auto& ai = a.row_idx();
  const auto& av = a.values();
  std::vector<double>& x = x_work_;  // zeroed outside the pattern (invariant)

  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t pat_lo = pat_ptr_[j];
    const std::size_t pat_hi = pat_ptr_[j + 1];

    // Scatter A(:, j); its rows are a subset of the frozen pattern.
    for (std::size_t t = pat_lo; t < pat_hi; ++t) x[pat_rows_[t]] = 0.0;
    for (std::size_t k = ap[j]; k < ap[j + 1]; ++k) x[ai[k]] = av[k];

    // Numeric update in the exact traversal order factor() used. Rows with
    // pivot position >= j were "not yet pivotal" when this column was first
    // factored.
    for (std::size_t t = pat_hi; t-- > pat_lo;) {
      const std::size_t r = pat_rows_[t];
      const std::size_t piv = pinv_[r];
      if (piv >= j) continue;
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t k = l_ptr_[piv]; k < l_ptr_[piv + 1]; ++k)
        x[l_idx_[k]] -= l_val_[k] * xr;
    }

    // Verify the frozen pivot is still the partial-pivoting choice (same
    // scan order and strict-greater tie-break as factor()).
    std::size_t best = kNone;
    double best_mag = 0.0;
    for (std::size_t t = pat_lo; t < pat_hi; ++t) {
      const std::size_t r = pat_rows_[t];
      if (pinv_[r] < j) continue;
      const double mag = std::abs(x[r]);
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    bool ok = best != kNone && pinv_[best] == j && best_mag > pivot_tol;

    // Rewrite U then L values in place, verifying the frozen value-pattern
    // (entries that were dropped as exact zeros must stay zero and vice
    // versa — else structure changed and results would not match a from-
    // scratch factorization).
    std::size_t uk = u_ptr_[j];
    std::size_t lk = l_ptr_[j];
    const double pivot = ok ? x[best] : 1.0;
    if (ok) {
      for (std::size_t t = pat_lo; t < pat_hi && ok; ++t) {
        const std::size_t r = pat_rows_[t];
        if (pinv_[r] < j) {
          if (x[r] != 0.0) {
            if (uk + 1 >= u_ptr_[j + 1] || u_idx_[uk] != pinv_[r]) ok = false;
            else u_val_[uk++] = x[r];
          }
        } else if (r != best) {
          if (x[r] != 0.0) {
            if (lk >= l_ptr_[j + 1] || l_idx_[lk] != r) ok = false;
            else l_val_[lk++] = x[r] / pivot;
          }
        }
      }
      // The diagonal is stored last in each U column; every frozen slot must
      // have been refilled.
      ok = ok && uk == u_ptr_[j + 1] - 1 && lk == l_ptr_[j + 1];
      if (ok) u_val_[uk] = pivot;
    }

    // Restore the x == 0 invariant before returning or moving on.
    for (std::size_t t = pat_lo; t < pat_hi; ++t) x[pat_rows_[t]] = 0.0;
    if (!ok) return false;
  }
  return true;
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  std::vector<double> y;
  solve_into(b, y);
  return y;
}

void SparseLu::solve_into(const std::vector<double>& b,
                          std::vector<double>& y) const {
  PPD_REQUIRE(b.size() == n_, "dimension mismatch in solve");
  PPD_REQUIRE(&b != &y, "b and x must be distinct");
  // Permute b into pivot order: y[pinv_[r]] = b[r].
  y.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) y[pinv_[r]] = b[r];

  // Forward solve with unit-lower L (columns indexed by pivot position,
  // row entries stored as original rows -> map through pinv_).
  for (std::size_t j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t k = l_ptr_[j]; k < l_ptr_[j + 1]; ++k)
      y[pinv_[l_idx_[k]]] -= l_val_[k] * yj;
  }

  // Backward solve with U (diagonal stored last in each column).
  for (std::size_t j = n_; j-- > 0;) {
    const std::size_t last = u_ptr_[j + 1] - 1;  // diagonal entry
    y[j] /= u_val_[last];
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t k = u_ptr_[j]; k < last; ++k) y[u_idx_[k]] -= u_val_[k] * yj;
  }
}

}  // namespace ppd::linalg
