#include "ppd/linalg/dense.hpp"

#include <cmath>
#include <numeric>

#include "ppd/util/error.hpp"

namespace ppd::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  PPD_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[c * rows_ + r];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  PPD_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[c * rows_ + r];
}

void DenseMatrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  PPD_REQUIRE(x.size() == cols_, "dimension mismatch in multiply");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    const double* col = data_.data() + c * rows_;
    for (std::size_t r = 0; r < rows_; ++r) y[r] += col[r] * xc;
  }
  return y;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseLu::DenseLu(const DenseMatrix& a, double pivot_tol) : lu_(a) {
  PPD_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  const std::size_t n = a.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double piv_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > piv_mag) {
        piv = r;
        piv_mag = mag;
      }
    }
    if (!(piv_mag > pivot_tol))
      throw NumericalError("DenseLu: matrix is numerically singular at column " +
                           std::to_string(k));
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) * inv_piv;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

std::vector<double> DenseLu::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  PPD_REQUIRE(b.size() == n, "dimension mismatch in solve");
  std::vector<double> x(n);
  // Forward substitution on Pb with unit-lower L.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
  return x;
}

double DenseLu::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

void DenseLuWorkspace::factor(DenseMatrix& a, double pivot_tol) {
  PPD_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  const std::size_t n = a.rows();
  lu_ = &a;
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  double* d = a.data();  // column-major: (r, c) at d[c * n + r]

  // Same pivot choices and per-entry arithmetic as DenseLu; only the update
  // traversal runs column-major (each entry still receives the identical
  // single fused update per elimination step, so results match bitwise).
  for (std::size_t k = 0; k < n; ++k) {
    double* colk = d + k * n;
    std::size_t piv = k;
    double piv_mag = std::abs(colk[k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(colk[r]);
      if (mag > piv_mag) {
        piv = r;
        piv_mag = mag;
      }
    }
    if (!(piv_mag > pivot_tol))
      throw NumericalError("DenseLu: matrix is numerically singular at column " +
                           std::to_string(k));
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(d[c * n + k], d[c * n + piv]);
      std::swap(perm_[k], perm_[piv]);
    }
    const double inv_piv = 1.0 / colk[k];
    for (std::size_t r = k + 1; r < n; ++r) colk[r] *= inv_piv;
    for (std::size_t c = k + 1; c < n; ++c) {
      double* colc = d + c * n;
      const double pk = colc[k];
      if (pk == 0.0) continue;
      for (std::size_t r = k + 1; r < n; ++r) {
        const double m = colk[r];
        if (m != 0.0) colc[r] -= m * pk;
      }
    }
  }
}

void DenseLuWorkspace::solve_into(const std::vector<double>& b,
                                  std::vector<double>& x) const {
  PPD_REQUIRE(lu_ != nullptr, "solve_into before factor");
  PPD_REQUIRE(&b != &x, "b and x must be distinct");
  const std::size_t n = lu_->rows();
  PPD_REQUIRE(b.size() == n, "dimension mismatch in solve");
  x.resize(n);
  const double* d = lu_->data();
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= d[j * n + i] * x[j];
    x[i] = s;
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= d[j * n + i] * x[j];
    x[i] = s / d[i * n + i];
  }
}

double norm_inf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace ppd::linalg
