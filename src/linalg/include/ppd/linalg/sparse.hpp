// Compressed-sparse-column matrix and a left-looking (Gilbert-Peierls) LU
// factorization with partial pivoting.
//
// Circuit matrices from MNA are extremely sparse (a handful of entries per
// row); this solver keeps the factorization cost proportional to the number
// of nonzeros in the factors rather than n^3. It is validated against the
// dense solver in the test suite and is used by the transient engine when a
// circuit exceeds the dense-size threshold.
#pragma once

#include <cstddef>
#include <vector>

namespace ppd::linalg {

/// Triplet-form builder; duplicate (row, col) entries are summed, matching
/// the semantics MNA stamping needs.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t entries() const { return row_.size(); }

  friend class SparseMatrix;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_;
  std::vector<std::size_t> col_;
  std::vector<double> val_;
};

/// Immutable CSC matrix.
class SparseMatrix {
 public:
  explicit SparseMatrix(const SparseBuilder& b);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const { return idx_.size(); }

  /// y = A * x.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  /// Entry lookup (O(log nnz in column)); absent entries read as 0.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  // CSC internals, exposed for the factorization.
  [[nodiscard]] const std::vector<std::size_t>& col_ptr() const { return ptr_; }
  [[nodiscard]] const std::vector<std::size_t>& row_idx() const { return idx_; }
  [[nodiscard]] const std::vector<double>& values() const { return val_; }

  /// Mutable value access for structure-frozen reassembly: callers that
  /// keep the sparsity pattern fixed (ppd::spice frozen MNA) rewrite the
  /// numeric values in place instead of rebuilding the matrix.
  [[nodiscard]] std::vector<double>& mutable_values() { return val_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> ptr_;  // size cols + 1
  std::vector<std::size_t> idx_;  // row indices, sorted within a column
  std::vector<double> val_;
};

/// Sparse LU, left-looking with partial pivoting.
/// Throws NumericalError when the matrix is numerically singular.
///
/// Factor-once/solve-many: factor() records the per-column update pattern and
/// pivot order alongside the factors, so a later matrix with the SAME
/// sparsity pattern can be refactorized numerically in place with
/// refactor() — no symbolic DFS, no allocation. refactor() verifies at every
/// column that the frozen pivot is still the one partial pivoting would
/// choose and that no factor entry appeared or vanished; on any mismatch it
/// returns false (the caller falls back to factor()), which makes a
/// successful refactor bit-identical to a from-scratch factorization.
class SparseLu {
 public:
  SparseLu() = default;
  explicit SparseLu(const SparseMatrix& a, double pivot_tol = 1e-13);

  /// Full (symbolic + numeric) factorization; reuses internal buffers.
  void factor(const SparseMatrix& a, double pivot_tol = 1e-13);

  /// Numeric-only refactorization of a matrix with the same sparsity pattern
  /// as the last factor() call. Returns false when the frozen structure or
  /// pivot order no longer matches (caller should factor() from scratch).
  [[nodiscard]] bool refactor(const SparseMatrix& a, double pivot_tol = 1e-13);

  [[nodiscard]] bool factored() const { return n_ > 0; }

  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;
  /// solve() into a caller-owned vector (resized; must not alias `b`).
  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

  [[nodiscard]] std::size_t order() const { return n_; }
  [[nodiscard]] std::size_t factor_nonzeros() const {
    return l_idx_.size() + u_idx_.size();
  }

 private:
  std::size_t n_ = 0;
  // L: unit diagonal not stored; U: diagonal stored last in each column.
  std::vector<std::size_t> l_ptr_, l_idx_;
  std::vector<double> l_val_;
  std::vector<std::size_t> u_ptr_, u_idx_;
  std::vector<double> u_val_;
  std::vector<std::size_t> pinv_;  // original row -> pivot position
  // Frozen structure for refactor(): per-column x-pattern in the traversal
  // order factor() used (updates run over it back-to-front), plus the
  // matrix nonzero count it was recorded against.
  std::vector<std::size_t> pat_ptr_, pat_rows_;
  std::size_t a_nnz_ = 0;
  std::vector<double> x_work_;  // refactor scratch (original-row indexed)
};

}  // namespace ppd::linalg
