// Dense column-major matrix with LU factorization (partial pivoting).
//
// MNA systems for the circuits in this project are small (tens of nodes), so
// a dense factorization is the default solver; the sparse path
// (ppd/linalg/sparse.hpp) exists for larger netlists and is validated against
// this one in the test suite.
#pragma once

#include <cstddef>
#include <vector>

namespace ppd::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  /// Reset every entry to zero without reallocating.
  void set_zero();

  /// Raw column-major storage (entry (r, c) lives at data()[c * rows() + r]).
  /// Exposed for the in-place factorization workspace, which needs
  /// unchecked access in its inner loops.
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// y = A * x  (dimensions must match).
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  [[nodiscard]] static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;  // column-major
};

/// LU factorization with partial (row) pivoting of a square matrix.
/// Throws NumericalError when the matrix is numerically singular.
class DenseLu {
 public:
  /// Factorize a copy of `a`.
  explicit DenseLu(const DenseMatrix& a, double pivot_tol = 1e-13);

  /// Solve A x = b for one right-hand side.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of the factorized matrix (sign included).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t order() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is perm_[i] of A
  int perm_sign_ = 1;
};

/// Reusable in-place LU workspace: factorizes a caller-owned matrix without
/// copying it and solves into a caller-owned vector, so a Newton loop that
/// re-assembles the same matrix every iteration allocates nothing. The
/// pivoting and elimination perform the exact operation sequence of DenseLu,
/// so solve results are bit-identical to the allocating path.
class DenseLuWorkspace {
 public:
  /// Factorize `a` IN PLACE (`a` is overwritten with its LU factors and must
  /// stay alive until the next factor() call). Throws NumericalError when
  /// the matrix is numerically singular.
  void factor(DenseMatrix& a, double pivot_tol = 1e-13);

  /// x = A^-1 b using the last factorization. `x` is resized; `b` and `x`
  /// must be distinct vectors.
  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

 private:
  DenseMatrix* lu_ = nullptr;      // last factored matrix (not owned)
  std::vector<std::size_t> perm_;  // row permutation, as in DenseLu
};

/// Vector helpers shared by the solvers and the Newton loop.
[[nodiscard]] double norm_inf(const std::vector<double>& v);
[[nodiscard]] double norm2(const std::vector<double>& v);

}  // namespace ppd::linalg
