#include "ppd/logic/diagnosis.hpp"

#include <algorithm>
#include <set>

#include "ppd/util/error.hpp"

namespace ppd::logic {

FaultDictionary::FaultDictionary(const FaultSimulator& sim,
                                 std::vector<LogicFault> faults,
                                 const std::vector<PulseTest>& tests)
    : faults_(std::move(faults)), tests_(tests.size()) {
  PPD_REQUIRE(!tests.empty(), "dictionary needs at least one test");
  syndromes_.reserve(faults_.size());
  for (const LogicFault& f : faults_) {
    std::vector<char> s(tests_, 0);
    for (std::size_t t = 0; t < tests_; ++t)
      s[t] = sim.detects(tests[t], f) ? 1 : 0;
    syndromes_.push_back(std::move(s));
  }
}

const LogicFault& FaultDictionary::fault(std::size_t i) const {
  PPD_REQUIRE(i < faults_.size(), "fault index out of range");
  return faults_[i];
}

const std::vector<char>& FaultDictionary::syndrome(std::size_t i) const {
  PPD_REQUIRE(i < syndromes_.size(), "fault index out of range");
  return syndromes_[i];
}

std::vector<std::size_t> FaultDictionary::exact_matches(
    const std::vector<char>& observed) const {
  PPD_REQUIRE(observed.size() == tests_, "syndrome arity mismatch");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < syndromes_.size(); ++i)
    if (syndromes_[i] == observed) out.push_back(i);
  return out;
}

std::vector<FaultDictionary::NearMatch> FaultDictionary::near_matches(
    const std::vector<char>& observed, std::size_t max_distance) const {
  PPD_REQUIRE(observed.size() == tests_, "syndrome arity mismatch");
  std::vector<NearMatch> out;
  for (std::size_t i = 0; i < syndromes_.size(); ++i) {
    std::size_t d = 0;
    for (std::size_t t = 0; t < tests_; ++t)
      d += syndromes_[i][t] != observed[t] ? 1 : 0;
    if (d <= max_distance) out.push_back({i, d});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const NearMatch& a, const NearMatch& b) {
                     return a.distance < b.distance;
                   });
  return out;
}

double FaultDictionary::resolution() const {
  if (faults_.empty()) return 0.0;
  std::set<std::vector<char>> distinct(syndromes_.begin(), syndromes_.end());
  return static_cast<double>(distinct.size()) /
         static_cast<double>(faults_.size());
}

}  // namespace ppd::logic
