#include "ppd/logic/faultsim.hpp"

#include <algorithm>

#include "ppd/exec/parallel.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {

const char* logic_fault_kind_name(LogicFaultKind kind) {
  switch (kind) {
    case LogicFaultKind::kInternalRopPullUp: return "internal-ROP-pullup";
    case LogicFaultKind::kInternalRopPullDown: return "internal-ROP-pulldown";
    case LogicFaultKind::kExternalRop: return "external-ROP";
  }
  return "?";
}

FaultSimulator::FaultSimulator(const Netlist& netlist, GateTimingLibrary library,
                               FaultTimingCoefficients coefficients)
    : netlist_(netlist), library_(std::move(library)), coeff_(coefficients) {}

GateTiming FaultSimulator::faulty_timing(const Gate& gate, const LogicFault& fault,
                                         bool positive_output_pulse) const {
  GateTiming t = library_.timing(gate.kind);
  const double r = fault.resistance;
  switch (fault.kind) {
    case LogicFaultKind::kInternalRopPullUp:
      // Slows rising outputs: a positive output pulse leads with the
      // crippled edge and shrinks at any width; the opposite polarity is
      // barely touched.
      if (positive_output_pulse) {
        t.w_block += r * coeff_.c_internal;
        t.w_pass += r * coeff_.c_internal;
        t.shrink += r * coeff_.c_internal_shrink;
        t.delay_rise += r * coeff_.c_delay;
      }
      break;
    case LogicFaultKind::kInternalRopPullDown:
      if (!positive_output_pulse) {
        t.w_block += r * coeff_.c_internal;
        t.w_pass += r * coeff_.c_internal;
        t.shrink += r * coeff_.c_internal_shrink;
        t.delay_fall += r * coeff_.c_delay;
      }
      break;
    case LogicFaultKind::kExternalRop:
      // Both edges slowed: narrow pulses die, wide pulses lose only a
      // residual amount, plus delay on both edges.
      t.w_block += r * coeff_.c_external;
      t.w_pass += r * coeff_.c_external;
      t.shrink += r * coeff_.c_external_shrink;
      t.delay_rise += r * coeff_.c_delay;
      t.delay_fall += r * coeff_.c_delay;
      break;
  }
  return t;
}

double FaultSimulator::response(const PulseTest& test,
                                const LogicFault* fault) const {
  std::vector<LogicFault> one;
  if (fault != nullptr) one.push_back(*fault);
  return response_multi(test, one);
}

double FaultSimulator::response_multi(const PulseTest& test,
                                      const std::vector<LogicFault>& faults) const {
  PPD_REQUIRE(test.path.nets.size() >= 2, "test path too short");
  double w = test.w_in;
  // Polarity of the pulse at the *output* of each traversed gate.
  bool positive = test.positive_pulse;
  for (std::size_t i = 1; i < test.path.nets.size(); ++i) {
    const NetId id = test.path.nets[i];
    const Gate& g = netlist_.gate(id);
    if (logic_kind_inverting(g.kind)) positive = !positive;
    GateTiming t = library_.timing(g.kind);
    for (const LogicFault& f : faults)
      if (f.gate == id) {
        // Compose co-located defects by stacking their degradations.
        const GateTiming& base = library_.timing(g.kind);
        const GateTiming ft = faulty_timing(g, f, positive);
        t.w_block += ft.w_block - base.w_block;
        t.w_pass += ft.w_pass - base.w_pass;
        t.shrink += ft.shrink - base.shrink;
        t.delay_rise += ft.delay_rise - base.delay_rise;
        t.delay_fall += ft.delay_fall - base.delay_fall;
      }
    w = gate_pulse_out(t, w);
    if (w <= 0.0) {
      // Depth (in gates from the pulse source) at which the pulse died —
      // the paper's "pulse propagation dies out" signature. Linear-ish bins
      // up to 128 gates resolve the typical benchmark path lengths.
      if (obs::metrics_enabled()) {
        obs::counter("logic.pulse_deaths").add();
        obs::histogram("logic.pulse_death_depth", {1.0, 128.0, 14})
            .record(static_cast<double>(i));
      }
      return 0.0;
    }
  }
  return w;
}

bool FaultSimulator::detects(const PulseTest& test, const LogicFault& fault) const {
  // The fault must sit on the tested path (a series open off the sensitized
  // path does not disturb the pulse in this model).
  const bool on_path =
      std::find(test.path.nets.begin() + 1, test.path.nets.end(), fault.gate) !=
      test.path.nets.end();
  if (!on_path) return false;
  const bool hit = response(test, &fault) < test.w_th;
  if (obs::metrics_enabled()) {
    obs::counter("logic.verdicts").add();
    if (hit) obs::counter("logic.detections").add();
  }
  return hit;
}

namespace {

exec::ParallelOptions parallel_options(const FaultSimOptions& options,
                                       const Netlist& netlist,
                                       const char* what) {
  exec::ParallelOptions par;
  par.threads = options.threads;
  par.cancel = options.cancel;
  // Logic-level verdicts are microseconds each — batch them so the cursor
  // claim does not dominate.
  par.grain = 8;
  par.context = netlist.source().empty()
                    ? std::string(what)
                    : std::string(what) + " over " + netlist.source();
  return par;
}

}  // namespace

FaultCoverage FaultSimulator::run(const std::vector<LogicFault>& faults,
                                  const std::vector<PulseTest>& tests,
                                  const FaultSimOptions& exec_opt) const {
  const obs::Span span("logic.faultsim");
  FaultCoverage cov;
  cov.detected.assign(faults.size(), 0);
  exec::SweepStats stats;
  exec::ParallelOptions par =
      parallel_options(exec_opt, netlist_, "pulse faultsim");
  // No RNG here, so the checkpoint identity key is just (items, context).
  resil::SweepGuard guard(exec_opt.resil, faults.size(), /*seed=*/0,
                          par.context);
  guard.arm(par);
  try {
    exec::parallel_for(
        faults.size(),
        [&](std::size_t f) {
          if (const auto saved = guard.cached(f)) {
            cov.detected[f] = (*saved) == "1" ? 1 : 0;
            return;
          }
          const resil::FaultScope inject(guard.plan(), f);
          resil::inject_item_delay();
          resil::inject_item_failure();
          for (const PulseTest& t : tests) {
            if (detects(t, faults[f])) {
              cov.detected[f] = 1;
              break;
            }
          }
          guard.complete(f, cov.detected[f] ? "1" : "0");
        },
        par, &stats);
  } catch (const exec::CancelledError& e) {
    guard.cancelled(e);
  }
  exec::record_sweep("logic.faultsim", stats);
  cov.quarantine = guard.finish();
  for (char d : cov.detected)
    if (d) ++cov.detected_count;
  return cov;
}

std::vector<LogicFault> enumerate_rop_faults(const std::vector<NetId>& sites,
                                             double r) {
  PPD_REQUIRE(r > 0.0, "fault resistance must be positive");
  std::vector<LogicFault> faults;
  faults.reserve(sites.size() * 3);
  for (NetId s : sites) {
    for (LogicFaultKind k :
         {LogicFaultKind::kInternalRopPullUp, LogicFaultKind::kInternalRopPullDown,
          LogicFaultKind::kExternalRop}) {
      LogicFault f;
      f.gate = s;
      f.kind = k;
      f.resistance = r;
      faults.push_back(f);
    }
  }
  return faults;
}

namespace {

/// Fault-free width plan for a path: w_in at the asymptotic onset of the
/// chain transfer curve, w_th guarded below the resulting output width.
/// Returns nullopt when the chain cannot support a feasible pair.
std::optional<std::pair<double, double>> plan_widths(const FaultSimulator& sim,
                                                     const Path& path,
                                                     const AtpgOptions& opt) {
  // A slope needs two grid points; w_in.size() - 1 below would wrap at 0.
  if (opt.w_grid_points < 2) return std::nullopt;
  const auto kinds = path_kinds(sim.netlist(), path);
  // Discrete transfer curve of the fault-free chain.
  std::vector<double> w_in(opt.w_grid_points), w_out(opt.w_grid_points);
  for (std::size_t i = 0; i < opt.w_grid_points; ++i) {
    w_in[i] = opt.w_in_max * static_cast<double>(i + 1) /
              static_cast<double>(opt.w_grid_points);
    w_out[i] = chain_pulse_out(sim.library(), kinds, w_in[i]);
  }
  // First grid point in the asymptotic stretch (slope within 15% of 1).
  std::optional<std::size_t> onset;
  for (std::size_t i = w_in.size() - 1; i-- > 0;) {
    const double slope = (w_out[i + 1] - w_out[i]) / (w_in[i + 1] - w_in[i]);
    if (std::abs(slope - 1.0) <= 0.15 && w_out[i] > 0.0)
      onset = i;
    else
      break;
  }
  if (!onset.has_value()) return std::nullopt;
  for (std::size_t c = *onset; c < w_in.size(); ++c) {
    const double w_th = w_out[c] / (1.0 + opt.sensor_guard);
    if (w_th >= opt.w_th_floor) return std::pair{w_in[c], w_th};
  }
  return std::nullopt;
}

}  // namespace

std::vector<PulseTest> compact_tests(const FaultSimulator& sim,
                                     const std::vector<LogicFault>& faults,
                                     std::vector<PulseTest> tests,
                                     const FaultSimOptions& exec_opt) {
  const obs::Span span("logic.compact_tests");
  const std::size_t tests_in = tests.size();
  // Detection matrix, one row per test, rows computed in parallel.
  std::vector<std::vector<char>> hits(tests.size());
  exec::ParallelOptions par =
      parallel_options(exec_opt, sim.netlist(), "test compaction");
  par.grain = 1;  // a row already covers the whole fault list
  exec::SweepStats stats;
  exec::parallel_for(
      tests.size(),
      [&](std::size_t t) {
        hits[t].assign(faults.size(), 0);
        for (std::size_t f = 0; f < faults.size(); ++f)
          hits[t][f] = sim.detects(tests[t], faults[f]) ? 1 : 0;
      },
      par, &stats);
  exec::record_sweep("logic.compaction", stats);

  std::vector<char> keep(tests.size(), 1);
  // Reverse pass: drop a test when every fault it detects is also detected
  // by another kept test.
  for (std::size_t t = tests.size(); t-- > 0;) {
    bool redundant = true;
    for (std::size_t f = 0; f < faults.size() && redundant; ++f) {
      if (!hits[t][f]) continue;
      bool covered_elsewhere = false;
      for (std::size_t o = 0; o < tests.size() && !covered_elsewhere; ++o)
        covered_elsewhere = o != t && keep[o] && hits[o][f];
      redundant = covered_elsewhere;
    }
    if (redundant) keep[t] = 0;
  }
  std::vector<PulseTest> out;
  for (std::size_t t = 0; t < tests.size(); ++t)
    if (keep[t]) out.push_back(std::move(tests[t]));
  if (obs::metrics_enabled()) {
    obs::counter("logic.compaction.tests_in").add(tests_in);
    obs::counter("logic.compaction.tests_kept").add(out.size());
  }
  return out;
}

double path_delay_logic(const FaultSimulator& sim, const Path& path,
                        const LogicFault* fault) {
  PPD_REQUIRE(path.nets.size() >= 2, "path too short");
  double d = 0.0;
  for (std::size_t i = 1; i < path.nets.size(); ++i) {
    const NetId id = path.nets[i];
    const Gate& g = sim.netlist().gate(id);
    GateTiming t = sim.library().timing(g.kind);
    if (fault != nullptr && fault->gate == id) {
      // The slower of the two polarities' faulty timings (the DF test
      // launches the transition the fault attacks).
      const GateTiming a = sim.faulty_timing(g, *fault, true);
      const GateTiming b = sim.faulty_timing(g, *fault, false);
      t.delay_rise = std::max(a.delay_rise, b.delay_rise);
      t.delay_fall = std::max(a.delay_fall, b.delay_fall);
    }
    d += std::max(t.delay_rise, t.delay_fall);
  }
  return d;
}

bool delay_test_detects(const FaultSimulator& sim, const Path& path,
                        const LogicFault& fault, const DelayTestModel& model) {
  PPD_REQUIRE(model.clock_period > 0.0, "delay test needs a clock period");
  const bool on_path =
      std::find(path.nets.begin() + 1, path.nets.end(), fault.gate) !=
      path.nets.end();
  if (!on_path) return false;
  const double d = path_delay_logic(sim, path, &fault);
  return d + model.ff_overhead > model.clock_period;
}

FaultCoverage run_delay_testing(const FaultSimulator& sim,
                                const std::vector<LogicFault>& faults,
                                DelayTestModel model, const AtpgOptions& options) {
  const obs::Span span("logic.delay_testing");
  const Netlist& nl = sim.netlist();
  if (model.clock_period <= 0.0) {
    // At-speed default: the circuit's critical delay plus the FF budget.
    double crit = 0.0;
    std::vector<double> arrival(nl.size(), 0.0);
    for (NetId id : nl.topological_order()) {
      const Gate& g = nl.gate(id);
      if (g.kind == LogicKind::kInput) continue;
      double worst = 0.0;
      for (NetId f : g.fanin) worst = std::max(worst, arrival[f]);
      const GateTiming& t = sim.library().timing(g.kind);
      arrival[id] = worst + std::max(t.delay_rise, t.delay_fall);
    }
    for (NetId o : nl.outputs()) crit = std::max(crit, arrival[o]);
    model.clock_period = crit + model.ff_overhead;
  }

  FaultCoverage cov;
  cov.detected.assign(faults.size(), 0);
  // Per-fault verdicts are independent (path enumeration and sensitization
  // are pure functions of the netlist), so the fault list fans out.
  exec::SweepStats stats;
  exec::parallel_for(
      faults.size(),
      [&](std::size_t f) {
        for (const Path& path : enumerate_paths_through(
                 nl, faults[f].gate, options.paths_per_site)) {
          if (!delay_test_detects(sim, path, faults[f], model)) continue;
          if (!sensitize_path(nl, path, options.sensitize).ok) continue;
          cov.detected[f] = 1;
          break;
        }
      },
      parallel_options(options.exec, nl, "delay-test faultsim"), &stats);
  exec::record_sweep("logic.delay_testing", stats);
  for (char d : cov.detected)
    if (d) ++cov.detected_count;
  return cov;
}

AtpgResult generate_pulse_tests(const FaultSimulator& sim,
                                const std::vector<LogicFault>& faults,
                                const AtpgOptions& options) {
  const obs::Span span("logic.atpg");
  const Netlist& nl = sim.netlist();
  AtpgResult res;
  res.faults_total = faults.size();
  res.coverage.detected.assign(faults.size(), 0);

  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (res.coverage.detected[f]) continue;
    const LogicFault& fault = faults[f];
    bool found = false;
    for (const Path& path :
         enumerate_paths_through(nl, fault.gate, options.paths_per_site)) {
      const auto sens = sensitize_path(nl, path, options.sensitize);
      if (!sens.ok) continue;
      const auto widths = plan_widths(sim, path, options);
      if (!widths.has_value()) continue;

      PulseTest test;
      test.path = path;
      test.vector = sens.pi_values;
      test.w_in = widths->first;
      test.w_th = widths->second;
      // Pick the pulse polarity the fault is most vulnerable to.
      test.positive_pulse = true;
      const double resp_h = sim.response(test, &fault);
      test.positive_pulse = false;
      const double resp_l = sim.response(test, &fault);
      test.positive_pulse = resp_h <= resp_l;

      if (!sim.detects(test, fault)) continue;
      // Accept the test and fold in its cross-detections. The fold fans out
      // over the fault list (each slot written independently); the greedy
      // selection order — and therefore the generated test set — is
      // untouched by the thread count.
      exec::parallel_for(
          faults.size(),
          [&](std::size_t g) {
            if (!res.coverage.detected[g] && sim.detects(test, faults[g]))
              res.coverage.detected[g] = 1;
          },
          parallel_options(options.exec, nl, "ATPG cross-detection"));
      res.coverage.detected_count = 0;
      for (char d : res.coverage.detected)
        if (d) ++res.coverage.detected_count;
      res.tests.push_back(std::move(test));
      found = true;
      break;
    }
    if (!found) ++res.aborted;
  }
  if (obs::metrics_enabled()) {
    obs::counter("logic.atpg.tests_generated").add(res.tests.size());
    obs::counter("logic.atpg.aborted").add(res.aborted);
  }
  return res;
}

}  // namespace ppd::logic
