#include "ppd/logic/paths.hpp"

#include <algorithm>

#include "ppd/util/error.hpp"

namespace ppd::logic {

std::vector<LogicKind> path_kinds(const Netlist& netlist, const Path& path) {
  PPD_REQUIRE(!path.nets.empty(), "empty path");
  std::vector<LogicKind> kinds;
  for (NetId id : path.nets) {
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    kinds.push_back(g.kind);
  }
  return kinds;
}

namespace {

/// DFS for all suffixes from `from` to any PO (list of net sequences
/// starting at `from`), capped.
void collect_suffixes(const Netlist& nl, NetId from, std::size_t limit,
                      std::vector<NetId>& stack,
                      std::vector<std::vector<NetId>>& out) {
  if (out.size() >= limit) return;
  stack.push_back(from);
  if (nl.is_output(from)) out.push_back(stack);
  if (out.size() < limit)
    for (NetId next : nl.fanout(from))
      collect_suffixes(nl, next, limit, stack, out);
  stack.pop_back();
}

/// DFS for all prefixes from any PI to `to` (sequences ending at `to`).
void collect_prefixes(const Netlist& nl, NetId to, std::size_t limit,
                      std::vector<NetId>& stack,
                      std::vector<std::vector<NetId>>& out) {
  if (out.size() >= limit) return;
  stack.push_back(to);
  const Gate& g = nl.gate(to);
  if (g.kind == LogicKind::kInput) {
    out.emplace_back(stack.rbegin(), stack.rend());
  } else {
    for (NetId f : g.fanin) {
      if (out.size() >= limit) break;
      collect_prefixes(nl, f, limit, stack, out);
    }
  }
  stack.pop_back();
}

}  // namespace

std::vector<Path> enumerate_paths_through(const Netlist& netlist, NetId via,
                                          std::size_t limit) {
  PPD_REQUIRE(limit > 0, "limit must be positive");
  std::vector<std::vector<NetId>> prefixes, suffixes;
  std::vector<NetId> stack;
  collect_prefixes(netlist, via, limit, stack, prefixes);
  stack.clear();
  collect_suffixes(netlist, via, limit, stack, suffixes);

  std::vector<Path> paths;
  for (const auto& pre : prefixes) {
    for (const auto& suf : suffixes) {
      if (paths.size() >= limit) return paths;
      Path p;
      p.nets = pre;  // ends at `via`
      p.nets.insert(p.nets.end(), suf.begin() + 1, suf.end());
      paths.push_back(std::move(p));
    }
  }
  return paths;
}

std::vector<Path> enumerate_all_paths(const Netlist& netlist, std::size_t limit) {
  PPD_REQUIRE(limit > 0, "limit must be positive");
  std::vector<Path> paths;
  std::vector<NetId> stack;
  std::vector<std::vector<NetId>> suffixes;
  for (NetId pi : netlist.inputs()) {
    if (paths.size() >= limit) break;
    suffixes.clear();
    stack.clear();
    collect_suffixes(netlist, pi, limit - paths.size(), stack, suffixes);
    for (auto& s : suffixes) {
      Path p;
      p.nets = std::move(s);
      paths.push_back(std::move(p));
    }
  }
  return paths;
}

}  // namespace ppd::logic
