#include "ppd/logic/sensitize.hpp"

#include <algorithm>

#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"

namespace ppd::logic {

namespace {

/// Backtracking line-justification engine over a partial net assignment.
/// When a shuffle RNG is supplied, branch choices are tried in a random
/// order (used by the restart loop).
class Justifier {
 public:
  Justifier(const Netlist& nl, std::uint64_t effort, mc::Rng* shuffle = nullptr)
      : nl_(nl), assign_(nl.size()), effort_(effort), shuffle_(shuffle) {}

  /// Require net == value; justify recursively. Returns false on conflict
  /// or exhausted effort (assignment restored in either case by the caller
  /// via trail marks).
  bool justify(NetId net, bool value) {
    if (nodes_ >= effort_) return false;
    ++nodes_;
    if (assign_[net].has_value()) return *assign_[net] == value;
    set(net, value);
    const Gate& g = nl_.gate(net);
    if (g.kind == LogicKind::kInput) return true;

    switch (g.kind) {
      case LogicKind::kBuf:
        return justify(g.fanin[0], value);
      case LogicKind::kNot:
        return justify(g.fanin[0], !value);
      case LogicKind::kAnd:
      case LogicKind::kNand: {
        const bool and_out = g.kind == LogicKind::kAnd ? value : !value;
        if (and_out) return justify_all(g.fanin, true);
        return justify_any(g.fanin, false);
      }
      case LogicKind::kOr:
      case LogicKind::kNor: {
        const bool or_out = g.kind == LogicKind::kOr ? value : !value;
        if (or_out) return justify_any(g.fanin, true);
        return justify_all(g.fanin, false);
      }
      case LogicKind::kXor:
      case LogicKind::kXnor: {
        const bool parity = g.kind == LogicKind::kXor ? value : !value;
        return justify_parity(g.fanin, parity);
      }
      case LogicKind::kInput:
        break;
    }
    return false;
  }

  std::size_t trail_mark() const { return trail_.size(); }
  void rollback(std::size_t mark) {
    while (trail_.size() > mark) {
      assign_[trail_.back()].reset();
      trail_.pop_back();
    }
  }

  [[nodiscard]] const std::optional<bool>& value(NetId net) const {
    return assign_[net];
  }
  [[nodiscard]] std::uint64_t nodes() const { return nodes_; }

 private:
  void set(NetId net, bool value) {
    assign_[net] = value;
    trail_.push_back(net);
  }

  bool justify_all(const std::vector<NetId>& nets, bool value) {
    for (NetId n : nets)
      if (!justify(n, value)) return false;
    return true;
  }

  /// One of `nets` at `value`; try each choice with rollback.
  bool justify_any(const std::vector<NetId>& nets, bool value) {
    std::vector<NetId> order(nets);
    maybe_shuffle(order);
    for (NetId n : order) {
      const std::size_t mark = trail_mark();
      if (justify(n, value)) return true;
      rollback(mark);
      if (nodes_ >= effort_) return false;
    }
    return false;
  }

  void maybe_shuffle(std::vector<NetId>& order) {
    if (shuffle_ == nullptr) return;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[shuffle_->below(i)]);
  }

  /// XOR parity over the fanin: enumerate assignments (fanin counts are
  /// tiny in practice).
  bool justify_parity(const std::vector<NetId>& nets, bool parity) {
    const std::size_t k = nets.size();
    PPD_REQUIRE(k <= 8, "XOR fanin too wide for parity justification");
    for (std::uint64_t mask = 0; mask < (1ULL << k); ++mask) {
      bool p = false;
      for (std::size_t i = 0; i < k; ++i)
        if ((mask >> i) & 1ULL) p = !p;
      if (p != parity) continue;
      const std::size_t mark = trail_mark();
      bool ok = true;
      for (std::size_t i = 0; i < k && ok; ++i)
        ok = justify(nets[i], ((mask >> i) & 1ULL) != 0);
      if (ok) return true;
      rollback(mark);
      if (nodes_ >= effort_) return false;
    }
    return false;
  }

  const Netlist& nl_;
  std::vector<std::optional<bool>> assign_;
  std::vector<NetId> trail_;
  std::uint64_t effort_;
  std::uint64_t nodes_ = 0;
  mc::Rng* shuffle_ = nullptr;
};

}  // namespace

std::size_t SensitizationResult::dont_care_count() const {
  std::size_t n = 0;
  for (char c : pi_care) n += c == 0 ? 1 : 0;
  return n;
}

namespace {

/// Side-input requirements of a path: (net, required value) pairs.
std::vector<std::pair<NetId, bool>> path_requirements(const Netlist& netlist,
                                                      const Path& path) {
  std::vector<std::pair<NetId, bool>> reqs;
  for (std::size_t i = 1; i < path.nets.size(); ++i) {
    const NetId gid = path.nets[i];
    const Gate& g = netlist.gate(gid);
    const NetId on_path = path.nets[i - 1];
    PPD_REQUIRE(std::find(g.fanin.begin(), g.fanin.end(), on_path) !=
                    g.fanin.end(),
                "path nets are not connected");
    const auto cv = controlling_value(g.kind);
    if (!cv.has_value()) continue;  // NOT/BUF/XOR: nothing to pin
    for (NetId f : g.fanin) {
      if (f == on_path) continue;
      reqs.emplace_back(f, !*cv);
    }
  }
  return reqs;
}

}  // namespace

SensitizationResult sensitize_path(const Netlist& netlist, const Path& path,
                                   const SensitizeOptions& options) {
  PPD_REQUIRE(path.nets.size() >= 2, "path needs at least a PI and one gate");
  PPD_REQUIRE(options.restarts >= 1, "need at least one attempt");
  SensitizationResult res;

  const auto reqs = path_requirements(netlist, path);
  mc::Rng restart_rng(options.seed);

  for (int attempt = 0; attempt < options.restarts; ++attempt) {
    mc::Rng shuffle = restart_rng.split();
    // First attempt is deterministic (natural branch order).
    Justifier j(netlist, options.effort_limit,
                attempt == 0 ? nullptr : &shuffle);
    bool ok = true;
    for (const auto& [net, val] : reqs) {
      if (!j.justify(net, val)) {
        ok = false;
        break;
      }
    }
    res.nodes_visited += j.nodes();
    if (!ok) continue;

    // Complete the assignment: justified PIs keep their values, free PIs 0.
    res.pi_values.assign(netlist.inputs().size(), false);
    for (std::size_t i = 0; i < netlist.inputs().size(); ++i) {
      const auto& v = j.value(netlist.inputs()[i]);
      if (v.has_value()) res.pi_values[i] = *v;
    }
    // Line justification commits only sufficient conditions, so the result
    // must verify against a full evaluation. And because the method
    // launches *transitions and pulses*, the path must stay sensitized in
    // BOTH phases of its input (a reconvergent side input may be
    // non-controlling for one value of the path PI and controlling for the
    // other), with the path output actually toggling between phases.
    std::vector<bool> flipped = res.pi_values;
    std::size_t input_index = netlist.inputs().size();
    for (std::size_t i = 0; i < netlist.inputs().size(); ++i)
      if (netlist.inputs()[i] == path.input()) input_index = i;
    PPD_REQUIRE(input_index < netlist.inputs().size(),
                "path does not start at a primary input");
    flipped[input_index] = !flipped[input_index];

    const bool both_phases = is_sensitized(netlist, path, res.pi_values) &&
                             is_sensitized(netlist, path, flipped);
    if (both_phases) {
      const auto v0 = netlist.evaluate(res.pi_values);
      const auto v1 = netlist.evaluate(flipped);
      if (v0[path.output()] != v1[path.output()]) {
        res.ok = true;
        // Certify don't-cares with the three-valued calculus: only PIs the
        // justifier actually constrained (plus the path input) need values;
        // the rest are X if the ternary check still proves sensitization in
        // both phases with a toggling output.
        std::vector<Tri> tri(netlist.inputs().size(), Tri::kX);
        std::vector<char> care(netlist.inputs().size(), 0);
        for (std::size_t i = 0; i < netlist.inputs().size(); ++i) {
          const auto& v = j.value(netlist.inputs()[i]);
          if (v.has_value() || i == input_index) {
            tri[i] = tri_from_bool(res.pi_values[i]);
            care[i] = 1;
          }
        }
        const auto certified = [&](std::vector<Tri> pis) {
          const auto tv = netlist.evaluate_ternary(pis);
          for (std::size_t k = 1; k < path.nets.size(); ++k) {
            const Gate& g = netlist.gate(path.nets[k]);
            const auto cv = controlling_value(g.kind);
            if (!cv.has_value()) continue;
            const Tri bad = tri_from_bool(*cv);
            for (NetId fn : g.fanin) {
              if (fn == path.nets[k - 1]) continue;
              if (tv[fn] == bad || tv[fn] == Tri::kX) return Tri::kX;
            }
          }
          return tv[path.output()];
        };
        std::vector<Tri> tri_flipped = tri;
        tri_flipped[input_index] =
            tri[input_index] == Tri::k1 ? Tri::k0 : Tri::k1;
        const Tri o0 = certified(tri);
        const Tri o1 = certified(tri_flipped);
        if (o0 != Tri::kX && o1 != Tri::kX && o0 != o1) {
          res.pi_care = std::move(care);
        } else {
          res.pi_care.assign(netlist.inputs().size(), 1);  // apply fully
        }
        return res;
      }
    }
  }
  res.pi_values.clear();
  return res;
}

bool is_sensitized(const Netlist& netlist, const Path& path,
                   const std::vector<bool>& pi_values) {
  const std::vector<bool> value = netlist.evaluate(pi_values);
  for (std::size_t i = 1; i < path.nets.size(); ++i) {
    const Gate& g = netlist.gate(path.nets[i]);
    const auto cv = controlling_value(g.kind);
    if (!cv.has_value()) continue;
    for (NetId f : g.fanin) {
      if (f == path.nets[i - 1]) continue;
      if (value[f] == *cv) return false;
    }
  }
  return true;
}

}  // namespace ppd::logic
