#include "ppd/logic/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

#include "ppd/util/error.hpp"

namespace ppd::logic {

namespace {

/// Compact VCD identifier for index i (printable ASCII 33..126).
std::string vcd_id(std::size_t i) {
  std::string id;
  do {
    id += static_cast<char>(33 + i % 94);
    i /= 94;
  } while (i != 0);
  return id;
}

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == ' ' || c == '\t') c = '_';
  return out;
}

}  // namespace

void write_vcd(std::ostream& os, const Netlist& netlist,
               const EventSimResult& result, const VcdOptions& options) {
  PPD_REQUIRE(options.timescale > 0.0, "timescale must be positive");

  std::vector<NetId> nets = options.nets;
  if (nets.empty())
    for (NetId id = 0; id < netlist.size(); ++id) nets.push_back(id);
  for (NetId id : nets)
    PPD_REQUIRE(id < netlist.size(), "net id out of range");

  os << "$date ppd export $end\n"
     << "$version ppd pulse-propagation library $end\n"
     << "$timescale " << static_cast<long long>(std::llround(
                             options.timescale / 1e-12))
     << "ps $end\n"
     << "$scope module " << options.module_name << " $end\n";
  for (std::size_t i = 0; i < nets.size(); ++i)
    os << "$var wire 1 " << vcd_id(i) << ' '
       << sanitize(netlist.gate(nets[i]).name) << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  // Initial values.
  os << "#0\n$dumpvars\n";
  for (std::size_t i = 0; i < nets.size(); ++i)
    os << (result.initial_value(nets[i]) ? '1' : '0') << vcd_id(i) << '\n';
  os << "$end\n";

  // Merge all changes, ordered by time (ties by net order).
  std::multimap<long long, std::pair<std::size_t, bool>> events;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (const Transition& tr : result.changes(nets[i])) {
      const long long tick = std::llround(tr.t / options.timescale);
      events.emplace(tick, std::pair{i, tr.value});
    }
  }
  long long current = 0;
  bool first = true;
  for (const auto& [tick, change] : events) {
    if (first || tick != current) {
      os << '#' << tick << '\n';
      current = tick;
      first = false;
    }
    os << (change.second ? '1' : '0') << vcd_id(change.first) << '\n';
  }
}

std::string vcd_to_string(const Netlist& netlist, const EventSimResult& result,
                          const VcdOptions& options) {
  std::ostringstream os;
  write_vcd(os, netlist, result, options);
  return os.str();
}

}  // namespace ppd::logic
