#include "ppd/logic/lint.hpp"

#include <algorithm>
#include <sstream>

namespace ppd::logic {

lint::NetGraph to_lint_graph(const Netlist& netlist) {
  lint::NetGraph graph;
  graph.source = netlist.source();
  graph.nodes.reserve(netlist.size());
  for (NetId id = 0; id < netlist.size(); ++id) {
    const Gate& g = netlist.gate(id);
    lint::GraphNode node;
    node.name = g.name;
    node.kind = logic_kind_name(g.kind);
    node.fanin.assign(g.fanin.begin(), g.fanin.end());
    node.is_input = g.kind == LogicKind::kInput;
    node.is_output = netlist.is_output(id);
    node.driven = true;  // a Netlist is single-driven by construction
    node.driver_count = 1;
    graph.nodes.push_back(std::move(node));
  }
  return graph;
}

lint::Report lint_netlist(const Netlist& netlist,
                          const lint::GraphLintOptions& options) {
  return lint::lint_graph(to_lint_graph(netlist), options);
}

namespace {

std::string format_ps(double seconds) {
  std::ostringstream os;
  os << seconds * 1e12 << " ps";
  return os.str();
}

}  // namespace

lint::Report lint_pulse_test(const Netlist& netlist,
                             const GateTimingLibrary& library,
                             const PulseTest& test) {
  using lint::Severity;
  lint::Report report;
  const std::string subject = netlist.source().empty()
                                  ? std::string("pulse test")
                                  : "pulse test on " + netlist.source();

  // PPD206 — the PI vector must cover every input.
  if (test.vector.size() != netlist.inputs().size()) {
    report.add(Severity::kError, "PPD206", subject,
               "PI vector has " + std::to_string(test.vector.size()) +
                   " entries for " + std::to_string(netlist.inputs().size()) +
                   " primary inputs");
    return report;  // nothing below can be evaluated
  }

  // PPD202 — structural soundness of the path.
  bool path_ok = !test.path.nets.empty();
  if (!path_ok) {
    report.add(Severity::kError, "PPD202", subject, "path is empty");
  } else {
    for (NetId n : test.path.nets)
      if (n >= netlist.size()) {
        report.add(Severity::kError, "PPD202", subject,
                   "path references net id " + std::to_string(n) +
                       " outside the netlist");
        path_ok = false;
      }
  }
  if (path_ok) {
    if (netlist.gate(test.path.input()).kind != LogicKind::kInput) {
      report.add(Severity::kError, "PPD202",
                 netlist.gate(test.path.input()).name,
                 "path does not start at a primary input",
                 "the pulse generator attaches to a primary input");
      path_ok = false;
    }
    if (!netlist.is_output(test.path.output())) {
      report.add(Severity::kError, "PPD202",
                 netlist.gate(test.path.output()).name,
                 "path does not end at a primary output",
                 "the transition sensor observes a primary output");
      path_ok = false;
    }
    for (std::size_t i = 0; path_ok && i + 1 < test.path.nets.size(); ++i) {
      const Gate& g = netlist.gate(test.path.nets[i + 1]);
      if (std::find(g.fanin.begin(), g.fanin.end(), test.path.nets[i]) ==
          g.fanin.end()) {
        report.add(Severity::kError, "PPD202", g.name,
                   "consecutive path nets '" +
                       netlist.gate(test.path.nets[i]).name + "' -> '" +
                       g.name + "' are not connected");
        path_ok = false;
      }
    }
  }

  // PPD203 — pulse widths must be positive.
  if (test.w_in <= 0.0)
    report.add(Severity::kError, "PPD203", subject,
               "injected width w_in = " + format_ps(test.w_in) +
                   " is not positive");
  if (test.w_th <= 0.0)
    report.add(Severity::kError, "PPD203", subject,
               "sensor threshold w_th = " + format_ps(test.w_th) +
                   " is not positive");

  if (!path_ok) return report;

  // PPD201 — every side input must rest at a non-controlling value under
  // both phases of the launching input (the pulse visits both values).
  const std::size_t input_index = static_cast<std::size_t>(
      std::distance(netlist.inputs().begin(),
                    std::find(netlist.inputs().begin(), netlist.inputs().end(),
                              test.path.input())));
  for (int phase = 0; phase < 2; ++phase) {
    std::vector<bool> pis = test.vector;
    if (phase == 1) pis[input_index] = !pis[input_index];
    const std::vector<bool> value = netlist.evaluate(pis);
    for (std::size_t i = 1; i < test.path.nets.size(); ++i) {
      const Gate& g = netlist.gate(test.path.nets[i]);
      const auto cv = controlling_value(g.kind);
      if (!cv.has_value()) continue;
      for (NetId f : g.fanin) {
        if (f == test.path.nets[i - 1]) continue;
        if (value[f] == *cv)
          report.add(Severity::kError, "PPD201", g.name,
                     "side input '" + netlist.gate(f).name + "' of " +
                         logic_kind_name(g.kind) + " gate '" + g.name +
                         "' sits at its controlling value (" +
                         (*cv ? "1" : "0") + ") in the " +
                         (phase == 0 ? "rest" : "pulsed") + " phase",
                     "the pulse is blocked; re-justify the side inputs");
      }
    }
  }

  if (test.w_in <= 0.0 || test.w_th <= 0.0) return report;

  // PPD204/PPD205/PPD207 — width consistency against the attenuation model.
  const FaultSimulator sim(netlist, library);
  const double fault_free = sim.response(test, nullptr);
  if (fault_free < test.w_th) {
    report.add(Severity::kError, "PPD204", subject,
               "fault-free response " + format_ps(fault_free) +
                   " is below the sensor threshold " + format_ps(test.w_th),
               "the test would reject a defect-free machine; lower w_th or "
               "widen w_in");
  } else if (fault_free > 0.0 && (fault_free - test.w_th) / fault_free < 0.10) {
    report.add(Severity::kWarning, "PPD205", subject,
               "detection margin (fault-free " + format_ps(fault_free) +
                   " vs w_th " + format_ps(test.w_th) + ") is below 10%",
               "process variation may cause false positives");
  }
  double onset = 0.0;
  for (LogicKind kind : path_kinds(netlist, test.path))
    onset = std::max(onset, library.timing(kind).w_pass);
  if (test.w_in < onset)
    report.add(Severity::kWarning, "PPD207", subject,
               "w_in = " + format_ps(test.w_in) +
                   " is below the path's asymptotic onset " + format_ps(onset),
               "calibrate w_in at the asymptotic onset (Sect. 5)");
  return report;
}

}  // namespace ppd::logic
