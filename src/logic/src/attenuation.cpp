#include "ppd/logic/attenuation.hpp"

#include "ppd/util/error.hpp"

namespace ppd::logic {

const GateTiming& GateTimingLibrary::timing(LogicKind kind) const {
  const auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? default_ : it->second;
}

GateTimingLibrary GateTimingLibrary::generic() {
  // Values measured from this repository's electrical cells (INV/NAND2/NOR2
  // with the default stage load); see core::calibrate_timing_library for the
  // reproducible procedure.
  GateTimingLibrary lib;
  GateTiming inv;
  inv.delay_rise = 65e-12;
  inv.delay_fall = 55e-12;
  inv.w_block = 45e-12;
  inv.w_pass = 140e-12;
  inv.shrink = 4e-12;
  lib.set(LogicKind::kNot, inv);
  lib.set_default(inv);

  GateTiming nand2 = inv;
  nand2.delay_rise = 75e-12;
  nand2.delay_fall = 70e-12;
  nand2.w_block = 55e-12;
  nand2.w_pass = 170e-12;
  nand2.shrink = 6e-12;
  lib.set(LogicKind::kNand, nand2);
  lib.set(LogicKind::kAnd, nand2);

  GateTiming nor2 = inv;
  nor2.delay_rise = 95e-12;
  nor2.delay_fall = 60e-12;
  nor2.w_block = 60e-12;
  nor2.w_pass = 180e-12;
  nor2.shrink = 7e-12;
  lib.set(LogicKind::kNor, nor2);
  lib.set(LogicKind::kOr, nor2);
  return lib;
}

double gate_pulse_out(const GateTiming& t, double w_in) {
  PPD_REQUIRE(t.w_pass > t.w_block, "w_pass must exceed w_block");
  if (w_in <= t.w_block) return 0.0;
  if (w_in >= t.w_pass) return w_in - t.shrink;
  // Continuous at w_pass: (w_pass - w_block) * k == w_pass - shrink.
  const double k = (t.w_pass - t.shrink) / (t.w_pass - t.w_block);
  return (w_in - t.w_block) * k;
}

double chain_pulse_out(const GateTimingLibrary& lib,
                       const std::vector<LogicKind>& kinds, double w_in) {
  double w = w_in;
  for (LogicKind k : kinds) {
    if (w <= 0.0) return 0.0;
    w = gate_pulse_out(lib.timing(k), w);
  }
  return w;
}

std::optional<double> required_input_width(const GateTimingLibrary& lib,
                                           const std::vector<LogicKind>& kinds,
                                           double w_out_target, double w_in_max,
                                           double resolution) {
  PPD_REQUIRE(w_out_target >= 0.0, "target width must be non-negative");
  PPD_REQUIRE(resolution > 0.0, "resolution must be positive");
  if (chain_pulse_out(lib, kinds, w_in_max) < w_out_target) return std::nullopt;
  double lo = 0.0;
  double hi = w_in_max;
  while (hi - lo > resolution) {
    const double mid = 0.5 * (lo + hi);
    if (chain_pulse_out(lib, kinds, mid) >= w_out_target)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

double chain_delay(const GateTimingLibrary& lib,
                   const std::vector<LogicKind>& kinds) {
  double d = 0.0;
  for (LogicKind k : kinds) d += lib.timing(k).delay_avg();
  return d;
}

}  // namespace ppd::logic
