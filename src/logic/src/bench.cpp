#include "ppd/logic/bench.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "ppd/lint/bench_lint.hpp"
#include "ppd/mc/rng.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::logic {

namespace {

LogicKind kind_from_name(std::string_view name) {
  using util::iequals;
  if (iequals(name, "BUF") || iequals(name, "BUFF")) return LogicKind::kBuf;
  if (iequals(name, "NOT") || iequals(name, "INV")) return LogicKind::kNot;
  if (iequals(name, "AND")) return LogicKind::kAnd;
  if (iequals(name, "OR")) return LogicKind::kOr;
  if (iequals(name, "NAND")) return LogicKind::kNand;
  if (iequals(name, "NOR")) return LogicKind::kNor;
  if (iequals(name, "XOR")) return LogicKind::kXor;
  if (iequals(name, "XNOR")) return LogicKind::kXnor;
  throw ParseError("unknown gate type in .bench: " + std::string(name));
}

struct PendingGate {
  std::string output;
  LogicKind kind;
  std::vector<std::string> inputs;
};

}  // namespace

Netlist parse_bench(const std::string& text) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;

    const auto err = [&](const std::string& msg) {
      throw ParseError(".bench line " + std::to_string(line_no) + ": " + msg);
    };

    if (util::starts_with(util::to_upper(line), "INPUT(")) {
      const auto close = line.find(')');
      if (close == std::string_view::npos) err("missing ')'");
      input_names.emplace_back(util::trim(line.substr(6, close - 6)));
      continue;
    }
    if (util::starts_with(util::to_upper(line), "OUTPUT(")) {
      const auto close = line.find(')');
      if (close == std::string_view::npos) err("missing ')'");
      output_names.emplace_back(util::trim(line.substr(7, close - 7)));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) err("expected '=' assignment");
    PendingGate g;
    g.output = std::string(util::trim(line.substr(0, eq)));
    std::string_view rhs = util::trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open)
      err("expected TYPE(args)");
    g.kind = kind_from_name(util::trim(rhs.substr(0, open)));
    for (const auto& arg :
         util::split(std::string(rhs.substr(open + 1, close - open - 1)), ',')) {
      const auto trimmed = util::trim(arg);
      if (trimmed.empty()) err("empty gate operand");
      g.inputs.emplace_back(trimmed);
    }
    if (g.output.empty()) err("empty gate output name");
    pending.push_back(std::move(g));
  }

  Netlist nl;
  std::unordered_map<std::string, NetId> by_name;
  for (const auto& name : input_names) {
    if (by_name.contains(name))
      throw ParseError("duplicate INPUT declaration: " + name);
    by_name.emplace(name, nl.add_input(name));
  }
  // Gates may reference forward; resolve with a worklist.
  std::vector<PendingGate> work = std::move(pending);
  bool progress = true;
  while (!work.empty() && progress) {
    progress = false;
    std::vector<PendingGate> next;
    for (auto& g : work) {
      bool ready = true;
      std::vector<NetId> fanin;
      for (const auto& in : g.inputs) {
        const auto it = by_name.find(in);
        if (it == by_name.end()) {
          ready = false;
          break;
        }
        fanin.push_back(it->second);
      }
      if (!ready) {
        next.push_back(std::move(g));
        continue;
      }
      if (by_name.contains(g.output))
        throw ParseError("signal defined twice: " + g.output);
      by_name.emplace(g.output, nl.add_gate(g.kind, g.output, std::move(fanin)));
      progress = true;
    }
    work = std::move(next);
  }
  if (!work.empty())
    throw ParseError("undefined or cyclic signal: " + work.front().inputs.front());

  for (const auto& name : output_names) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) throw ParseError("undefined OUTPUT: " + name);
    nl.mark_output(it->second);
  }
  return nl;
}

Netlist load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open .bench file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  // Static analysis gates the load: a structurally broken netlist is
  // rejected here with the complete diagnostic set (cycles, undriven and
  // multi-driven nets, ... — every defect, with file:line locations)
  // instead of the strict parser's first-error-only message.
  lint::LintOptions errors_only;
  errors_only.min_severity = lint::Severity::kError;
  lint::lint_bench_text(os.str(), path)
      .filtered(errors_only)
      .throw_on_error(path);
  Netlist nl = parse_bench(os.str());
  nl.set_source(path);
  return nl;
}

std::string write_bench(const Netlist& netlist) {
  std::ostringstream os;
  os << "# " << netlist.inputs().size() << " inputs, "
     << netlist.outputs().size() << " outputs, " << netlist.gate_count()
     << " gates\n";
  for (NetId id : netlist.inputs())
    os << "INPUT(" << netlist.gate(id).name << ")\n";
  for (NetId id : netlist.outputs())
    os << "OUTPUT(" << netlist.gate(id).name << ")\n";
  for (NetId id : netlist.topological_order()) {
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    os << g.name << " = " << logic_kind_name(g.kind) << '(';
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      if (i != 0) os << ", ";
      os << netlist.gate(g.fanin[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

Netlist c17() {
  // ISCAS-85 c17: 5 inputs, 2 outputs, 6 NAND2 gates.
  Netlist nl = parse_bench(R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)");
  nl.set_source("<c17>");
  return nl;
}

Netlist synthetic_benchmark(const SyntheticOptions& options) {
  PPD_REQUIRE(options.inputs >= 2, "need at least two inputs");
  PPD_REQUIRE(options.outputs >= 1, "need at least one output");
  PPD_REQUIRE(options.gates >= options.outputs + 2, "too few gates");
  PPD_REQUIRE(options.max_fanin >= 2 && options.max_fanin <= 3,
              "max_fanin must be 2 or 3");

  mc::Rng rng(options.seed);
  const std::size_t n_in = options.inputs;
  const std::size_t n_total = n_in + options.gates;

  // Build the structure locally first (kinds + fanin lists over net ids
  // 0..n_total-1, inputs first), then repair dead gates before emitting.
  std::vector<LogicKind> kind(n_total, LogicKind::kInput);
  std::vector<std::vector<std::size_t>> fanin(n_total);
  std::vector<std::size_t> uses(n_total, 0);

  // Bias fanin selection toward recent and not-yet-consumed nets so the
  // circuit grows deep and leaves few dead gates to repair.
  const auto pick_net = [&](std::size_t limit) -> std::size_t {
    const double u = rng.uniform();
    if (u < 0.45) {
      // Recent window.
      const std::size_t window = std::min<std::size_t>(limit, 40);
      return limit - 1 - rng.below(window);
    }
    if (u < 0.80) {
      // Prefer an unconsumed net when one exists (scan a random offset).
      const std::size_t start = rng.below(limit);
      for (std::size_t k = 0; k < limit; ++k) {
        const std::size_t cand = (start + k) % limit;
        if (uses[cand] == 0) return cand;
      }
    }
    return rng.below(limit);
  };

  for (std::size_t g = 0; g < options.gates; ++g) {
    const std::size_t id = n_in + g;
    const double pick = rng.uniform();
    std::size_t fanin_count;
    if (pick < 0.15) {
      kind[id] = LogicKind::kNot;
      fanin_count = 1;
    } else if (pick < 0.60) {
      kind[id] = LogicKind::kNand;
      fanin_count = 2 + (options.max_fanin == 3 && rng.uniform() < 0.3 ? 1 : 0);
    } else {
      kind[id] = LogicKind::kNor;
      fanin_count = 2 + (options.max_fanin == 3 && rng.uniform() < 0.2 ? 1 : 0);
    }
    while (fanin[id].size() < fanin_count) {
      const std::size_t cand = pick_net(id);
      bool duplicate = false;
      for (std::size_t f : fanin[id]) duplicate = duplicate || f == cand;
      if (!duplicate) fanin[id].push_back(cand);
    }
    for (std::size_t f : fanin[id]) ++uses[f];
  }

  // Outputs: the last `outputs` gates.
  std::vector<char> is_out(n_total, 0);
  for (std::size_t i = 0; i < options.outputs; ++i)
    is_out[n_total - 1 - i] = 1;

  // Repair pass: every non-output gate must be consumed somewhere, or it
  // (and everything only feeding it) is dead logic no path can traverse.
  // Give each dead net a consumer by stealing a fanin slot of a later gate
  // whose current operand is consumed more than once (acyclic by id order).
  for (std::size_t id = n_total; id-- > n_in;) {
    if (uses[id] > 0 || is_out[id]) continue;
    bool repaired = false;
    for (std::size_t g = id + 1; g < n_total && !repaired; ++g) {
      for (std::size_t& slot : fanin[g]) {
        if (uses[slot] < 2) continue;
        bool duplicate = false;
        for (std::size_t f : fanin[g]) duplicate = duplicate || f == id;
        if (duplicate) break;
        --uses[slot];
        slot = id;
        ++uses[id];
        repaired = true;
        break;
      }
    }
    // Extremely unlikely fallback: promote to an extra output.
    if (!repaired) is_out[id] = 1;
  }

  Netlist nl;
  std::vector<NetId> emitted(n_total);
  for (std::size_t i = 0; i < n_in; ++i)
    emitted[i] = nl.add_input("I" + std::to_string(i));
  for (std::size_t g = 0; g < options.gates; ++g) {
    const std::size_t id = n_in + g;
    std::vector<NetId> fi;
    for (std::size_t f : fanin[id]) fi.push_back(emitted[f]);
    emitted[id] = nl.add_gate(kind[id], "G" + std::to_string(g), std::move(fi));
  }
  for (std::size_t id = n_in; id < n_total; ++id)
    if (is_out[id]) nl.mark_output(emitted[id]);
  nl.set_source("<synthetic seed " + std::to_string(options.seed) + ">");
  return nl;
}

}  // namespace ppd::logic
