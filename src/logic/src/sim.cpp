#include "ppd/logic/sim.hpp"

#include <algorithm>
#include <queue>

#include "ppd/util/error.hpp"

namespace ppd::logic {

Stimulus Stimulus::step(bool initial, double t) {
  Stimulus s;
  s.initial = initial;
  s.changes.push_back({t, !initial});
  return s;
}

Stimulus Stimulus::pulse(bool initial, double t, double width) {
  PPD_REQUIRE(width > 0.0, "pulse width must be positive");
  Stimulus s;
  s.initial = initial;
  s.changes.push_back({t, !initial});
  s.changes.push_back({t + width, initial});
  return s;
}

EventSimResult::EventSimResult(std::vector<bool> initial,
                               std::vector<std::vector<Transition>> changes)
    : initial_(std::move(initial)), changes_(std::move(changes)) {
  PPD_REQUIRE(initial_.size() == changes_.size(), "malformed sim result");
}

bool EventSimResult::initial_value(NetId net) const {
  PPD_REQUIRE(net < initial_.size(), "net id out of range");
  return initial_[net];
}

const std::vector<Transition>& EventSimResult::changes(NetId net) const {
  PPD_REQUIRE(net < changes_.size(), "net id out of range");
  return changes_[net];
}

bool EventSimResult::value_at(NetId net, double t) const {
  bool v = initial_value(net);
  for (const Transition& tr : changes(net)) {
    if (tr.t > t) break;
    v = tr.value;
  }
  return v;
}

std::size_t EventSimResult::activity(NetId net) const {
  return changes(net).size();
}

std::optional<double> EventSimResult::first_pulse_width(NetId net) const {
  const auto& ch = changes(net);
  if (ch.size() < 2) return std::nullopt;
  return ch[1].t - ch[0].t;
}

std::optional<double> EventSimResult::last_change(NetId net) const {
  const auto& ch = changes(net);
  if (ch.empty()) return std::nullopt;
  return ch.back().t;
}

namespace {

struct Event {
  double t;
  std::uint64_t seq;     // stable FIFO order at equal times
  NetId net;
  bool value;
  std::uint64_t epoch;   // lazy-cancellation tag (kPiEpoch = never cancelled)

  bool operator>(const Event& o) const {
    if (t != o.t) return t > o.t;
    return seq > o.seq;
  }
};

constexpr std::uint64_t kPiEpoch = ~std::uint64_t{0};
/// Events closer than this are simultaneous (absorbs double round-off in
/// accumulated delays).
constexpr double kTieWindow = 1e-15;

}  // namespace

EventSimResult simulate(const Netlist& netlist,
                        const std::vector<Stimulus>& pi_stimuli,
                        const EventSimOptions& options) {
  PPD_REQUIRE(pi_stimuli.size() == netlist.inputs().size(),
              "stimulus arity must match the primary inputs");
  PPD_REQUIRE(options.t_stop > 0.0, "t_stop must be positive");

  const std::size_t n = netlist.size();

  // DC initialization from the PI initial values.
  std::vector<bool> pi_init;
  pi_init.reserve(pi_stimuli.size());
  for (const auto& s : pi_stimuli) pi_init.push_back(s.initial);
  std::vector<bool> value = netlist.evaluate(pi_init);
  const std::vector<bool> initial = value;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;

  // Pending-event bookkeeping per net: `projected` is the value the net
  // will hold after all scheduled events fire; `epoch` invalidates queue
  // entries en masse (inertial cancellation); `pending` counts live events.
  std::vector<std::uint64_t> epoch(n, 0);
  std::vector<std::size_t> pending(n, 0);
  std::vector<bool> projected = value;

  const auto schedule = [&](NetId net, bool v, double t) {
    queue.push({t, seq++, net, v, epoch[net]});
    ++pending[net];
    projected[net] = v;
  };

  for (std::size_t i = 0; i < pi_stimuli.size(); ++i) {
    const NetId net = netlist.inputs()[i];
    double prev = -1.0;
    for (const auto& tr : pi_stimuli[i].changes) {
      PPD_REQUIRE(tr.t > prev, "stimulus times must be strictly increasing");
      prev = tr.t;
      queue.push({tr.t, seq++, net, tr.value, kPiEpoch});
    }
  }

  std::vector<std::vector<Transition>> changes(n);
  std::size_t processed = 0;
  std::vector<NetId> changed_nets;
  std::vector<char> gate_marked(n, 0);
  std::vector<NetId> affected;

  while (!queue.empty()) {
    const double t_now = queue.top().t;
    if (t_now > options.t_stop) break;

    // Apply every event in this timestamp batch before evaluating gates:
    // simultaneous input changes are seen together, which keeps same-instant
    // cancellations from suppressing legitimate hazards.
    changed_nets.clear();
    while (!queue.empty() && queue.top().t <= t_now + kTieWindow) {
      const Event ev = queue.top();
      queue.pop();
      if (ev.epoch != kPiEpoch) {
        if (ev.epoch != epoch[ev.net]) continue;  // cancelled
        --pending[ev.net];
      }
      if (value[ev.net] == ev.value) continue;  // no actual change
      value[ev.net] = ev.value;
      changes[ev.net].push_back({ev.t, ev.value});
      changed_nets.push_back(ev.net);
      ++processed;
    }

    // Gates touched by this batch, deduplicated.
    affected.clear();
    for (NetId net : changed_nets) {
      for (NetId gid : netlist.fanout(net)) {
        if (!gate_marked[gid]) {
          gate_marked[gid] = 1;
          affected.push_back(gid);
        }
      }
    }
    for (NetId gid : affected) gate_marked[gid] = 0;

    for (NetId gid : affected) {
      const Gate& g = netlist.gate(gid);
      std::vector<bool> in;
      in.reserve(g.fanin.size());
      for (NetId f : g.fanin) in.push_back(value[f]);
      const bool target = eval_gate(g.kind, in);

      const bool heading_to = pending[gid] > 0 ? projected[gid] : value[gid];
      if (target == heading_to) continue;

      if (options.inertial && pending[gid] > 0) {
        // The inputs changed back before the (strictly future) scheduled
        // output event fired: cancel it — the classic inertial filter.
        ++epoch[gid];
        pending[gid] = 0;
        projected[gid] = value[gid];
        if (value[gid] == target) continue;  // glitch fully swallowed
      }

      const GateTiming& timing = options.library.timing(g.kind);
      const double delay = target ? timing.delay_rise : timing.delay_fall;
      schedule(gid, target, t_now + delay);
    }
  }

  EventSimResult result(initial, std::move(changes));
  result.set_events_processed(processed);
  return result;
}

}  // namespace ppd::logic
