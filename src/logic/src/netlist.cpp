#include "ppd/logic/netlist.hpp"

#include <algorithm>
#include <unordered_map>

#include "ppd/util/error.hpp"

namespace ppd::logic {

const char* logic_kind_name(LogicKind kind) {
  switch (kind) {
    case LogicKind::kInput: return "INPUT";
    case LogicKind::kBuf: return "BUF";
    case LogicKind::kNot: return "NOT";
    case LogicKind::kAnd: return "AND";
    case LogicKind::kOr: return "OR";
    case LogicKind::kNand: return "NAND";
    case LogicKind::kNor: return "NOR";
    case LogicKind::kXor: return "XOR";
    case LogicKind::kXnor: return "XNOR";
  }
  return "?";
}

bool logic_kind_inverting(LogicKind kind) {
  switch (kind) {
    case LogicKind::kNot:
    case LogicKind::kNand:
    case LogicKind::kNor:
    case LogicKind::kXnor: return true;
    default: return false;
  }
}

std::optional<bool> controlling_value(LogicKind kind) {
  switch (kind) {
    case LogicKind::kAnd:
    case LogicKind::kNand: return false;
    case LogicKind::kOr:
    case LogicKind::kNor: return true;
    default: return std::nullopt;  // NOT/BUF/XOR have none
  }
}

bool eval_gate(LogicKind kind, const std::vector<bool>& inputs) {
  const auto all = [&](bool v) {
    return std::all_of(inputs.begin(), inputs.end(), [&](bool b) { return b == v; });
  };
  const auto any = [&](bool v) {
    return std::any_of(inputs.begin(), inputs.end(), [&](bool b) { return b == v; });
  };
  switch (kind) {
    case LogicKind::kInput:
      throw PreconditionError("cannot evaluate an INPUT pseudo-gate");
    case LogicKind::kBuf:
      PPD_REQUIRE(inputs.size() == 1, "BUF takes one input");
      return inputs[0];
    case LogicKind::kNot:
      PPD_REQUIRE(inputs.size() == 1, "NOT takes one input");
      return !inputs[0];
    case LogicKind::kAnd:
      PPD_REQUIRE(!inputs.empty(), "AND needs inputs");
      return all(true);
    case LogicKind::kOr:
      PPD_REQUIRE(!inputs.empty(), "OR needs inputs");
      return any(true);
    case LogicKind::kNand:
      PPD_REQUIRE(!inputs.empty(), "NAND needs inputs");
      return !all(true);
    case LogicKind::kNor:
      PPD_REQUIRE(!inputs.empty(), "NOR needs inputs");
      return !any(true);
    case LogicKind::kXor:
    case LogicKind::kXnor: {
      PPD_REQUIRE(!inputs.empty(), "XOR needs inputs");
      bool acc = false;
      for (bool b : inputs) acc = acc != b;
      return kind == LogicKind::kXor ? acc : !acc;
    }
  }
  throw PreconditionError("unknown gate kind");
}

Tri tri_from_bool(bool b) { return b ? Tri::k1 : Tri::k0; }

Tri eval_gate_ternary(LogicKind kind, const std::vector<Tri>& inputs) {
  PPD_REQUIRE(!inputs.empty(), "gate needs inputs");
  const auto count = [&](Tri v) {
    std::size_t n = 0;
    for (Tri t : inputs) n += t == v ? 1 : 0;
    return n;
  };
  const auto invert = [](Tri t) {
    if (t == Tri::kX) return Tri::kX;
    return t == Tri::k0 ? Tri::k1 : Tri::k0;
  };
  switch (kind) {
    case LogicKind::kInput:
      throw PreconditionError("cannot evaluate an INPUT pseudo-gate");
    case LogicKind::kBuf:
      PPD_REQUIRE(inputs.size() == 1, "BUF takes one input");
      return inputs[0];
    case LogicKind::kNot:
      PPD_REQUIRE(inputs.size() == 1, "NOT takes one input");
      return invert(inputs[0]);
    case LogicKind::kAnd:
    case LogicKind::kNand: {
      Tri v = Tri::kX;
      if (count(Tri::k0) > 0)
        v = Tri::k0;  // a controlling 0 decides regardless of Xs
      else if (count(Tri::k1) == inputs.size())
        v = Tri::k1;
      return kind == LogicKind::kAnd ? v : invert(v);
    }
    case LogicKind::kOr:
    case LogicKind::kNor: {
      Tri v = Tri::kX;
      if (count(Tri::k1) > 0)
        v = Tri::k1;
      else if (count(Tri::k0) == inputs.size())
        v = Tri::k0;
      return kind == LogicKind::kOr ? v : invert(v);
    }
    case LogicKind::kXor:
    case LogicKind::kXnor: {
      if (count(Tri::kX) > 0) return Tri::kX;  // any unknown poisons parity
      bool acc = false;
      for (Tri t : inputs) acc = acc != (t == Tri::k1);
      const Tri v = acc ? Tri::k1 : Tri::k0;
      return kind == LogicKind::kXor ? v : invert(v);
    }
  }
  throw PreconditionError("unknown gate kind");
}

NetId Netlist::add_input(const std::string& name) {
  Gate g;
  g.kind = LogicKind::kInput;
  g.name = name;
  gates_.push_back(std::move(g));
  fanout_.emplace_back();
  is_output_.push_back(0);
  inputs_.push_back(gates_.size() - 1);
  return gates_.size() - 1;
}

NetId Netlist::add_gate(LogicKind kind, const std::string& name,
                        std::vector<NetId> fanin) {
  PPD_REQUIRE(kind != LogicKind::kInput, "use add_input for primary inputs");
  PPD_REQUIRE(!fanin.empty(), "gate needs fanin");
  for (NetId f : fanin)
    PPD_REQUIRE(f < gates_.size(), "fanin id out of range");
  const NetId id = gates_.size();
  Gate g;
  g.kind = kind;
  g.name = name;
  g.fanin = std::move(fanin);
  gates_.push_back(std::move(g));
  fanout_.emplace_back();
  is_output_.push_back(0);
  for (NetId f : gates_.back().fanin) fanout_[f].push_back(id);
  return id;
}

void Netlist::mark_output(NetId net) {
  PPD_REQUIRE(net < gates_.size(), "net id out of range");
  if (is_output_[net]) return;
  is_output_[net] = 1;
  outputs_.push_back(net);
}

const Gate& Netlist::gate(NetId id) const {
  PPD_REQUIRE(id < gates_.size(), "net id out of range");
  return gates_[id];
}

const std::vector<NetId>& Netlist::fanout(NetId id) const {
  PPD_REQUIRE(id < fanout_.size(), "net id out of range");
  return fanout_[id];
}

bool Netlist::is_output(NetId id) const {
  PPD_REQUIRE(id < gates_.size(), "net id out of range");
  return is_output_[id] != 0;
}

NetId Netlist::find(const std::string& name) const {
  for (NetId i = 0; i < gates_.size(); ++i)
    if (gates_[i].name == name) return i;
  throw PreconditionError("unknown net: " + name);
}

bool Netlist::has(const std::string& name) const {
  return std::any_of(gates_.begin(), gates_.end(),
                     [&](const Gate& g) { return g.name == name; });
}

std::vector<NetId> Netlist::topological_order() const {
  std::vector<std::size_t> pending(gates_.size(), 0);
  std::vector<NetId> ready;
  for (NetId i = 0; i < gates_.size(); ++i) {
    pending[i] = gates_[i].fanin.size();
    if (pending[i] == 0) ready.push_back(i);
  }
  std::vector<NetId> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const NetId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NetId f : fanout_[id])
      if (--pending[f] == 0) ready.push_back(f);
  }
  PPD_REQUIRE(order.size() == gates_.size(), "netlist contains a cycle");
  return order;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& pi_values) const {
  PPD_REQUIRE(pi_values.size() == inputs_.size(), "PI value arity mismatch");
  std::vector<bool> value(gates_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[inputs_[i]] = pi_values[i];
  for (NetId id : topological_order()) {
    const Gate& g = gates_[id];
    if (g.kind == LogicKind::kInput) continue;
    std::vector<bool> in;
    in.reserve(g.fanin.size());
    for (NetId f : g.fanin) in.push_back(value[f]);
    value[id] = eval_gate(g.kind, in);
  }
  return value;
}

std::vector<Tri> Netlist::evaluate_ternary(const std::vector<Tri>& pi_values) const {
  PPD_REQUIRE(pi_values.size() == inputs_.size(), "PI value arity mismatch");
  std::vector<Tri> value(gates_.size(), Tri::kX);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[inputs_[i]] = pi_values[i];
  for (NetId id : topological_order()) {
    const Gate& g = gates_[id];
    if (g.kind == LogicKind::kInput) continue;
    std::vector<Tri> in;
    in.reserve(g.fanin.size());
    for (NetId f : g.fanin) in.push_back(value[f]);
    value[id] = eval_gate_ternary(g.kind, in);
  }
  return value;
}

std::size_t Netlist::gate_count() const {
  return gates_.size() - inputs_.size();
}

std::size_t Netlist::depth() const {
  std::vector<std::size_t> level(gates_.size(), 0);
  std::size_t deepest = 0;
  for (NetId id : topological_order()) {
    const Gate& g = gates_[id];
    for (NetId f : g.fanin) level[id] = std::max(level[id], level[f] + 1);
    deepest = std::max(deepest, level[id]);
  }
  return deepest;
}

}  // namespace ppd::logic
