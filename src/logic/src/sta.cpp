#include "ppd/logic/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ppd/util/error.hpp"

namespace ppd::logic {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// XOR-class gates can produce either output edge from any input edge.
bool either_edge(LogicKind kind) {
  return kind == LogicKind::kXor || kind == LogicKind::kXnor;
}

/// Input-edge arrivals that can cause the given output edge of `kind`:
/// non-inverting gates propagate the same polarity, inverting gates the
/// opposite, XOR-class the worse of both.
double causing_arrival(LogicKind kind, bool output_rise, double arr_rise,
                       double arr_fall) {
  if (either_edge(kind)) return std::max(arr_rise, arr_fall);
  const bool input_rise = logic_kind_inverting(kind) ? !output_rise : output_rise;
  return input_rise ? arr_rise : arr_fall;
}

}  // namespace

double StaResult::slack_at(NetId net) const {
  PPD_REQUIRE(net < slack.size(), "net id out of range");
  return slack[net];
}

StaResult run_sta(const Netlist& netlist, const GateTimingLibrary& library,
                  double clock_period) {
  const std::size_t n = netlist.size();
  StaResult res;
  res.arrival.assign(n, 0.0);
  res.arrival_rise.assign(n, 0.0);
  res.arrival_fall.assign(n, 0.0);
  res.required.assign(n, kInf);
  res.slack.assign(n, 0.0);

  const auto order = netlist.topological_order();

  // Forward: latest arrival per output-edge polarity (PIs launch both
  // polarities at t = 0). A rising output of an inverting gate is caused
  // by a falling input and costs delay_rise — collapsing rise/fall with
  // max() here would overstate delay through inverter-heavy paths.
  for (NetId id : order) {
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    const GateTiming& t = library.timing(g.kind);
    double rise_src = 0.0;
    double fall_src = 0.0;
    for (NetId f : g.fanin) {
      rise_src = std::max(rise_src,
                          causing_arrival(g.kind, true, res.arrival_rise[f],
                                          res.arrival_fall[f]));
      fall_src = std::max(fall_src,
                          causing_arrival(g.kind, false, res.arrival_rise[f],
                                          res.arrival_fall[f]));
    }
    res.arrival_rise[id] = rise_src + t.delay_rise;
    res.arrival_fall[id] = fall_src + t.delay_fall;
    res.arrival[id] = std::max(res.arrival_rise[id], res.arrival_fall[id]);
  }
  for (NetId o : netlist.outputs())
    res.critical_delay = std::max(res.critical_delay, res.arrival[o]);

  res.clock_period = clock_period > 0.0 ? clock_period : res.critical_delay;

  // Backward: required times from the outputs, per causing polarity.
  std::vector<double> req_rise(n, kInf);
  std::vector<double> req_fall(n, kInf);
  for (NetId o : netlist.outputs()) {
    req_rise[o] = std::min(req_rise[o], res.clock_period);
    req_fall[o] = std::min(req_fall[o], res.clock_period);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NetId id = *it;
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    const GateTiming& t = library.timing(g.kind);
    const double via_rise = req_rise[id] - t.delay_rise;
    const double via_fall = req_fall[id] - t.delay_fall;
    for (NetId f : g.fanin) {
      if (either_edge(g.kind)) {
        const double via = std::min(via_rise, via_fall);
        req_rise[f] = std::min(req_rise[f], via);
        req_fall[f] = std::min(req_fall[f], via);
      } else if (logic_kind_inverting(g.kind)) {
        req_fall[f] = std::min(req_fall[f], via_rise);
        req_rise[f] = std::min(req_rise[f], via_fall);
      } else {
        req_rise[f] = std::min(req_rise[f], via_rise);
        req_fall[f] = std::min(req_fall[f], via_fall);
      }
    }
  }
  // Collapse to the legacy per-net view: the binding (smallest-slack)
  // polarity. Nets feeding nothing that reaches an output keep infinite
  // required time; clamp their slack to the clock period for sane
  // reporting.
  for (NetId id = 0; id < n; ++id) {
    const double slack_rise = (std::isinf(req_rise[id]) ? res.clock_period
                                                        : req_rise[id]) -
                              res.arrival_rise[id];
    const double slack_fall = (std::isinf(req_fall[id]) ? res.clock_period
                                                        : req_fall[id]) -
                              res.arrival_fall[id];
    res.slack[id] = std::min(slack_rise, slack_fall);
    res.required[id] = std::min(req_rise[id], req_fall[id]);
  }
  return res;
}

Path critical_path(const Netlist& netlist, const StaResult& sta,
                   const GateTimingLibrary& library) {
  // Walk backward from the output with the largest arrival, always through
  // the fanin whose causing-polarity arrival dominates. Ties keep the
  // first (lowest-id) fanin, so the walk is deterministic.
  PPD_REQUIRE(!netlist.outputs().empty(), "netlist has no outputs");
  NetId cursor = netlist.outputs().front();
  for (NetId o : netlist.outputs())
    if (sta.arrival[o] > sta.arrival[cursor]) cursor = o;

  bool rise = sta.arrival_rise[cursor] >= sta.arrival_fall[cursor];
  std::vector<NetId> rev{cursor};
  while (netlist.gate(cursor).kind != LogicKind::kInput) {
    const Gate& g = netlist.gate(cursor);
    const GateTiming& t = library.timing(g.kind);
    const double target = (rise ? sta.arrival_rise[cursor]
                                : sta.arrival_fall[cursor]) -
                          (rise ? t.delay_rise : t.delay_fall);
    // The causing input polarity for the current output edge.
    const bool cause_rise =
        either_edge(g.kind) ? true : (logic_kind_inverting(g.kind) ? !rise : rise);
    NetId best = g.fanin.front();
    bool best_rise = cause_rise;
    double best_err = kInf;
    for (NetId f : g.fanin) {
      double arr;
      bool arr_rise;
      if (either_edge(g.kind)) {
        arr_rise = sta.arrival_rise[f] >= sta.arrival_fall[f];
        arr = arr_rise ? sta.arrival_rise[f] : sta.arrival_fall[f];
      } else {
        arr_rise = cause_rise;
        arr = cause_rise ? sta.arrival_rise[f] : sta.arrival_fall[f];
      }
      const double err = std::abs(arr - target);
      if (err < best_err) {
        best_err = err;
        best = f;
        best_rise = arr_rise;
      }
    }
    cursor = best;
    rise = best_rise;
    rev.push_back(cursor);
  }
  Path p;
  p.nets.assign(rev.rbegin(), rev.rend());
  return p;
}

std::vector<NetId> slack_sites(const Netlist& netlist, const StaResult& sta,
                               double min_slack) {
  std::vector<NetId> sites;
  for (NetId id = 0; id < netlist.size(); ++id) {
    if (netlist.gate(id).kind == LogicKind::kInput) continue;
    if (sta.slack[id] >= min_slack) sites.push_back(id);
  }
  return sites;
}

}  // namespace ppd::logic
