#include "ppd/logic/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ppd/util/error.hpp"

namespace ppd::logic {

namespace {

double gate_delay_max(const GateTimingLibrary& lib, LogicKind kind) {
  const GateTiming& t = lib.timing(kind);
  return std::max(t.delay_rise, t.delay_fall);
}

}  // namespace

double StaResult::slack_at(NetId net) const {
  PPD_REQUIRE(net < slack.size(), "net id out of range");
  return slack[net];
}

StaResult run_sta(const Netlist& netlist, const GateTimingLibrary& library,
                  double clock_period) {
  const std::size_t n = netlist.size();
  StaResult res;
  res.arrival.assign(n, 0.0);
  res.required.assign(n, std::numeric_limits<double>::infinity());
  res.slack.assign(n, 0.0);

  const auto order = netlist.topological_order();

  // Forward: latest arrival (PIs arrive at t = 0).
  for (NetId id : order) {
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    double worst = 0.0;
    for (NetId f : g.fanin) worst = std::max(worst, res.arrival[f]);
    res.arrival[id] = worst + gate_delay_max(library, g.kind);
  }
  for (NetId o : netlist.outputs())
    res.critical_delay = std::max(res.critical_delay, res.arrival[o]);

  res.clock_period = clock_period > 0.0 ? clock_period : res.critical_delay;

  // Backward: required times from the outputs.
  for (NetId o : netlist.outputs())
    res.required[o] = std::min(res.required[o], res.clock_period);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NetId id = *it;
    const Gate& g = netlist.gate(id);
    if (g.kind == LogicKind::kInput) continue;
    const double req_at_inputs =
        res.required[id] - gate_delay_max(library, g.kind);
    for (NetId f : g.fanin)
      res.required[f] = std::min(res.required[f], req_at_inputs);
  }
  // Nets feeding nothing that reaches an output keep infinite required
  // time; clamp their slack to the clock period for sane reporting.
  for (NetId id = 0; id < n; ++id) {
    if (std::isinf(res.required[id]))
      res.slack[id] = res.clock_period - res.arrival[id];
    else
      res.slack[id] = res.required[id] - res.arrival[id];
  }
  return res;
}

Path critical_path(const Netlist& netlist, const StaResult& sta,
                   const GateTimingLibrary& library) {
  // Walk backward from the output with the largest arrival, always through
  // the fanin that dominates the arrival time.
  PPD_REQUIRE(!netlist.outputs().empty(), "netlist has no outputs");
  NetId cursor = netlist.outputs().front();
  for (NetId o : netlist.outputs())
    if (sta.arrival[o] > sta.arrival[cursor]) cursor = o;

  std::vector<NetId> rev{cursor};
  while (netlist.gate(cursor).kind != LogicKind::kInput) {
    const Gate& g = netlist.gate(cursor);
    const double target =
        sta.arrival[cursor] - gate_delay_max(library, g.kind);
    NetId best = g.fanin.front();
    double best_err = std::numeric_limits<double>::infinity();
    for (NetId f : g.fanin) {
      const double err = std::abs(sta.arrival[f] - target);
      if (err < best_err) {
        best_err = err;
        best = f;
      }
    }
    cursor = best;
    rev.push_back(cursor);
  }
  Path p;
  p.nets.assign(rev.rbegin(), rev.rend());
  return p;
}

std::vector<NetId> slack_sites(const Netlist& netlist, const StaResult& sta,
                               double min_slack) {
  std::vector<NetId> sites;
  for (NetId id = 0; id < netlist.size(); ++id) {
    if (netlist.gate(id).kind == LogicKind::kInput) continue;
    if (sta.slack[id] >= min_slack) sites.push_back(id);
  }
  return sites;
}

}  // namespace ppd::logic
