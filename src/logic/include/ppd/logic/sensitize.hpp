// Static path sensitization by line justification: find a primary-input
// assignment that puts every side input of every on-path gate at its
// non-controlling value, so a transition or pulse launched at the path
// input propagates to the path output (the test-application precondition of
// Sects. 3 and 5). Classic branch-and-backtrack justification with an
// effort bound — the same machinery path-delay-fault ATPG uses, which the
// paper notes "can easily be modified" for pulse tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppd/logic/paths.hpp"

namespace ppd::logic {

struct SensitizationResult {
  bool ok = false;
  /// PI assignment (ordered as netlist.inputs()); unconstrained inputs are
  /// filled with 0.
  std::vector<bool> pi_values;
  /// care[i] is false when PI i is a certified don't-care: the three-valued
  /// verification proved the path stays sensitized (both phases, output
  /// toggling) for EVERY completion of that input. Empty when the ternary
  /// certification failed and the whole vector must be applied as-is.
  std::vector<char> pi_care;
  std::uint64_t nodes_visited = 0;

  /// Number of certified don't-care inputs.
  [[nodiscard]] std::size_t dont_care_count() const;
};

struct SensitizeOptions {
  std::uint64_t effort_limit = 200000;  ///< node budget per restart
  /// The justifier backtracks within each requirement but commits choices
  /// greedily across requirements; randomized restarts with permuted branch
  /// order recover most of the lost completeness cheaply.
  int restarts = 8;
  std::uint64_t seed = 0x5eed;
};

/// Try to sensitize `path` for a *transition/pulse* launch: side inputs at
/// non-controlling values under BOTH phases of the path's input PI, with
/// the path output toggling between the phases (a single-phase static
/// sensitization is not enough for the pulse method — the pulse visits both
/// input values). XOR/XNOR side inputs impose no non-controlling
/// requirement (they always propagate), only consistency.
[[nodiscard]] SensitizationResult sensitize_path(const Netlist& netlist,
                                                 const Path& path,
                                                 const SensitizeOptions& options = {});

/// Check a PI assignment statically: true when every side input of every
/// on-path gate evaluates to a non-controlling value.
[[nodiscard]] bool is_sensitized(const Netlist& netlist, const Path& path,
                                 const std::vector<bool>& pi_values);

}  // namespace ppd::logic
