// Fault-dictionary diagnosis: once a pulse-test set is applied on the
// tester, the pass/fail pattern (syndrome) across the tests points back at
// the defect location. The dictionary stores each modelled fault's
// predicted syndrome; diagnosis returns the faults whose prediction matches
// the observation exactly, plus near misses (Hamming distance) to absorb
// modelling error — the classic cause-effect dictionary flow, driven here
// by the pulse-propagation fault simulator.
#pragma once

#include <cstdint>

#include "ppd/logic/faultsim.hpp"

namespace ppd::logic {

class FaultDictionary {
 public:
  /// Precompute the syndrome of every fault under every test.
  FaultDictionary(const FaultSimulator& sim, std::vector<LogicFault> faults,
                  const std::vector<PulseTest>& tests);

  [[nodiscard]] std::size_t fault_count() const { return faults_.size(); }
  [[nodiscard]] std::size_t test_count() const { return tests_; }
  [[nodiscard]] const LogicFault& fault(std::size_t i) const;
  /// Predicted syndrome of fault i: syndrome[t] is 1 when test t fails.
  [[nodiscard]] const std::vector<char>& syndrome(std::size_t i) const;

  /// Faults whose prediction equals `observed` (observed[t] = 1 for a
  /// failing test).
  [[nodiscard]] std::vector<std::size_t> exact_matches(
      const std::vector<char>& observed) const;

  struct NearMatch {
    std::size_t fault_index;
    std::size_t distance;  ///< Hamming distance to the observation
  };
  /// Faults within `max_distance` of the observation, closest first
  /// (ties in fault order). Exact matches are included at distance 0.
  [[nodiscard]] std::vector<NearMatch> near_matches(
      const std::vector<char>& observed, std::size_t max_distance) const;

  /// Diagnostic resolution: number of distinct syndromes over the fault
  /// list divided by the fault count (1.0 = fully distinguishable).
  [[nodiscard]] double resolution() const;

 private:
  std::vector<LogicFault> faults_;
  std::size_t tests_ = 0;
  std::vector<std::vector<char>> syndromes_;
};

}  // namespace ppd::logic
