// Static timing analysis over a gate-level netlist with the calibrated
// timing library — the machinery behind the paper's premise: the targeted
// defects sit on paths whose *slack* exceeds the defect-induced delay, so
// they escape at-speed testing. STA identifies those non-critical fault
// sites and quantifies the slack the defect would have to eat.
#pragma once

#include <vector>

#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/paths.hpp"

namespace ppd::logic {

struct StaResult {
  /// Worst-case (latest) arrival time per net, from the primary inputs:
  /// the worse of arrival_rise / arrival_fall.
  std::vector<double> arrival;
  /// Latest arrival per output-edge polarity. Polarity matters: an
  /// inverting gate's rising output edge is caused by a falling input edge
  /// and costs delay_rise, so rise/fall must be tracked separately rather
  /// than collapsed with max() per gate.
  std::vector<double> arrival_rise;
  std::vector<double> arrival_fall;
  /// Required time per net for the given clock period (latest time a change
  /// may appear without violating timing at any reachable output).
  std::vector<double> required;
  /// slack[net] = required[net] - arrival[net].
  std::vector<double> slack;
  /// Delay of the longest PI->PO path (the critical-path delay).
  double critical_delay = 0.0;
  double clock_period = 0.0;

  [[nodiscard]] double slack_at(NetId net) const;
};

/// Run STA with polarity-aware per-gate rise/fall delays.
/// `clock_period` <= 0 means "use the critical delay" (zero worst slack).
[[nodiscard]] StaResult run_sta(const Netlist& netlist,
                                const GateTimingLibrary& library,
                                double clock_period = 0.0);

/// Extract one critical path (PI -> PO chain realizing critical_delay).
[[nodiscard]] Path critical_path(const Netlist& netlist, const StaResult& sta,
                                 const GateTimingLibrary& library);

/// Fault sites (gate outputs) whose slack is at least `min_slack` — the
/// defects there are invisible to delay testing until the defect eats that
/// much delay; they are the pulse method's target population.
[[nodiscard]] std::vector<NetId> slack_sites(const Netlist& netlist,
                                             const StaResult& sta,
                                             double min_slack);

}  // namespace ppd::logic
