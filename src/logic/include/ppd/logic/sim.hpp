// Event-driven timed gate-level simulator with inertial-delay filtering —
// the functional half of the paper's logic-level fault-simulation tool.
// It answers "does this transition/pulse reach the output, and when";
// quantitative pulse-width estimates come from the attenuation chain
// (ppd/logic/attenuation.hpp).
#pragma once

#include <vector>

#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/netlist.hpp"

namespace ppd::logic {

struct Transition {
  double t = 0.0;
  bool value = false;
};

/// Stimulus on one primary input.
struct Stimulus {
  bool initial = false;
  std::vector<Transition> changes;  ///< strictly increasing times

  /// A single transition at time t.
  static Stimulus step(bool initial, double t);
  /// A pulse of the given width starting at time t (returns to `initial`).
  static Stimulus pulse(bool initial, double t, double width);
};

struct EventSimOptions {
  GateTimingLibrary library = GateTimingLibrary::generic();
  /// When true, an output event scheduled while an opposite event is still
  /// pending cancels it (classic inertial filtering: pulses shorter than
  /// the gate delay die).
  bool inertial = true;
  double t_stop = 20e-9;
};

/// Per-net change history.
class EventSimResult {
 public:
  EventSimResult(std::vector<bool> initial,
                 std::vector<std::vector<Transition>> changes);

  [[nodiscard]] bool initial_value(NetId net) const;
  [[nodiscard]] const std::vector<Transition>& changes(NetId net) const;

  /// Value of a net at time t.
  [[nodiscard]] bool value_at(NetId net, double t) const;
  /// Number of transitions observed on a net.
  [[nodiscard]] std::size_t activity(NetId net) const;
  /// Width of the first pulse on the net (two opposite transitions), or
  /// nullopt when fewer than two transitions occurred.
  [[nodiscard]] std::optional<double> first_pulse_width(NetId net) const;
  /// Time of the last transition on the net, or nullopt when silent.
  [[nodiscard]] std::optional<double> last_change(NetId net) const;

  [[nodiscard]] std::size_t events_processed() const { return events_; }
  void set_events_processed(std::size_t n) { events_ = n; }

 private:
  std::vector<bool> initial_;
  std::vector<std::vector<Transition>> changes_;
  std::size_t events_ = 0;
};

/// Run the simulation; `pi_stimuli` ordered as netlist.inputs().
[[nodiscard]] EventSimResult simulate(const Netlist& netlist,
                                      const std::vector<Stimulus>& pi_stimuli,
                                      const EventSimOptions& options = {});

}  // namespace ppd::logic
