// Gate-level netlist for the logic-level pulse-propagation fault simulator
// the paper announces in its conclusions. Read from ISCAS-style .bench text
// or produced by the synthetic benchmark generator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppd::logic {

enum class LogicKind {
  kInput,  // primary input pseudo-gate
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
};

[[nodiscard]] const char* logic_kind_name(LogicKind kind);
[[nodiscard]] bool logic_kind_inverting(LogicKind kind);
/// Controlling input value, if the kind has one (AND/NAND: 0, OR/NOR: 1).
[[nodiscard]] std::optional<bool> controlling_value(LogicKind kind);

/// Boolean evaluation.
[[nodiscard]] bool eval_gate(LogicKind kind, const std::vector<bool>& inputs);

/// Three-valued logic (0 / 1 / unknown) for reasoning about partially
/// specified vectors: a net is k0/k1 only when every completion of the X
/// inputs yields that value under the standard pessimistic calculus.
enum class Tri : unsigned char { k0, k1, kX };

[[nodiscard]] Tri tri_from_bool(bool b);
[[nodiscard]] Tri eval_gate_ternary(LogicKind kind, const std::vector<Tri>& inputs);

using NetId = std::size_t;

struct Gate {
  LogicKind kind = LogicKind::kInput;
  std::string name;              ///< also the output net name
  std::vector<NetId> fanin;      ///< driving gates (by id)
};

/// A combinational netlist. Gate ids double as net ids (single-output
/// gates, ISCAS convention).
class Netlist {
 public:
  /// Add a primary input. Returns its net id.
  NetId add_input(const std::string& name);
  /// Add a gate; fanin ids must already exist.
  NetId add_gate(LogicKind kind, const std::string& name,
                 std::vector<NetId> fanin);
  /// Mark an existing net as primary output.
  void mark_output(NetId net);

  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(NetId id) const;
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NetId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<NetId>& fanout(NetId id) const;
  [[nodiscard]] bool is_output(NetId id) const;

  [[nodiscard]] NetId find(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// Gate ids in topological order (inputs first). Throws on cycles.
  [[nodiscard]] std::vector<NetId> topological_order() const;

  /// Full functional evaluation: values for every net given PI values
  /// (ordered as inputs()).
  [[nodiscard]] std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;

  /// Three-valued evaluation with possibly-unknown primary inputs.
  [[nodiscard]] std::vector<Tri> evaluate_ternary(
      const std::vector<Tri>& pi_values) const;

  /// Number of gates that are not primary inputs.
  [[nodiscard]] std::size_t gate_count() const;
  /// Longest input-to-output depth in gate levels.
  [[nodiscard]] std::size_t depth() const;

  /// Where this netlist came from (file path, "<c17>", ...). Used by lint
  /// diagnostics and sweep error context; empty when unknown.
  void set_source(std::string source) { source_ = std::move(source); }
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::string source_;
  std::vector<Gate> gates_;
  std::vector<std::vector<NetId>> fanout_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<char> is_output_;
};

}  // namespace ppd::logic
