// ISCAS-85/89 ".bench" format support: parser, writer, the authentic c17
// benchmark, and a deterministic synthetic generator producing C432-class
// circuits (36 PIs / 7 POs / ~160 NAND-NOR-NOT gates). The generator is the
// documented substitution for the real C432 netlist (see DESIGN.md): the
// Fig. 11 experiment only needs a population of structurally diverse paths,
// and the parser accepts a real c432.bench drop-in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ppd/logic/netlist.hpp"

namespace ppd::logic {

/// Parse .bench text. Throws ParseError on malformed input and undefined
/// signals.
[[nodiscard]] Netlist parse_bench(const std::string& text);

/// Read a .bench file from disk.
[[nodiscard]] Netlist load_bench_file(const std::string& path);

/// Serialize back to .bench text (INPUT/OUTPUT decls then gate lines in
/// topological order).
[[nodiscard]] std::string write_bench(const Netlist& netlist);

/// The authentic ISCAS-85 c17 netlist (6 NAND2 gates).
[[nodiscard]] Netlist c17();

/// Options for the synthetic benchmark generator.
struct SyntheticOptions {
  std::size_t inputs = 36;
  std::size_t outputs = 7;
  std::size_t gates = 160;
  std::uint64_t seed = 432;
  std::size_t max_fanin = 3;
};

/// Deterministic pseudo-random combinational circuit out of
/// NAND2/NAND3/NOR2/NOR3/NOT — the C432-class substitute.
[[nodiscard]] Netlist synthetic_benchmark(const SyntheticOptions& options);

}  // namespace ppd::logic
