// Logic-level pulse-propagation fault simulator — the tool the paper's
// conclusion announces ("a logic level fault simulation tool is under
// development in order to apply our method to the case of large
// combinational networks").
//
// Faults are resistive opens attached to gate outputs; their electrical
// effect is folded into the faulty gate's attenuation model through
// R-proportional coefficients (calibrated against the transistor-level
// simulator; see the faultsim tests). Pulse polarity is tracked along each
// path because an internal ROP only attacks the output edge driven by the
// broken network:
//
//   * internal pull-up ROP   — dampens pulses whose output leading edge
//                              rises (positive output pulses);
//   * internal pull-down ROP — mirror (negative output pulses);
//   * external ROP           — dampens both polarities and adds delay.
//
// On top of the simulator sits a greedy pulse-test ATPG: enumerate paths
// through each fault site, sensitize them (two-phase, see sensitize.hpp),
// pick the injected width at the fault-free chain's asymptotic onset, and
// keep tests until the fault list is covered or abandoned.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppd/exec/cancel.hpp"
#include "ppd/logic/attenuation.hpp"
#include "ppd/logic/sensitize.hpp"
#include "ppd/resil/quarantine.hpp"
#include "ppd/resil/sweep_guard.hpp"

namespace ppd::logic {

enum class LogicFaultKind {
  kInternalRopPullUp,
  kInternalRopPullDown,
  kExternalRop,
};

[[nodiscard]] const char* logic_fault_kind_name(LogicFaultKind kind);

struct LogicFault {
  NetId gate = 0;            ///< fault site: this gate's output
  LogicFaultKind kind = LogicFaultKind::kExternalRop;
  double resistance = 10e3;  ///< defect resistance [ohm]
};

/// R-proportional degradation coefficients (effective capacitances): the
/// slowed edge's filtering threshold grows by R * c, the propagation delay
/// by R * c_delay. Defaults fitted against the electrical layer for the
/// default process and loads.
struct FaultTimingCoefficients {
  double c_internal = 35e-15;  ///< [F] w_block growth, attacked polarity
  double c_external = 14e-15;  ///< [F] w_block growth, both polarities
  double c_delay = 16e-15;     ///< [F] added delay per ohm (external)
  /// Width loss of *wide* (asymptotic-region) pulses. An internal ROP's
  /// one-edge attack shrinks every pulse (electrically ~50 fF/ohm at the
  /// default loads); an external ROP slows both edges symmetrically, so
  /// wide pulses keep most of their width (the paper's own observation) —
  /// only a small residual shrink remains.
  double c_internal_shrink = 30e-15;
  double c_external_shrink = 5e-15;
};

/// Execution knobs for fault-list evaluation. Every per-fault (and
/// per-test) verdict is independent and written to its own slot, so the
/// parallel result is identical to the serial one at any thread count.
struct FaultSimOptions {
  /// Parallel lanes over the fault list (0 = hardware concurrency,
  /// 1 = serial).
  int threads = 1;
  /// Fire to abandon the evaluation (raises exec::CancelledError).
  exec::CancelToken cancel;
  /// Resilience policy for FaultSimulator::run (quarantine, budgets,
  /// checkpoint/resume, fault injection); all-defaults = fail fast.
  resil::SweepPolicy resil;
};

/// One applied pulse test: a sensitized path, the PI vector holding the
/// side inputs, the injected width and the sensing threshold.
struct PulseTest {
  Path path;
  std::vector<bool> vector;  ///< PI values (path input's rest value included)
  bool positive_pulse = true;  ///< h (low-high-low) or l at the path input
  double w_in = 0.0;
  double w_th = 0.0;
};

/// Per-fault verdicts plus the aggregate.
struct FaultCoverage {
  std::vector<char> detected;  ///< parallel to the fault list
  std::size_t detected_count = 0;
  /// Faults whose evaluation was quarantined (FaultSimulator::run with a
  /// quarantine policy only; empty elsewhere / in strict mode).
  resil::QuarantineReport quarantine;
  [[nodiscard]] std::size_t n_quarantined() const { return quarantine.size(); }
  /// Detected fraction over the VALID faults (quarantined ones drop from
  /// the denominator; with an empty report this is detected/faults).
  [[nodiscard]] double coverage(std::size_t faults) const {
    const std::size_t valid =
        faults > quarantine.size() ? faults - quarantine.size() : 0;
    return valid == 0 ? 0.0
                      : static_cast<double>(detected_count) /
                            static_cast<double>(valid);
  }
};

class FaultSimulator {
 public:
  FaultSimulator(const Netlist& netlist, GateTimingLibrary library,
                 FaultTimingCoefficients coefficients = {});

  /// Output pulse width predicted for `test`, with `fault` active
  /// (nullptr = fault-free machine). 0 means the pulse died.
  [[nodiscard]] double response(const PulseTest& test,
                                const LogicFault* fault) const;

  /// Response with SEVERAL simultaneous faults active. Unlike the
  /// transition-ordering method the paper criticizes ([7]), pulse dampening
  /// only *compounds* along a path — multiple defects can never mask each
  /// other back into a passing response (asserted by the test suite).
  [[nodiscard]] double response_multi(const PulseTest& test,
                                      const std::vector<LogicFault>& faults) const;

  /// Detection predicate: the faulty response falls below the threshold
  /// while the path is structurally exercised (the fault site must lie on
  /// the test's path — opens elsewhere don't affect it in this model).
  [[nodiscard]] bool detects(const PulseTest& test, const LogicFault& fault) const;

  /// Simulate a test set against a fault list (faults evaluated in
  /// parallel per `exec_opt.threads`; deterministic at any setting).
  [[nodiscard]] FaultCoverage run(const std::vector<LogicFault>& faults,
                                  const std::vector<PulseTest>& tests,
                                  const FaultSimOptions& exec_opt = {}) const;

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }
  [[nodiscard]] const GateTimingLibrary& library() const { return library_; }

  /// The faulty gate's effective timing for a pulse of the given output
  /// polarity (exposed for tests).
  [[nodiscard]] GateTiming faulty_timing(const Gate& gate, const LogicFault& fault,
                                         bool positive_output_pulse) const;

 private:
  const Netlist& netlist_;
  GateTimingLibrary library_;
  FaultTimingCoefficients coeff_;
};

/// Enumerate ROP faults (all three kinds) of resistance `r` at each site.
[[nodiscard]] std::vector<LogicFault> enumerate_rop_faults(
    const std::vector<NetId>& sites, double r);

struct AtpgOptions {
  std::size_t paths_per_site = 16;   ///< enumeration cap per fault site
  double w_th_floor = 60e-12;        ///< smallest realizable sensor threshold
  double sensor_guard = 0.10;        ///< w_th back-off from fault-free width
  double w_in_max = 1.2e-9;          ///< largest generator width available
  /// Grid used to locate the fault-free asymptotic onset.
  std::size_t w_grid_points = 13;
  SensitizeOptions sensitize;
  /// Fault-list evaluation lanes (cross-detection folds, DF-testing
  /// verdicts; 0 = hardware concurrency, 1 = serial). The greedy test
  /// selection order itself is sequential and unchanged.
  FaultSimOptions exec;
};

struct AtpgResult {
  std::vector<PulseTest> tests;
  FaultCoverage coverage;
  std::size_t faults_total = 0;
  std::size_t aborted = 0;  ///< faults with no sensitizable path
};

/// Greedy test generation over `faults` (deterministic).
[[nodiscard]] AtpgResult generate_pulse_tests(const FaultSimulator& sim,
                                              const std::vector<LogicFault>& faults,
                                              const AtpgOptions& options = {});

/// Reverse-pass test-set compaction: drop every test whose detected faults
/// are covered by the remaining tests (classic ATPG static compaction).
/// Returns the compacted set; coverage is preserved by construction. The
/// detection matrix builds in parallel per `exec_opt.threads`; the reverse
/// dropping pass is inherently sequential and stays so.
[[nodiscard]] std::vector<PulseTest> compact_tests(
    const FaultSimulator& sim, const std::vector<LogicFault>& faults,
    std::vector<PulseTest> tests, const FaultSimOptions& exec_opt = {});

/// Logic-level model of reduced-clock delay-fault testing, for the
/// circuit-scale comparison against the pulse method: a fault on a
/// sensitized path is detected when the faulty path delay plus the
/// flip-flop overhead exceeds the applied test clock.
struct DelayTestModel {
  double clock_period = 0.0;   ///< applied (reduced) test clock T'
  double ff_overhead = 100e-12;
};

/// Worst-edge path delay with `fault` active (nullptr = fault-free).
[[nodiscard]] double path_delay_logic(const FaultSimulator& sim, const Path& path,
                                      const LogicFault* fault);

/// Would reduced-clock DF testing along `path` expose `fault`? The path
/// must be sensitizable (caller's responsibility) and carry the fault.
[[nodiscard]] bool delay_test_detects(const FaultSimulator& sim, const Path& path,
                                      const LogicFault& fault,
                                      const DelayTestModel& model);

/// Circuit-scale DF-testing coverage over the same fault list: for each
/// fault, try the enumerated sensitizable paths through its site at clock
/// `model.clock_period` (0 = the circuit's critical delay, i.e. at-speed).
[[nodiscard]] FaultCoverage run_delay_testing(const FaultSimulator& sim,
                                              const std::vector<LogicFault>& faults,
                                              DelayTestModel model,
                                              const AtpgOptions& options = {});

}  // namespace ppd::logic
