// Structural path enumeration through a fault site — the test-generation
// front end of Sect. 5: to detect a fault we must pick a PI-to-PO path
// through the fault location, then sensitize it and choose the pulse pair
// (w_in, w_th) the path supports.
#pragma once

#include <vector>

#include "ppd/logic/netlist.hpp"

namespace ppd::logic {

/// A structural path: consecutive nets from a primary input to a primary
/// output; nets[i+1] is a fanout gate of nets[i].
struct Path {
  std::vector<NetId> nets;

  [[nodiscard]] NetId input() const { return nets.front(); }
  [[nodiscard]] NetId output() const { return nets.back(); }
  [[nodiscard]] std::size_t length() const { return nets.size(); }
};

/// Gate kinds traversed by the path (excluding the PI pseudo-gate).
[[nodiscard]] std::vector<LogicKind> path_kinds(const Netlist& netlist,
                                                const Path& path);

/// All PI->PO paths through `via`, capped at `limit` (breadth bounded both
/// upstream and downstream; deterministic order).
[[nodiscard]] std::vector<Path> enumerate_paths_through(const Netlist& netlist,
                                                        NetId via,
                                                        std::size_t limit = 64);

/// All PI->PO paths of the circuit, capped at `limit`.
[[nodiscard]] std::vector<Path> enumerate_all_paths(const Netlist& netlist,
                                                    std::size_t limit = 256);

}  // namespace ppd::logic
