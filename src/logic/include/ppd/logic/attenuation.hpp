// Logic-level pulse-attenuation model (after Omana et al. [10], the model
// the paper builds its logic-level tool on): each gate maps an input pulse
// width to an output pulse width through a piecewise-linear characteristic
//
//        0                                  w <= w_block   (filtered)
//  w' =  (w - w_block) * k                  w_block < w < w_pass
//        w - shrink                         w >= w_pass    (asymptotic)
//
// with k chosen to make the characteristic continuous at w_pass. Chaining
// these per-gate maps along a path reproduces the three-region path-level
// transfer function of Fig. 10 at logic-simulation cost, which is what makes
// Fig. 11-scale path screening tractable. The constants can be calibrated
// from the electrical simulator (core::calibrate_timing_library).
#pragma once

#include <map>
#include <vector>

#include "ppd/logic/netlist.hpp"

namespace ppd::logic {

struct GateTiming {
  double delay_rise = 60e-12;   ///< input change -> rising output [s]
  double delay_fall = 50e-12;   ///< input change -> falling output [s]
  double w_block = 40e-12;      ///< pulses at or below: fully dampened
  double w_pass = 120e-12;      ///< pulses at or above: asymptotic region
  double shrink = 5e-12;        ///< width loss in the asymptotic region

  /// Average delay, used when edge polarity is unknown.
  [[nodiscard]] double delay_avg() const { return 0.5 * (delay_rise + delay_fall); }
};

class GateTimingLibrary {
 public:
  /// Timing for a kind; falls back to the default entry.
  [[nodiscard]] const GateTiming& timing(LogicKind kind) const;
  void set(LogicKind kind, const GateTiming& t) { by_kind_[kind] = t; }
  void set_default(const GateTiming& t) { default_ = t; }

  /// Hand-calibrated values matching the repository's 180nm-class cells.
  [[nodiscard]] static GateTimingLibrary generic();

 private:
  std::map<LogicKind, GateTiming> by_kind_;
  GateTiming default_;
};

/// One gate's width map.
[[nodiscard]] double gate_pulse_out(const GateTiming& t, double w_in);

/// Chain the width map along a sequence of gate kinds (0 once dampened).
[[nodiscard]] double chain_pulse_out(const GateTimingLibrary& lib,
                                     const std::vector<LogicKind>& kinds,
                                     double w_in);

/// Smallest input width whose chained output meets `w_out_target`,
/// found by bisection; returns nullopt when even `w_in_max` fails.
[[nodiscard]] std::optional<double> required_input_width(
    const GateTimingLibrary& lib, const std::vector<LogicKind>& kinds,
    double w_out_target, double w_in_max = 2e-9, double resolution = 1e-13);

/// Sum of per-gate average delays along a kind sequence (a quick path-delay
/// estimate for path ranking).
[[nodiscard]] double chain_delay(const GateTimingLibrary& lib,
                                 const std::vector<LogicKind>& kinds);

}  // namespace ppd::logic
