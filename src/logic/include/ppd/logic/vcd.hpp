// VCD (Value Change Dump, IEEE 1364) export of event-simulation results —
// the standard waveform interchange format, viewable in GTKWave and
// friends. Lets a downstream user *see* the pulse travelling (or dying in)
// a faulty circuit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ppd/logic/sim.hpp"

namespace ppd::logic {

struct VcdOptions {
  /// Timescale unit written to the header; event times are rounded to it.
  double timescale = 1e-12;  ///< 1 ps
  std::string module_name = "ppd";
  /// Nets to dump (empty = every net).
  std::vector<NetId> nets;
};

/// Write `result` as VCD text. Net names are sanitized (VCD identifiers
/// must not contain whitespace).
void write_vcd(std::ostream& os, const Netlist& netlist,
               const EventSimResult& result, const VcdOptions& options = {});

/// Convenience: render to a string.
[[nodiscard]] std::string vcd_to_string(const Netlist& netlist,
                                        const EventSimResult& result,
                                        const VcdOptions& options = {});

}  // namespace ppd::logic
