// Static analysis entry points for the logic layer.
//
// Two kinds of pre-simulation validation live here:
//
//  * lint_netlist — adapt a built Netlist into the neutral ppd::lint graph
//    IR and run the PPD00x structural checks (a Netlist is acyclic and
//    single-driven by construction, so this surfaces the *semantic* finds:
//    floating inputs, dead gates, fanout pathologies);
//
//  * lint_pulse_test — vet a pulse-test configuration before it is applied:
//    the path must be structurally sound, every side input must rest at a
//    non-controlling value under BOTH phases of the launching input, and
//    (w_in, w_th) must be consistent with the path's attenuation model.
//
// Codes (PPD2xx — pulse-test configuration):
//   PPD201 error   side input at a controlling value (per gate, per phase)
//   PPD202 error   broken path (not PI->PO, or consecutive nets unconnected)
//   PPD203 error   non-positive w_in / w_th
//   PPD204 error   fault-free response below w_th (test fails a good machine)
//   PPD205 warning detection margin below 10%
//   PPD206 error   PI vector arity mismatch
//   PPD207 warning w_in below the path's asymptotic onset
#pragma once

#include "ppd/lint/graph.hpp"
#include "ppd/logic/faultsim.hpp"

namespace ppd::logic {

/// Build the lint IR for `netlist`.
[[nodiscard]] lint::NetGraph to_lint_graph(const Netlist& netlist);

/// Structural/semantic checks over a built netlist.
[[nodiscard]] lint::Report lint_netlist(const Netlist& netlist,
                                        const lint::GraphLintOptions& options = {});

/// Pre-application checks over one pulse test.
[[nodiscard]] lint::Report lint_pulse_test(const Netlist& netlist,
                                           const GateTimingLibrary& library,
                                           const PulseTest& test);

}  // namespace ppd::logic
