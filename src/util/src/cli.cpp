#include "ppd/util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::util {

Cli::Cli(int argc, const char* const* argv, const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--"))
      throw ParseError("expected --key=value argument, got: " + std::string(arg));
    arg.remove_prefix(2);
    std::string key, value = "1";
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      key = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      key = std::string(arg);
    }
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      throw ParseError("unknown option --" + key);
    values_[key] = value;
  }
}

bool Cli::has(const std::string& key) const { return values_.contains(key); }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Cli::get(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw ParseError("option --" + key + " expects a number, got: " + it->second);
  return v;
}

int Cli::get(const std::string& key, int def) const {
  const double v = get(key, static_cast<double>(def));
  return static_cast<int>(v);
}

std::string command_line(int argc, const char* const* argv) {
  std::string out;
  for (int i = 0; i < argc; ++i) {
    if (!out.empty()) out += ' ';
    out += argv[i];
  }
  return out;
}

void strip_args(int& argc, char** argv,
                const std::function<bool(std::string_view)>& consume) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (!consume(argv[i])) argv[out++] = argv[i];
  }
  argc = out;
}

}  // namespace ppd::util
