#include "ppd/util/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "ppd/util/error.hpp"

namespace ppd::util {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PPD_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  PPD_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  PPD_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ppd::util
