#include "ppd/util/error.hpp"

#include <sstream>

namespace ppd::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << msg << " [" << expr << " at " << file << ':'
     << line << ']';
  throw PreconditionError(os.str());
}

}  // namespace ppd::detail
