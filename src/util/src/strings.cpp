#include "ppd/util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace ppd::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t j = i;
    while (j < s.size() && !is_space(s[j])) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ppd::util
