// Error handling primitives shared by every ppd library.
//
// The simulator is a library first: precondition violations and numerical
// failures are reported with exceptions carrying enough context to act on,
// never with abort() or silent NaNs.
#pragma once

#include <stdexcept>
#include <string>

namespace ppd {

/// Thrown when a caller violates a documented precondition
/// (bad node index, negative resistance, empty path, ...).
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a numerical procedure fails to produce a usable result
/// (singular matrix, Newton-Raphson non-convergence, ...).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a numerical procedure is abandoned because its wall-clock
/// budget expired (a ppd::resil Deadline or Watchdog). A subclass of
/// NumericalError so budget-unaware catch sites keep working; budget-aware
/// ones (quarantine, sweep drivers) can distinguish a hang from a genuine
/// non-convergence.
class TimeoutError : public NumericalError {
 public:
  explicit TimeoutError(const std::string& what) : NumericalError(what) {}
};

/// Thrown when parsing external input (.bench netlists, CLI args) fails.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace ppd

/// Precondition check that survives NDEBUG builds: library contracts must
/// hold in release runs of the benches as well.
#define PPD_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ppd::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (false)
