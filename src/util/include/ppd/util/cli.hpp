// Minimal --key=value CLI parsing for the bench and example binaries.
// Unrecognized flags raise ParseError so typos do not silently run a
// different experiment than the operator asked for.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ppd::util {

class Cli {
 public:
  /// Parse `--key=value` / `--flag` arguments. `allowed` lists every key the
  /// program understands; anything else throws ParseError.
  Cli(int argc, const char* const* argv, const std::vector<std::string>& allowed);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] double get(const std::string& key, double def) const;
  [[nodiscard]] int get(const std::string& key, int def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ppd::util
