// Minimal --key=value CLI parsing for the bench and example binaries.
// Unrecognized flags raise ParseError so typos do not silently run a
// different experiment than the operator asked for.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppd::util {

class Cli {
 public:
  /// Parse `--key=value` / `--flag` arguments. `allowed` lists every key the
  /// program understands; anything else throws ParseError.
  Cli(int argc, const char* const* argv, const std::vector<std::string>& allowed);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] double get(const std::string& key, double def) const;
  [[nodiscard]] int get(const std::string& key, int def) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Join argv back into one space-separated command line (run-meta blocks,
/// error messages).
[[nodiscard]] std::string command_line(int argc, const char* const* argv);

/// Global-flag stripping shared by every front end (ppdtool, ppdd, ppdctl,
/// the benches): remove from argv every element `consume` returns true for,
/// compacting argv in place and updating argc. The callback typically
/// records the flag's value as a side effect (see obs::extract_run_options);
/// everything it declines — including unknown flags — is left in place for
/// the caller's own strict parser.
void strip_args(int& argc, char** argv,
                const std::function<bool(std::string_view)>& consume);

}  // namespace ppd::util
