// Fixed-width table printer used by the figure-reproduction benches to emit
// the same rows/series the paper plots, readable both by humans and by a
// CSV-aware consumer (`Table::to_csv`).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppd::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with `precision` significant digits.
  void add_numeric_row(const std::vector<double>& row, int precision = 6);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Comma-separated dump (header first).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` significant digits (no trailing zeros
/// beyond what %g produces).
[[nodiscard]] std::string format_double(double v, int precision = 6);

}  // namespace ppd::util
