// Small string helpers used by the .bench parser and CSV writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ppd::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Uppercase copy (ASCII).
[[nodiscard]] std::string to_upper(std::string_view s);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace ppd::util
