// Generic 180 nm-class process description used by the cell library.
//
// The paper used an (unnamed) commercial process; absolute numbers in our
// reproduction therefore differ, but every reported result is a relative
// quantity (coverage vs. R, w_out vs. w_in, +/-10% parameter sweeps), which
// this parameter set preserves. See DESIGN.md, "Reproduction stance".
#pragma once

namespace ppd::cells {

struct Process {
  double vdd = 1.8;          ///< supply voltage [V]

  // Level-1 MOSFET parameters.
  double l = 180e-9;         ///< drawn channel length [m]
  double wn = 1.0e-6;        ///< default NMOS width [m]
  double wp = 2.0e-6;        ///< default PMOS width [m]
  double kp_n = 170e-6;      ///< NMOS u*Cox [A/V^2]
  double kp_p = 60e-6;       ///< PMOS u*Cox [A/V^2]
  double vt_n = 0.45;        ///< NMOS threshold [V]
  double vt_p = -0.45;       ///< PMOS threshold [V]
  double lambda_n = 0.06;    ///< [1/V]
  double lambda_p = 0.08;    ///< [1/V]

  // Capacitance estimates.
  double cox_area = 8.6e-3;  ///< gate oxide capacitance [F/m^2]
  double cgo_width = 0.30e-9;///< gate overlap capacitance per width [F/m]
  double cj_width = 0.9e-9;  ///< drain/source junction capacitance per width [F/m]

  /// Gate-to-channel capacitance of one transistor [F].
  [[nodiscard]] double gate_cap(double w) const { return cox_area * w * l; }
  /// Gate-drain (Miller) overlap capacitance [F].
  [[nodiscard]] double overlap_cap(double w) const { return cgo_width * w; }
  /// Drain junction capacitance [F].
  [[nodiscard]] double junction_cap(double w) const { return cj_width * w; }
};

}  // namespace ppd::cells
