// Transistor-level standard-cell netlist builder.
//
// Gates are instantiated as level-1 MOSFETs plus explicit capacitors
// (gate-channel, overlap/Miller, drain junction). Every gate instance keeps
// enough structural metadata for the fault injector to splice resistive
// opens into its pull-up/pull-down stacks or its output net.
#pragma once

#include <string>
#include <vector>

#include "ppd/cells/process.hpp"
#include "ppd/cells/variation.hpp"
#include "ppd/spice/circuit.hpp"

namespace ppd::cells {

/// kAoi21: out = !(a*b + c); kOai21: out = !((a+b) * c) — the classic
/// static-CMOS complex gates (inputs ordered a, b, c).
enum class GateKind {
  kInv,
  kNand2,
  kNand3,
  kNor2,
  kNor3,
  kAnd2,
  kOr2,
  kBuf,
  kAoi21,
  kOai21,
};

[[nodiscard]] const char* gate_kind_name(GateKind kind);
[[nodiscard]] int gate_input_count(GateKind kind);
/// True when a rising input edge produces a falling output edge.
[[nodiscard]] bool gate_inverting(GateKind kind);
/// Non-controlling side-input value for path sensitization (true = VDD).
/// For simple gates every side input takes the same value; AOI/OAI need the
/// per-input variant below.
[[nodiscard]] bool gate_noncontrolling_high(GateKind kind);

/// Per-input tie value that sensitizes a path entering input 0
/// (true = tie to VDD). Matches gate_noncontrolling_high for simple gates;
/// resolves the mixed requirements of AOI21/OAI21.
[[nodiscard]] bool gate_side_tie_high(GateKind kind, std::size_t input_index);

using GateId = std::size_t;

/// Structural record of one instantiated gate.
struct GateInst {
  GateKind kind = GateKind::kInv;
  std::string name;
  std::vector<spice::NodeId> inputs;
  spice::NodeId output = spice::kGround;

  std::vector<spice::DeviceId> pullup;    ///< PMOS transistors
  std::vector<spice::DeviceId> pulldown;  ///< NMOS transistors
  std::vector<spice::DeviceId> caps;      ///< intrinsic capacitors

  /// A (device, terminal) reference into the circuit.
  struct TerminalRef {
    spice::DeviceId device;
    std::size_t terminal;
  };

  /// Rail-side transistor terminals whose collective rewiring inserts a
  /// series resistance into the whole pull-down (resp. pull-up) network —
  /// the internal-ROP injection points (Fig. 1a of the paper).
  std::vector<TerminalRef> pd_rail;
  std::vector<TerminalRef> pu_rail;

  /// Transistor *gate* terminals driven by this cell's input `i`, plus the
  /// capacitors modelling that pin — what an external fan-out-branch ROP
  /// (Fig. 1b) must rewire.
  std::vector<std::vector<TerminalRef>> input_pins;   ///< indexed by input
  std::vector<std::vector<TerminalRef>> input_caps;   ///< indexed by input

  /// Transistor drain terminals driving the output net (for an external
  /// output ROP the driver side keeps these and its junction caps).
  std::vector<TerminalRef> output_drains;

  /// Capacitor terminals that belong to the *driver side* of the output net
  /// (drain junction caps and the drain end of the driver Miller caps); an
  /// external output ROP moves these together with `output_drains`.
  std::vector<TerminalRef> output_caps;
};

/// A circuit under construction plus its rails and gate metadata.
class Netlist {
 public:
  explicit Netlist(Process process);

  [[nodiscard]] spice::Circuit& circuit() { return circuit_; }
  [[nodiscard]] const spice::Circuit& circuit() const { return circuit_; }
  [[nodiscard]] const Process& process() const { return process_; }

  [[nodiscard]] spice::NodeId vdd() const { return vdd_; }
  /// Node tied high / low through the rails (for non-controlling inputs).
  [[nodiscard]] spice::NodeId tie_high() const { return vdd_; }
  [[nodiscard]] spice::NodeId tie_low() const { return spice::kGround; }

  /// Use `source` for subsequently added gates (nullptr = nominal corner).
  void set_variation(VariationSource* source) { variation_ = source; }

  /// Instantiate a gate; `inputs` arity must match the kind.
  GateId add_gate(GateKind kind, const std::string& name,
                  const std::vector<spice::NodeId>& inputs,
                  const std::string& output_name);

  /// Attach a lumped load capacitor (interconnect estimate) to a node.
  spice::DeviceId add_load(const std::string& name, spice::NodeId node,
                           double farads);

  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] const GateInst& gate(GateId id) const;
  [[nodiscard]] GateInst& gate_mutable(GateId id);

 private:
  /// One perturbed transistor + its intrinsic caps. Returns the device id.
  spice::DeviceId add_transistor(GateInst& inst, const std::string& name,
                                 spice::MosType type, spice::NodeId d,
                                 spice::NodeId g, spice::NodeId s);

  Process process_;
  spice::Circuit circuit_;
  spice::NodeId vdd_ = spice::kGround;
  VariationSource* variation_ = nullptr;
  VariationSource nominal_;
  std::vector<GateInst> gates_;
};

}  // namespace ppd::cells
