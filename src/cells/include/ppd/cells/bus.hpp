// On-chip bus model: N parallel lines, each a driver inverter feeding a
// distributed-RC (pi-segment) interconnect with inter-line coupling
// capacitance, terminated by a receiver inverter.
//
// This is the substrate for the paper's closing remark: "since the proposed
// method is completely independent of synchronization constraints, it can
// also be used to test bus lines using handshake protocols to transfer
// data" — a request pulse travelling a defective line is dampened or
// delayed, so the acknowledge never fires and the handshake times out.
//
// Defects map naturally: a series resistive open is an increase of one
// segment resistor (handles are exposed); an inter-line bridge is a
// resistor between adjacent-line taps.
#pragma once

#include <vector>

#include "ppd/cells/netlist.hpp"

namespace ppd::cells {

struct BusOptions {
  std::size_t lines = 4;
  std::size_t segments = 4;          ///< RC segments per line
  double segment_resistance = 60.0;  ///< [ohm] per segment
  double segment_capacitance = 10e-15;  ///< [F] to ground per segment
  double coupling_capacitance = 6e-15;  ///< [F] between adjacent lines/segment
  bool repeaters = false;            ///< inverter repeater at mid-bus
};

/// Handles into a built bus.
struct Bus {
  std::size_t lines = 0;
  std::size_t segments = 0;
  std::vector<spice::NodeId> inputs;     ///< driver gate inputs (drive here)
  std::vector<spice::DeviceId> sources;  ///< per-line stimulus source
  /// taps[line][k]: k = 0 is the driver output, k = segments is the far end.
  std::vector<std::vector<spice::NodeId>> taps;
  std::vector<spice::NodeId> far_ends;   ///< receiver inputs
  std::vector<spice::NodeId> outputs;    ///< receiver (inverter) outputs
  /// segment_resistors[line][k]: wire resistance between taps k and k+1 —
  /// a series resistive open is injected by raising one of these.
  std::vector<std::vector<spice::DeviceId>> segment_resistors;
  /// Number of inverting stages between a line's input and its output.
  int inversions_per_line = 2;
};

/// Build a bus inside `netlist`. Every line gets a settable voltage source
/// on its input (initially DC 0).
[[nodiscard]] Bus build_bus(Netlist& netlist, const BusOptions& options);

/// Drive line `line` with a pulse of the given 50% width (polarity
/// `positive`, launch at `t_launch`, edges `transition`).
void drive_bus_pulse(Netlist& netlist, const Bus& bus, std::size_t line,
                     bool positive, double width, double t_launch,
                     double transition = 30e-12);

/// Hold line `line` at a steady level.
void hold_bus_line(Netlist& netlist, const Bus& bus, std::size_t line, bool high);

/// Inject a series resistive open into segment `segment` of `line`
/// (adds `ohms` to the nominal wire resistance). Returns the resistor id.
spice::DeviceId inject_bus_open(Netlist& netlist, const Bus& bus,
                                std::size_t line, std::size_t segment,
                                double ohms);

/// Bridge two lines at segment tap `segment` with `ohms`.
spice::DeviceId inject_bus_bridge(Netlist& netlist, const Bus& bus,
                                  std::size_t line_a, std::size_t line_b,
                                  std::size_t segment, double ohms);

}  // namespace ppd::cells
