// Transistor-level transmission-gate master-slave D flip-flop.
//
// The reduced-clock DF-test baseline (core/delay_test.hpp) budgets a
// clock-to-Q and a setup time for the launch/capture flip-flops. This cell
// makes those numbers *measurable* instead of assumed: build the flip-flop,
// exercise it with the electrical engine, and extract tau_CQ and t_setup by
// bisection (see measure_ff_timing and the dff tests).
//
// Topology (positive-edge triggered):
//
//   D ──TG(clk̄/clk)──●── inv ──●──TG(clk/clk̄)──●── inv ── Q
//              master ▲        │          slave ▲         │
//                     └─ inv ◄─┘                └─ inv ◄──┘   (weak keepers)
//
// Transmission gates use the symmetric level-1 MOSFETs; keepers are
// half-width inverters fed back through always-on weak transmission.
#pragma once

#include "ppd/cells/netlist.hpp"

namespace ppd::cells {

struct DffInst {
  spice::NodeId d = spice::kGround;
  spice::NodeId clk = spice::kGround;
  spice::NodeId clk_b = spice::kGround;  ///< internally generated
  spice::NodeId q = spice::kGround;
  spice::NodeId master = spice::kGround;  ///< master latch node
  spice::NodeId slave = spice::kGround;   ///< slave latch node
};

/// Instantiate a DFF with data input `d` and clock `clk` (both must exist).
/// `q` is created as `name`.q.
[[nodiscard]] DffInst add_dff(Netlist& netlist, const std::string& name,
                              spice::NodeId d, spice::NodeId clk);

/// Measured flip-flop timing (see core::FlipFlopTiming for the model).
struct MeasuredFfTiming {
  double clk_to_q = 0.0;     ///< 50% clk rise -> 50% Q change, ample setup
  double setup = 0.0;        ///< smallest D-before-clk lead that still latches
  bool valid = false;
};

/// Characterize the flip-flop electrically: clock-to-Q with generous setup,
/// then setup time by bisection on the D-to-clk lead.
[[nodiscard]] MeasuredFfTiming measure_ff_timing(const Process& process);

}  // namespace ppd::cells
