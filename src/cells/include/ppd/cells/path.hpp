// Builder for the paper's central workload: a sensitized combinational path
// of N gates, side inputs tied to non-controlling values, driven by a local
// pulse/transition generator and loaded per stage with an interconnect
// estimate plus optional dummy fan-out gates.
#pragma once

#include <memory>
#include <vector>

#include "ppd/cells/netlist.hpp"
#include "ppd/spice/analysis.hpp"

namespace ppd::cells {

struct PathOptions {
  /// Stage kinds in order, path enters input 0 of every gate. Only
  /// primitive kinds (INV/NAND*/NOR*) are allowed on a path.
  std::vector<GateKind> kinds;
  double stage_load = 10e-15;      ///< lumped interconnect load per stage [F]
  int extra_fanout = 1;            ///< dummy INV loads per stage output
  double input_transition = 50e-12;///< source rise/fall time [s]
};

/// A built path plus the handles the test methods need.
class Path {
 public:
  Path(std::unique_ptr<Netlist> netlist, spice::DeviceId source,
       spice::NodeId input, std::vector<GateId> stages,
       std::vector<spice::NodeId> outputs, double input_transition);

  [[nodiscard]] Netlist& netlist() { return *netlist_; }
  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

  [[nodiscard]] spice::NodeId input() const { return input_; }
  [[nodiscard]] spice::NodeId output() const { return outputs_.back(); }
  [[nodiscard]] const std::vector<GateId>& stages() const { return stages_; }
  [[nodiscard]] const std::vector<spice::NodeId>& stage_outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::size_t length() const { return stages_.size(); }

  /// Number of inverting stages; even parity means an input rising edge
  /// arrives at the output as a rising edge.
  [[nodiscard]] int inversions() const;
  [[nodiscard]] bool same_polarity() const { return inversions() % 2 == 0; }

  /// Drive the input with a single transition (delay-test stimulus).
  /// `rising` refers to the path input. Returns the nominal launch time.
  double drive_transition(bool rising, double t_launch);

  /// Drive the input with a pulse of the given width (pulse-test stimulus).
  /// `positive` = h-pulse (low-high-low); width measured between the 50%
  /// points of the ideal source. Returns the launch time of the first edge.
  double drive_pulse(bool positive, double width, double t_launch);

  /// Quiescent input level currently configured (value at t = 0).
  [[nodiscard]] double rest_level() const;

 private:
  std::unique_ptr<Netlist> netlist_;
  spice::DeviceId source_;
  spice::NodeId input_;
  std::vector<GateId> stages_;
  std::vector<spice::NodeId> outputs_;
  double input_transition_;
};

/// Build a path. Throws PreconditionError for non-primitive kinds.
[[nodiscard]] Path build_path(const Process& process, const PathOptions& options,
                              VariationSource* variation = nullptr);

/// Convenience: the paper's 7-gate experimental path (Sect. 4) — a mix of
/// inverting primitives with the fault site at the output of gate 2.
[[nodiscard]] PathOptions seven_gate_path();

}  // namespace ppd::cells
