// Per-device process variation hooks. The Monte-Carlo engine implements
// VariationSource with a seeded RNG; the default implementation is the
// nominal (identity) corner.
#pragma once

namespace ppd::cells {

/// Multiplicative perturbations applied to one transistor at build time.
/// Multiplicative VT keeps the NMOS/PMOS sign convention intact.
struct TransistorVariation {
  double vt_mult = 1.0;
  double kp_mult = 1.0;
  double w_mult = 1.0;
};

/// Source of per-device variations, queried by the cell builder in a
/// deterministic order (device insertion order), so that a seeded
/// implementation yields reproducible circuit samples.
class VariationSource {
 public:
  virtual ~VariationSource() = default;

  /// Variation for the next transistor to be instantiated.
  virtual TransistorVariation transistor() { return {}; }

  /// Multiplier for the next capacitor to be instantiated.
  virtual double cap_mult() { return 1.0; }
};

}  // namespace ppd::cells
