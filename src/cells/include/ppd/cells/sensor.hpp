// Transistor-level transition-sensing circuit — a hardware realization of
// the w_th threshold the core method models behaviourally (the paper uses
// the self-checking transition detectors of Metra et al. [9]; this is the
// classic dynamic equivalent).
//
// Topology: the watched node X and a delayed copy Xd (even inverter chain)
// gate a series NMOS stack that discharges a precharged dynamic node KEEP.
// Only a pulse whose width exceeds the chain delay (plus the discharge
// time) overlaps long enough to pull KEEP low; an output inverter then
// raises CAUGHT. The effective minimal detectable width — the circuit's
// w_th — is set by the number of delay stages and the sense-stack strength,
// and can be measured with `measure_catcher_threshold`-style sweeps in the
// tests.
//
//               vdd ──p(reset)──┐
//                               KEEP ──inv── CAUGHT
//    X ──────────── n1 gate ────┤
//    X ─inv─inv─ Xd n2 gate ────┤
//                               gnd
#pragma once

#include "ppd/cells/netlist.hpp"

namespace ppd::cells {

struct PulseCatcherOptions {
  /// Delay-chain length (even, >= 2): more stages => larger threshold.
  int delay_stages = 2;
  /// Dynamic-node capacitance [F]: larger => slower discharge => larger
  /// threshold.
  double keep_cap = 8e-15;
  /// Width multiplier of the sense-stack NMOS devices.
  double sense_strength = 1.0;
  /// Watch a negative pulse (rest-high node): adds an input inverter.
  bool invert_input = false;
  /// Time at which precharge ends and the catcher starts sensing [s].
  double t_arm = 0.1e-9;
};

/// Handles to the instantiated sensor.
struct PulseCatcher {
  spice::NodeId keep = spice::kGround;    ///< dynamic node (precharged high)
  spice::NodeId caught = spice::kGround;  ///< output flag (high = pulse seen)
  spice::NodeId delayed = spice::kGround; ///< tap of the delay chain
  spice::DeviceId reset_source = 0;       ///< precharge control source
};

/// Attach a pulse catcher to `watched`. The caller reads the CAUGHT node
/// after the test window: V(caught) > VDD/2 means a pulse at least as wide
/// as the circuit's threshold passed by — i.e. in the paper's convention,
/// the *absence* of a fault.
[[nodiscard]] PulseCatcher add_pulse_catcher(Netlist& netlist,
                                             const std::string& name,
                                             spice::NodeId watched,
                                             const PulseCatcherOptions& options = {});

}  // namespace ppd::cells
