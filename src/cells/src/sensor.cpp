#include "ppd/cells/sensor.hpp"

#include "ppd/util/error.hpp"

namespace ppd::cells {

PulseCatcher add_pulse_catcher(Netlist& netlist, const std::string& name,
                               spice::NodeId watched,
                               const PulseCatcherOptions& options) {
  PPD_REQUIRE(options.delay_stages >= 2 && options.delay_stages % 2 == 0,
              "delay chain must be even and at least 2 stages");
  PPD_REQUIRE(options.keep_cap > 0.0, "keep capacitance must be positive");
  PPD_REQUIRE(options.sense_strength > 0.0, "sense strength must be positive");
  PPD_REQUIRE(options.t_arm > 0.0, "arming time must be positive");

  spice::Circuit& ckt = netlist.circuit();
  const Process& proc = netlist.process();

  // Optional polarity normalization.
  spice::NodeId x = watched;
  if (options.invert_input) {
    const GateId inv =
        netlist.add_gate(GateKind::kInv, name + ".pin", {watched}, name + ".x");
    x = netlist.gate(inv).output;
  }

  // Delay chain X -> ... -> Xd (even stages: non-inverted copy).
  spice::NodeId prev = x;
  for (int i = 0; i < options.delay_stages; ++i) {
    const GateId g = netlist.add_gate(GateKind::kInv,
                                      name + ".d" + std::to_string(i), {prev},
                                      name + ".n" + std::to_string(i));
    prev = netlist.gate(g).output;
  }
  const spice::NodeId delayed = prev;

  // Dynamic KEEP node: precharge PMOS + hold capacitance + sense stack.
  const spice::NodeId keep = ckt.node(name + ".keep");
  const spice::NodeId mid = ckt.node(name + ".mid");
  const spice::NodeId reset = ckt.node(name + ".rst");

  spice::MosParams pre;
  pre.type = spice::MosType::kPmos;
  pre.w = proc.wp;
  pre.l = proc.l;
  pre.vt0 = proc.vt_p;
  pre.kp = proc.kp_p;
  pre.lambda = proc.lambda_p;
  ckt.add_mosfet(name + ".mpre", keep, reset, netlist.vdd(), pre);

  spice::MosParams sense;
  sense.type = spice::MosType::kNmos;
  sense.w = proc.wn * options.sense_strength;
  sense.l = proc.l;
  sense.vt0 = proc.vt_n;
  sense.kp = proc.kp_n;
  sense.lambda = proc.lambda_n;
  ckt.add_mosfet(name + ".mn1", keep, x, mid, sense);
  ckt.add_mosfet(name + ".mn2", mid, delayed, spice::kGround, sense);

  ckt.add_capacitor(name + ".ck", keep, spice::kGround, options.keep_cap);
  ckt.add_capacitor(name + ".cm", mid, spice::kGround, 0.5e-15);

  // Precharge control: low (PMOS on) until t_arm, then high (sensing).
  spice::Pwl rst;
  rst.points = {{0.0, 0.0},
                {options.t_arm, 0.0},
                {options.t_arm + 20e-12, proc.vdd}};
  const spice::DeviceId rst_src =
      ckt.add_vsource("V" + name + ".rst", reset, spice::kGround, rst);

  // Output flag.
  const GateId out_inv =
      netlist.add_gate(GateKind::kInv, name + ".oinv", {keep}, name + ".caught");

  PulseCatcher pc;
  pc.keep = keep;
  pc.caught = netlist.gate(out_inv).output;
  pc.delayed = delayed;
  pc.reset_source = rst_src;
  return pc;
}

}  // namespace ppd::cells
