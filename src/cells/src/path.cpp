#include "ppd/cells/path.hpp"

#include "ppd/util/error.hpp"

namespace ppd::cells {

namespace {

bool primitive_kind(GateKind k) {
  switch (k) {
    case GateKind::kInv:
    case GateKind::kNand2:
    case GateKind::kNand3:
    case GateKind::kNor2:
    case GateKind::kNor3:
    case GateKind::kAoi21:
    case GateKind::kOai21: return true;
    default: return false;
  }
}

/// Provenance label for the circuit ("path inv-nand2-..."), reported by the
/// solver when a sample fails to converge.
std::string path_recipe(const std::vector<GateKind>& kinds) {
  std::string recipe = "path ";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (i > 0) recipe += '-';
    recipe += gate_kind_name(kinds[i]);
  }
  return recipe;
}

}  // namespace

Path::Path(std::unique_ptr<Netlist> netlist, spice::DeviceId source,
           spice::NodeId input, std::vector<GateId> stages,
           std::vector<spice::NodeId> outputs, double input_transition)
    : netlist_(std::move(netlist)),
      source_(source),
      input_(input),
      stages_(std::move(stages)),
      outputs_(std::move(outputs)),
      input_transition_(input_transition) {
  PPD_REQUIRE(netlist_ != nullptr, "path needs a netlist");
  PPD_REQUIRE(!stages_.empty(), "path needs at least one gate");
  PPD_REQUIRE(outputs_.size() == stages_.size(), "stage/output mismatch");
}

int Path::inversions() const {
  int n = 0;
  for (GateId id : stages_)
    if (gate_inverting(netlist_->gate(id).kind)) ++n;
  return n;
}

double Path::drive_transition(bool rising, double t_launch) {
  const double vdd = netlist_->process().vdd;
  spice::Pulse p;
  p.v1 = rising ? 0.0 : vdd;
  p.v2 = rising ? vdd : 0.0;
  p.delay = t_launch - 0.5 * input_transition_;
  PPD_REQUIRE(p.delay > 0.0, "launch time too early for the transition time");
  p.rise = input_transition_;
  p.fall = input_transition_;
  p.width = 1.0;  // effectively a step within any realistic window
  netlist_->circuit().vsource(source_).set_spec(p);
  return t_launch;
}

double Path::drive_pulse(bool positive, double width, double t_launch) {
  PPD_REQUIRE(width > 0.0, "pulse width must be positive");
  const double vdd = netlist_->process().vdd;
  spice::Pulse p;
  p.v1 = positive ? 0.0 : vdd;
  p.v2 = positive ? vdd : 0.0;
  p.delay = t_launch - 0.5 * input_transition_;
  PPD_REQUIRE(p.delay > 0.0, "launch time too early for the transition time");
  p.rise = input_transition_;
  p.fall = input_transition_;
  // SPICE pulse width is the flat-top time; the 50%-to-50% width adds one
  // transition time (half of the leading plus half of the trailing edge).
  const double flat = width - input_transition_;
  PPD_REQUIRE(flat > 0.0, "pulse width must exceed the transition time");
  p.width = flat;
  netlist_->circuit().vsource(source_).set_spec(p);
  return t_launch;
}

double Path::rest_level() const {
  const auto* src =
      dynamic_cast<const spice::VoltageSource*>(&netlist_->circuit().device(source_));
  PPD_REQUIRE(src != nullptr, "path source is not a voltage source");
  return src->value_at(0.0);
}

Path build_path(const Process& process, const PathOptions& options,
                VariationSource* variation) {
  PPD_REQUIRE(!options.kinds.empty(), "path needs at least one gate");
  auto netlist = std::make_unique<Netlist>(process);
  netlist->set_variation(variation);
  spice::Circuit& ckt = netlist->circuit();
  ckt.set_source(path_recipe(options.kinds));

  const spice::NodeId input = ckt.node("in");
  // Rest level low: a later drive_* call reconfigures the source.
  const spice::DeviceId source =
      ckt.add_vsource("Vin", input, spice::kGround, spice::Dc{0.0});

  std::vector<GateId> stages;
  std::vector<spice::NodeId> outputs;
  spice::NodeId prev = input;
  for (std::size_t i = 0; i < options.kinds.size(); ++i) {
    const GateKind kind = options.kinds[i];
    PPD_REQUIRE(primitive_kind(kind),
                "only primitive gate kinds are allowed on a path");
    const std::string gname = "g" + std::to_string(i);
    const std::string oname = "n" + std::to_string(i + 1);

    std::vector<spice::NodeId> inputs{prev};
    for (int k = 1; k < gate_input_count(kind); ++k)
      inputs.push_back(gate_side_tie_high(kind, static_cast<std::size_t>(k))
                           ? netlist->tie_high()
                           : netlist->tie_low());

    const GateId gid = netlist->add_gate(kind, gname, inputs, oname);
    const spice::NodeId out = netlist->gate(gid).output;
    if (options.stage_load > 0.0)
      netlist->add_load("Cw" + std::to_string(i), out, options.stage_load);
    for (int f = 0; f < options.extra_fanout; ++f) {
      const std::string fname = gname + ".f" + std::to_string(f);
      netlist->add_gate(GateKind::kInv, fname, {out}, fname + ".o");
    }
    stages.push_back(gid);
    outputs.push_back(out);
    prev = out;
  }

  return Path(std::move(netlist), source, input, std::move(stages),
              std::move(outputs), options.input_transition);
}

PathOptions seven_gate_path() {
  PathOptions o;
  o.kinds = {GateKind::kInv,  GateKind::kNand2, GateKind::kInv, GateKind::kNor2,
             GateKind::kInv,  GateKind::kNand2, GateKind::kInv};
  return o;
}

}  // namespace ppd::cells
