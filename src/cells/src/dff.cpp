#include "ppd/cells/dff.hpp"

#include "ppd/spice/analysis.hpp"
#include "ppd/util/error.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::cells {

namespace {

spice::MosParams nmos_params(const Process& p) {
  spice::MosParams m;
  m.type = spice::MosType::kNmos;
  m.w = p.wn;
  m.l = p.l;
  m.vt0 = p.vt_n;
  m.kp = p.kp_n;
  m.lambda = p.lambda_n;
  return m;
}

spice::MosParams pmos_params(const Process& p) {
  spice::MosParams m;
  m.type = spice::MosType::kPmos;
  m.w = p.wp;
  m.l = p.l;
  m.vt0 = p.vt_p;
  m.kp = p.kp_p;
  m.lambda = p.lambda_p;
  return m;
}

/// Transmission gate between a and b: conducts when `on` is high.
void add_tg(Netlist& nl, const std::string& name, spice::NodeId a,
            spice::NodeId b, spice::NodeId on, spice::NodeId on_b) {
  spice::Circuit& ckt = nl.circuit();
  ckt.add_mosfet(name + ".n", a, on, b, nmos_params(nl.process()));
  ckt.add_mosfet(name + ".p", a, on_b, b, pmos_params(nl.process()));
}

}  // namespace

DffInst add_dff(Netlist& netlist, const std::string& name, spice::NodeId d,
                spice::NodeId clk) {
  spice::Circuit& ckt = netlist.circuit();

  DffInst ff;
  ff.d = d;
  ff.clk = clk;

  // Local clock inversion.
  const GateId clkb_inv =
      netlist.add_gate(GateKind::kInv, name + ".ckb", {clk}, name + ".clkb");
  ff.clk_b = netlist.gate(clkb_inv).output;

  // Master: input TG transparent when clk is LOW.
  const spice::NodeId n1 = ckt.node(name + ".m");
  ff.master = n1;
  add_tg(netlist, name + ".tgi", d, n1, ff.clk_b, clk);
  const GateId inv1 =
      netlist.add_gate(GateKind::kInv, name + ".i1", {n1}, name + ".mb");
  const spice::NodeId n2 = netlist.gate(inv1).output;
  // Master keeper: closed when clk is HIGH.
  const GateId inv2 =
      netlist.add_gate(GateKind::kInv, name + ".i2", {n2}, name + ".mk");
  add_tg(netlist, name + ".tgk1", netlist.gate(inv2).output, n1, clk, ff.clk_b);

  // Slave: TG transparent when clk is HIGH.
  const spice::NodeId n4 = ckt.node(name + ".s");
  ff.slave = n4;
  add_tg(netlist, name + ".tgs", n2, n4, clk, ff.clk_b);
  const GateId inv3 =
      netlist.add_gate(GateKind::kInv, name + ".i3", {n4}, name + ".q");
  ff.q = netlist.gate(inv3).output;
  // Slave keeper: closed when clk is LOW.
  const GateId inv4 =
      netlist.add_gate(GateKind::kInv, name + ".i4", {ff.q}, name + ".sk");
  add_tg(netlist, name + ".tgk2", netlist.gate(inv4).output, n4, ff.clk_b, clk);

  // Small explicit node capacitances on the pass-gate internal nodes (their
  // transistors are added raw, without the cell library's parasitics).
  ckt.add_capacitor(name + ".cm", n1, spice::kGround, 1.5e-15);
  ckt.add_capacitor(name + ".cs", n4, spice::kGround, 1.5e-15);
  return ff;
}

MeasuredFfTiming measure_ff_timing(const Process& process) {
  // Fixture: clocked DFF, D programmable, Q loaded lightly. Two rising
  // clock edges: the first latches 0, the second latches 1; `lead` is how
  // long D rises before the second edge.
  const double t_edge1 = 1.0e-9;
  const double t_edge2 = 2.2e-9;
  const double t_stop = 3.4e-9;

  const auto q_latched_high = [&](double lead, double* t_q_rise) {
    Netlist nl(process);
    spice::Circuit& ckt = nl.circuit();
    const spice::NodeId d = ckt.node("d");
    const spice::NodeId clk = ckt.node("clk");
    spice::Pwl dspec;
    dspec.points = {{0.0, 0.0},
                    {t_edge2 - lead, 0.0},
                    {t_edge2 - lead + 30e-12, process.vdd}};
    ckt.add_vsource("Vd", d, spice::kGround, dspec);
    spice::Pulse cspec;
    cspec.v1 = 0.0;
    cspec.v2 = process.vdd;
    cspec.delay = t_edge1 - 15e-12;
    cspec.rise = 30e-12;
    cspec.fall = 30e-12;
    cspec.width = 0.5e-9;
    cspec.period = t_edge2 - t_edge1;
    ckt.add_vsource("Vclk", clk, spice::kGround, cspec);
    const DffInst ff = add_dff(nl, "ff", d, clk);
    nl.add_load("Cq", ff.q, 5e-15);

    spice::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = 2e-12;
    opt.adaptive = true;
    // Break the slave keeper's OP ambiguity toward Q = 0.
    opt.op.nodesets = {{ff.slave, process.vdd}, {ff.q, 0.0}};
    const auto res = spice::run_transient(ckt, opt);
    const auto& q = res.wave(ff.q);
    const bool high = q.at(t_stop) > process.vdd / 2;
    if (high && t_q_rise != nullptr) {
      const auto t = wave::first_crossing(q, process.vdd / 2, wave::Edge::kRise,
                                          t_edge2 - 0.2e-9);
      *t_q_rise = t.value_or(t_stop);
    }
    return high;
  };

  MeasuredFfTiming m;
  // Clock-to-Q with a very comfortable setup.
  double t_q = 0.0;
  if (!q_latched_high(0.5e-9, &t_q)) return m;  // broken cell
  m.clk_to_q = t_q - t_edge2;

  // Setup: bisect the smallest lead that still latches (50 ps resolution
  // window down to ~4 ps).
  double lo = -0.1e-9;  // D after the edge: must fail
  double hi = 0.4e-9;   // generous: must pass
  if (q_latched_high(lo, nullptr)) return m;  // suspicious; report invalid
  for (int i = 0; i < 7; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (q_latched_high(mid, nullptr))
      hi = mid;
    else
      lo = mid;
  }
  m.setup = hi;
  m.valid = true;
  return m;
}

}  // namespace ppd::cells
