#include "ppd/cells/bus.hpp"

#include "ppd/util/error.hpp"

namespace ppd::cells {

Bus build_bus(Netlist& netlist, const BusOptions& options) {
  PPD_REQUIRE(options.lines >= 1, "bus needs at least one line");
  PPD_REQUIRE(options.segments >= 1, "bus needs at least one segment");
  PPD_REQUIRE(options.segment_resistance > 0.0, "segment R must be positive");
  PPD_REQUIRE(options.segment_capacitance > 0.0, "segment C must be positive");

  spice::Circuit& ckt = netlist.circuit();
  Bus bus;
  bus.lines = options.lines;
  bus.segments = options.segments;
  bus.inversions_per_line = options.repeaters ? 3 : 2;

  for (std::size_t l = 0; l < options.lines; ++l) {
    const std::string ln = "bus" + std::to_string(l);
    const spice::NodeId in = ckt.node(ln + ".in");
    bus.inputs.push_back(in);
    bus.sources.push_back(
        ckt.add_vsource("V" + ln, in, spice::kGround, spice::Dc{0.0}));

    // Driver inverter.
    const GateId drv = netlist.add_gate(GateKind::kInv, ln + ".drv", {in},
                                        ln + ".t0");
    std::vector<spice::NodeId> taps{netlist.gate(drv).output};
    std::vector<spice::DeviceId> resistors;

    // Distributed RC: R between taps, C to ground at each tap.
    const std::size_t mid = options.segments / 2;
    for (std::size_t k = 0; k < options.segments; ++k) {
      spice::NodeId prev = taps.back();
      if (options.repeaters && k == mid && options.segments >= 2) {
        const GateId rep = netlist.add_gate(GateKind::kInv, ln + ".rep", {prev},
                                            ln + ".r" + std::to_string(k));
        prev = netlist.gate(rep).output;
        taps.back() = prev;  // the repeater output becomes the tap
      }
      const spice::NodeId next = ckt.node(ln + ".t" + std::to_string(k + 1));
      resistors.push_back(ckt.add_resistor("R" + ln + "." + std::to_string(k),
                                           prev, next,
                                           options.segment_resistance));
      ckt.add_capacitor("C" + ln + "." + std::to_string(k), next, spice::kGround,
                        options.segment_capacitance);
      taps.push_back(next);
    }

    // Receiver inverter.
    const GateId rcv = netlist.add_gate(GateKind::kInv, ln + ".rcv",
                                        {taps.back()}, ln + ".out");
    bus.taps.push_back(std::move(taps));
    bus.segment_resistors.push_back(std::move(resistors));
    bus.far_ends.push_back(bus.taps.back().back());
    bus.outputs.push_back(netlist.gate(rcv).output);
  }

  // Inter-line coupling capacitance at matching taps of adjacent lines.
  if (options.coupling_capacitance > 0.0) {
    for (std::size_t l = 0; l + 1 < options.lines; ++l) {
      for (std::size_t k = 1; k <= options.segments; ++k) {
        ckt.add_capacitor(
            "Cc" + std::to_string(l) + "_" + std::to_string(k),
            bus.taps[l][k], bus.taps[l + 1][k], options.coupling_capacitance);
      }
    }
  }
  return bus;
}

void drive_bus_pulse(Netlist& netlist, const Bus& bus, std::size_t line,
                     bool positive, double width, double t_launch,
                     double transition) {
  PPD_REQUIRE(line < bus.lines, "bus line out of range");
  PPD_REQUIRE(width > transition, "pulse width must exceed the transition time");
  const double vdd = netlist.process().vdd;
  spice::Pulse p;
  p.v1 = positive ? 0.0 : vdd;
  p.v2 = positive ? vdd : 0.0;
  p.delay = t_launch - 0.5 * transition;
  PPD_REQUIRE(p.delay > 0.0, "launch time too early");
  p.rise = transition;
  p.fall = transition;
  p.width = width - transition;
  netlist.circuit().vsource(bus.sources[line]).set_spec(p);
}

void hold_bus_line(Netlist& netlist, const Bus& bus, std::size_t line, bool high) {
  PPD_REQUIRE(line < bus.lines, "bus line out of range");
  netlist.circuit()
      .vsource(bus.sources[line])
      .set_spec(spice::Dc{high ? netlist.process().vdd : 0.0});
}

spice::DeviceId inject_bus_open(Netlist& netlist, const Bus& bus,
                                std::size_t line, std::size_t segment,
                                double ohms) {
  PPD_REQUIRE(line < bus.lines, "bus line out of range");
  PPD_REQUIRE(segment < bus.segments, "bus segment out of range");
  PPD_REQUIRE(ohms > 0.0, "defect resistance must be positive");
  spice::Resistor& r =
      netlist.circuit().resistor(bus.segment_resistors[line][segment]);
  r.set_resistance(r.resistance() + ohms);
  return bus.segment_resistors[line][segment];
}

spice::DeviceId inject_bus_bridge(Netlist& netlist, const Bus& bus,
                                  std::size_t line_a, std::size_t line_b,
                                  std::size_t segment, double ohms) {
  PPD_REQUIRE(line_a < bus.lines && line_b < bus.lines, "bus line out of range");
  PPD_REQUIRE(line_a != line_b, "cannot bridge a line with itself");
  PPD_REQUIRE(segment <= bus.segments, "bus segment out of range");
  return netlist.circuit().add_resistor(
      "Rbr.bus" + std::to_string(line_a) + "_" + std::to_string(line_b),
      bus.taps[line_a][segment], bus.taps[line_b][segment], ohms);
}

}  // namespace ppd::cells
