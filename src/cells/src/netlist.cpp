#include "ppd/cells/netlist.hpp"

#include "ppd/util/error.hpp"

namespace ppd::cells {

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kInv: return "INV";
    case GateKind::kNand2: return "NAND2";
    case GateKind::kNand3: return "NAND3";
    case GateKind::kNor2: return "NOR2";
    case GateKind::kNor3: return "NOR3";
    case GateKind::kAnd2: return "AND2";
    case GateKind::kOr2: return "OR2";
    case GateKind::kBuf: return "BUF";
    case GateKind::kAoi21: return "AOI21";
    case GateKind::kOai21: return "OAI21";
  }
  return "?";
}

int gate_input_count(GateKind kind) {
  switch (kind) {
    case GateKind::kInv:
    case GateKind::kBuf: return 1;
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kAnd2:
    case GateKind::kOr2: return 2;
    case GateKind::kNand3:
    case GateKind::kNor3:
    case GateKind::kAoi21:
    case GateKind::kOai21: return 3;
  }
  return 0;
}

bool gate_inverting(GateKind kind) {
  switch (kind) {
    case GateKind::kInv:
    case GateKind::kNand2:
    case GateKind::kNand3:
    case GateKind::kNor2:
    case GateKind::kNor3:
    case GateKind::kAoi21:
    case GateKind::kOai21: return true;
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kBuf: return false;
  }
  return false;
}

bool gate_noncontrolling_high(GateKind kind) {
  switch (kind) {
    case GateKind::kNand2:
    case GateKind::kNand3:
    case GateKind::kAnd2: return true;  // controlling value of NAND/AND is 0
    case GateKind::kNor2:
    case GateKind::kNor3:
    case GateKind::kOr2: return false;  // controlling value of NOR/OR is 1
    case GateKind::kInv:
    case GateKind::kBuf: return true;   // no side inputs; value unused
    case GateKind::kAoi21:
    case GateKind::kOai21:
      // Mixed side values; resolved per input by gate_side_tie_high.
      return true;
  }
  return true;
}

bool gate_side_tie_high(GateKind kind, std::size_t input_index) {
  switch (kind) {
    case GateKind::kAoi21:
      // out = !(a*b + c); path on a: b must be 1, c must be 0.
      return input_index == 1;
    case GateKind::kOai21:
      // out = !((a+b)*c); path on a: b must be 0, c must be 1.
      return input_index == 2;
    default:
      return gate_noncontrolling_high(kind);
  }
}

Netlist::Netlist(Process process) : process_(process) {
  PPD_REQUIRE(process_.vdd > 0.0, "vdd must be positive");
  vdd_ = circuit_.node("vdd");
  circuit_.add_vsource("Vdd", vdd_, spice::kGround, spice::Dc{process_.vdd});
}

const GateInst& Netlist::gate(GateId id) const {
  PPD_REQUIRE(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

GateInst& Netlist::gate_mutable(GateId id) {
  PPD_REQUIRE(id < gates_.size(), "gate id out of range");
  return gates_[id];
}

spice::DeviceId Netlist::add_load(const std::string& name, spice::NodeId node,
                                  double farads) {
  VariationSource& var = variation_ != nullptr ? *variation_ : nominal_;
  return circuit_.add_capacitor(name, node, spice::kGround,
                                farads * var.cap_mult());
}

spice::DeviceId Netlist::add_transistor(GateInst& inst, const std::string& name,
                                        spice::MosType type, spice::NodeId d,
                                        spice::NodeId g, spice::NodeId s) {
  VariationSource& var = variation_ != nullptr ? *variation_ : nominal_;
  const TransistorVariation tv = var.transistor();

  spice::MosParams p;
  p.type = type;
  p.l = process_.l;
  if (type == spice::MosType::kNmos) {
    p.w = process_.wn * tv.w_mult;
    p.vt0 = process_.vt_n * tv.vt_mult;
    p.kp = process_.kp_n * tv.kp_mult;
    p.lambda = process_.lambda_n;
  } else {
    p.w = process_.wp * tv.w_mult;
    p.vt0 = process_.vt_p * tv.vt_mult;
    p.kp = process_.kp_p * tv.kp_mult;
    p.lambda = process_.lambda_p;
  }
  const spice::DeviceId mos = circuit_.add_mosfet(name, d, g, s, p);

  // Intrinsic capacitances, scaled with the (perturbed) width. The rail for
  // a device's parasitics is its own flavour's supply.
  const spice::NodeId rail = type == spice::MosType::kNmos ? spice::kGround : vdd_;
  const double cm = var.cap_mult();
  const auto add_cap = [&](const std::string& cname, spice::NodeId a,
                           spice::NodeId b, double f) -> spice::DeviceId {
    const spice::DeviceId id = circuit_.add_capacitor(cname, a, b, f * cm);
    inst.caps.push_back(id);
    return id;
  };
  // Gate-channel capacitance to the rail.
  if (g != rail) add_cap(name + ".cg", g, rail, process_.gate_cap(p.w));
  // Gate-drain overlap (Miller).
  if (g != d) {
    const spice::DeviceId cgd = add_cap(name + ".cgd", g, d,
                                        process_.overlap_cap(p.w));
    if (d == inst.output) inst.output_caps.push_back({cgd, 1});
  }
  // Drain junction capacitance.
  if (d != rail) {
    const spice::DeviceId cj = add_cap(name + ".cjd", d, rail,
                                       process_.junction_cap(p.w));
    if (d == inst.output) inst.output_caps.push_back({cj, 0});
  }
  // Source junction capacitance for internal stack nodes only.
  if (s != rail && s != vdd_ && s != spice::kGround)
    add_cap(name + ".cjs", s, rail, process_.junction_cap(p.w));
  return mos;
}

GateId Netlist::add_gate(GateKind kind, const std::string& name,
                         const std::vector<spice::NodeId>& inputs,
                         const std::string& output_name) {
  PPD_REQUIRE(static_cast<int>(inputs.size()) == gate_input_count(kind),
              std::string("wrong input arity for ") + gate_kind_name(kind));

  GateInst inst;
  inst.kind = kind;
  inst.name = name;
  inst.inputs = inputs;
  inst.output = circuit_.node(output_name);
  inst.input_pins.resize(inputs.size());
  inst.input_caps.resize(inputs.size());

  const spice::NodeId out = inst.output;
  const spice::NodeId gnd = spice::kGround;

  // Helpers recording metadata as transistors are created. `pin` < 0 means
  // the transistor's gate is an internal net (second stage of AND/OR).
  const auto pmos = [&](const std::string& n, spice::NodeId d, spice::NodeId g,
                        spice::NodeId s, int pin) {
    const std::size_t caps_before = inst.caps.size();
    const spice::DeviceId id = add_transistor(inst, n, spice::MosType::kPmos, d, g, s);
    inst.pullup.push_back(id);
    if (pin >= 0) {
      inst.input_pins[static_cast<std::size_t>(pin)].push_back({id, 1});
      for (std::size_t c = caps_before; c < inst.caps.size(); ++c) {
        const auto& cap = circuit_.device(inst.caps[c]);
        for (std::size_t t = 0; t < cap.nodes().size(); ++t)
          if (cap.nodes()[t] == g)
            inst.input_caps[static_cast<std::size_t>(pin)].push_back(
                {inst.caps[c], t});
      }
    }
    if (s == vdd_) inst.pu_rail.push_back({id, 2});
    if (d == out) inst.output_drains.push_back({id, 0});
    return id;
  };
  const auto nmos = [&](const std::string& n, spice::NodeId d, spice::NodeId g,
                        spice::NodeId s, int pin) {
    const std::size_t caps_before = inst.caps.size();
    const spice::DeviceId id = add_transistor(inst, n, spice::MosType::kNmos, d, g, s);
    inst.pulldown.push_back(id);
    if (pin >= 0) {
      inst.input_pins[static_cast<std::size_t>(pin)].push_back({id, 1});
      for (std::size_t c = caps_before; c < inst.caps.size(); ++c) {
        const auto& cap = circuit_.device(inst.caps[c]);
        for (std::size_t t = 0; t < cap.nodes().size(); ++t)
          if (cap.nodes()[t] == g)
            inst.input_caps[static_cast<std::size_t>(pin)].push_back(
                {inst.caps[c], t});
      }
    }
    if (s == gnd) inst.pd_rail.push_back({id, 2});
    if (d == out) inst.output_drains.push_back({id, 0});
    return id;
  };

  switch (kind) {
    case GateKind::kInv: {
      pmos(name + ".mp", out, inputs[0], vdd_, 0);
      nmos(name + ".mn", out, inputs[0], gnd, 0);
      break;
    }
    case GateKind::kBuf: {
      const spice::NodeId mid = circuit_.new_node(name + ".x");
      pmos(name + ".mp0", mid, inputs[0], vdd_, 0);
      nmos(name + ".mn0", mid, inputs[0], gnd, 0);
      pmos(name + ".mp1", out, mid, vdd_, -1);
      nmos(name + ".mn1", out, mid, gnd, -1);
      break;
    }
    case GateKind::kNand2: {
      pmos(name + ".mpa", out, inputs[0], vdd_, 0);
      pmos(name + ".mpb", out, inputs[1], vdd_, 1);
      const spice::NodeId mid = circuit_.new_node(name + ".s");
      nmos(name + ".mna", out, inputs[0], mid, 0);
      nmos(name + ".mnb", mid, inputs[1], gnd, 1);
      break;
    }
    case GateKind::kNand3: {
      pmos(name + ".mpa", out, inputs[0], vdd_, 0);
      pmos(name + ".mpb", out, inputs[1], vdd_, 1);
      pmos(name + ".mpc", out, inputs[2], vdd_, 2);
      const spice::NodeId m1 = circuit_.new_node(name + ".s1");
      const spice::NodeId m2 = circuit_.new_node(name + ".s2");
      nmos(name + ".mna", out, inputs[0], m1, 0);
      nmos(name + ".mnb", m1, inputs[1], m2, 1);
      nmos(name + ".mnc", m2, inputs[2], gnd, 2);
      break;
    }
    case GateKind::kNor2: {
      const spice::NodeId mid = circuit_.new_node(name + ".s");
      pmos(name + ".mpa", mid, inputs[0], vdd_, 0);
      pmos(name + ".mpb", out, inputs[1], mid, 1);
      nmos(name + ".mna", out, inputs[0], gnd, 0);
      nmos(name + ".mnb", out, inputs[1], gnd, 1);
      break;
    }
    case GateKind::kNor3: {
      const spice::NodeId m1 = circuit_.new_node(name + ".s1");
      const spice::NodeId m2 = circuit_.new_node(name + ".s2");
      pmos(name + ".mpa", m1, inputs[0], vdd_, 0);
      pmos(name + ".mpb", m2, inputs[1], m1, 1);
      pmos(name + ".mpc", out, inputs[2], m2, 2);
      nmos(name + ".mna", out, inputs[0], gnd, 0);
      nmos(name + ".mnb", out, inputs[1], gnd, 1);
      nmos(name + ".mnc", out, inputs[2], gnd, 2);
      break;
    }
    case GateKind::kAnd2:
    case GateKind::kOr2: {
      // First stage (NAND2/NOR2) drives an internal net, second stage is an
      // inverter whose networks provide this composite's pull-up/pull-down
      // metadata (they drive the output).
      const spice::NodeId mid = circuit_.new_node(name + ".y");
      if (kind == GateKind::kAnd2) {
        pmos(name + ".mpa", mid, inputs[0], vdd_, 0);
        pmos(name + ".mpb", mid, inputs[1], vdd_, 1);
        const spice::NodeId s = circuit_.new_node(name + ".s");
        nmos(name + ".mna", mid, inputs[0], s, 0);
        nmos(name + ".mnb", s, inputs[1], gnd, 1);
      } else {
        const spice::NodeId s = circuit_.new_node(name + ".s");
        pmos(name + ".mpa", s, inputs[0], vdd_, 0);
        pmos(name + ".mpb", mid, inputs[1], s, 1);
        nmos(name + ".mna", mid, inputs[0], gnd, 0);
        nmos(name + ".mnb", mid, inputs[1], gnd, 1);
      }
      // The first stage's rail terminals must not be confused with the
      // output stage's: reset and let the inverter define them.
      inst.pu_rail.clear();
      inst.pd_rail.clear();
      pmos(name + ".mpi", out, mid, vdd_, -1);
      nmos(name + ".mni", out, mid, gnd, -1);
      break;
    }
    case GateKind::kAoi21: {
      // out = !(a*b + c). PDN: series(a,b) parallel c; PUN (dual):
      // (a parallel b) in series with c.
      const spice::NodeId pm = circuit_.new_node(name + ".p");
      pmos(name + ".mpa", pm, inputs[0], vdd_, 0);
      pmos(name + ".mpb", pm, inputs[1], vdd_, 1);
      pmos(name + ".mpc", out, inputs[2], pm, 2);
      const spice::NodeId nm = circuit_.new_node(name + ".s");
      nmos(name + ".mna", out, inputs[0], nm, 0);
      nmos(name + ".mnb", nm, inputs[1], gnd, 1);
      nmos(name + ".mnc", out, inputs[2], gnd, 2);
      break;
    }
    case GateKind::kOai21: {
      // out = !((a+b) * c). PDN: (a parallel b) in series with c;
      // PUN (dual): series(a,b) parallel c.
      const spice::NodeId pm = circuit_.new_node(name + ".p");
      pmos(name + ".mpa", pm, inputs[0], vdd_, 0);
      pmos(name + ".mpb", out, inputs[1], pm, 1);
      pmos(name + ".mpc", out, inputs[2], vdd_, 2);
      const spice::NodeId nm = circuit_.new_node(name + ".s");
      nmos(name + ".mna", nm, inputs[0], gnd, 0);
      nmos(name + ".mnb", nm, inputs[1], gnd, 1);
      nmos(name + ".mnc", out, inputs[2], nm, 2);
      break;
    }
  }

  gates_.push_back(std::move(inst));
  return gates_.size() - 1;
}

}  // namespace ppd::cells
