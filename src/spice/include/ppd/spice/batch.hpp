// Batched Monte-Carlo transient kernel: factor-once/solve-many.
//
// A Monte-Carlo sweep solves the SAME circuit topology hundreds of times
// with per-sample parameter deltas (W, R_open, C scaling). The scalar
// run_transient() path rediscovers everything per sample and per Newton
// iteration: triplet buffers grow from empty, the sparse symbolic analysis
// reruns, and every linear solve allocates fresh vectors. BatchTransient
// removes all of that steady-state work:
//
//  - each sample's MnaSystem is structure-frozen after the first transient
//    assemble: later iterations scatter values into the retained sparsity
//    pattern and refactor numerically in place (LU pattern + elimination
//    ordering reused, full factorization as automatic fallback);
//  - Newton solves write into a persistent caller-owned workspace — zero
//    allocations per iteration once the first step has sized the buffers;
//  - quiescent MOSFETs are bypassed: a cached model evaluation is reused
//    while the terminal voltages are bitwise unchanged (tol = 0, bit-safe)
//    or within an opt-in tolerance.
//
// Samples advance in lock-step, one attempted time step per round. A sample
// that diverges (Newton failure at dt_min, wall-clock expiry) drops OUT OF
// THE BATCH — flagged failed with the error preserved — while the remaining
// samples keep integrating; the batch never takes the whole sweep down.
//
// Bit-identity contract: at a fixed step (adaptive = false) with the
// default bypass tolerance of 0, every per-sample waveform is bit-identical
// to what run_transient() produces for the same circuit, because both
// drivers share one TransientStepper/newton_solve implementation and the
// frozen linear path reproduces the from-scratch factorization exactly
// (verified-or-fallback refactorization, ctor-order duplicate scatter).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ppd/spice/analysis.hpp"
#include "ppd/spice/circuit.hpp"

namespace ppd::spice {

/// Batch-wide policy. `base` is applied to every sample (t_stop may be
/// overridden per sample at add()).
struct BatchOptions {
  TransientOptions base;
  /// Reuse cached MOSFET evaluations for quiescent devices. At
  /// bypass_tol = 0 (default) reuse needs bitwise-equal terminal voltages
  /// and is bit-safe; > 0 trades bit-identity for more skipped evaluations.
  bool bypass = true;
  double bypass_tol = 0.0;
};

/// Outcome of one batch sample.
struct BatchSampleResult {
  TransientResult result;       ///< valid only when !failed
  bool failed = false;
  std::string error;            ///< failure reason when failed
  std::uint64_t bypass_hits = 0;   ///< MOSFET stamps served from cache
  std::uint64_t bypass_evals = 0;  ///< MOSFET stamps that re-evaluated
};

/// Factor-once/solve-many transient over N same-topology circuits.
/// Usage: construct, add() each sample's circuit (caller keeps ownership
/// and the circuits must outlive run()), then run() exactly once.
class BatchTransient {
 public:
  explicit BatchTransient(BatchOptions options);
  ~BatchTransient();

  BatchTransient(const BatchTransient&) = delete;
  BatchTransient& operator=(const BatchTransient&) = delete;

  /// Enroll one sample. `t_stop` <= 0 means options.base.t_stop. All
  /// enrolled circuits must share one topology (same nodes, same device
  /// order and terminal wiring) — parameter values are free to differ.
  void add(Circuit& circuit, double t_stop = 0.0);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// Advance all samples to their t_stop in lock-step. Per-sample failures
  /// are captured in the corresponding BatchSampleResult; run() itself
  /// throws only on misuse (empty batch, mixed topologies, second call).
  [[nodiscard]] std::vector<BatchSampleResult> run();

 private:
  struct Sample;

  BatchOptions options_;
  std::vector<std::unique_ptr<Sample>> samples_;
  bool ran_ = false;
};

}  // namespace ppd::spice
