// Independent-source waveform descriptions (DC, PULSE, PWL), mirroring the
// SPICE source cards the paper's experiments would have used.
#pragma once

#include <variant>
#include <vector>

namespace ppd::spice {

/// Constant value.
struct Dc {
  double value = 0.0;
};

/// SPICE-style PULSE(v1 v2 delay rise fall width period). A period of zero
/// means single-shot: the source stays at v1 after the pulse completes.
struct Pulse {
  double v1 = 0.0;
  double v2 = 0.0;
  double delay = 0.0;
  double rise = 1e-12;
  double fall = 1e-12;
  double width = 0.0;
  double period = 0.0;  // 0 => non-repeating
};

/// Piece-wise linear (t, v) points; t strictly increasing; value clamps
/// outside the specified range.
struct Pwl {
  std::vector<std::pair<double, double>> points;
};

using SourceSpec = std::variant<Dc, Pulse, Pwl>;

/// Evaluate a source specification at time t (t <= 0 gives the initial
/// value, which the operating-point analysis uses).
[[nodiscard]] double source_value(const SourceSpec& spec, double t);

}  // namespace ppd::spice
