// Device models for the electrical-level substrate: resistor, capacitor,
// independent sources and a level-1 (Shichman-Hodges) MOSFET.
//
// The model set is deliberately the minimum that reproduces the paper's
// physics: pulse dampening is an RC/drive-strength phenomenon, so a square-
// law MOSFET with lumped intrinsic capacitances (added by the cell library)
// captures the waveform shapes of Figs. 2/3/5 and the coverage crossovers of
// Figs. 6-9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ppd/spice/mna.hpp"
#include "ppd/spice/source.hpp"

namespace ppd::spice {

/// Node handle. 0 is ground.
using NodeId = int;
constexpr NodeId kGround = 0;

enum class AnalysisMode { kOperatingPoint, kTransient };
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Quiescent-device bypass policy and counters, threaded through
/// StampContext by the batch transient kernel. `tol == 0` (the default)
/// reuses a cached model evaluation only when the terminal voltages are
/// bitwise unchanged since it was computed — always bit-safe; `tol > 0`
/// trades bit-identity for more skipped evaluations (classic SPICE bypass,
/// opt-in).
struct MosBypass {
  double tol = 0.0;
  std::uint64_t hits = 0;   ///< stamps served from the cached evaluation
  std::uint64_t evals = 0;  ///< stamps that re-evaluated the model
};

/// Everything a device needs to stamp its (linearized, discretized)
/// companion model for the current Newton iterate.
struct StampContext {
  AnalysisMode mode = AnalysisMode::kOperatingPoint;
  Integrator integrator = Integrator::kTrapezoidal;
  double t = 0.0;     ///< time of the sought solution
  double h = 0.0;     ///< current time step (0 in OP)
  double gmin = 1e-9;
  double source_scale = 1.0;  ///< source-stepping homotopy factor
  const std::vector<double>* x = nullptr;  ///< current iterate (may be null in OP start)
  MosBypass* bypass = nullptr;  ///< null = no bypass (scalar path)
  /// True during a frozen partial re-assembly (engine_detail.hpp): the MNA
  /// slots still hold this device's last-stamped values, so a device whose
  /// stamp inputs are BITWISE unchanged since that stamp may return without
  /// stamping at all — the replay reproduces its values exactly.
  bool replay = false;
};

class Device {
 public:
  Device(std::string name, std::vector<NodeId> nodes);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

  /// Reconnect terminal `terminal` to `node` — the primitive the fault
  /// injector uses to splice resistive opens into a built circuit.
  void rewire(std::size_t terminal, NodeId node);

  /// Number of auxiliary MNA rows (branch currents) this device needs.
  [[nodiscard]] virtual std::size_t aux_rows() const { return 0; }
  void set_aux_base(std::size_t base) { aux_base_ = base; }

  [[nodiscard]] virtual bool is_nonlinear() const { return false; }
  [[nodiscard]] virtual bool is_dynamic() const { return false; }

  /// True when the device's stamp values can change between accepted time
  /// points of one transient (dynamic state, nonlinearity, or explicit time
  /// dependence). Devices returning false — resistors — stamp once per
  /// frozen transient; partial re-assembly replays their recorded values
  /// verbatim on every later step (see engine_detail.hpp).
  [[nodiscard]] virtual bool stamp_time_varying() const {
    return is_dynamic() || is_nonlinear();
  }

  /// Stamp the device into the MNA system.
  virtual void stamp(MnaSystem& mna, const StampContext& ctx) const = 0;

  /// Called once when a transient starts, with the operating point.
  virtual void begin_transient(const std::vector<double>& x_op);

  /// Called when a time step is accepted so dynamic devices can update
  /// their integration state. Returns true when that state — any input of
  /// the device's next stamp other than the iterate itself — changed
  /// BITWISE, so the selective re-assembly walk (engine_detail.hpp) knows
  /// the device must be revisited on the next step; devices without stamp
  /// state return false.
  virtual bool commit_step(const StampContext& ctx, const std::vector<double>& x);

 protected:
  /// MNA index of terminal `i` (kGroundIndex for ground).
  [[nodiscard]] MnaIndex idx(std::size_t i) const;
  /// Voltage of terminal `i` under iterate `x` (0 for ground).
  [[nodiscard]] double volt(const std::vector<double>& x, std::size_t i) const;

  std::size_t aux_base_ = 0;

 private:
  std::string name_;
  std::vector<NodeId> nodes_;
};

/// Linear resistor between nodes()[0] and nodes()[1].
class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  [[nodiscard]] double resistance() const { return ohms_; }
  void set_resistance(double ohms);

  void stamp(MnaSystem& mna, const StampContext& ctx) const override;

 private:
  double ohms_;
};

/// Linear capacitor between nodes()[0] and nodes()[1]. Open in OP (modulo a
/// gmin leak that keeps otherwise-floating nodes solvable); trapezoidal or
/// backward-Euler companion in transient.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  [[nodiscard]] double capacitance() const { return farads_; }
  void set_capacitance(double farads);

  [[nodiscard]] bool is_dynamic() const override { return true; }
  void stamp(MnaSystem& mna, const StampContext& ctx) const override;
  void begin_transient(const std::vector<double>& x_op) override;
  bool commit_step(const StampContext& ctx, const std::vector<double>& x) override;

 private:
  [[nodiscard]] double branch_voltage(const std::vector<double>& x) const;

  double farads_;
  double v_state_ = 0.0;  ///< voltage at the last accepted point
  double i_state_ = 0.0;  ///< current at the last accepted point (TRAP memory)
  // Inputs of the last transient stamp, for the ctx.replay quiescent skip
  // (bitwise compare; only consulted during frozen partial re-assembly).
  mutable double st_h_ = 0.0, st_v_ = 0.0, st_i_ = 0.0;
  mutable bool st_valid_ = false;
};

/// Independent voltage source from nodes()[0] (+) to nodes()[1] (-); adds
/// one auxiliary branch-current row.
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, SourceSpec spec);

  [[nodiscard]] const SourceSpec& spec() const { return spec_; }
  void set_spec(SourceSpec spec) { spec_ = std::move(spec); }
  [[nodiscard]] double value_at(double t) const;

  [[nodiscard]] std::size_t aux_rows() const override { return 1; }
  // Conservatively time-varying: the rhs tracks value_at(t). A DC spec
  // could replay, but sources are too few for the distinction to matter.
  [[nodiscard]] bool stamp_time_varying() const override { return true; }
  void stamp(MnaSystem& mna, const StampContext& ctx) const override;

  /// MNA index of this source's branch current (valid after finalize).
  [[nodiscard]] MnaIndex current_index() const {
    return static_cast<MnaIndex>(aux_base_);
  }

 private:
  SourceSpec spec_;
};

/// Independent current source injecting into nodes()[0], out of nodes()[1].
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId into, NodeId out_of, SourceSpec spec);

  [[nodiscard]] const SourceSpec& spec() const { return spec_; }
  void set_spec(SourceSpec spec) { spec_ = std::move(spec); }

  [[nodiscard]] bool stamp_time_varying() const override { return true; }
  void stamp(MnaSystem& mna, const StampContext& ctx) const override;

 private:
  SourceSpec spec_;
};

enum class MosType { kNmos, kPmos };

/// Level-1 parameters. vt0 is signed the SPICE way: positive for an
/// enhancement NMOS, negative for an enhancement PMOS.
struct MosParams {
  MosType type = MosType::kNmos;
  double w = 1e-6;        ///< channel width [m]
  double l = 180e-9;      ///< channel length [m]
  double vt0 = 0.45;      ///< threshold voltage [V]
  double kp = 170e-6;     ///< process transconductance u*Cox [A/V^2]
  double lambda = 0.05;   ///< channel-length modulation [1/V]
};

/// Square-law MOSFET, terminals (drain, gate, source). The bulk is assumed
/// tied to the source rail (no body effect); intrinsic capacitances are
/// added as explicit Capacitor devices by the cell library so that they can
/// carry Monte-Carlo variation consistently with W.
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
         const MosParams& params);

  [[nodiscard]] const MosParams& params() const { return params_; }

  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void stamp(MnaSystem& mna, const StampContext& ctx) const override;

  /// Drain current (drain->source through the channel) and its partial
  /// derivatives for given terminal voltages; exposed for unit tests.
  struct Eval {
    double ids;   ///< channel current, drain to source
    double gm;    ///< d ids / d vgs
    double gds;   ///< d ids / d vds
  };
  [[nodiscard]] Eval evaluate(double vd, double vg, double vs) const;

 private:
  /// NMOS-normalized square law for vds >= 0.
  [[nodiscard]] Eval square_law(double vgs, double vds) const;

  MosParams params_;
  // Last evaluation, cached for MosBypass (only maintained when a bypass
  // policy is active; a Circuit is used by one thread at a time).
  mutable double bp_vd_ = 0.0, bp_vg_ = 0.0, bp_vs_ = 0.0;
  mutable Eval bp_e_{0.0, 0.0, 0.0};
  mutable bool bp_valid_ = false;
};

}  // namespace ppd::spice
