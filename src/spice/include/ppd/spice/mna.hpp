// Modified-nodal-analysis system assembly. Devices stamp conductances,
// sources and auxiliary (branch-current) equations through this interface;
// the analysis engine then factorizes with the dense or sparse solver.
//
// Two operating modes:
//  - Default: every solve() rebuilds the solver state from scratch (sparse:
//    triplets -> CSC -> symbolic + numeric LU; dense: copy + factor).
//  - Structure-frozen (freeze_structure()): the first assemble/solve_into
//    cycle learns the stamping structure — the exact (row, col) matrix add
//    sequence, the rhs add sequence, the triplet -> CSC slot mapping with
//    its duplicate-accumulation order, and the LU elimination ordering.
//    Every later assemble writes numeric values into the learned slots and
//    solve_into() scatters them (in the recorded accumulation order, so sums
//    are bitwise those of a from-scratch assemble) and refactorizes in place
//    into a caller-owned buffer: no triplet rebuild, no symbolic analysis,
//    no per-iteration allocation. Results are bit-identical to the default
//    mode (the sparse refactorization verifies its frozen pivot order and
//    falls back to a full factor when values shift it).
//
// Because frozen slot values persist between assembles, a frozen assemble
// may also be PARTIAL: seek() repositions the replay cursors to a recorded
// mark() and only the devices whose values actually changed rewrite their
// slots — everything else replays verbatim. The transient engine uses this
// to restamp only nonlinear devices on Newton iterations >= 2 and only
// time-varying devices on new time steps (see engine_detail.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ppd/linalg/dense.hpp"
#include "ppd/linalg/sparse.hpp"

namespace ppd::spice {

/// MNA row/column index: 0..n_nodes-1 are node voltages (ground excluded),
/// then auxiliary rows. A negative index denotes ground and is dropped.
using MnaIndex = int;
constexpr MnaIndex kGroundIndex = -1;

class MnaSystem {
 public:
  /// `use_sparse` selects the backing solver.
  MnaSystem(std::size_t unknowns, bool use_sparse);

  void reset();

  /// A(row, col) += value; ground indices are ignored.
  void add(MnaIndex row, MnaIndex col, double value);

  /// rhs(row) += value; ground ignored.
  void add_rhs(MnaIndex row, double value);

  /// Factorize and solve. Throws NumericalError on singularity.
  [[nodiscard]] std::vector<double> solve() const;

  /// Enter structure-frozen mode: the next assemble + solve_into() learns
  /// the stamping structure, later assembles must replay the same add
  /// sequence (enforced). Call once, before the first assemble.
  void freeze_structure();
  [[nodiscard]] bool frozen() const { return freeze_ != Freeze::kOff; }
  /// True once the learning assemble + solve has completed and later
  /// assembles replay (fully or partially) into the learned slots.
  [[nodiscard]] bool replay_ready() const { return freeze_ == Freeze::kFrozen; }

  /// Replay cursor positions — a point in the learned add sequences.
  struct Mark {
    std::size_t trip = 0;
    std::size_t rhs = 0;
  };
  /// Current position in the add sequences (valid during the learning
  /// assemble, where it delimits per-device slot windows for later partial
  /// replays). While learning, adds append, so the position is the sequence
  /// length; once replay-ready it is the replay cursor.
  [[nodiscard]] Mark mark() const {
    if (freeze_ == Freeze::kFrozen) return {trip_cursor_, rhs_cursor_};
    return {trip_row_.size(), rhs_row_.size()};
  }
  /// Reposition the replay cursors to a recorded mark and flag this
  /// assemble as partial: slots not rewritten before solve_into() keep
  /// their previous values. replay_ready() only.
  void seek(const Mark& m);

  /// Flag the in-progress assemble as partial without repositioning the
  /// cursors — for selective walks that may visit zero devices (an empty
  /// walk is a valid partial assemble: every slot replays). replay_ready()
  /// only.
  void note_partial();

  /// Factorize and solve into `x` (resized). Bit-identical to solve(); in
  /// frozen mode this path is allocation-free after the first call and, for
  /// the dense solver, factorizes the assembled matrix in place (the matrix
  /// is consumed — reassemble before the next solve).
  void solve_into(std::vector<double>& x);

  [[nodiscard]] std::size_t unknowns() const { return n_; }
  [[nodiscard]] bool sparse() const { return use_sparse_; }

  /// Frozen-mode solve disposition counters (all zero in default mode):
  /// how many solve_into() calls refactorized, rebuilt only the rhs against
  /// the previous factorization, or returned the cached solution outright.
  /// The batch kernel's settle-tail claim is observable here.
  struct SolveStats {
    std::uint64_t refactored = 0;
    std::uint64_t rhs_only = 0;
    std::uint64_t cached = 0;
  };
  [[nodiscard]] const SolveStats& solve_stats() const { return stats_; }

 private:
  enum class Freeze { kOff, kLearning, kFrozen };

  /// Build the frozen CSC image + triplet scatter program from the current
  /// triplets, replicating SparseMatrix's duplicate-accumulation order so
  /// scattered values match a rebuilt matrix bitwise.
  void learn_sparse_structure();
  /// Build the dense scatter program: slot k is the column-major offset of
  /// triplet k, replayed in add order (the order direct += accumulated in).
  void learn_dense_structure();
  /// Group the learned rhs add sequence by row (add order preserved within
  /// each row) so dirty rows can be re-accumulated individually.
  void learn_rhs_rows();

  std::size_t n_;
  bool use_sparse_;
  linalg::DenseMatrix dense_;
  // Sparse stamping accumulates triplets per solve; in frozen mode both
  // backends record triplets (dense included) so values can be replayed.
  std::vector<std::size_t> trip_row_, trip_col_;
  std::vector<double> trip_val_;
  std::vector<double> rhs_;

  // Structure-frozen state.
  Freeze freeze_ = Freeze::kOff;
  bool partial_ = false;                   // current assemble used seek()
  // Bitwise value-change tracking across frozen assembles: when no matrix
  // slot changed, the previous factorization is still THE factorization of
  // this system and is reused; when the rhs didn't change either, the
  // previous solution is returned outright. Both are bit-identical shortcuts
  // (same bits in -> same bits out of a deterministic solver).
  bool mat_changed_ = true;
  bool rhs_changed_ = true;
  bool factor_ok_ = false;                 // dense_/slu_ hold a live factorization
  bool solve_cached_ = false;              // cached_x_ matches current values
  std::vector<double> cached_x_;
  std::size_t trip_cursor_ = 0;            // replay position during assembles
  std::size_t rhs_cursor_ = 0;
  std::vector<std::size_t> rhs_row_;       // learned rhs add sequence
  std::vector<double> rhs_val_;
  std::unique_ptr<linalg::SparseMatrix> a_;  // frozen CSC, values rewritten
  std::vector<std::size_t> scatter_src_;   // triplet index, accumulation order
  std::vector<std::size_t> scatter_slot_;  // matching CSC / dense value slot
  // Incremental scatter: rebuilding the whole CSC image per solve costs
  // O(triplets) even when one device restamped. The inverse maps below let
  // add() mark exactly the value slots / rhs rows its bit changes touch, and
  // solve_into() re-accumulates only those (in the recorded order, so the
  // sums stay bitwise full-rebuild sums). Matrix-side maps are sparse-only:
  // the dense in-place factorization consumes the matrix image, so dense
  // rebuilds are always full. rhs maps serve both backends.
  std::vector<std::size_t> trip_slot_;     // triplet index -> its CSC slot
  std::vector<std::size_t> slot_ptr_, slot_src_;  // slot -> triplets, in order
  std::vector<char> slot_dirty_;
  std::vector<std::size_t> dirty_slots_;
  std::vector<std::size_t> rhs_ptr_, rhs_src_;    // row -> rhs adds, in order
  std::vector<char> rhs_row_dirty_;
  std::vector<std::size_t> dirty_rhs_rows_;
  linalg::SparseLu slu_;
  linalg::DenseLuWorkspace dlw_;
  SolveStats stats_;
};

}  // namespace ppd::spice
