// Modified-nodal-analysis system assembly. Devices stamp conductances,
// sources and auxiliary (branch-current) equations through this interface;
// the analysis engine then factorizes with the dense or sparse solver.
#pragma once

#include <cstddef>
#include <vector>

#include "ppd/linalg/dense.hpp"
#include "ppd/linalg/sparse.hpp"

namespace ppd::spice {

/// MNA row/column index: 0..n_nodes-1 are node voltages (ground excluded),
/// then auxiliary rows. A negative index denotes ground and is dropped.
using MnaIndex = int;
constexpr MnaIndex kGroundIndex = -1;

class MnaSystem {
 public:
  /// `use_sparse` selects the backing solver.
  MnaSystem(std::size_t unknowns, bool use_sparse);

  void reset();

  /// A(row, col) += value; ground indices are ignored.
  void add(MnaIndex row, MnaIndex col, double value);

  /// rhs(row) += value; ground ignored.
  void add_rhs(MnaIndex row, double value);

  /// Factorize and solve. Throws NumericalError on singularity.
  [[nodiscard]] std::vector<double> solve() const;

  [[nodiscard]] std::size_t unknowns() const { return n_; }
  [[nodiscard]] bool sparse() const { return use_sparse_; }

 private:
  std::size_t n_;
  bool use_sparse_;
  linalg::DenseMatrix dense_;
  // Sparse stamping accumulates triplets per solve.
  std::vector<std::size_t> trip_row_, trip_col_;
  std::vector<double> trip_val_;
  std::vector<double> rhs_;
};

}  // namespace ppd::spice
