// The circuit container: named nodes plus an ordered collection of devices.
// Built once per Monte-Carlo sample by the cell library; mutated only
// through the narrow fault-injection primitives (rewire/insert).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ppd/spice/device.hpp"

namespace ppd::spice {

using DeviceId = std::size_t;

class Circuit {
 public:
  Circuit();

  /// Get-or-create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Create a fresh uniquely-named node (used when splicing faults).
  NodeId new_node(const std::string& hint);

  [[nodiscard]] bool has_node(const std::string& name) const;
  /// Lookup only; throws PreconditionError when missing.
  [[nodiscard]] NodeId find_node(const std::string& name) const;
  [[nodiscard]] const std::string& node_name(NodeId n) const;
  /// Number of nodes including ground.
  [[nodiscard]] std::size_t node_count() const { return names_.size(); }

  DeviceId add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  DeviceId add_capacitor(const std::string& name, NodeId a, NodeId b, double farads);
  DeviceId add_vsource(const std::string& name, NodeId plus, NodeId minus,
                       SourceSpec spec);
  DeviceId add_isource(const std::string& name, NodeId into, NodeId out_of,
                       SourceSpec spec);
  DeviceId add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                      const MosParams& params);

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] Device& device(DeviceId id);
  [[nodiscard]] const Device& device(DeviceId id) const;
  /// Typed accessors; throw PreconditionError on type mismatch.
  [[nodiscard]] Resistor& resistor(DeviceId id);
  [[nodiscard]] Capacitor& capacitor(DeviceId id);
  [[nodiscard]] VoltageSource& vsource(DeviceId id);
  [[nodiscard]] Mosfet& mosfet(DeviceId id);

  /// Find a device by name; throws when absent.
  [[nodiscard]] DeviceId find_device(const std::string& name) const;
  [[nodiscard]] bool has_device(const std::string& name) const;

  /// Assign auxiliary MNA rows; must be called (by the analyses) after the
  /// last topology change. Idempotent.
  void finalize();
  [[nodiscard]] std::size_t unknown_count() const;
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Iteration support for the analyses.
  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Provenance label — what this circuit was built from (a path recipe, a
  /// bench file, ...). Solver failure diagnostics include it so a
  /// non-converging sample deep in a sweep still names its circuit. Empty
  /// when the builder never set one.
  void set_source(std::string source) { source_ = std::move(source); }
  [[nodiscard]] const std::string& source() const { return source_; }

  /// Human-readable netlist dump (debugging aid).
  [[nodiscard]] std::string to_netlist() const;

 private:
  DeviceId insert(std::unique_ptr<Device> dev);

  std::string source_;
  std::vector<std::string> names_;  // names_[0] == "0" (ground)
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, DeviceId> device_by_name_;
  std::size_t aux_rows_ = 0;
  bool finalized_ = false;
  int fresh_counter_ = 0;
};

}  // namespace ppd::spice
