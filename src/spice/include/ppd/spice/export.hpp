// Export a Circuit as a standard SPICE deck (ngspice/HSPICE level-1
// syntax). The repository's engine is self-contained, but emitting the
// exact same netlist lets a downstream user cross-validate any experiment
// against an external simulator — the substitution check DESIGN.md invites.
#pragma once

#include <iosfwd>
#include <string>

#include "ppd/spice/circuit.hpp"

namespace ppd::spice {

struct SpiceExportOptions {
  std::string title = "ppd export";
  /// Emit a .tran card (0 = none).
  double tran_step = 0.0;
  double tran_stop = 0.0;
};

/// Write the deck: .model cards for every distinct MOSFET parameter set,
/// one element card per device, optional .tran, then .end. Names are
/// sanitized to SPICE conventions (type-letter prefix, no dots).
void write_spice(std::ostream& os, const Circuit& circuit,
                 const SpiceExportOptions& options = {});

[[nodiscard]] std::string spice_to_string(const Circuit& circuit,
                                          const SpiceExportOptions& options = {});

}  // namespace ppd::spice
