// Content addresses for circuits: feed a circuit's topology and exact
// device parameters into a ppd::cache::Hasher, so the solve cache and the
// Newton warm-start can key on "the same electrical system" instead of on
// object identity. Device *names* are deliberately excluded — two circuits
// that stamp identical MNA systems hash equal regardless of labels.
//
// Two views exist because two reuse layers need different equivalences:
//
//  * hash_circuit — the full circuit including complete source waveforms.
//    Keys transient measurements: everything that shapes the waveform.
//  * hash_circuit_op — sources reduced to their value at t = 0. The
//    operating point only sees that value (OP-mode stamps evaluate sources
//    at t = 0), so instances that differ merely in a later pulse width
//    share one OP solution — the warm-start hit the transfer-function
//    w_in grid lives on.
#pragma once

#include <cstdint>

#include "ppd/cache/hash.hpp"
#include "ppd/spice/circuit.hpp"

namespace ppd::spice {

/// Full content: topology, device parameters and complete source specs.
void hash_circuit(cache::Hasher& h, const Circuit& circuit);

/// Operating-point view: as hash_circuit, but each source contributes only
/// its t = 0 value (and dynamic state does not exist yet at the OP).
void hash_circuit_op(cache::Hasher& h, const Circuit& circuit);

/// Convenience one-shots.
[[nodiscard]] std::uint64_t circuit_content_hash(const Circuit& circuit);

}  // namespace ppd::spice
