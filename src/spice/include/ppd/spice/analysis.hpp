// Operating-point and transient analyses over a Circuit.
//
// OP: Newton-Raphson from a flat start, with gmin stepping and source
// stepping as successive fallbacks (the standard SPICE homotopy ladder).
// Transient: fixed-step or iteration-count-adaptive stepping with
// trapezoidal (default) or backward-Euler companions.
#pragma once

#include <string>
#include <vector>

#include "ppd/spice/circuit.hpp"
#include "ppd/wave/waveform.hpp"

namespace ppd::spice {

struct NewtonOptions {
  int max_iterations = 100;
  double abstol = 1e-6;    ///< absolute voltage tolerance [V]
  double reltol = 1e-4;
  double dv_max = 1.0;     ///< per-iteration voltage-step clamp [V]
  /// Leak conductance added on every node and across every channel [S].
  /// 1 nS keeps cut-off series stacks well-conditioned at a flat OP start
  /// while perturbing digital levels by < 1 uV.
  double gmin = 1e-9;
};

/// Homotopy-ladder shape for operating-point recovery. Both fallbacks are
/// schedules of progressively easier solves that hand their solution to the
/// next stage; these knobs size those schedules.
struct OpRecovery {
  double gmin_start = 1e-3;   ///< first (heaviest) leak of the gmin rung [S]
  double gmin_factor = 0.1;   ///< geometric relaxation per stage (< 1)
  int source_steps = 20;      ///< source-ramp stages (scale k/source_steps)
};

struct OpOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
  OpRecovery recovery;
  /// Wall-clock budget for the whole homotopy ladder [s]; <= 0 = unlimited.
  /// Expiry throws ppd::TimeoutError (see ppd::resil::Deadline).
  double budget_seconds = 0.0;
  /// SPICE .NODESET equivalent: initial node-voltage guesses that bias
  /// Newton toward a chosen solution of a multi-stable circuit (latches,
  /// ring oscillators). Applied to every homotopy rung's starting point.
  std::vector<std::pair<NodeId, double>> nodesets;
};

/// Result of an operating-point analysis.
struct OpResult {
  std::vector<double> x;        ///< MNA unknowns (node voltages then branch currents)
  int iterations = 0;           ///< NR iterations of the final (un-stepped) solve
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;

  /// Node voltage accessor (ground reads 0).
  [[nodiscard]] double voltage(NodeId n) const;
};

/// Compute the operating point via the homotopy ladder. Converged solutions
/// are memoized in the process-wide solve cache (ppd::cache) keyed on the
/// circuit's OP content hash: a repeat solve of the same electrical system
/// verifies the stored iterate with one linear solve and returns it verbatim
/// — bit-identical to the cold run, counted as spice.newton.warm_start.hit.
/// PPD_CACHE=0 disables the reuse entirely.
[[nodiscard]] OpResult run_op(Circuit& circuit, const OpOptions& options = {});

/// Adaptive time-step controller (active only when `adaptive` is set):
/// `kIterationCount` grows/shrinks the step on Newton iteration counts (the
/// classic SPICE heuristic, and the historical behavior); `kLte` holds a
/// trapezoidal local-truncation estimate — the distance between the solved
/// point and a divided-difference predictor — under `lte_tol`, rejecting and
/// resizing steps that exceed it.
enum class StepControl { kIterationCount, kLte };

struct TransientOptions {
  double t_stop = 4e-9;
  double dt = 1e-12;            ///< base step
  Integrator integrator = Integrator::kTrapezoidal;
  NewtonOptions newton;
  bool adaptive = false;        ///< adaptive time-step control
  StepControl step_control = StepControl::kIterationCount;
  double lte_tol = 2e-3;        ///< LTE accept threshold [V] (kLte only)
  double dt_min = 1e-15;
  double dt_max = 2e-11;
  /// Use the sparse solver when the MNA order exceeds this; 0 forces sparse.
  std::size_t sparse_threshold = 192;
  /// Nodes to record (empty = every node). Restricting the probe set saves
  /// memory and time in Monte-Carlo sweeps that only measure two terminals.
  std::vector<NodeId> probe;
  /// Options for the initial operating point (e.g. .NODESET biases to pick
  /// a latch state before integrating).
  OpOptions op;
  /// Wall-clock budget for the WHOLE analysis [s] — the initial operating
  /// point and the integration loop spend from this one deadline; <= 0 =
  /// unlimited. Expiry throws ppd::TimeoutError. `op.budget_seconds`, when
  /// set, additionally tightens just the OP phase (the earlier of the two
  /// deadlines wins there).
  double budget_seconds = 0.0;
};

/// Transient record: one waveform per probed node (all nodes by default).
struct TransientResult {
  std::vector<std::string> node_names;       ///< index = NodeId (0 = ground)
  std::vector<wave::Waveform> node_waves;    ///< index = NodeId; [0] unused
  std::vector<bool> probed;                  ///< index = NodeId
  std::size_t steps = 0;
  std::size_t newton_iterations = 0;
  std::size_t rejected_steps = 0;

  [[nodiscard]] const wave::Waveform& wave(NodeId n) const;
  [[nodiscard]] const wave::Waveform& wave(const std::string& node_name) const;
};

/// Run OP then integrate to t_stop. Throws NumericalError when Newton fails
/// at the minimum step.
[[nodiscard]] TransientResult run_transient(Circuit& circuit,
                                            const TransientOptions& options = {});

}  // namespace ppd::spice
