// Static analysis over a built Circuit: adapt the device list into the
// neutral ppd::lint electrical IR and run the PPD1xx checks (ground
// islands, gmin-dependent nodes, voltage-source loops, parameter ranges).
//
// The analyses call validate_circuit() on entry, so a structurally broken
// circuit is rejected with an actionable LintError *before* the MNA solver
// can fail deep inside a Monte-Carlo sweep with "singular matrix".
#pragma once

#include "ppd/lint/spice_lint.hpp"
#include "ppd/spice/circuit.hpp"

namespace ppd::spice {

/// Build the lint IR for `circuit`. `subject` names it in diagnostics.
[[nodiscard]] lint::ElecGraph to_lint_graph(const Circuit& circuit,
                                            const std::string& subject = "circuit");

/// Run every electrical check.
[[nodiscard]] lint::Report lint_circuit(const Circuit& circuit,
                                        const lint::ElecLintOptions& options = {});

/// Throw lint::LintError when `circuit` has error-severity defects
/// (islands, voltage-source loops, device-free nodes). Called by
/// run_op/run_transient on entry; cheap (union-find over the device list).
void validate_circuit(const Circuit& circuit,
                      const std::string& subject = "circuit");

}  // namespace ppd::spice
