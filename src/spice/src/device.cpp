#include "ppd/spice/device.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "ppd/util/error.hpp"

namespace ppd::spice {

namespace {

/// Bitwise double equality. The quiescent-skip decisions below must
/// preserve replayed values EXACTLY, and operator== is too loose for that:
/// -0.0 == +0.0, yet the two produce different bit patterns downstream
/// (and different CSV bytes).
[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

Device::Device(std::string name, std::vector<NodeId> nodes)
    : name_(std::move(name)), nodes_(std::move(nodes)) {
  PPD_REQUIRE(!name_.empty(), "device needs a name");
  for (NodeId n : nodes_) PPD_REQUIRE(n >= 0, "invalid node id");
}

void Device::rewire(std::size_t terminal, NodeId node) {
  PPD_REQUIRE(terminal < nodes_.size(), "terminal index out of range");
  PPD_REQUIRE(node >= 0, "invalid node id");
  nodes_[terminal] = node;
}

MnaIndex Device::idx(std::size_t i) const {
  PPD_REQUIRE(i < nodes_.size(), "terminal index out of range");
  const NodeId n = nodes_[i];
  return n == kGround ? kGroundIndex : static_cast<MnaIndex>(n - 1);
}

double Device::volt(const std::vector<double>& x, std::size_t i) const {
  const MnaIndex m = idx(i);
  if (m == kGroundIndex) return 0.0;
  PPD_REQUIRE(static_cast<std::size_t>(m) < x.size(), "iterate too small");
  return x[static_cast<std::size_t>(m)];
}

void Device::begin_transient(const std::vector<double>&) {}
bool Device::commit_step(const StampContext&, const std::vector<double>&) {
  return false;
}

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name), {a, b}), ohms_(ohms) {
  PPD_REQUIRE(ohms > 0.0, "resistance must be positive");
}

void Resistor::set_resistance(double ohms) {
  PPD_REQUIRE(ohms > 0.0, "resistance must be positive");
  ohms_ = ohms;
}

void Resistor::stamp(MnaSystem& mna, const StampContext&) const {
  const double g = 1.0 / ohms_;
  const MnaIndex a = idx(0), b = idx(1);
  mna.add(a, a, g);
  mna.add(b, b, g);
  mna.add(a, b, -g);
  mna.add(b, a, -g);
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name), {a, b}), farads_(farads) {
  PPD_REQUIRE(farads > 0.0, "capacitance must be positive");
}

void Capacitor::set_capacitance(double farads) {
  PPD_REQUIRE(farads > 0.0, "capacitance must be positive");
  farads_ = farads;
  st_valid_ = false;
}

double Capacitor::branch_voltage(const std::vector<double>& x) const {
  return volt(x, 0) - volt(x, 1);
}

void Capacitor::stamp(MnaSystem& mna, const StampContext& ctx) const {
  const MnaIndex a = idx(0), b = idx(1);
  if (ctx.mode == AnalysisMode::kOperatingPoint) {
    // Open in DC; a gmin leak keeps capacitively-coupled nodes solvable.
    mna.add(a, a, ctx.gmin);
    mna.add(b, b, ctx.gmin);
    mna.add(a, b, -ctx.gmin);
    mna.add(b, a, -ctx.gmin);
    return;
  }
  PPD_REQUIRE(ctx.h > 0.0, "transient stamp needs a positive step");
  // Quiescent skip: the companion values are a pure function of
  // (h, v_state_, i_state_); when all three are bitwise what they were at
  // the last stamp, a replaying assemble would rewrite the exact same
  // numbers — let the slots keep them instead. This is what makes settle-
  // tail steps cheap in the batched kernel: under backward Euler a settled
  // node's state freezes bitwise and its capacitors drop out of assembly.
  if (ctx.replay && st_valid_ && bits_equal(ctx.h, st_h_) &&
      bits_equal(v_state_, st_v_) && bits_equal(i_state_, st_i_)) {
    return;
  }
  st_h_ = ctx.h;
  st_v_ = v_state_;
  st_i_ = i_state_;
  st_valid_ = true;
  // Companion: i = geq * v - ieq_src  with the device current defined from
  // node a through the capacitor to node b.
  double geq = 0.0, ieq_src = 0.0;
  if (ctx.integrator == Integrator::kBackwardEuler) {
    geq = farads_ / ctx.h;
    ieq_src = geq * v_state_;
  } else {  // trapezoidal
    geq = 2.0 * farads_ / ctx.h;
    ieq_src = geq * v_state_ + i_state_;
  }
  mna.add(a, a, geq);
  mna.add(b, b, geq);
  mna.add(a, b, -geq);
  mna.add(b, a, -geq);
  mna.add_rhs(a, ieq_src);
  mna.add_rhs(b, -ieq_src);
}

void Capacitor::begin_transient(const std::vector<double>& x_op) {
  v_state_ = branch_voltage(x_op);
  i_state_ = 0.0;  // steady state: no capacitor current
  st_valid_ = false;  // the new run may use a different integrator
}

bool Capacitor::commit_step(const StampContext& ctx, const std::vector<double>& x) {
  const double v_prev = v_state_;
  const double i_prev = i_state_;
  const double v_new = branch_voltage(x);
  if (ctx.integrator == Integrator::kBackwardEuler) {
    i_state_ = farads_ / ctx.h * (v_new - v_state_);
  } else {
    i_state_ = 2.0 * farads_ / ctx.h * (v_new - v_state_) - i_state_;
  }
  v_state_ = v_new;
  return !bits_equal(v_state_, v_prev) || !bits_equal(i_state_, i_prev);
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             SourceSpec spec)
    : Device(std::move(name), {plus, minus}), spec_(std::move(spec)) {}

double VoltageSource::value_at(double t) const { return source_value(spec_, t); }

void VoltageSource::stamp(MnaSystem& mna, const StampContext& ctx) const {
  const MnaIndex p = idx(0), m = idx(1);
  const auto br = static_cast<MnaIndex>(aux_base_);
  mna.add(p, br, 1.0);
  mna.add(m, br, -1.0);
  mna.add(br, p, 1.0);
  mna.add(br, m, -1.0);
  const double t = ctx.mode == AnalysisMode::kOperatingPoint ? 0.0 : ctx.t;
  mna.add_rhs(br, ctx.source_scale * value_at(t));
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId into, NodeId out_of,
                             SourceSpec spec)
    : Device(std::move(name), {into, out_of}), spec_(std::move(spec)) {}

void CurrentSource::stamp(MnaSystem& mna, const StampContext& ctx) const {
  const double t = ctx.mode == AnalysisMode::kOperatingPoint ? 0.0 : ctx.t;
  const double i = ctx.source_scale * source_value(spec_, t);
  mna.add_rhs(idx(0), i);
  mna.add_rhs(idx(1), -i);
}

// ------------------------------------------------------------------ Mosfet

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               const MosParams& params)
    : Device(std::move(name), {drain, gate, source}), params_(params) {
  PPD_REQUIRE(params.w > 0.0 && params.l > 0.0, "W and L must be positive");
  PPD_REQUIRE(params.kp > 0.0, "KP must be positive");
  if (params.type == MosType::kNmos)
    PPD_REQUIRE(params.vt0 > 0.0, "NMOS vt0 must be positive");
  else
    PPD_REQUIRE(params.vt0 < 0.0, "PMOS vt0 must be negative");
}

Mosfet::Eval Mosfet::square_law(double vgs, double vds) const {
  // NMOS-normalized: expects vds >= 0 and a positive threshold.
  const double vt = std::abs(params_.vt0);
  const double beta = params_.kp * params_.w / params_.l;
  const double vov = vgs - vt;
  Eval e{0.0, 0.0, 0.0};
  if (vov <= 0.0) return e;  // cutoff
  const double lam = params_.lambda;
  const double clm = 1.0 + lam * vds;
  if (vds < vov) {
    // Triode.
    const double q = vov * vds - 0.5 * vds * vds;
    e.ids = beta * q * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * ((vov - vds) * clm + q * lam);
  } else {
    // Saturation.
    const double q = 0.5 * vov * vov;
    e.ids = beta * q * clm;
    e.gm = beta * vov * clm;
    e.gds = beta * q * lam;
  }
  return e;
}

Mosfet::Eval Mosfet::evaluate(double vd, double vg, double vs) const {
  // Mirror PMOS into NMOS space: I_p(vgs, vds) = -I_n(-vgs, -vds).
  const double sign = params_.type == MosType::kNmos ? 1.0 : -1.0;
  double vgs = sign * (vg - vs);
  double vds = sign * (vd - vs);
  bool swapped = false;
  if (vds < 0.0) {
    // Channel symmetry: swap drain and source roles.
    vgs = vgs - vds;  // vgd in the original frame
    vds = -vds;
    swapped = true;
  }
  const Eval raw = square_law(vgs, vds);
  Eval e{0.0, 0.0, 0.0};
  if (!swapped) {
    e.ids = sign * raw.ids;
    e.gm = raw.gm;
    e.gds = raw.gds;
  } else {
    // i(vgs, vds) = -raw(vgs - vds, -vds):
    //   di/dvgs = -gm_raw ; di/dvds = gm_raw + gds_raw.
    e.ids = -sign * raw.ids;
    e.gm = -raw.gm;
    e.gds = raw.gm + raw.gds;
  }
  return e;
}

void Mosfet::stamp(MnaSystem& mna, const StampContext& ctx) const {
  const MnaIndex d = idx(0), g = idx(1), s = idx(2);
  double vd = 0.0, vg = 0.0, vs = 0.0;
  if (ctx.x != nullptr) {
    vd = volt(*ctx.x, 0);
    vg = volt(*ctx.x, 1);
    vs = volt(*ctx.x, 2);
  }
  // Quiescent replay skip: during a frozen partial re-assembly with the
  // bit-safe bypass policy (tol = 0), terminal voltages bitwise equal to the
  // last stamp's mean the stamp would rewrite exactly the values already in
  // the slots — skip the writes (and the evaluation) entirely. Requires
  // tol = 0: with a loose tolerance the written values depend on the cached
  // linearization point, not just the current voltages.
  if (ctx.replay && ctx.bypass != nullptr && ctx.bypass->tol == 0.0 &&
      bp_valid_ && bits_equal(vd, bp_vd_) && bits_equal(vg, bp_vg_) &&
      bits_equal(vs, bp_vs_)) {
    ++ctx.bypass->hits;
    return;
  }
  // Quiescent bypass: reuse the cached evaluation (and its linearization
  // point) when the terminal voltages moved by at most the policy tolerance.
  // At tol = 0 this requires bitwise equality, so the stamp is identical to
  // an un-bypassed one.
  Eval e{0.0, 0.0, 0.0};
  double lvd = vd, lvg = vg, lvs = vs;  // linearization point actually used
  if (ctx.bypass != nullptr && bp_valid_ &&
      std::abs(vd - bp_vd_) <= ctx.bypass->tol &&
      std::abs(vg - bp_vg_) <= ctx.bypass->tol &&
      std::abs(vs - bp_vs_) <= ctx.bypass->tol) {
    e = bp_e_;
    lvd = bp_vd_;
    lvg = bp_vg_;
    lvs = bp_vs_;
    ++ctx.bypass->hits;
  } else {
    e = evaluate(vd, vg, vs);
    if (ctx.bypass != nullptr) {
      bp_vd_ = vd;
      bp_vg_ = vg;
      bp_vs_ = vs;
      bp_e_ = e;
      bp_valid_ = true;
      ++ctx.bypass->evals;
    }
  }
  // Linearized channel current (drain -> source):
  //   i ~= ids0 + gm (vgs - vgs0) + gds (vds - vds0)
  const double vgs0 = lvg - lvs;
  const double vds0 = lvd - lvs;
  const double ieq = e.ids - e.gm * vgs0 - e.gds * vds0;
  mna.add(d, g, e.gm);
  mna.add(d, s, -e.gm - e.gds);
  mna.add(d, d, e.gds);
  mna.add(s, g, -e.gm);
  mna.add(s, s, e.gm + e.gds);
  mna.add(s, d, -e.gds);
  mna.add_rhs(d, -ieq);
  mna.add_rhs(s, ieq);
  // gmin across the channel keeps cutoff devices from isolating nodes.
  mna.add(d, d, ctx.gmin);
  mna.add(s, s, ctx.gmin);
  mna.add(d, s, -ctx.gmin);
  mna.add(s, d, -ctx.gmin);
}

}  // namespace ppd::spice
