// Private engine internals shared by the scalar transient path
// (analysis.cpp) and the batched MC kernel (batch.cpp). One implementation
// of assembly, the Newton loop and the per-step state machine serves both,
// which is what makes the fixed-step batched results bit-identical to the
// scalar path by construction rather than by careful mirroring.
//
// Not installed; include only from ppd_spice translation units.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ppd/resil/deadline.hpp"
#include "ppd/spice/analysis.hpp"

namespace ppd::spice::detail {

struct NewtonOutcome {
  bool converged = false;
  int iterations = 0;
  /// Inf-norm of the final iteration's UNCLAMPED node-voltage update [V].
  /// Convergence itself is judged on the clamped update; this field exists
  /// for failure diagnostics, where reporting the clamped value would make
  /// every hard failure print dv_max instead of the true step.
  double residual = 0.0;
};

/// Caller-owned solve buffer for the allocation-free Newton path. When a
/// workspace is supplied, newton_solve() uses MnaSystem::solve_into() and
/// performs no per-iteration allocation (given a frozen MnaSystem).
struct NewtonWorkspace {
  std::vector<double> x_new;
};

/// Which subset of devices a (frozen, replay-ready) assemble must restamp.
/// Ignored — every assemble is full — until the plan has been learned and
/// the MnaSystem replays, so the scalar path never changes behavior.
enum class AssemblePhase {
  kFull,           ///< stamp everything (learning pass, scalar path, OP)
  kStepRefresh,    ///< new time point: time-varying devices only
  kIterateRefresh  ///< same time point, new Newton iterate: nonlinear only
};

/// Per-device replay windows into a frozen MnaSystem's learned add
/// sequences, recorded during the learning assemble. With a learned plan,
/// kStepRefresh / kIterateRefresh assembles seek() to each listed device's
/// window and restamp just that device; every untouched slot keeps the
/// value it had, and solve_into() replays the full sequence in the original
/// accumulation order — so partial assembles are bit-identical to full
/// ones whenever the skipped devices' values are unchanged (linear stamps
/// within a step; static stamps across the whole transient).
struct AssemblePlan {
  bool learned = false;
  std::vector<std::size_t> refresh;      ///< device idx: stamp_time_varying()
  std::vector<std::size_t> nonlinear;    ///< device idx: is_nonlinear()
  std::vector<MnaSystem::Mark> marks;    ///< per device, slot-window starts

  // Selective (dirty-driven) refresh. The refresh/nonlinear lists above are
  // membership tests (which devices CAN change); the machinery below tracks
  // which devices DID change since their slots were last written, so a
  // partial walk visits only those. Three channels feed it:
  //   - node_watch: nonlinear stamps are functions of the iterate, so the
  //     Newton update marks every x entry whose bits moved (node_dirty) and
  //     the walk visits the nonlinear devices watching those entries;
  //   - dev_dirty: dynamic stamps are functions of committed integration
  //     state, so commit_step() reports bitwise state changes per device;
  //   - sources: explicit time dependence, revisited every new time point.
  // Skipped devices' slots replay verbatim, which is exactly the bit-
  // identity contract of partial assembly — the dirty sets only ever ADD
  // visits relative to the minimal correct set, never remove one.
  std::vector<std::size_t> sources;      ///< time-varying, static state
  std::vector<std::vector<std::uint32_t>> node_watch;  ///< x idx -> nonlinear
  std::vector<char> node_dirty;   ///< x bits moved since the last walk
  std::vector<char> dev_dirty;    ///< commit state moved since the last walk
  std::vector<std::uint32_t> visit_epoch;  ///< per device, walk dedupe
  std::uint32_t epoch = 0;
  bool selective = false;  ///< machinery sized and maintained (frozen only)
  bool all_dirty = true;   ///< conservative reset: next walk is a full one
};

/// Stamp every device plus the global gmin-to-ground leak — or, given a
/// learned plan and a replay-ready MnaSystem, only the phase's subset.
void assemble(Circuit& circuit, MnaSystem& mna, const StampContext& ctx,
              AssemblePlan* plan = nullptr,
              AssemblePhase phase = AssemblePhase::kFull);

/// Newton-Raphson: iterate full solves of the linearized system until the
/// voltage update is below tolerance. `x` carries the initial guess in and
/// the solution out. `first_phase` applies to the first assemble; later
/// iterations use kIterateRefresh (a no-op downgrade to kFull without a
/// learned plan).
NewtonOutcome newton_solve(Circuit& circuit, MnaSystem& mna, StampContext ctx,
                           const NewtonOptions& opt, std::vector<double>& x,
                           const resil::Deadline& deadline = {},
                           NewtonWorkspace* ws = nullptr,
                           AssemblePlan* plan = nullptr,
                           AssemblePhase first_phase = AssemblePhase::kFull);

/// run_op with the wall-clock deadline supplied by the caller, so transient
/// drivers can thread ONE shared deadline through both phases.
OpResult run_op_with_deadline(Circuit& circuit, const OpOptions& options,
                              const resil::Deadline& deadline);

/// Size the waveform/name/probe arrays of a TransientResult for `circuit`
/// and fill `probe_list` with the recorded MNA node ids — shared between the
/// scalar and batched drivers so their records are structured identically.
void init_transient_result(const Circuit& circuit,
                           const std::vector<NodeId>& probe,
                           TransientResult& result,
                           std::vector<std::size_t>& probe_list);

/// Per-sample transient state machine: one step() call is one attempted
/// time step (accepted, rejected, or nothing left to do). Owns the step
/// size, the adaptive controllers (iteration-count and LTE), the end-of-
/// sweep snapping, and the iterate buffers. Drivers own the circuit, the
/// MnaSystem, the OP phase, waveform recording, and error handling — the
/// scalar driver lets exceptions fly, the batch driver quarantines the
/// sample and keeps the rest of the batch running.
class TransientStepper {
 public:
  enum class Outcome { kAccepted, kRejected, kFinished };

  /// `x_op` is the operating point; `ws`/`bypass` may be null (scalar path).
  TransientStepper(Circuit& circuit, MnaSystem& mna,
                   const TransientOptions& options, double t_stop,
                   resil::Deadline deadline, const std::vector<double>& x_op,
                   NewtonWorkspace* ws, MosBypass* bypass);

  /// Attempt one step. Throws TimeoutError on deadline expiry and
  /// NumericalError when Newton fails at the minimum step or diverges.
  Outcome step();

  /// Accumulated time, snapped to exactly t_stop at the end of the sweep.
  [[nodiscard]] double time() const { return t_; }
  [[nodiscard]] const std::vector<double>& x() const { return x_; }
  [[nodiscard]] int last_iterations() const { return last_iterations_; }
  /// True when the sweep ended by snapping a sub-dt_min sliver to t_stop
  /// without integrating it (the driver should record one more point).
  [[nodiscard]] bool snapped_without_step() const { return snapped_; }

 private:
  Circuit& circuit_;
  MnaSystem& mna_;
  const TransientOptions& options_;
  resil::Deadline deadline_;
  NewtonWorkspace* ws_;
  MosBypass* bypass_;
  std::size_t node_unknowns_;
  double t_stop_;
  double t_end_;  // relative end-of-sweep guard
  double t_ = 0.0;
  double h_;
  double h_prev_ = 0.0;
  double stamp_h_ = 0.0;  // h of the last attempted solve (bitwise compare)
  bool have_stamp_h_ = false;
  bool have_history_ = false;
  bool just_rejected_ = false;
  bool snapped_ = false;
  int last_iterations_ = 0;
  AssemblePlan plan_;  // partial re-assembly windows (frozen MnaSystem only)
  std::vector<double> x_, x_try_, x_prev_;
};

}  // namespace ppd::spice::detail
