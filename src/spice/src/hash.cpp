#include "ppd/spice/hash.hpp"

#include "ppd/util/error.hpp"

namespace ppd::spice {

namespace {

enum class SourceView { kFull, kAtTimeZero };

void hash_source_spec(cache::Hasher& h, const SourceSpec& spec,
                      SourceView view) {
  if (view == SourceView::kAtTimeZero) {
    // The operating point evaluates sources at t = 0 and never sees the
    // rest of the waveform, so two specs with equal initial values are the
    // same source as far as the OP system is concerned.
    h.u8(10);
    h.f64(source_value(spec, 0.0));
    return;
  }
  if (const auto* dc = std::get_if<Dc>(&spec)) {
    h.u8(11);
    h.f64(dc->value);
  } else if (const auto* p = std::get_if<Pulse>(&spec)) {
    h.u8(12);
    h.f64(p->v1);
    h.f64(p->v2);
    h.f64(p->delay);
    h.f64(p->rise);
    h.f64(p->fall);
    h.f64(p->width);
    h.f64(p->period);
  } else {
    const auto* pwl = std::get_if<Pwl>(&spec);
    PPD_REQUIRE(pwl != nullptr, "unknown source spec kind in hash");
    h.u8(13);
    h.u64(pwl->points.size());
    for (const auto& [t, v] : pwl->points) {
      h.f64(t);
      h.f64(v);
    }
  }
}

void hash_nodes(cache::Hasher& h, const Device& dev) {
  const auto& nodes = dev.nodes();
  h.u64(nodes.size());
  for (const NodeId n : nodes) h.i64(n);
}

void hash_impl(cache::Hasher& h, const Circuit& circuit, SourceView view) {
  // Node ids are assigned in creation order, so ids alone pin the topology;
  // node *names* are labels (like device names) and stay out of the key.
  h.u64(circuit.node_count());
  h.u64(circuit.device_count());
  for (const auto& dev : circuit.devices()) {
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      h.u8(1);
      hash_nodes(h, *r);
      h.f64(r->resistance());
    } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
      h.u8(2);
      hash_nodes(h, *c);
      h.f64(c->capacitance());
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(dev.get())) {
      h.u8(3);
      hash_nodes(h, *v);
      hash_source_spec(h, v->spec(), view);
    } else if (const auto* i = dynamic_cast<const CurrentSource*>(dev.get())) {
      h.u8(4);
      hash_nodes(h, *i);
      hash_source_spec(h, i->spec(), view);
    } else {
      const auto* m = dynamic_cast<const Mosfet*>(dev.get());
      PPD_REQUIRE(m != nullptr, "unknown device kind in hash");
      const MosParams& p = m->params();
      h.u8(5);
      hash_nodes(h, *m);
      h.u8(p.type == MosType::kNmos ? 0 : 1);
      h.f64(p.w);
      h.f64(p.l);
      h.f64(p.vt0);
      h.f64(p.kp);
      h.f64(p.lambda);
    }
  }
}

}  // namespace

void hash_circuit(cache::Hasher& h, const Circuit& circuit) {
  hash_impl(h, circuit, SourceView::kFull);
}

void hash_circuit_op(cache::Hasher& h, const Circuit& circuit) {
  hash_impl(h, circuit, SourceView::kAtTimeZero);
}

std::uint64_t circuit_content_hash(const Circuit& circuit) {
  cache::Hasher h;
  hash_circuit(h, circuit);
  return h.value();
}

}  // namespace ppd::spice
