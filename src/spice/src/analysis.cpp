#include "ppd/spice/analysis.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "engine_detail.hpp"
#include "ppd/cache/solve_cache.hpp"
#include "ppd/obs/log.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/resil/deadline.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/resil/retry.hpp"
#include "ppd/spice/hash.hpp"
#include "ppd/spice/lint.hpp"
#include "ppd/util/error.hpp"
#include "ppd/util/table.hpp"

namespace ppd::spice {

namespace detail {

namespace {

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

void assemble(Circuit& circuit, MnaSystem& mna, const StampContext& ctx,
              AssemblePlan* plan, AssemblePhase phase) {
  if (plan != nullptr && plan->learned && mna.replay_ready() &&
      phase != AssemblePhase::kFull) {
    // Partial re-assembly: restamp only the devices whose values can have
    // changed since their slots were last written; everything else (and the
    // gmin leak) replays verbatim. Skipping the per-device virtual walk is
    // the point — at MC sizes assembly, not the solve, dominates a Newton
    // iteration.
    const auto& devices = circuit.devices();
    StampContext rctx = ctx;
    rctx.replay = true;  // slots retain values: quiescent devices may skip
    mna.note_partial();
    if (plan->selective && !plan->all_dirty) {
      // Dirty-driven walk: only devices whose stamp inputs actually moved
      // since their last visit. The epoch dedupes a device watched by
      // several dirty nodes within one walk.
      ++plan->epoch;
      const auto visit = [&](std::size_t i) {
        if (plan->visit_epoch[i] == plan->epoch) return;
        plan->visit_epoch[i] = plan->epoch;
        mna.seek(plan->marks[i]);
        devices[i]->stamp(mna, rctx);
      };
      for (std::size_t nidx = 0; nidx < plan->node_dirty.size(); ++nidx) {
        if (!plan->node_dirty[nidx]) continue;
        plan->node_dirty[nidx] = 0;
        for (std::uint32_t d : plan->node_watch[nidx]) visit(d);
      }
      if (phase == AssemblePhase::kStepRefresh) {
        for (std::size_t i : plan->sources) visit(i);
        for (std::size_t i : plan->refresh) {
          if (!plan->dev_dirty[i]) continue;
          plan->dev_dirty[i] = 0;
          visit(i);
        }
      }
      return;
    }
    const auto& list = phase == AssemblePhase::kStepRefresh ? plan->refresh
                                                            : plan->nonlinear;
    for (std::size_t i : list) {
      mna.seek(plan->marks[i]);
      devices[i]->stamp(mna, rctx);
    }
    if (plan->selective) {
      // A full list walk consumes every pending change its phase covers:
      // node-driven dirt only ever targets nonlinear devices (both lists),
      // commit-driven dirt needs the refresh list (kStepRefresh only).
      std::fill(plan->node_dirty.begin(), plan->node_dirty.end(), 0);
      if (phase == AssemblePhase::kStepRefresh) {
        std::fill(plan->dev_dirty.begin(), plan->dev_dirty.end(), 0);
        plan->all_dirty = false;
      }
    }
    return;
  }
  mna.reset();
  const bool learn = plan != nullptr && mna.frozen() && !mna.replay_ready();
  if (learn) {
    plan->refresh.clear();
    plan->nonlinear.clear();
    plan->marks.clear();
    plan->marks.reserve(circuit.devices().size());
    plan->sources.clear();
    plan->node_watch.assign(circuit.node_count() - 1, {});
  }
  for (std::size_t i = 0; i < circuit.devices().size(); ++i) {
    const auto& dev = circuit.devices()[i];
    if (learn) {
      plan->marks.push_back(mna.mark());
      if (dev->stamp_time_varying()) plan->refresh.push_back(i);
      if (dev->is_nonlinear()) {
        plan->nonlinear.push_back(i);
        for (NodeId n : dev->nodes())
          if (n != kGround)
            plan->node_watch[static_cast<std::size_t>(n - 1)].push_back(
                static_cast<std::uint32_t>(i));
      } else if (!dev->is_dynamic() && dev->stamp_time_varying()) {
        plan->sources.push_back(i);
      }
    }
    dev->stamp(mna, ctx);
  }
  const std::size_t nodes = circuit.node_count() - 1;
  for (std::size_t i = 0; i < nodes; ++i)
    mna.add(static_cast<MnaIndex>(i), static_cast<MnaIndex>(i), ctx.gmin);
  if (learn) {
    // Arm selective refresh BEFORE the first Newton update runs, so the
    // updates applied while converging this very solve are tracked; the
    // machinery starts all_dirty and earns its first selective walk only
    // after a full kStepRefresh pass has synced slots with the dirty sets.
    plan->node_dirty.assign(nodes, 0);
    plan->dev_dirty.assign(circuit.devices().size(), 0);
    plan->visit_epoch.assign(circuit.devices().size(), 0);
    plan->epoch = 0;
    plan->all_dirty = true;
    plan->selective = true;
    plan->learned = true;
  }
}

}  // namespace detail

namespace {

using detail::NewtonOutcome;
using detail::NewtonWorkspace;

/// Histogram of iterations-to-convergence per Newton solve; 1..256 covers
/// everything max_iterations allows, log bins keep the fast common case
/// (2-5 iterations) resolved.
void record_newton(const NewtonOutcome& out) {
  if (!obs::metrics_enabled()) return;
  obs::counter("spice.newton.solves").add();
  if (!out.converged) obs::counter("spice.newton.nonconverged").add();
  obs::histogram("spice.newton.iterations", {1.0, 256.0, 24})
      .record(static_cast<double>(out.iterations));
}

NewtonOutcome newton_solve_impl(Circuit& circuit, MnaSystem& mna,
                                StampContext ctx, const NewtonOptions& opt,
                                std::vector<double>& x,
                                const resil::Deadline& deadline,
                                NewtonWorkspace* ws, detail::AssemblePlan* plan,
                                detail::AssemblePhase first_phase) {
  const std::size_t node_unknowns = circuit.node_count() - 1;
  NewtonOutcome out;
  // Chaos seam: poison the first iterate so the non-finite guard below —
  // the real hard-failure path — trips. No-op without an active FaultScope.
  const bool poison_first = resil::inject_newton_nan();

  std::vector<double> x_new_local;
  for (int it = 0; it < opt.max_iterations; ++it) {
    if (deadline.expired())
      throw TimeoutError("Newton solve exceeded its wall-clock budget (" +
                         std::to_string(out.iterations) + " iterations in)");
    ctx.x = &x;
    // Only the iterate moves between iterations of one solve, so after the
    // first assemble a learned plan needs nothing but the nonlinear stamps.
    detail::assemble(circuit, mna, ctx, plan,
                     it == 0 ? first_phase
                             : detail::AssemblePhase::kIterateRefresh);
    try {
      // Same linear solve either way; the workspace variant reuses the
      // caller's buffer (and the frozen factorization path of MnaSystem).
      if (ws != nullptr)
        mna.solve_into(ws->x_new);
      else
        x_new_local = mna.solve();
    } catch (const NumericalError&) {
      // Singular linearization (e.g. fully cut-off stacks at a flat start):
      // report non-convergence and let the caller's homotopy ladder or step
      // control take over.
      return out;
    }
    const std::vector<double>& x_new = ws != nullptr ? ws->x_new : x_new_local;
    ++out.iterations;

    // Clamp node-voltage updates (not branch currents) to aid convergence.
    // The convergence test and the applied update use the clamped step; the
    // reported residual is the unclamped inf-norm, so failure diagnostics
    // show the true update instead of saturating at dv_max.
    // With a selective plan armed, record which node entries the update
    // actually moved BITWISE — that dirty set is what the next partial
    // assemble's device walk is driven by (see detail::assemble).
    const bool track = plan != nullptr && plan->selective &&
                       plan->node_dirty.size() >= node_unknowns;
    bool converged = true;
    double max_dv = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double dv = x_new[i] - x[i];
      if (i < node_unknowns) {
        max_dv = std::max(max_dv, std::abs(dv));
        dv = std::clamp(dv, -opt.dv_max, opt.dv_max);
        if (std::abs(dv) > opt.abstol + opt.reltol * std::abs(x[i]))
          converged = false;
        const double before = x[i];
        x[i] += dv;
        if (track && !detail::bits_equal(before, x[i]))
          plan->node_dirty[i] = 1;
      } else {
        x[i] = x_new[i];
      }
    }
    out.residual = max_dv;
    if (poison_first && it == 0 && !x.empty())
      x[0] = std::numeric_limits<double>::quiet_NaN();
    if (!std::isfinite(linalg::norm_inf(x)))
      throw NumericalError("Newton iterate diverged to non-finite values");
    // A below-tolerance update means x is a fixed point of the Newton map:
    // the system linearized *at x* solves back to x, so the residual is
    // already small and no confirmation iteration is needed.
    if (converged) {
      out.converged = true;
      return out;
    }
  }
  return out;
}

}  // namespace

namespace detail {

NewtonOutcome newton_solve(Circuit& circuit, MnaSystem& mna, StampContext ctx,
                           const NewtonOptions& opt, std::vector<double>& x,
                           const resil::Deadline& deadline, NewtonWorkspace* ws,
                           AssemblePlan* plan, AssemblePhase first_phase) {
  // Chaos seam: report non-convergence without solving, exercising the
  // callers' recovery ladders. No-op without an active FaultScope.
  if (resil::inject_newton_nonconvergence()) {
    const NewtonOutcome out;
    record_newton(out);
    return out;
  }
  const NewtonOutcome out = newton_solve_impl(circuit, mna, ctx, opt, x,
                                              deadline, ws, plan, first_phase);
  record_newton(out);
  return out;
}

}  // namespace detail

namespace {

using detail::assemble;
using detail::newton_solve;

/// Run a homotopy schedule: solve each context in order, each stage starting
/// from the previous stage's solution; every stage must converge. The gmin
/// and source rungs of run_op are both instances of this (they used to be
/// two near-identical loops). `last` receives the final stage's outcome.
bool schedule_solve(Circuit& circuit, MnaSystem& mna,
                    const std::vector<StampContext>& schedule,
                    const NewtonOptions& opt, std::vector<double>& x,
                    const resil::Deadline& deadline, NewtonOutcome* last) {
  NewtonOutcome out;
  for (const StampContext& ctx : schedule) {
    out = newton_solve(circuit, mna, ctx, opt, x, deadline);
    if (last != nullptr) *last = out;
    if (!out.converged) return false;
  }
  return true;
}

/// Content key for the operating-point solution: the OP view of the circuit
/// (sources at t = 0) plus every option that shapes which fixed point the
/// ladder lands on. budget_seconds stays out — timeouts throw and are never
/// cached, and a successful solve's value does not depend on its budget.
std::uint64_t op_cache_key(const Circuit& circuit, const OpOptions& options) {
  cache::Hasher h;
  h.str("spice.op");
  hash_circuit_op(h, circuit);
  h.i64(options.newton.max_iterations);
  h.f64(options.newton.abstol);
  h.f64(options.newton.reltol);
  h.f64(options.newton.dv_max);
  h.f64(options.newton.gmin);
  h.boolean(options.allow_gmin_stepping);
  h.boolean(options.allow_source_stepping);
  h.f64(options.recovery.gmin_start);
  h.f64(options.recovery.gmin_factor);
  h.i64(options.recovery.source_steps);
  h.u64(options.nodesets.size());
  for (const auto& [node, volts] : options.nodesets) {
    h.i64(node);
    h.f64(volts);
  }
  return h.value();
}

/// Warm-start verification: is the stored iterate `x` still a Newton fixed
/// point of this circuit? One assemble + one linear solve, checking the
/// would-be update against tolerance WITHOUT applying it — so on success the
/// caller can return `x` verbatim and stay bit-identical to the cold run
/// that stored it. Returns false on a stale entry or hash collision (the
/// caller then falls through to the cold ladder).
bool op_verified_at(Circuit& circuit, MnaSystem& mna, StampContext ctx,
                    const NewtonOptions& opt, const std::vector<double>& x) {
  const std::size_t node_unknowns = circuit.node_count() - 1;
  ctx.x = &x;
  assemble(circuit, mna, ctx);
  std::vector<double> x_new;
  try {
    x_new = mna.solve();
  } catch (const NumericalError&) {
    return false;
  }
  if (!std::isfinite(linalg::norm_inf(x_new))) return false;
  for (std::size_t i = 0; i < node_unknowns; ++i) {
    const double dv = std::clamp(x_new[i] - x[i], -opt.dv_max, opt.dv_max);
    if (std::abs(dv) > opt.abstol + opt.reltol * std::abs(x[i])) return false;
  }
  return true;
}

}  // namespace

namespace detail {

/// run_op with the wall-clock deadline supplied by the caller, so transient
/// drivers can thread ONE shared deadline through both phases instead of
/// granting the operating point a second full budget.
OpResult run_op_with_deadline(Circuit& circuit, const OpOptions& options,
                              const resil::Deadline& deadline) {
  const obs::Span span("spice.run_op");
  const auto op_start = std::chrono::steady_clock::now();
  obs::counter("spice.op.solves").add();
  // Reject structurally broken circuits (ground islands, vsource loops,
  // device-free nodes) with actionable diagnostics instead of letting the
  // factorization die on a singular matrix mid-sweep.
  validate_circuit(circuit);
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();
  PPD_REQUIRE(n > 0, "circuit has no unknowns");
  MnaSystem mna(n, /*use_sparse=*/false);

  // Starting point: flat zero plus any .NODESET biases.
  std::vector<double> x0(n, 0.0);
  for (const auto& [node, volts] : options.nodesets) {
    PPD_REQUIRE(node > 0 && static_cast<std::size_t>(node) < circuit.node_count(),
                "nodeset node out of range (ground cannot be set)");
    x0[static_cast<std::size_t>(node - 1)] = volts;
  }

  OpResult result;
  result.x = x0;

  StampContext ctx;
  ctx.mode = AnalysisMode::kOperatingPoint;
  ctx.gmin = options.newton.gmin;

  const auto record_solve_time = [&] {
    if (!obs::metrics_enabled()) return;
    obs::histogram("spice.op.seconds", {1e-7, 1e3, 50})
        .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              op_start)
                    .count());
  };

  // Warm-start rung (rung 0 of the ladder, before plain Newton): a prior
  // converged OP for this exact system may be cached. Verify it is still a
  // fixed point and return it verbatim — see op_verified_at. Bypassed under
  // fault injection so chaos plans keep hitting the seams they target.
  // Value layout: [iterations, used_gmin, used_source, x...].
  const bool use_cache =
      cache::cache_enabled() && !resil::fault_injection_active();
  const std::uint64_t key = use_cache ? op_cache_key(circuit, options) : 0;
  if (use_cache) {
    if (const auto cached = cache::solve_cache().get(key);
        cached.has_value() && cached->size() == n + 3) {
      const std::vector<double> stored(cached->begin() + 3, cached->end());
      if (op_verified_at(circuit, mna, ctx, options.newton, stored)) {
        const int cold_iterations = static_cast<int>((*cached)[0]);
        obs::counter("spice.newton.warm_start.hit").add();
        obs::counter("spice.newton.warm_start.iters_saved")
            .add(static_cast<std::uint64_t>(
                std::max(0, cold_iterations - 1)));
        result.x = stored;
        result.iterations = cold_iterations;
        result.used_gmin_stepping = (*cached)[1] != 0.0;
        result.used_source_stepping = (*cached)[2] != 0.0;
        record_solve_time();
        return result;
      }
      obs::counter("spice.newton.warm_start.stale").add();
    }
  }

  // The homotopy ladder: plain Newton, then gmin stepping (a heavy leak
  // relaxed geometrically), then source stepping (sources ramped from zero).
  // Each rung is a schedule of contexts handed to schedule_solve; the
  // generic ladder walker owns ordering, per-rung obs counters and the
  // wall-clock budget.
  resil::RetryPolicy policy;
  policy.counter_prefix = "spice.op";
  policy.rungs.push_back({"newton", 1});
  if (options.allow_gmin_stepping) policy.rungs.push_back({"gmin-step", 1});
  if (options.allow_source_stepping) policy.rungs.push_back({"source-step", 1});

  std::vector<double> x;
  NewtonOutcome last;
  const auto try_rung = [&](const resil::RetryRung& rung, int) {
    x = x0;  // every rung restarts from the (possibly biased) flat start
    std::vector<StampContext> schedule;
    if (rung.name == "newton") {
      schedule.push_back(ctx);
    } else if (rung.name == "gmin-step") {
      obs::counter("spice.op.gmin_fallbacks").add();
      for (double gmin = options.recovery.gmin_start;
           gmin >= options.newton.gmin; gmin *= options.recovery.gmin_factor) {
        StampContext step_ctx = ctx;
        step_ctx.gmin = gmin;
        schedule.push_back(step_ctx);
      }
      schedule.push_back(ctx);  // confirm at the true gmin
    } else {  // source-step
      obs::counter("spice.op.source_fallbacks").add();
      const int steps = std::max(1, options.recovery.source_steps);
      for (int k = 1; k <= steps; ++k) {
        StampContext step_ctx = ctx;
        step_ctx.source_scale = static_cast<double>(k) / steps;
        schedule.push_back(step_ctx);
      }
    }
    return schedule_solve(circuit, mna, schedule, options.newton, x, deadline,
                          &last);
  };

  const resil::LadderOutcome outcome =
      resil::run_ladder(policy, try_rung, deadline,
                        "operating point" + (circuit.source().empty()
                                                 ? std::string()
                                                 : " of " + circuit.source()));
  if (outcome.success) {
    const std::string& rung = policy.rungs[static_cast<std::size_t>(outcome.rung)].name;
    result.x = std::move(x);
    result.iterations = last.iterations;
    result.used_gmin_stepping = rung == "gmin-step";
    result.used_source_stepping = rung == "source-step";
    if (use_cache) {
      std::vector<double> value;
      value.reserve(result.x.size() + 3);
      value.push_back(static_cast<double>(result.iterations));
      value.push_back(result.used_gmin_stepping ? 1.0 : 0.0);
      value.push_back(result.used_source_stepping ? 1.0 : 0.0);
      value.insert(value.end(), result.x.begin(), result.x.end());
      cache::solve_cache().put(key, std::move(value));
    }
    record_solve_time();
    return result;
  }

  obs::counter("spice.op.failures").add();
  {
    // Rate-limited: a badly conditioned MC sweep can fail thousands of times.
    static obs::RateLimit rate(5);
    if (rate.allow())
      obs::log_warn("spice", "operating point did not converge",
                    {{"unknowns", std::to_string(n)},
                     {"source", circuit.source().empty() ? "-" : circuit.source()},
                     {"rungs", outcome.attempted}});
  }
  std::string msg = "operating point did not converge";
  if (!circuit.source().empty()) msg += " for " + circuit.source();
  msg += " [rungs attempted: " + outcome.attempted + " (" +
         std::to_string(outcome.total_attempts) + " solves); final update " +
         util::format_double(last.residual, 3) + " V over " +
         std::to_string(n) + " unknowns]";
  throw NumericalError(msg);
}

void init_transient_result(const Circuit& circuit,
                           const std::vector<NodeId>& probe,
                           TransientResult& result,
                           std::vector<std::size_t>& probe_list) {
  result.node_names.resize(circuit.node_count());
  result.node_waves.resize(circuit.node_count());
  for (std::size_t i = 0; i < circuit.node_count(); ++i)
    result.node_names[i] = circuit.node_name(static_cast<NodeId>(i));
  result.probed.assign(circuit.node_count(), probe.empty());
  result.probed[0] = false;
  for (NodeId n : probe) {
    PPD_REQUIRE(n > 0 && static_cast<std::size_t>(n) < circuit.node_count(),
                "probe node out of range");
    result.probed[static_cast<std::size_t>(n)] = true;
  }
  probe_list.clear();
  for (std::size_t i = 1; i < circuit.node_count(); ++i)
    if (result.probed[i]) probe_list.push_back(i);
}

TransientStepper::TransientStepper(Circuit& circuit, MnaSystem& mna,
                                   const TransientOptions& options,
                                   double t_stop, resil::Deadline deadline,
                                   const std::vector<double>& x_op,
                                   NewtonWorkspace* ws, MosBypass* bypass)
    : circuit_(circuit),
      mna_(mna),
      options_(options),
      deadline_(deadline),
      ws_(ws),
      bypass_(bypass),
      node_unknowns_(circuit.node_count() - 1),
      t_stop_(t_stop),
      // Relative end-of-sweep guard: accumulated t += h carries rounding at
      // the scale of t_stop, so the old absolute 1e-21 epsilon was
      // meaningless against nanosecond sweeps.
      t_end_(t_stop * (1.0 - 1e-12)),
      h_(options.dt),
      x_(x_op) {
  PPD_REQUIRE(t_stop_ > 0.0, "t_stop must be positive");
}

TransientStepper::Outcome TransientStepper::step() {
  if (t_ >= t_end_) return Outcome::kFinished;
  if (deadline_.expired())
    throw TimeoutError("transient exceeded its wall-clock budget at t = " +
                       std::to_string(t_) + " of " + std::to_string(t_stop_) +
                       " s" +
                       (circuit_.source().empty()
                            ? ""
                            : " [" + circuit_.source() + "]"));

  const double rem = t_stop_ - t_;
  if (rem < options_.dt_min) {
    // A rejection ladder left a sub-dt_min sliver: a C/h companion at such h
    // is ill-conditioned and the rejection path could not shrink further.
    // Snap the trace to t_stop instead of integrating the sliver.
    t_ = t_stop_;
    snapped_ = true;
    return Outcome::kFinished;
  }
  h_ = std::min(h_, rem);
  // Absorb a would-be final sliver into this step (growing h by < dt_min) so
  // the sweep lands exactly on t_stop — but never right after a rejection,
  // where re-growing h would retry the step size that just failed.
  if (!just_rejected_ && rem - h_ < options_.dt_min) h_ = rem;

  StampContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.integrator = options_.integrator;
  ctx.t = t_ + h_;
  ctx.h = h_;
  ctx.gmin = options_.newton.gmin;
  ctx.bypass = bypass_;

  // A new step size invalidates every dynamic companion (geq = C/h) at
  // once; selective refresh must not skip caps on state bits alone, so a
  // bitwise h change forces the next walk to be a full one.
  if (!have_stamp_h_ || !bits_equal(h_, stamp_h_)) plan_.all_dirty = true;
  stamp_h_ = h_;
  have_stamp_h_ = true;

  x_try_ = x_;  // previous point as predictor
  // Entering a step only the time-varying stamps can differ from the slots'
  // recorded values (static stamps are constant across the whole transient),
  // so a learned plan assembles kStepRefresh here and kIterateRefresh inside
  // the Newton loop. Unfrozen MnaSystems (the scalar path) ignore the plan.
  const NewtonOutcome outcome =
      newton_solve(circuit_, mna_, ctx, options_.newton, x_try_, deadline_,
                   ws_, &plan_, AssemblePhase::kStepRefresh);
  last_iterations_ = outcome.iterations;

  if (!outcome.converged) {
    if (!options_.adaptive || h_ <= options_.dt_min * 1.0001)
      throw NumericalError("transient Newton failed at t = " +
                           std::to_string(ctx.t));
    just_rejected_ = true;
    // The failed Newton left slots stamped along an abandoned trajectory
    // the dirty sets no longer describe — restamp everything on retry.
    plan_.all_dirty = true;
    h_ = std::max(h_ * 0.25, options_.dt_min);
    return Outcome::kRejected;
  }

  // LTE control: hold the distance between the solved point and a divided-
  // difference predictor under lte_tol. The linear predictor makes this a
  // curvature-scale (second-order) estimate; the h/(h + h_prev) factor damps
  // it toward the local-truncation scale of the trapezoidal rule.
  double lte = -1.0;
  if (options_.adaptive && options_.step_control == StepControl::kLte &&
      have_history_) {
    const double ratio = h_ / h_prev_;
    double err = 0.0;
    for (std::size_t i = 0; i < node_unknowns_; ++i) {
      const double pred = x_[i] + ratio * (x_[i] - x_prev_[i]);
      err = std::max(err, std::abs(x_try_[i] - pred));
    }
    lte = err * (h_ / (h_ + h_prev_));
    if (lte > options_.lte_tol && h_ > options_.dt_min * 1.0001) {
      just_rejected_ = true;
      plan_.all_dirty = true;  // slots follow the abandoned iterate
      h_ = std::max(
          h_ * std::max(0.25, 0.9 * std::sqrt(options_.lte_tol / lte)),
          options_.dt_min);
      return Outcome::kRejected;
    }
  }

  // Accept the step.
  if (options_.step_control == StepControl::kLte) x_prev_ = x_;
  std::swap(x_, x_try_);
  const auto& devs = circuit_.devices();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    // Commit reports bitwise state changes; with selective refresh armed
    // those become next step's restamp set (untracked otherwise).
    const bool state_moved = devs[i]->commit_step(ctx, x_);
    if (state_moved && plan_.selective) plan_.dev_dirty[i] = 1;
  }
  t_ += h_;
  if (t_ >= t_end_) t_ = t_stop_;  // record the final point at exactly t_stop
  h_prev_ = h_;
  have_history_ = true;
  just_rejected_ = false;

  if (options_.adaptive) {
    if (options_.step_control == StepControl::kIterationCount) {
      // NR iteration counts steering the step (SPICE's iteration-count
      // time-step control): grow when Newton converges quickly, shrink on
      // slow convergence.
      constexpr int kFastIterations = 3;
      constexpr int kSlowIterations = 8;
      if (outcome.iterations <= kFastIterations)
        h_ = std::min(h_ * 1.5, options_.dt_max);
      else if (outcome.iterations >= kSlowIterations)
        h_ = std::max(h_ * 0.5, options_.dt_min);
    } else if (lte >= 0.0) {
      const double factor =
          std::min(2.0, 0.9 * std::sqrt(options_.lte_tol /
                                        std::max(lte, 1e-30)));
      h_ = std::clamp(h_ * factor, options_.dt_min, options_.dt_max);
    }
  }
  return Outcome::kAccepted;
}

}  // namespace detail

double OpResult::voltage(NodeId n) const {
  if (n == kGround) return 0.0;
  const auto i = static_cast<std::size_t>(n - 1);
  PPD_REQUIRE(i < x.size(), "node id out of range");
  return x[i];
}

OpResult run_op(Circuit& circuit, const OpOptions& options) {
  return detail::run_op_with_deadline(
      circuit, options, resil::Deadline::after(options.budget_seconds));
}

const wave::Waveform& TransientResult::wave(NodeId n) const {
  PPD_REQUIRE(n > 0 && static_cast<std::size_t>(n) < node_waves.size(),
              "node id out of range (ground has no waveform)");
  PPD_REQUIRE(probed[static_cast<std::size_t>(n)],
              "node was not in the transient probe set: " +
                  node_names[static_cast<std::size_t>(n)]);
  return node_waves[static_cast<std::size_t>(n)];
}

const wave::Waveform& TransientResult::wave(const std::string& node_name) const {
  for (std::size_t i = 1; i < node_names.size(); ++i)
    if (node_names[i] == node_name) return wave(static_cast<NodeId>(i));
  throw PreconditionError("unknown node: " + node_name);
}

TransientResult run_transient(Circuit& circuit, const TransientOptions& options) {
  PPD_REQUIRE(options.t_stop > 0.0, "t_stop must be positive");
  PPD_REQUIRE(options.dt > 0.0, "dt must be positive");
  const obs::Span span("spice.run_transient");
  const auto tran_start = std::chrono::steady_clock::now();

  // ONE deadline governs the whole analysis: the operating point spends
  // from the same transient budget it precedes (previously both phases
  // created a full-length deadline each, so a "budgeted" transient could
  // run for twice its budget). An explicit op.budget_seconds still tightens
  // the OP phase further when set.
  const resil::Deadline deadline = resil::Deadline::after(options.budget_seconds);
  const OpResult op = detail::run_op_with_deadline(
      circuit, options.op,
      resil::Deadline::earliest(
          deadline, resil::Deadline::after(options.op.budget_seconds)));
  circuit.finalize();
  const std::size_t n = circuit.unknown_count();
  const bool use_sparse =
      options.sparse_threshold == 0 || n > options.sparse_threshold;
  MnaSystem mna(n, use_sparse);

  for (const auto& dev : circuit.devices()) dev->begin_transient(op.x);

  TransientResult result;
  std::vector<std::size_t> probe_list;
  detail::init_transient_result(circuit, options.probe, result, probe_list);

  auto record = [&](double t, const std::vector<double>& x) {
    for (std::size_t i : probe_list) result.node_waves[i].append(t, x[i - 1]);
  };
  // Record the operating point at t = 0.
  record(0.0, op.x);

  detail::TransientStepper stepper(circuit, mna, options, options.t_stop,
                                   deadline, op.x, /*ws=*/nullptr,
                                   /*bypass=*/nullptr);
  for (;;) {
    const auto outcome = stepper.step();
    if (outcome == detail::TransientStepper::Outcome::kFinished) break;
    result.newton_iterations +=
        static_cast<std::size_t>(stepper.last_iterations());
    if (outcome == detail::TransientStepper::Outcome::kAccepted) {
      record(stepper.time(), stepper.x());
      ++result.steps;
    } else {
      ++result.rejected_steps;
    }
  }
  // Sub-dt_min sliver snapped away: hold the last solution to exactly t_stop
  // so the waveform still ends on the nose.
  if (stepper.snapped_without_step()) record(stepper.time(), stepper.x());
  if (obs::metrics_enabled()) {
    obs::counter("spice.transient.runs").add();
    obs::counter("spice.transient.steps").add(result.steps);
    obs::counter("spice.transient.rejected_steps").add(result.rejected_steps);
    obs::histogram("spice.transient.seconds", {1e-6, 1e4, 50})
        .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              tran_start)
                    .count());
  }
  return result;
}

}  // namespace ppd::spice
