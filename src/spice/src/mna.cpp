#include "ppd/spice/mna.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "ppd/util/error.hpp"

namespace ppd::spice {

namespace {

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

MnaSystem::MnaSystem(std::size_t unknowns, bool use_sparse)
    : n_(unknowns), use_sparse_(use_sparse), rhs_(unknowns, 0.0) {
  if (!use_sparse_) dense_ = linalg::DenseMatrix(n_, n_);
}

void MnaSystem::reset() {
  if (freeze_ == Freeze::kFrozen) {
    // Keep the learned structure and its values; replay from the top. The
    // matrix image and rhs are rebuilt from the slot arrays at solve time.
    trip_cursor_ = 0;
    rhs_cursor_ = 0;
    partial_ = false;
    return;
  }
  trip_row_.clear();
  trip_col_.clear();
  trip_val_.clear();
  if (!use_sparse_) dense_.set_zero();
  if (freeze_ == Freeze::kLearning) {
    rhs_row_.clear();
    rhs_val_.clear();
  }
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

void MnaSystem::note_partial() {
  PPD_REQUIRE(freeze_ == Freeze::kFrozen,
              "note_partial() requires a replay-ready MNA");
  partial_ = true;
}

void MnaSystem::seek(const Mark& m) {
  PPD_REQUIRE(freeze_ == Freeze::kFrozen, "seek() requires a replay-ready MNA");
  PPD_REQUIRE(m.trip <= trip_row_.size() && m.rhs <= rhs_row_.size(),
              "seek() mark out of range");
  trip_cursor_ = m.trip;
  rhs_cursor_ = m.rhs;
  partial_ = true;
}

void MnaSystem::add(MnaIndex row, MnaIndex col, double value) {
  if (row < 0 || col < 0) return;
  const auto r = static_cast<std::size_t>(row);
  const auto c = static_cast<std::size_t>(col);
  PPD_REQUIRE(r < n_ && c < n_, "MNA index out of range");
  if (freeze_ == Freeze::kFrozen) {
    PPD_REQUIRE(trip_cursor_ < trip_row_.size() &&
                    trip_row_[trip_cursor_] == r && trip_col_[trip_cursor_] == c,
                "frozen MNA assemble diverged from the learned structure");
    const std::size_t k = trip_cursor_++;
    double& slot = trip_val_[k];
    if (!bits_equal(slot, value)) {
      slot = value;
      mat_changed_ = true;
      if (!trip_slot_.empty()) {
        const std::size_t s = trip_slot_[k];
        if (!slot_dirty_[s]) {
          slot_dirty_[s] = 1;
          dirty_slots_.push_back(s);
        }
      }
    }
    return;
  }
  if (use_sparse_ || freeze_ == Freeze::kLearning) {
    trip_row_.push_back(r);
    trip_col_.push_back(c);
    trip_val_.push_back(value);
  }
  if (!use_sparse_) dense_(r, c) += value;
}

void MnaSystem::add_rhs(MnaIndex row, double value) {
  if (row < 0) return;
  const auto r = static_cast<std::size_t>(row);
  PPD_REQUIRE(r < n_, "MNA rhs index out of range");
  if (freeze_ == Freeze::kFrozen) {
    PPD_REQUIRE(rhs_cursor_ < rhs_row_.size() && rhs_row_[rhs_cursor_] == r,
                "frozen MNA rhs assemble diverged from the learned structure");
    double& slot = rhs_val_[rhs_cursor_++];
    if (!bits_equal(slot, value)) {
      slot = value;
      rhs_changed_ = true;
      if (!rhs_ptr_.empty() && !rhs_row_dirty_[r]) {
        rhs_row_dirty_[r] = 1;
        dirty_rhs_rows_.push_back(r);
      }
    }
    return;
  }
  if (freeze_ == Freeze::kLearning) {
    rhs_row_.push_back(r);
    rhs_val_.push_back(value);
  }
  rhs_[r] += value;
}

std::vector<double> MnaSystem::solve() const {
  if (use_sparse_) {
    linalg::SparseBuilder b(n_, n_);
    for (std::size_t k = 0; k < trip_row_.size(); ++k)
      b.add(trip_row_[k], trip_col_[k], trip_val_[k]);
    const linalg::SparseMatrix a(b);
    const linalg::SparseLu lu(a);
    return lu.solve(rhs_);
  }
  const linalg::DenseLu lu(dense_);
  return lu.solve(rhs_);
}

void MnaSystem::freeze_structure() {
  PPD_REQUIRE(freeze_ == Freeze::kOff, "structure already frozen");
  freeze_ = Freeze::kLearning;
}

void MnaSystem::learn_sparse_structure() {
  // Replicate SparseMatrix's construction — counting sort into column
  // buckets, an in-column sort by row, duplicates merged in sorted order —
  // but record, for every triplet, the CSC slot it lands in and the order it
  // is accumulated, so frozen assembles can scatter values straight into the
  // CSC image with bitwise-identical sums.
  linalg::SparseBuilder b(n_, n_);
  for (std::size_t k = 0; k < trip_row_.size(); ++k)
    b.add(trip_row_[k], trip_col_[k], trip_val_[k]);
  a_ = std::make_unique<linalg::SparseMatrix>(b);

  const std::size_t nt = trip_row_.size();
  std::vector<std::size_t> count(n_ + 1, 0);
  for (std::size_t c : trip_col_) ++count[c + 1];
  for (std::size_t c = 0; c < n_; ++c) count[c + 1] += count[c];

  std::vector<std::size_t> rows(nt), src(nt);
  std::vector<std::size_t> cursor(count.begin(), count.end() - 1);
  for (std::size_t k = 0; k < nt; ++k) {
    const std::size_t pos = cursor[trip_col_[k]]++;
    rows[pos] = trip_row_[k];
    src[pos] = k;
  }

  scatter_src_.clear();
  scatter_slot_.clear();
  scatter_src_.reserve(nt);
  scatter_slot_.reserve(nt);
  std::size_t slot = 0;  // next CSC slot to open, globally increasing
  for (std::size_t c = 0; c < n_; ++c) {
    const std::size_t lo = count[c];
    const std::size_t hi = count[c + 1];
    std::vector<std::size_t> order(hi - lo);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = lo + i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b2) { return rows[a] < rows[b2]; });
    bool first = true;
    std::size_t prev_row = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::size_t pos = order[i];
      if (first || rows[pos] != prev_row) ++slot;  // opens a new CSC entry
      first = false;
      prev_row = rows[pos];
      scatter_src_.push_back(src[pos]);
      scatter_slot_.push_back(slot - 1);
    }
  }
  PPD_REQUIRE(slot == a_->nonzeros(), "scatter program out of sync with CSC");

  // Inverse maps for incremental re-scatter. scatter_slot_ is non-decreasing
  // (slots open in order), so the contributions to one slot are contiguous
  // in scatter order and a counting pass yields a slot -> triplets CSR whose
  // within-slot order IS the accumulation order.
  trip_slot_.assign(nt, 0);
  for (std::size_t i = 0; i < nt; ++i)
    trip_slot_[scatter_src_[i]] = scatter_slot_[i];
  slot_src_ = scatter_src_;
  slot_ptr_.assign(slot + 1, 0);
  for (std::size_t s : scatter_slot_) ++slot_ptr_[s + 1];
  for (std::size_t s = 0; s < slot; ++s) slot_ptr_[s + 1] += slot_ptr_[s];
  slot_dirty_.assign(slot, 0);
  dirty_slots_.clear();
}

void MnaSystem::learn_rhs_rows() {
  // Stable counting sort of the rhs add sequence by row: per-row order is
  // ascending sequence order, which is the order the learning assemble
  // accumulated each rhs_[r] in — so a per-row rebuild sums bitwise the same.
  const std::size_t nr = rhs_row_.size();
  rhs_ptr_.assign(n_ + 1, 0);
  for (std::size_t r : rhs_row_) ++rhs_ptr_[r + 1];
  for (std::size_t r = 0; r < n_; ++r) rhs_ptr_[r + 1] += rhs_ptr_[r];
  rhs_src_.resize(nr);
  std::vector<std::size_t> cursor(rhs_ptr_.begin(), rhs_ptr_.end() - 1);
  for (std::size_t k = 0; k < nr; ++k) rhs_src_[cursor[rhs_row_[k]]++] = k;
  rhs_row_dirty_.assign(n_, 0);
  dirty_rhs_rows_.clear();
}

void MnaSystem::learn_dense_structure() {
  // Direct += assembly accumulated in add order; scattering the recorded
  // triplets in that same order reproduces every cell sum bitwise.
  scatter_src_.clear();
  scatter_slot_.clear();
  scatter_src_.reserve(trip_row_.size());
  scatter_slot_.reserve(trip_row_.size());
  for (std::size_t k = 0; k < trip_row_.size(); ++k) {
    scatter_src_.push_back(k);
    scatter_slot_.push_back(trip_col_[k] * n_ + trip_row_[k]);  // column-major
  }
}

void MnaSystem::solve_into(std::vector<double>& x) {
  if (freeze_ == Freeze::kOff) {
    x = solve();
    return;
  }
  bool refactor = true;
  if (freeze_ == Freeze::kLearning) {
    // The learning assemble stamped dense_/rhs_ directly while recording the
    // add sequences; factor from those values and arm replay mode.
    if (use_sparse_)
      learn_sparse_structure();
    else
      learn_dense_structure();
    learn_rhs_rows();
    freeze_ = Freeze::kFrozen;
    trip_cursor_ = trip_row_.size();
    rhs_cursor_ = rhs_row_.size();
  } else {
    PPD_REQUIRE(partial_ || (trip_cursor_ == trip_row_.size() &&
                             rhs_cursor_ == rhs_row_.size()),
                "frozen MNA assemble is incomplete");
    partial_ = false;
    // No slot changed bits since the last solve: this is bitwise the same
    // system, so the last solution IS this solve's result.
    if (!mat_changed_ && !rhs_changed_ && solve_cached_) {
      ++stats_.cached;
      x = cached_x_;
      return;
    }
    if (rhs_changed_) {
      if (!rhs_ptr_.empty()) {
        // Only rows whose slot values changed bits need re-accumulation;
        // every other rhs_[r] already holds its (bitwise) rebuild sum.
        for (std::size_t r : dirty_rhs_rows_) {
          double acc = 0.0;
          for (std::size_t k = rhs_ptr_[r]; k < rhs_ptr_[r + 1]; ++k)
            acc += rhs_val_[rhs_src_[k]];
          rhs_[r] = acc;
          rhs_row_dirty_[r] = 0;
        }
        dirty_rhs_rows_.clear();
      } else {
        std::fill(rhs_.begin(), rhs_.end(), 0.0);
        for (std::size_t k = 0; k < rhs_row_.size(); ++k)
          rhs_[rhs_row_[k]] += rhs_val_[k];
      }
    }
    if (mat_changed_ || !factor_ok_) {
      if (use_sparse_) {
        // The CSC image persists between solves (the factorization reads it,
        // never writes it), so only dirty slots re-accumulate.
        auto& av = a_->mutable_values();
        for (std::size_t s : dirty_slots_) {
          double acc = 0.0;
          for (std::size_t k = slot_ptr_[s]; k < slot_ptr_[s + 1]; ++k)
            acc += trip_val_[slot_src_[k]];
          av[s] = acc;
          slot_dirty_[s] = 0;
        }
        dirty_slots_.clear();
      } else {
        dense_.set_zero();
        double* d = dense_.data();
        for (std::size_t i = 0; i < scatter_src_.size(); ++i)
          d[scatter_slot_[i]] += trip_val_[scatter_src_[i]];
      }
    } else {
      // An unchanged matrix re-solves against the factorization already in
      // dense_/slu_ — the factors of bitwise these values.
      refactor = false;
    }
  }
  if (refactor) {
    ++stats_.refactored;
    factor_ok_ = false;
    solve_cached_ = false;
    if (use_sparse_) {
      if (!slu_.factored() || !slu_.refactor(*a_)) slu_.factor(*a_);
    } else {
      // In-place factorization consumes dense_; the next solve rebuilds it
      // from the recorded slots.
      dlw_.factor(dense_);
    }
    factor_ok_ = true;
  }
  if (!refactor) ++stats_.rhs_only;
  if (use_sparse_)
    slu_.solve_into(rhs_, x);
  else
    dlw_.solve_into(rhs_, x);
  cached_x_ = x;
  solve_cached_ = true;
  mat_changed_ = false;
  rhs_changed_ = false;
}

}  // namespace ppd::spice
