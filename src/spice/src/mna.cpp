#include "ppd/spice/mna.hpp"

#include "ppd/util/error.hpp"

namespace ppd::spice {

MnaSystem::MnaSystem(std::size_t unknowns, bool use_sparse)
    : n_(unknowns), use_sparse_(use_sparse), rhs_(unknowns, 0.0) {
  if (!use_sparse_) dense_ = linalg::DenseMatrix(n_, n_);
}

void MnaSystem::reset() {
  if (use_sparse_) {
    trip_row_.clear();
    trip_col_.clear();
    trip_val_.clear();
  } else {
    dense_.set_zero();
  }
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

void MnaSystem::add(MnaIndex row, MnaIndex col, double value) {
  if (row < 0 || col < 0) return;
  const auto r = static_cast<std::size_t>(row);
  const auto c = static_cast<std::size_t>(col);
  PPD_REQUIRE(r < n_ && c < n_, "MNA index out of range");
  if (use_sparse_) {
    trip_row_.push_back(r);
    trip_col_.push_back(c);
    trip_val_.push_back(value);
  } else {
    dense_(r, c) += value;
  }
}

void MnaSystem::add_rhs(MnaIndex row, double value) {
  if (row < 0) return;
  const auto r = static_cast<std::size_t>(row);
  PPD_REQUIRE(r < n_, "MNA rhs index out of range");
  rhs_[r] += value;
}

std::vector<double> MnaSystem::solve() const {
  if (use_sparse_) {
    linalg::SparseBuilder b(n_, n_);
    for (std::size_t k = 0; k < trip_row_.size(); ++k)
      b.add(trip_row_[k], trip_col_[k], trip_val_[k]);
    const linalg::SparseMatrix a(b);
    const linalg::SparseLu lu(a);
    return lu.solve(rhs_);
  }
  const linalg::DenseLu lu(dense_);
  return lu.solve(rhs_);
}

}  // namespace ppd::spice
