#include "ppd/spice/circuit.hpp"

#include <sstream>

#include "ppd/util/error.hpp"
#include "ppd/util/strings.hpp"

namespace ppd::spice {

Circuit::Circuit() {
  names_.push_back("0");
  by_name_.emplace("0", kGround);
  by_name_.emplace("gnd", kGround);
}

NodeId Circuit::node(const std::string& name) {
  PPD_REQUIRE(!name.empty(), "node name must not be empty");
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  finalized_ = false;
  return id;
}

NodeId Circuit::new_node(const std::string& hint) {
  for (;;) {
    std::string candidate = hint + "#" + std::to_string(fresh_counter_++);
    if (by_name_.find(candidate) == by_name_.end()) return node(candidate);
  }
}

bool Circuit::has_node(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = by_name_.find(name);
  PPD_REQUIRE(it != by_name_.end(), "unknown node: " + name);
  return it->second;
}

const std::string& Circuit::node_name(NodeId n) const {
  PPD_REQUIRE(n >= 0 && static_cast<std::size_t>(n) < names_.size(),
              "node id out of range");
  return names_[static_cast<std::size_t>(n)];
}

DeviceId Circuit::insert(std::unique_ptr<Device> dev) {
  PPD_REQUIRE(device_by_name_.find(dev->name()) == device_by_name_.end(),
              "duplicate device name: " + dev->name());
  for (NodeId n : dev->nodes())
    PPD_REQUIRE(static_cast<std::size_t>(n) < names_.size(),
                "device references unknown node");
  const DeviceId id = devices_.size();
  device_by_name_.emplace(dev->name(), id);
  devices_.push_back(std::move(dev));
  finalized_ = false;
  return id;
}

DeviceId Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                               double ohms) {
  return insert(std::make_unique<Resistor>(name, a, b, ohms));
}

DeviceId Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                double farads) {
  return insert(std::make_unique<Capacitor>(name, a, b, farads));
}

DeviceId Circuit::add_vsource(const std::string& name, NodeId plus, NodeId minus,
                              SourceSpec spec) {
  return insert(std::make_unique<VoltageSource>(name, plus, minus, std::move(spec)));
}

DeviceId Circuit::add_isource(const std::string& name, NodeId into, NodeId out_of,
                              SourceSpec spec) {
  return insert(std::make_unique<CurrentSource>(name, into, out_of, std::move(spec)));
}

DeviceId Circuit::add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                             const MosParams& params) {
  return insert(std::make_unique<Mosfet>(name, d, g, s, params));
}

Device& Circuit::device(DeviceId id) {
  PPD_REQUIRE(id < devices_.size(), "device id out of range");
  return *devices_[id];
}

const Device& Circuit::device(DeviceId id) const {
  PPD_REQUIRE(id < devices_.size(), "device id out of range");
  return *devices_[id];
}

namespace {
template <typename T>
T& typed_device(Device& d, const char* what) {
  auto* p = dynamic_cast<T*>(&d);
  PPD_REQUIRE(p != nullptr, std::string("device is not a ") + what);
  return *p;
}
}  // namespace

Resistor& Circuit::resistor(DeviceId id) {
  return typed_device<Resistor>(device(id), "resistor");
}
Capacitor& Circuit::capacitor(DeviceId id) {
  return typed_device<Capacitor>(device(id), "capacitor");
}
VoltageSource& Circuit::vsource(DeviceId id) {
  return typed_device<VoltageSource>(device(id), "voltage source");
}
Mosfet& Circuit::mosfet(DeviceId id) {
  return typed_device<Mosfet>(device(id), "mosfet");
}

DeviceId Circuit::find_device(const std::string& name) const {
  const auto it = device_by_name_.find(name);
  PPD_REQUIRE(it != device_by_name_.end(), "unknown device: " + name);
  return it->second;
}

bool Circuit::has_device(const std::string& name) const {
  return device_by_name_.find(name) != device_by_name_.end();
}

void Circuit::finalize() {
  std::size_t aux = names_.size() - 1;  // nodes excluding ground come first
  aux_rows_ = 0;
  for (const auto& dev : devices_) {
    dev->set_aux_base(aux);
    aux += dev->aux_rows();
    aux_rows_ += dev->aux_rows();
  }
  finalized_ = true;
}

std::size_t Circuit::unknown_count() const {
  PPD_REQUIRE(finalized_, "circuit must be finalized first");
  return names_.size() - 1 + aux_rows_;
}

std::string Circuit::to_netlist() const {
  std::ostringstream os;
  os << "* " << devices_.size() << " devices, " << names_.size() << " nodes\n";
  for (const auto& dev : devices_) {
    os << dev->name();
    for (NodeId n : dev->nodes()) os << ' ' << node_name(n);
    os << '\n';
  }
  return os.str();
}

}  // namespace ppd::spice
