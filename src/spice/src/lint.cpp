#include "ppd/spice/lint.hpp"

#include "ppd/spice/device.hpp"

namespace ppd::spice {

lint::ElecGraph to_lint_graph(const Circuit& circuit, const std::string& subject) {
  lint::ElecGraph graph;
  graph.source = subject;
  graph.node_names.reserve(circuit.node_count());
  for (std::size_t n = 0; n < circuit.node_count(); ++n)
    graph.node_names.push_back(circuit.node_name(static_cast<NodeId>(n)));

  for (const auto& dev : circuit.devices()) {
    lint::ElecDevice d;
    d.name = dev->name();
    d.nodes.assign(dev->nodes().begin(), dev->nodes().end());
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      d.kind = lint::ElecKind::kResistor;
      d.value = r->resistance();
    } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
      d.kind = lint::ElecKind::kCapacitor;
      d.value = c->capacitance();
    } else if (dynamic_cast<const VoltageSource*>(dev.get()) != nullptr) {
      d.kind = lint::ElecKind::kVsource;
    } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const MosParams& p = m->params();
      d.kind = lint::ElecKind::kMosfet;
      d.w = p.w;
      d.l = p.l;
      d.kp = p.kp;
      d.vt0 = p.vt0;
      d.is_pmos = p.type == MosType::kPmos;
    } else {
      d.kind = lint::ElecKind::kIsource;
    }
    graph.devices.push_back(std::move(d));
  }
  return graph;
}

lint::Report lint_circuit(const Circuit& circuit,
                          const lint::ElecLintOptions& options) {
  return lint::lint_elec(to_lint_graph(circuit), options);
}

void validate_circuit(const Circuit& circuit, const std::string& subject) {
  const lint::Report report = lint_circuit(circuit);
  if (!report.has_errors()) return;
  lint::LintOptions errors_only;
  errors_only.min_severity = lint::Severity::kError;
  report.filtered(errors_only).throw_on_error(subject);
}

}  // namespace ppd::spice
