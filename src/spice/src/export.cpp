#include "ppd/spice/export.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

#include "ppd/util/error.hpp"

namespace ppd::spice {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.' || c == '#' || c == ' ' || c == '/') c = '_';
  return out;
}

std::string node_name(const Circuit& c, NodeId n) {
  if (n == kGround) return "0";
  return sanitize(c.node_name(n));
}

void write_source_spec(std::ostream& os, const SourceSpec& spec) {
  if (std::holds_alternative<Dc>(spec)) {
    os << "DC " << std::get<Dc>(spec).value;
  } else if (std::holds_alternative<Pulse>(spec)) {
    const Pulse& p = std::get<Pulse>(spec);
    os << "PULSE(" << p.v1 << ' ' << p.v2 << ' ' << p.delay << ' ' << p.rise
       << ' ' << p.fall << ' ' << p.width << ' '
       << (p.period > 0.0 ? p.period : 1.0) << ')';
  } else {
    const Pwl& p = std::get<Pwl>(spec);
    os << "PWL(";
    for (std::size_t i = 0; i < p.points.size(); ++i) {
      if (i != 0) os << ' ';
      os << p.points[i].first << ' ' << p.points[i].second;
    }
    os << ')';
  }
}

}  // namespace

void write_spice(std::ostream& os, const Circuit& circuit,
                 const SpiceExportOptions& options) {
  os << "* " << options.title << "\n";

  // Collect distinct MOSFET models.
  using ModelKey = std::tuple<MosType, double, double, double>;  // type,vt,kp,lambda
  std::map<ModelKey, std::string> models;
  for (const auto& dev : circuit.devices()) {
    if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const MosParams& p = m->params();
      const ModelKey key{p.type, p.vt0, p.kp, p.lambda};
      if (models.find(key) == models.end()) {
        const std::string name =
            (p.type == MosType::kNmos ? "nmod" : "pmod") +
            std::to_string(models.size());
        models.emplace(key, name);
      }
    }
  }
  for (const auto& [key, name] : models) {
    const auto& [type, vt, kp, lambda] = key;
    os << ".model " << name << ' ' << (type == MosType::kNmos ? "NMOS" : "PMOS")
       << " level=1 vto=" << vt << " kp=" << kp << " lambda=" << lambda
       << "\n";
  }

  for (const auto& dev : circuit.devices()) {
    const std::string id = sanitize(dev->name());
    const auto& n = dev->nodes();
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      os << 'R' << id << ' ' << node_name(circuit, n[0]) << ' '
         << node_name(circuit, n[1]) << ' ' << r->resistance() << "\n";
    } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
      os << 'C' << id << ' ' << node_name(circuit, n[0]) << ' '
         << node_name(circuit, n[1]) << ' ' << c->capacitance() << "\n";
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(dev.get())) {
      os << 'V' << id << ' ' << node_name(circuit, n[0]) << ' '
         << node_name(circuit, n[1]) << ' ';
      write_source_spec(os, v->spec());
      os << "\n";
    } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const MosParams& p = m->params();
      const std::string& model =
          models.at(ModelKey{p.type, p.vt0, p.kp, p.lambda});
      // Bulk tied to the source terminal (the engine ignores body effect).
      os << 'M' << id << ' ' << node_name(circuit, n[0]) << ' '
         << node_name(circuit, n[1]) << ' ' << node_name(circuit, n[2]) << ' '
         << node_name(circuit, n[2]) << ' ' << model << " w=" << p.w
         << " l=" << p.l << "\n";
    } else {
      // Current source is the only remaining concrete device. SPICE's
      // positive current flows from node+ through the source to node-; our
      // CurrentSource injects INTO nodes()[0], so node+ is nodes()[1].
      const auto* i = dynamic_cast<const CurrentSource*>(dev.get());
      PPD_REQUIRE(i != nullptr, "unknown device kind in export");
      os << 'I' << id << ' ' << node_name(circuit, n[1]) << ' '
         << node_name(circuit, n[0]) << ' ';
      write_source_spec(os, i->spec());
      os << "\n";
    }
  }

  if (options.tran_step > 0.0 && options.tran_stop > 0.0)
    os << ".tran " << options.tran_step << ' ' << options.tran_stop << "\n";
  os << ".end\n";
}

std::string spice_to_string(const Circuit& circuit,
                            const SpiceExportOptions& options) {
  std::ostringstream os;
  write_spice(os, circuit, options);
  return os.str();
}

}  // namespace ppd::spice
