#include "ppd/spice/batch.hpp"

#include <chrono>
#include <exception>

#include "engine_detail.hpp"
#include "ppd/obs/metrics.hpp"
#include "ppd/obs/trace.hpp"
#include "ppd/resil/deadline.hpp"
#include "ppd/util/error.hpp"

namespace ppd::spice {

struct BatchTransient::Sample {
  Circuit* circuit = nullptr;
  double t_stop = 0.0;
  std::unique_ptr<MnaSystem> mna;
  std::unique_ptr<detail::TransientStepper> stepper;
  detail::NewtonWorkspace ws;
  MosBypass bypass;
  BatchSampleResult out;
  std::vector<std::size_t> probe_list;
  bool done = false;

  void fail(const std::string& why) {
    out.failed = true;
    out.error = why;
    done = true;
    stepper.reset();  // release iterate buffers of a dead sample
  }
};

BatchTransient::BatchTransient(BatchOptions options)
    : options_(std::move(options)) {
  PPD_REQUIRE(options_.base.t_stop > 0.0, "t_stop must be positive");
  PPD_REQUIRE(options_.base.dt > 0.0, "dt must be positive");
  PPD_REQUIRE(options_.bypass_tol >= 0.0, "bypass_tol must be >= 0");
}

BatchTransient::~BatchTransient() = default;

void BatchTransient::add(Circuit& circuit, double t_stop) {
  PPD_REQUIRE(!ran_, "BatchTransient::run() already consumed this batch");
  auto s = std::make_unique<Sample>();
  s->circuit = &circuit;
  s->t_stop = t_stop > 0.0 ? t_stop : options_.base.t_stop;
  s->bypass.tol = options_.bypass_tol;
  samples_.push_back(std::move(s));
}

namespace {

/// Samples share MNA structure only when their circuits are the same
/// topology: node set, device order, terminal wiring and auxiliary rows.
/// Parameter values (R, C, W) are deliberately NOT compared.
bool same_topology(const Circuit& a, const Circuit& b) {
  if (a.node_count() != b.node_count()) return false;
  if (a.device_count() != b.device_count()) return false;
  for (std::size_t i = 0; i < a.device_count(); ++i) {
    const Device& da = a.device(i);
    const Device& db = b.device(i);
    if (da.nodes() != db.nodes()) return false;
    if (da.aux_rows() != db.aux_rows()) return false;
  }
  return true;
}

}  // namespace

std::vector<BatchSampleResult> BatchTransient::run() {
  PPD_REQUIRE(!ran_, "BatchTransient::run() already consumed this batch");
  PPD_REQUIRE(!samples_.empty(), "batch has no samples");
  ran_ = true;
  const obs::Span span("spice.batch_transient");
  const auto start = std::chrono::steady_clock::now();

  const Circuit& reference = *samples_.front()->circuit;
  for (const auto& s : samples_)
    PPD_REQUIRE(same_topology(reference, *s->circuit),
                "batch samples must share one circuit topology");

  const TransientOptions& base = options_.base;
  // One wall-clock budget covers the whole batch: the samples advance in
  // lock-step, so per-sample deadlines would all expire together anyway.
  const resil::Deadline deadline = resil::Deadline::after(base.budget_seconds);
  const resil::Deadline op_deadline = resil::Deadline::earliest(
      deadline, resil::Deadline::after(base.op.budget_seconds));

  // Phase 1 — per-sample setup: operating point, frozen MnaSystem, stepper.
  // A sample that fails its OP is quarantined here and never steps.
  for (auto& s : samples_) {
    Circuit& circuit = *s->circuit;
    TransientOptions opt = base;
    opt.t_stop = s->t_stop;
    try {
      const OpResult op =
          detail::run_op_with_deadline(circuit, opt.op, op_deadline);
      circuit.finalize();
      const std::size_t n = circuit.unknown_count();
      const bool use_sparse =
          opt.sparse_threshold == 0 || n > opt.sparse_threshold;
      s->mna = std::make_unique<MnaSystem>(n, use_sparse);
      // Factor-once seam: the first transient assemble learns the sparsity
      // pattern and elimination ordering; every later iteration reuses them.
      s->mna->freeze_structure();
      for (const auto& dev : circuit.devices()) dev->begin_transient(op.x);
      detail::init_transient_result(circuit, opt.probe, s->out.result,
                                    s->probe_list);
      for (std::size_t i : s->probe_list)
        s->out.result.node_waves[i].append(0.0, op.x[i - 1]);
      s->stepper = std::make_unique<detail::TransientStepper>(
          circuit, *s->mna, base, s->t_stop, deadline, op.x, &s->ws,
          options_.bypass ? &s->bypass : nullptr);
    } catch (const std::exception& e) {
      s->fail(e.what());
    }
  }

  // Phase 2 — lock-step integration: one attempted step per live sample per
  // round. Divergence drops the sample, not the batch.
  std::size_t live = 0;
  for (const auto& s : samples_)
    if (!s->done) ++live;
  while (live > 0) {
    for (auto& s : samples_) {
      if (s->done) continue;
      try {
        const auto outcome = s->stepper->step();
        if (outcome == detail::TransientStepper::Outcome::kFinished) {
          if (s->stepper->snapped_without_step()) {
            for (std::size_t i : s->probe_list)
              s->out.result.node_waves[i].append(s->stepper->time(),
                                                 s->stepper->x()[i - 1]);
          }
          s->done = true;
          --live;
          continue;
        }
        s->out.result.newton_iterations +=
            static_cast<std::size_t>(s->stepper->last_iterations());
        if (outcome == detail::TransientStepper::Outcome::kAccepted) {
          for (std::size_t i : s->probe_list)
            s->out.result.node_waves[i].append(s->stepper->time(),
                                               s->stepper->x()[i - 1]);
          ++s->out.result.steps;
        } else {
          ++s->out.result.rejected_steps;
        }
      } catch (const std::exception& e) {
        s->fail(e.what());
        --live;
      }
    }
  }

  std::vector<BatchSampleResult> results;
  results.reserve(samples_.size());
  std::size_t failed = 0, steps = 0, rejected = 0;
  std::uint64_t hits = 0, evals = 0;
  for (auto& s : samples_) {
    s->out.bypass_hits = s->bypass.hits;
    s->out.bypass_evals = s->bypass.evals;
    if (s->out.failed) ++failed;
    steps += s->out.result.steps;
    rejected += s->out.result.rejected_steps;
    hits += s->bypass.hits;
    evals += s->bypass.evals;
    results.push_back(std::move(s->out));
  }
  samples_.clear();

  if (obs::metrics_enabled()) {
    obs::counter("spice.batch.runs").add();
    obs::counter("spice.batch.samples").add(results.size());
    obs::counter("spice.batch.failed_samples").add(failed);
    obs::counter("spice.transient.steps").add(steps);
    obs::counter("spice.transient.rejected_steps").add(rejected);
    obs::counter("spice.bypass.hits").add(hits);
    obs::counter("spice.bypass.evals").add(evals);
    obs::histogram("spice.batch.seconds", {1e-6, 1e4, 50})
        .record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count());
  }
  return results;
}

}  // namespace ppd::spice
