#include "ppd/spice/source.hpp"

#include <cmath>

#include "ppd/util/error.hpp"

namespace ppd::spice {

namespace {

double pulse_value(const Pulse& p, double t) {
  if (p.period > 0.0 && t > p.delay) {
    // Fold into the first period.
    const double local = std::fmod(t - p.delay, p.period);
    t = p.delay + local;
  }
  if (t <= p.delay) return p.v1;
  double u = t - p.delay;
  if (u < p.rise) return p.v1 + (p.v2 - p.v1) * (u / p.rise);
  u -= p.rise;
  if (u < p.width) return p.v2;
  u -= p.width;
  if (u < p.fall) return p.v2 + (p.v1 - p.v2) * (u / p.fall);
  return p.v1;
}

double pwl_value(const Pwl& p, double t) {
  PPD_REQUIRE(!p.points.empty(), "PWL source needs at least one point");
  if (t <= p.points.front().first) return p.points.front().second;
  if (t >= p.points.back().first) return p.points.back().second;
  for (std::size_t i = 1; i < p.points.size(); ++i) {
    const auto& [t1, v1] = p.points[i];
    if (t <= t1) {
      const auto& [t0, v0] = p.points[i - 1];
      PPD_REQUIRE(t1 > t0, "PWL times must be strictly increasing");
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return p.points.back().second;
}

}  // namespace

double source_value(const SourceSpec& spec, double t) {
  return std::visit(
      [t](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Dc>) {
          return s.value;
        } else if constexpr (std::is_same_v<T, Pulse>) {
          return pulse_value(s, t);
        } else {
          return pwl_value(s, t);
        }
      },
      spec);
}

}  // namespace ppd::spice
