// Declarative retry ladders: the generic engine behind the SPICE homotopy
// recovery (plain Newton -> gmin stepping -> source stepping) and any other
// try-progressively-stronger-strategies loop. A RetryPolicy names its rungs
// and gives each an attempt budget; run_ladder walks the rungs in order,
// counts every attempt/success per rung in the ppd::obs registry
// (`<prefix>.rung.<name>.attempts` / `.successes`) and stops at the first
// success or at deadline expiry (ppd::TimeoutError).
//
// On exhaustion the comma-joined rung trail is parked in a thread-local
// slot (take_last_ladder), so a quarantine handler several frames up can
// record how far the recovery got for the failing item without threading a
// context object through every layer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ppd/resil/deadline.hpp"

namespace ppd::resil {

struct RetryRung {
  std::string name;  ///< obs counter suffix and error-message tag
  int attempts = 1;  ///< per-rung attempt budget (>= 1)
};

struct RetryPolicy {
  /// Metric prefix, e.g. "spice.op" -> "spice.op.rung.gmin-step.attempts".
  /// Empty disables the counters.
  std::string counter_prefix;
  std::vector<RetryRung> rungs;
};

struct LadderOutcome {
  bool success = false;
  int rung = -1;           ///< index of the succeeding rung (-1 = exhausted)
  std::string attempted;   ///< comma-joined names of every rung tried
  int total_attempts = 0;
};

/// Walk the rungs in order, calling `try_rung(rung, attempt)` until one call
/// returns true or every budget is spent. `attempt` counts from 0 within the
/// rung. Checks `deadline` before each attempt and throws TimeoutError
/// (message prefixed with `what`) on expiry. On exhaustion the attempted
/// trail is also stored for take_last_ladder().
LadderOutcome run_ladder(
    const RetryPolicy& policy,
    const std::function<bool(const RetryRung& rung, int attempt)>& try_rung,
    const Deadline& deadline = Deadline::never(),
    const std::string& what = "retry ladder");

/// Thread-local trail of the most recently exhausted ladder on this thread
/// ("" when the last ladder succeeded or none ran). take_ clears the slot.
[[nodiscard]] std::string take_last_ladder();
void set_last_ladder(const std::string& attempted);

}  // namespace ppd::resil
