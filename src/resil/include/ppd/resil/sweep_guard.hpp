// SweepGuard ties the resilience pillars together for one parallel sweep:
// policy-driven quarantine (exec's on_item_error hook), wall-clock budgets
// (a Watchdog on the sweep's CancelToken plus a per-item solve budget the
// domain forwards into the solver), periodic checkpointing and resume, and
// the deterministic fault-injection counters (cancel-after-items).
//
// Call pattern (see core/src/coverage.cpp for the canonical use):
//
//   resil::SweepGuard guard(options.resil, items, seed, context, item_seed);
//   exec::ParallelOptions par = ...;
//   guard.arm(par);
//   try {
//     out = exec::parallel_map(items, [&](std::size_t i) -> T {
//       if (const auto saved = guard.cached(i)) return decode(*saved);
//       const resil::FaultScope inject(guard.plan(), i);
//       resil::inject_item_delay();
//       T result = <expensive work>;
//       guard.complete(i, encode(result));
//       return result;
//     }, par, &stats);
//   } catch (const exec::CancelledError& e) { guard.cancelled(e); }
//   res.quarantine = guard.finish();
//
// Determinism: with quarantine on and no wall-clock budget expiring, the
// quarantine report and the merged results are bit-identical at any thread
// count, because item failure is a pure function of the item index (the
// per-item RNG contract plus FaultPlan's hashed draws).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "ppd/exec/cancel.hpp"
#include "ppd/exec/parallel.hpp"
#include "ppd/resil/checkpoint.hpp"
#include "ppd/resil/deadline.hpp"
#include "ppd/resil/faultplan.hpp"
#include "ppd/resil/quarantine.hpp"

namespace ppd::resil {

/// Per-sweep resilience policy, embedded in CoverageOptions / RminOptions /
/// FaultSimOptions. The all-defaults policy is a no-op: fail-fast, no
/// budgets, no checkpointing, no injection — exactly the pre-resil
/// behaviour ("strict mode").
struct SweepPolicy {
  /// Record failing items into a QuarantineReport and keep sweeping
  /// (false = fail fast, today's behaviour).
  bool quarantine = false;
  /// Wall budget for each item's electrical solves, forwarded into the
  /// simulator (0 = unlimited). Expiry throws TimeoutError in the item,
  /// which quarantines like any other failure.
  double solve_budget_seconds = 0.0;
  /// Wall budget for the whole sweep (0 = unlimited). Expiry cancels the
  /// sweep; the guard converts the cancellation into TimeoutError after
  /// saving a checkpoint.
  double sweep_budget_seconds = 0.0;
  /// Checkpoint file ("" = no checkpointing); written every
  /// checkpoint_interval_seconds and on cancellation/finish.
  std::string checkpoint_path;
  /// Load checkpoint_path before sweeping and skip its completed items.
  bool resume = false;
  double checkpoint_interval_seconds = 5.0;
  /// Deterministic fault injection (off by default).
  FaultPlan faults;

  [[nodiscard]] bool active() const {
    return quarantine || solve_budget_seconds > 0.0 ||
           sweep_budget_seconds > 0.0 || !checkpoint_path.empty() ||
           faults.enabled();
  }
};

class SweepGuard {
 public:
  /// `item_seed(i)` maps an item index to the RNG derivation index recorded
  /// in quarantine entries (identity when null).
  SweepGuard(const SweepPolicy& policy, std::size_t items, std::uint64_t seed,
             std::string context,
             std::function<std::uint64_t(std::size_t)> item_seed = {});
  ~SweepGuard();
  SweepGuard(const SweepGuard&) = delete;
  SweepGuard& operator=(const SweepGuard&) = delete;

  /// Wire the policy into the sweep's options: quarantine handler, sweep
  /// watchdog (fires par.cancel) and the cancel-after-items injection.
  void arm(exec::ParallelOptions& par);

  /// Payload of an item completed by a resumed checkpoint (nullopt = run
  /// the item). Thread-safe; immediately nullopt when not resuming.
  [[nodiscard]] std::optional<std::string> cached(std::size_t item) const;

  /// Record a freshly computed item (checkpointing + cancel-after
  /// accounting; cheap no-op when neither is configured).
  void complete(std::size_t item, std::string payload);

  /// Handle a CancelledError escaping the sweep: persist the checkpoint,
  /// then rethrow — as TimeoutError when the sweep watchdog fired, verbatim
  /// otherwise.
  [[noreturn]] void cancelled(const exec::CancelledError& error);

  /// Final checkpoint save + the sorted quarantine report.
  [[nodiscard]] QuarantineReport finish();

  [[nodiscard]] const FaultPlan& plan() const { return policy_.faults; }
  /// The per-item solve deadline budget (forward into SimSettings).
  [[nodiscard]] double solve_budget_seconds() const {
    return policy_.solve_budget_seconds;
  }

 private:
  void maybe_save(bool force);

  SweepPolicy policy_;
  std::size_t items_;
  std::uint64_t seed_;
  std::string context_;
  std::function<std::uint64_t(std::size_t)> item_seed_;

  struct State;               // quarantine entries + checkpoint + counters
  std::shared_ptr<State> state_;
  std::unique_ptr<Watchdog> watchdog_;
  exec::CancelToken cancel_;  // copy of the armed sweep's token
  bool armed_ = false;
};

}  // namespace ppd::resil
