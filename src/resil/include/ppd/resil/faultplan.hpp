// Deterministic fault injection for testing the recovery machinery itself.
//
// A FaultPlan is a seeded recipe of failure probabilities; it is OFF by
// default and only consulted between a FaultScope's construction and
// destruction, so production runs pay one thread-local null check per seam.
// Every injection decision is a pure hash of (plan seed, sweep item, seam,
// per-item draw counter) — no global state, no wall clock — so the set of
// injected failures is bit-identical at any thread count and across
// re-runs, which is what lets the quarantine/checkpoint tests assert exact
// results under chaos.
//
// Seams currently instrumented:
//   * newton  — spice::run_op/run_transient Newton solves report
//               non-convergence (exercises the homotopy ladder);
//   * nan     — a Newton iterate is poisoned to NaN, tripping the solver's
//               real non-finite guard (exercises the hard-failure path);
//   * item    — a sweep item throws NumericalError outright (exercises
//               quarantine without the electrical layer, e.g. in logic);
//   * delay   — a sweep item sleeps, exercising deadlines and watchdogs;
//   * cancel-after — the sweep's CancelToken fires after N completed items,
//               exercising checkpoint/resume (handled by SweepGuard);
//   * sock-*  — socket chaos for the ppdd service: the fault-injecting
//               loopback proxy (ppd::net::ChaosProxy) draws partial writes,
//               mid-frame resets, slow-loris stalls and delayed forwards
//               from the same seeded hash, so a failing chaos seed replays
//               exactly. These seams are consumed by the proxy directly via
//               fault_uniform(), not through a FaultScope.
#pragma once

#include <cstdint>
#include <string>

namespace ppd::resil {

struct FaultPlan {
  std::uint64_t seed = 0;
  double p_newton_nonconverge = 0.0;  ///< "newton="
  double p_newton_nan = 0.0;          ///< "nan="
  double p_item_fail = 0.0;           ///< "item="
  double p_item_delay = 0.0;          ///< "delay=p:seconds"
  double delay_seconds = 0.0;
  /// Fire the sweep's CancelToken after this many completed items
  /// (0 = never). Used to test checkpoint/resume.
  std::size_t cancel_after_items = 0;

  // Socket chaos (consumed by ppd::net::ChaosProxy per forwarded chunk).
  double p_sock_partial = 0.0;  ///< "sock-partial=" — dribble 1..8B writes
  double p_sock_reset = 0.0;    ///< "sock-reset="   — RST mid-frame
  double p_sock_stall = 0.0;    ///< "sock-stall=p:seconds" — slow-loris
  double sock_stall_seconds = 0.0;
  double p_sock_delay = 0.0;    ///< "sock-delay=p:seconds" — delayed forward
  double sock_delay_seconds = 0.0;

  [[nodiscard]] bool enabled() const {
    return p_newton_nonconverge > 0.0 || p_newton_nan > 0.0 ||
           p_item_fail > 0.0 || p_item_delay > 0.0 || cancel_after_items > 0;
  }

  /// True when any socket seam is armed (the chaos proxy's gate; socket
  /// seams deliberately do not arm FaultScope / enabled()).
  [[nodiscard]] bool socket_enabled() const {
    return p_sock_partial > 0.0 || p_sock_reset > 0.0 || p_sock_stall > 0.0 ||
           p_sock_delay > 0.0;
  }

  /// Parse "seed=7,newton=0.3,nan=0.05,item=0.2,delay=0.1:0.01,
  /// cancel-after=30,sock-partial=0.3,sock-reset=0.02,sock-stall=0.1:0.02,
  /// sock-delay=0.2:0.005" (any subset, any order). Throws ParseError.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Plan from the PPD_FAULT_PLAN environment variable (empty/unset =
  /// disabled plan).
  [[nodiscard]] static FaultPlan from_env();

  /// Round-trippable single-line description ("off" when disabled).
  [[nodiscard]] std::string describe() const;
};

/// Injection seams, hashed into every decision so the same probability
/// draws independently per seam.
enum class FaultSite : std::uint64_t {
  kNewtonNonConverge = 1,
  kNewtonNan = 2,
  kItemFail = 3,
  kItemDelay = 4,
  kSockPartial = 5,
  kSockReset = 6,
  kSockStall = 7,
  kSockDelay = 8,
};

/// The deterministic draw behind every injection decision, exported for
/// consumers that inject outside a sweep item (the socket chaos proxy):
/// hash (seed, item, site, draw counter) into a uniform in [0, 1). Pure —
/// the k-th draw for a given key is identical at any thread count.
[[nodiscard]] double fault_uniform(std::uint64_t seed, std::uint64_t item,
                                   std::uint64_t site, std::uint64_t draw);

namespace detail {
struct FaultContext;
}  // namespace detail

/// Installs `plan` as the active injection context of the current thread
/// for the duration of one sweep item. Scopes nest (the inner scope wins);
/// a disabled plan installs nothing.
class FaultScope {
 public:
  FaultScope(const FaultPlan& plan, std::uint64_t item);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  detail::FaultContext* previous_ = nullptr;
  bool installed_ = false;
};

/// True while a FaultScope is installed on this thread. The solve-reuse
/// cache consults this to bypass itself under chaos: a cached result would
/// mask the very failures the plan is trying to inject.
[[nodiscard]] bool fault_injection_active();

/// Seam helpers, called at the instrumented sites. All return false / no-op
/// when no FaultScope is active on this thread.
[[nodiscard]] bool inject_newton_nonconvergence();
[[nodiscard]] bool inject_newton_nan();
/// Throws NumericalError("injected item failure ...") when drawn.
void inject_item_failure();
/// Sleeps plan.delay_seconds when drawn.
void inject_item_delay();

}  // namespace ppd::resil
