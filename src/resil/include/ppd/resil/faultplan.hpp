// Deterministic fault injection for testing the recovery machinery itself.
//
// A FaultPlan is a seeded recipe of failure probabilities; it is OFF by
// default and only consulted between a FaultScope's construction and
// destruction, so production runs pay one thread-local null check per seam.
// Every injection decision is a pure hash of (plan seed, sweep item, seam,
// per-item draw counter) — no global state, no wall clock — so the set of
// injected failures is bit-identical at any thread count and across
// re-runs, which is what lets the quarantine/checkpoint tests assert exact
// results under chaos.
//
// Seams currently instrumented:
//   * newton  — spice::run_op/run_transient Newton solves report
//               non-convergence (exercises the homotopy ladder);
//   * nan     — a Newton iterate is poisoned to NaN, tripping the solver's
//               real non-finite guard (exercises the hard-failure path);
//   * item    — a sweep item throws NumericalError outright (exercises
//               quarantine without the electrical layer, e.g. in logic);
//   * delay   — a sweep item sleeps, exercising deadlines and watchdogs;
//   * cancel-after — the sweep's CancelToken fires after N completed items,
//               exercising checkpoint/resume (handled by SweepGuard).
#pragma once

#include <cstdint>
#include <string>

namespace ppd::resil {

struct FaultPlan {
  std::uint64_t seed = 0;
  double p_newton_nonconverge = 0.0;  ///< "newton="
  double p_newton_nan = 0.0;          ///< "nan="
  double p_item_fail = 0.0;           ///< "item="
  double p_item_delay = 0.0;          ///< "delay=p:seconds"
  double delay_seconds = 0.0;
  /// Fire the sweep's CancelToken after this many completed items
  /// (0 = never). Used to test checkpoint/resume.
  std::size_t cancel_after_items = 0;

  [[nodiscard]] bool enabled() const {
    return p_newton_nonconverge > 0.0 || p_newton_nan > 0.0 ||
           p_item_fail > 0.0 || p_item_delay > 0.0 || cancel_after_items > 0;
  }

  /// Parse "seed=7,newton=0.3,nan=0.05,item=0.2,delay=0.1:0.01,
  /// cancel-after=30" (any subset, any order). Throws ParseError.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Plan from the PPD_FAULT_PLAN environment variable (empty/unset =
  /// disabled plan).
  [[nodiscard]] static FaultPlan from_env();

  /// Round-trippable single-line description ("off" when disabled).
  [[nodiscard]] std::string describe() const;
};

/// Injection seams, hashed into every decision so the same probability
/// draws independently per seam.
enum class FaultSite : std::uint64_t {
  kNewtonNonConverge = 1,
  kNewtonNan = 2,
  kItemFail = 3,
  kItemDelay = 4,
};

namespace detail {
struct FaultContext;
}  // namespace detail

/// Installs `plan` as the active injection context of the current thread
/// for the duration of one sweep item. Scopes nest (the inner scope wins);
/// a disabled plan installs nothing.
class FaultScope {
 public:
  FaultScope(const FaultPlan& plan, std::uint64_t item);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  detail::FaultContext* previous_ = nullptr;
  bool installed_ = false;
};

/// True while a FaultScope is installed on this thread. The solve-reuse
/// cache consults this to bypass itself under chaos: a cached result would
/// mask the very failures the plan is trying to inject.
[[nodiscard]] bool fault_injection_active();

/// Seam helpers, called at the instrumented sites. All return false / no-op
/// when no FaultScope is active on this thread.
[[nodiscard]] bool inject_newton_nonconvergence();
[[nodiscard]] bool inject_newton_nan();
/// Throws NumericalError("injected item failure ...") when drawn.
void inject_item_failure();
/// Sleeps plan.delay_seconds when drawn.
void inject_item_delay();

}  // namespace ppd::resil
