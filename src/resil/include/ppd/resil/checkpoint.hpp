// Sweep checkpointing: a periodic JSON snapshot of every completed item's
// encoded result plus the quarantine list, written atomically (tmp +
// rename) so an interrupted Monte-Carlo run resumes where it stopped
// instead of recomputing hours of transients. Because each item's payload
// is the item's full result, a resumed sweep merges cached and fresh items
// into a result bit-identical to an uninterrupted run.
//
// The checkpoint is keyed on (seed, items, context): load() + a mismatched
// sweep identity throws, so a checkpoint cannot silently resume a
// different experiment.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ppd/resil/quarantine.hpp"

namespace ppd::resil {

class Checkpoint {
 public:
  Checkpoint() = default;
  Checkpoint(Checkpoint&&) noexcept;
  Checkpoint& operator=(Checkpoint&&) noexcept;

  /// Parse a file written by save(). Throws ParseError on malformed input.
  [[nodiscard]] static Checkpoint load(const std::string& path);

  /// Fix the sweep identity. On a loaded checkpoint, throws ParseError when
  /// it does not match what was stored.
  void bind(std::uint64_t seed, std::size_t items, const std::string& context);

  [[nodiscard]] bool has(std::size_t item) const;
  /// Payload of a completed item; throws PreconditionError when absent.
  [[nodiscard]] std::string payload(std::size_t item) const;

  /// Record a completed item (thread-safe).
  void record(std::size_t item, std::string payload);
  void record_quarantine(QuarantineEntry entry);
  /// Drop the stored quarantine list (a resumed sweep re-runs quarantined
  /// items — deterministically failing the same way — so keeping the stale
  /// entries would duplicate them).
  void clear_quarantine();

  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::vector<QuarantineEntry> quarantine() const;

  /// Serialize to `path` atomically. Throws PreconditionError on I/O errors.
  void save(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::size_t items_ = 0;
  std::string context_;
  bool bound_ = false;
  std::map<std::size_t, std::string> payloads_;
  std::vector<QuarantineEntry> quarantine_;
};

}  // namespace ppd::resil
