// Wall-clock budgets for solves and sweeps. A Deadline is a value type
// carrying an absolute steady_clock expiry (or "never"); hot loops poll
// expired() and throw ppd::TimeoutError with context instead of spinning
// unbounded. A Watchdog is the asynchronous counterpart for code that
// cannot poll: it fires an exec::CancelToken when the budget elapses, so a
// saturated parallel sweep drains cleanly through the cancellation path.
//
// Wall-clock budgets are inherently non-deterministic: whether a given item
// finishes before the deadline depends on machine load. The determinism
// contract of quarantine/checkpointing therefore only covers runs where no
// budget expires (or budgets are unset) — see sweep_guard.hpp.
#pragma once

#include <chrono>

#include "ppd/exec/cancel.hpp"

namespace ppd::resil {

class Deadline {
 public:
  /// Default-constructed deadlines never expire.
  Deadline() = default;

  [[nodiscard]] static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now; `seconds <= 0` means never (so option
  /// structs can use 0.0 as the "unlimited" default).
  [[nodiscard]] static Deadline after(double seconds);

  /// The sooner of the two (an unlimited deadline never wins) — for sharing
  /// one wall-clock budget across sequential phases of an analysis.
  [[nodiscard]] static Deadline earliest(const Deadline& a, const Deadline& b);

  [[nodiscard]] bool unlimited() const { return !limited_; }
  [[nodiscard]] bool expired() const;
  /// Seconds left; a large positive constant when unlimited.
  [[nodiscard]] double remaining_seconds() const;

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// RAII watchdog: fires `token` once `budget_seconds` elapse, unless
/// destroyed first. A budget <= 0 starts no thread at all. fired() tells a
/// CancelledError catch site whether the cancellation was a timeout (convert
/// to TimeoutError) or a caller request (propagate as-is).
class Watchdog {
 public:
  Watchdog(exec::CancelToken token, double budget_seconds);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  [[nodiscard]] bool armed() const { return state_ != nullptr; }
  [[nodiscard]] bool fired() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace ppd::resil
