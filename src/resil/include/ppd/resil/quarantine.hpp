// Sample quarantine: the record of every sweep item that failed and was
// skipped instead of aborting the sweep. Entries carry enough to reproduce
// the failure in isolation (item index, the per-item RNG derivation index,
// the recovery rungs attempted, the error text). The report is sorted by
// item index regardless of which lane recorded what first, so two runs of
// the same sweep at different thread counts produce identical reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppd::resil {

struct QuarantineEntry {
  std::size_t item = 0;      ///< failing sweep item index
  std::uint64_t seed = 0;    ///< per-item RNG derivation index (or item)
  std::string rung;          ///< recovery rungs attempted ("" when none ran)
  std::string error;         ///< exception message

  friend bool operator==(const QuarantineEntry& a, const QuarantineEntry& b) {
    return a.item == b.item && a.seed == b.seed && a.rung == b.rung &&
           a.error == b.error;
  }
};

struct QuarantineReport {
  std::size_t items = 0;                  ///< sweep size
  std::vector<QuarantineEntry> entries;   ///< sorted by item index

  [[nodiscard]] bool empty() const { return entries.empty(); }
  [[nodiscard]] std::size_t size() const { return entries.size(); }
  [[nodiscard]] bool contains(std::size_t item) const;

  /// JSON object: {"items": N, "quarantined": K, "entries": [...]}.
  void write_json(std::ostream& os) const;
};

}  // namespace ppd::resil
