#include "json_util.hpp"

#include <cctype>

#include "ppd/util/error.hpp"

namespace ppd::resil::detail {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::kObject)
    throw ParseError("json: member lookup '" + key + "' on a non-object");
  const auto it = object.find(key);
  if (it == object.end()) throw ParseError("json: missing member '" + key + "'");
  return *it->second;
}

bool JsonValue::has(const std::string& key) const {
  return kind == Kind::kObject && object.count(key) != 0;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw ParseError("json: expected a string value");
  return string;
}

std::uint64_t JsonValue::as_number() const {
  if (kind != Kind::kNumber) throw ParseError("json: expected a number value");
  return number;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) return number();
    fail("unexpected character");
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only emit \u00XX control escapes; reject the rest
          // rather than mis-decode multi-byte code points.
          if (code > 0xff) fail("unsupported \\u escape beyond U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::uint64_t n = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      n = n * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      any = true;
    }
    if (!any) fail("expected digits");
    v.number = n;
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      expect(':');
      v.object[key] = std::make_shared<JsonValue>(value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(std::make_shared<JsonValue>(value()));
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ppd::resil::detail
